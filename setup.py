"""Legacy setup shim.

The execution environment has no ``wheel`` package, so pip's PEP 517
editable path (which builds an editable wheel) cannot run.  Keeping a
``setup.py`` and omitting ``[build-system]`` from ``pyproject.toml``
makes ``pip install -e .`` take the legacy ``setup.py develop`` route,
which works offline.  All metadata lives in ``pyproject.toml``.

The compiled sim backend (``repro.sim._cengine``) is an *optional*
extension: ``make compiled`` (or ``python setup.py build_ext
--inplace``) builds it in place, and a missing compiler degrades to a
warning so pure-Python installs keep working (the engine falls back to
the ``python`` backend at runtime — see ``repro/sim/backend.py``).
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro.sim._cengine",
            sources=["src/repro/sim/_cengine.c"],
            extra_compile_args=["-O3"],
            optional=True,
        )
    ],
)
