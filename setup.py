"""Legacy setup shim.

The execution environment has no ``wheel`` package, so pip's PEP 517
editable path (which builds an editable wheel) cannot run.  Keeping a
``setup.py`` and omitting ``[build-system]`` from ``pyproject.toml``
makes ``pip install -e .`` take the legacy ``setup.py develop`` route,
which works offline.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
