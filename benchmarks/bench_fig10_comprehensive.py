"""Figure 10: comprehensive test — WebSearch FCT at 65,536 concurrent flows.

The tester's maximum concurrency (65,536 flows across 12 ports, closed
loop, ~1.2 Tbps aggregate) is beyond packet-level Python simulation
(~10^9 packets per second of simulated time), so this bench runs the
flow-level (fluid) model — cross-validated against the packet simulator
at small scale in the test suite — for DCTCP, DCQCN, and the ideal
equal-share reference.

Expected shape (paper's observations):
* both real algorithms are worse than ideal overall (utilization < 1,
  tail inflation);
* DCQCN markedly beats DCTCP on short flows (line-rate start vs slow
  start) — the inset of Figure 10.

Set ``FIG10_BACKEND=columnar`` to run the same grid on the time-stepped
columnar solver (dynamic queue/marking feedback) instead of the default
closed-form kernel; the assertions below hold for both backends.
"""

import os

import numpy as np
from conftest import cdf_summary, print_header, print_table, run_once

from repro.fluid import (
    FLUID_BACKENDS,
    dcqcn_profile,
    dctcp_profile,
    ideal_profile,
    run_fluid_result,
)
from repro.units import format_rate
from repro.workload import websearch

N_PORTS = 12
FLOWS_PER_PORT = 65_536 // N_PORTS  # 5,461 -> 65,532 concurrent flows
FLOWS_TOTAL = 100_000
SHORT_CUTOFF_BYTES = 100_000
BACKEND = os.environ.get("FIG10_BACKEND", "closed_form")
assert BACKEND in FLUID_BACKENDS, f"FIG10_BACKEND must be one of {FLUID_BACKENDS}"


def run_all():
    results = {}
    for profile in (ideal_profile(), dctcp_profile(), dcqcn_profile()):
        results[profile.name] = run_fluid_result(
            profile,
            websearch(),
            flows_per_port=FLOWS_PER_PORT,
            flows_total=FLOWS_TOTAL,
            n_ports=N_PORTS,
            seed=10,
            backend=BACKEND,
        )
    return BACKEND, results


def test_fig10_comprehensive(benchmark):
    backend, results = run_once(benchmark, run_all)

    print_header(
        "Figure 10: WebSearch FCT at 65,536 concurrent flows",
        f"fluid model ({backend} backend), "
        f"{N_PORTS} ports x {FLOWS_PER_PORT} flows, "
        f"{FLOWS_TOTAL} flows sampled",
    )
    print_table(
        [cdf_summary(name, result.fcts_us) for name, result in results.items()],
        ["series", "flows", "p10_us", "p50_us", "p90_us", "p99_us", "max_us"],
    )

    ideal = results["ideal"].fcts_us
    dctcp = results["dctcp"].fcts_us
    dcqcn = results["dcqcn"].fcts_us

    # Short-flow inset (FCT mass in the 10^1..10^3 us decade).
    rows = []
    for name, fcts in (("ideal", ideal), ("dctcp", dctcp), ("dcqcn", dcqcn)):
        rows.append(
            {
                "series": name,
                "P[FCT <= 100us]": round(float(np.mean(fcts <= 100)), 3),
                "P[FCT <= 1000us]": round(float(np.mean(fcts <= 1000)), 3),
            }
        )
    print("\nShort-flow inset (cumulative probability at 100 us / 1 ms):")
    print_table(rows, ["series", "P[FCT <= 100us]", "P[FCT <= 1000us]"])

    per_slot = results["dcqcn"].throughput_bps()
    aggregate = per_slot * N_PORTS * FLOWS_PER_PORT
    print(f"\naggregate goodput (DCQCN run): {format_rate(aggregate)} "
          "(paper: close to 1.2 Tbps)")

    # Paper's observations, as assertions:
    # 1. Tail inflation vs ideal.  The closed-form profiles also pin the
    #    mean ordering; the columnar solver does not — at 5,461 flows per
    #    port every DCTCP window sits at the 1-MSS floor and the queue
    #    equalizes shares, so DCTCP's mean converges onto ideal's and
    #    only DCQCN's extreme tail stays strictly worse.
    assert np.max(dcqcn) > np.max(ideal)
    assert np.percentile(dcqcn, 99) > np.percentile(ideal, 99)
    assert np.mean(dcqcn) > np.mean(ideal)
    if backend == "closed_form":
        assert np.mean(dctcp) > np.mean(ideal)
        assert np.max(dctcp) > np.max(ideal)
    # 2. DCQCN significantly better than DCTCP for short flows (inset).
    short_dcqcn = float(np.mean(dcqcn <= 1000))
    short_dctcp = float(np.mean(dctcp <= 1000))
    short_ideal = float(np.mean(ideal <= 1000))
    assert short_dcqcn > 2 * short_dctcp
    assert short_dcqcn > 2 * short_ideal
    # 3. The tester stays near its 1.2 Tbps aggregate.
    assert 0.85 * 1.2e12 <= aggregate <= 1.5e12
