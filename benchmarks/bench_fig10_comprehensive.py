"""Figure 10: comprehensive test — WebSearch FCT at 65,536 concurrent flows.

The tester's maximum concurrency (65,536 flows across 12 ports, closed
loop, ~1.2 Tbps aggregate) is beyond packet-level Python simulation
(~10^9 packets per second of simulated time), so this bench runs the
flow-level (fluid) model — cross-validated against the packet simulator
at small scale in the test suite — for DCTCP, DCQCN, and the ideal
equal-share reference.

Expected shape (paper's observations):
* both real algorithms are worse than ideal overall (utilization < 1,
  tail inflation);
* DCQCN markedly beats DCTCP on short flows (line-rate start vs slow
  start) — the inset of Figure 10.
"""

import numpy as np
from conftest import cdf_summary, print_header, print_table, run_once

from repro.fluid import (
    FluidSimulator,
    dcqcn_profile,
    dctcp_profile,
    ideal_profile,
)
from repro.units import format_rate
from repro.workload import websearch

N_PORTS = 12
FLOWS_PER_PORT = 65_536 // N_PORTS  # 5,461 -> 65,532 concurrent flows
FLOWS_TOTAL = 100_000
SHORT_CUTOFF_BYTES = 100_000


def run_all():
    fluid = FluidSimulator(
        n_ports=N_PORTS, flows_per_port=FLOWS_PER_PORT, seed=10
    )
    results = {}
    for profile in (ideal_profile(), dctcp_profile(), dcqcn_profile()):
        results[profile.name] = fluid.run(
            profile, websearch(), flows_total=FLOWS_TOTAL
        )
    return fluid, results


def test_fig10_comprehensive(benchmark):
    fluid, results = run_once(benchmark, run_all)

    print_header(
        "Figure 10: WebSearch FCT at 65,536 concurrent flows",
        f"fluid model, {N_PORTS} ports x {FLOWS_PER_PORT} flows, "
        f"{FLOWS_TOTAL} flows sampled",
    )
    print_table(
        [cdf_summary(name, result.fcts_us) for name, result in results.items()],
        ["series", "flows", "p10_us", "p50_us", "p90_us", "p99_us", "max_us"],
    )

    ideal = results["ideal"].fcts_us
    dctcp = results["dctcp"].fcts_us
    dcqcn = results["dcqcn"].fcts_us

    # Short-flow inset (FCT mass in the 10^1..10^3 us decade).
    rows = []
    for name, fcts in (("ideal", ideal), ("dctcp", dctcp), ("dcqcn", dcqcn)):
        rows.append(
            {
                "series": name,
                "P[FCT <= 100us]": round(float(np.mean(fcts <= 100)), 3),
                "P[FCT <= 1000us]": round(float(np.mean(fcts <= 1000)), 3),
            }
        )
    print("\nShort-flow inset (cumulative probability at 100 us / 1 ms):")
    print_table(rows, ["series", "P[FCT <= 100us]", "P[FCT <= 1000us]"])

    per_slot = results["dcqcn"].throughput_bps()
    aggregate = per_slot * N_PORTS * FLOWS_PER_PORT
    print(f"\naggregate goodput (DCQCN run): {format_rate(aggregate)} "
          "(paper: close to 1.2 Tbps)")

    # Paper's observations, as assertions:
    # 1. Both algorithms worse than ideal overall (mean FCT, which the
    #    heavy tail dominates) and at the extreme tail.
    assert np.mean(dctcp) > np.mean(ideal)
    assert np.mean(dcqcn) > np.mean(ideal)
    assert np.max(dctcp) > np.max(ideal)
    assert np.max(dcqcn) > np.max(ideal)
    # 2. DCQCN significantly better than DCTCP for short flows (inset).
    short_dcqcn = float(np.mean(dcqcn <= 1000))
    short_dctcp = float(np.mean(dctcp <= 1000))
    short_ideal = float(np.mean(ideal <= 1000))
    assert short_dcqcn > 2 * short_dctcp
    assert short_dcqcn > 2 * short_ideal
    # 3. The tester stays near its 1.2 Tbps aggregate.
    assert 0.85 * 1.2e12 <= aggregate <= 1.5e12
