#!/usr/bin/env python
"""Run the perf-regression suite (thin wrapper around repro.perf.suite).

Usage:
    PYTHONPATH=src python benchmarks/run_perf_suite.py \
        --baseline benchmarks/perf_baseline.json --check

Writes ``BENCH_PR2.json`` unless ``--output`` says otherwise; see
``docs/PERFORMANCE.md`` for what each bench measures.
"""

import sys

from repro.perf.suite import main

if __name__ == "__main__":
    sys.exit(main())
