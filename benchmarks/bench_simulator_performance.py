"""Simulator performance: raw event-engine and full-datapath rates.

Not a paper figure — these are the numbers a *user of this library*
needs to size their experiments: how many engine events and how many
end-to-end DATA packets the simulation processes per host-second.
Unlike the run-once experiment benches, these run multiple rounds so
pytest-benchmark produces real statistics.
"""

from repro import ControlPlane, TestConfig
from repro.sim import Simulator
from repro.units import US


def test_engine_event_rate(benchmark):
    """A tight self-rescheduling callback chain: pure engine overhead."""

    def run():
        sim = Simulator()

        def tick():
            if sim.now < 10_000_000:  # 10k events at 1 ns apart
                sim.after(1000, tick)

        sim.at(0, tick)
        sim.run()
        return sim.events_executed

    events = benchmark(run)
    assert events >= 10_000


def test_full_datapath_rate(benchmark):
    """End-to-end packets through SCHE->DATA->ACK->INFO->CC per second."""

    def run():
        cp = ControlPlane()
        tester = cp.deploy(TestConfig(cc_algorithm="dcqcn", n_test_ports=2))
        cp.wire_loopback_fabric()
        cp.start_flows(size_packets=10**9, pattern="pairs")
        cp.run(duration_ps=200 * US)
        return cp.read_measurements()["switch.data_generated"]

    packets = benchmark(run)
    assert packets > 1000
