"""Figure 9: flow fidelity — Marlin's DCQCN vs ConnectX-style hosts.

n-cast-1 scenario: n sender NICs, each with 5 queue pairs running
closed-loop WebSearch flows toward a single receiver behind a shared
bottleneck.  The test runs once with ConnectX-style host agents (the
independent DCQCN implementation) and once with the Marlin tester in
place of the hosts, then compares the FCT CDFs.

Scale note: WebSearch sizes are divided by 10 on BOTH sides (identical
workloads), bounding tail-flow runtimes so the bench finishes in
minutes; the CDF comparison is unaffected because both systems see the
same sizes.
"""

import numpy as np
from conftest import cdf_summary, print_header, print_table, run_once

from repro import ControlPlane, TestConfig
from repro.measure.fct import cdf_points
from repro.net.topology import n_cast_1
from repro.reference.connectx import ConnectXAgent, ConnectXFctHarness
from repro.sim import Simulator
from repro.units import MS
from repro.workload import ClosedLoopGenerator, EmpiricalCdf, FlowSlot
from repro.workload.distributions import WEBSEARCH_CDF_POINTS

SIZE_SCALE = 10
QPS_PER_HOST = 5
FLOWS_TO_COLLECT = 120


def scaled_websearch():
    return EmpiricalCdf(
        tuple((size // SIZE_SCALE, prob) for size, prob in WEBSEARCH_CDF_POINTS)
    )


def run_connectx(n_senders):
    sim = Simulator()
    topo, senders, receiver, _, _ = n_cast_1(sim, n_senders)
    agents = [ConnectXAgent(host) for host in senders]
    recv_agent = ConnectXAgent(receiver)
    harness = ConnectXFctHarness(
        agents,
        recv_agent,
        scaled_websearch(),
        qps_per_host=QPS_PER_HOST,
        rng=np.random.default_rng(90 + n_senders),
        stop_after_flows=FLOWS_TO_COLLECT,
    )
    harness.start()
    sim.run(until_ps=400 * MS)
    return harness.fct.fcts_us()


def run_marlin(n_senders):
    cp = ControlPlane()
    tester = cp.deploy(
        TestConfig(cc_algorithm="dcqcn", n_test_ports=n_senders + 1)
    )
    cp.wire_loopback_fabric()
    # Each "host" is one tester port with QPS_PER_HOST closed-loop slots.
    slots = [
        FlowSlot(src, n_senders)
        for src in range(n_senders)
        for _ in range(QPS_PER_HOST)
    ]
    generator = ClosedLoopGenerator(
        tester,
        scaled_websearch(),
        slots,
        rng=np.random.default_rng(90 + n_senders),
        stop_after_flows=FLOWS_TO_COLLECT,
    )
    generator.start()
    cp.run(duration_ps=400 * MS)
    return tester.fct.fcts_us()


def compare(n_senders, benchmark):
    def experiment():
        return run_connectx(n_senders), run_marlin(n_senders)

    connectx_fct, marlin_fct = run_once(benchmark, experiment)

    print_header(
        f"Figure 9 ({n_senders}-cast-1): FCT CDF, Marlin vs ConnectX",
        f"WebSearch / {SIZE_SCALE}, {QPS_PER_HOST} QPs per sender, closed loop",
    )
    print_table(
        [
            cdf_summary("ConnectX", connectx_fct),
            cdf_summary("Marlin", marlin_fct),
        ],
        ["series", "flows", "p10_us", "p50_us", "p90_us", "p99_us", "max_us"],
    )

    # Two-sample comparison in log space: medians within 2x, and the
    # Kolmogorov-Smirnov distance between log-FCT CDFs below 0.35
    # ("consistent performance ... complete equivalence not possible").
    log_a = np.log10(connectx_fct)
    log_b = np.log10(marlin_fct)
    grid = np.linspace(
        min(log_a.min(), log_b.min()), max(log_a.max(), log_b.max()), 256
    )
    cdf_a = np.searchsorted(np.sort(log_a), grid, side="right") / len(log_a)
    cdf_b = np.searchsorted(np.sort(log_b), grid, side="right") / len(log_b)
    ks = float(np.max(np.abs(cdf_a - cdf_b)))
    median_ratio = float(np.median(marlin_fct) / np.median(connectx_fct))
    print(f"\nKS distance (log FCT): {ks:.3f}   median ratio: {median_ratio:.2f}x")

    assert len(connectx_fct) >= FLOWS_TO_COLLECT * 0.8
    assert len(marlin_fct) >= FLOWS_TO_COLLECT * 0.8
    assert 0.5 <= median_ratio <= 2.0
    assert ks < 0.35


def test_fig9_2cast1(benchmark):
    compare(2, benchmark)


def test_fig9_3cast1(benchmark):
    compare(3, benchmark)
