"""Table 1: network tester classes vs the three requirements.

Regenerates the paper's requirement matrix from the quantitative baseline
models: R1 (CC traffic), R2 (customizable CC), R3 (Tbps throughput).
"""

from conftest import check_mark, print_header, print_table, run_once

from repro.core import tester_requirements_table as requirements_table


def test_table1_requirements(benchmark):
    rows = run_once(benchmark, requirements_table)

    print_header("Table 1: tester classes vs requirements (paper Table 1)")
    print_table(
        [
            {
                "tester": row.tester,
                "R1 (CC traffic)": check_mark(row.r1_cc_traffic),
                "R2 (custom CC)": check_mark(row.r2_custom_cc),
                "R3 (Tbps)": check_mark(row.r3_tbps),
                "why": row.note,
            }
            for row in rows
        ],
        ["tester", "R1 (CC traffic)", "R2 (custom CC)", "R3 (Tbps)", "why"],
    )

    by_name = {row.tester: row for row in rows}
    # The paper's checkmarks, verbatim.
    assert (True, True, False) == (
        by_name["software & FPGA"].r1_cc_traffic,
        by_name["software & FPGA"].r2_custom_cc,
        by_name["software & FPGA"].r3_tbps,
    )
    assert (True, False, False) == (
        by_name["commercial"].r1_cc_traffic,
        by_name["commercial"].r2_custom_cc,
        by_name["commercial"].r3_tbps,
    )
    assert (False, False, True) == (
        by_name["programmable switch"].r1_cc_traffic,
        by_name["programmable switch"].r2_custom_cc,
        by_name["programmable switch"].r3_tbps,
    )
    assert (True, True, True) == (
        by_name["Marlin"].r1_cc_traffic,
        by_name["Marlin"].r2_custom_cc,
        by_name["Marlin"].r3_tbps,
    )
