"""Figure 7: multi-port scheduling.

One flow per test port, forwarded one-to-one to distinct receiver ports:
per-port schedulers must not interfere, so every flow individually
reaches ~100 Gbps.  The paper uses all 12 ports for 100 s; the
simulation drives 6 concurrent port pairs (12 transmitting ports) for
1.5 ms, which covers thousands of scheduler rounds per port.
"""

from conftest import print_header, print_table, run_once

from repro import ControlPlane, TestConfig
from repro.units import GBPS, MS, US, format_rate

N_PORTS = 12  # 6 sender + 6 receiver roles, all carrying DATA one way
DURATION = 1500 * US
SAMPLE = 250 * US


def run():
    cp = ControlPlane()
    tester = cp.deploy(TestConfig(cc_algorithm="dcqcn", n_test_ports=N_PORTS))
    cp.wire_loopback_fabric()
    sampler = tester.enable_rate_sampling(period_ps=SAMPLE)
    cp.start_flows(size_packets=10**9, pattern="pairs")
    cp.run(duration_ps=DURATION)
    return tester, sampler


def test_fig7_multi_port_scheduling(benchmark):
    tester, sampler = run_once(benchmark, run)

    last = sampler.samples[-1].rates_bps
    flow_rates = {
        name: rate for name, rate in last.items() if name.startswith("flow")
    }
    print_header(
        "Figure 7: multi-port scheduling",
        f"one flow per port pair across {N_PORTS} ports, "
        f"{DURATION / US:.0f} us (paper: 100 s on 12 ports)",
    )
    print_table(
        [
            {"flow": name, "rate": format_rate(rate)}
            for name, rate in sorted(flow_rates.items())
        ],
        ["flow", "rate"],
    )
    print(f"\naggregate: {format_rate(sum(flow_rates.values()))}")

    assert len(flow_rates) == N_PORTS // 2
    for name, rate in flow_rates.items():
        # Each flow independently at ~line rate (paper: each reaches 100 G).
        assert rate >= 0.9 * 100 * GBPS, f"{name} below line rate: {rate}"
