"""Table 2: device characteristics required for CC testing.

Regenerates the programmability / packet-frequency / throughput matrix
for host, programmable switch, FPGA, and Marlin, with each checkmark
derived from the Section 2.1 arithmetic (81 Mpps needed at 1 Tbps and
MTU 1518; 3 GHz / 50 cycles = 60 Mpps; 322 MHz FPGA clock; 2,400 Mpps
Tofino pipeline).
"""

from conftest import check_mark, print_header, print_table, run_once

from repro.core import device_characteristics_table
from repro.core.capabilities import required_pps
from repro.units import format_rate


def test_table2_devices(benchmark):
    rows = run_once(benchmark, device_characteristics_table)

    need = required_pps()
    print_header(
        "Table 2: device characteristics (paper Table 2)",
        f"target: 1 Tbps at MTU 1518 -> {need / 1e6:.1f} Mpps required",
    )
    print_table(
        [
            {
                "device": row.device,
                "programmability": check_mark(row.programmability),
                "freq": check_mark(row.frequency),
                "throughput": check_mark(row.throughput),
                "max pps": f"{row.max_pps / 1e6:.0f} Mpps",
                "max rate": format_rate(row.max_throughput_bps),
            }
            for row in rows
        ],
        ["device", "programmability", "freq", "throughput", "max pps", "max rate"],
    )

    matrix = {
        row.device: (row.programmability, row.frequency, row.throughput)
        for row in rows
    }
    assert matrix["host"] == (True, False, False)
    assert matrix["programmable switch"] == (False, True, True)
    assert matrix["FPGA"] == (True, True, False)
    assert matrix["Marlin"] == (True, True, True)
