"""Section 5.2 ablation: the rescheduling-event scheduling loop.

Demonstrates the properties the paper argues for:

* **uniqueness** — the scheduling FIFO never holds more than one event
  per flow, so its depth is bounded by the active flow count and cannot
  overflow;
* **no wasted scans** — with many flows but few schedulable, service
  ticks go to schedulable flows instead of cycling through unschedulable
  ones (the naive scan the paper rejects would waste most ticks);
* **fairness** — active flows get equal service;
* plus a raw performance number: simulated scheduler events per second
  of host time (this is the one bench where the *simulator's* speed is
  the quantity of interest).
"""

from conftest import print_header, print_table, run_once

from repro.cc.base import CCMode
from repro.fpga.flow import FlowState
from repro.fpga.scheduler import PortScheduler, RESCHEDULE_LOOP_CYCLES
from repro.fpga.clock import cycles_to_ps
from repro.sim import Simulator
from repro.units import MS, US, serialization_time_ps, RATE_100G

TX_INTERVAL = serialization_time_ps(1024, RATE_100G)
N_FLOWS = 10_000
N_SCHEDULABLE = 16


def build_and_run(duration_ps):
    sim = Simulator()
    emitted = {}

    def emit(flow, psn, is_rtx):
        emitted[flow.flow_id] = emitted.get(flow.flow_id, 0) + 1

    scheduler = PortScheduler(sim, 0, TX_INTERVAL, CCMode.WINDOW, emit)
    flows = []
    for i in range(N_FLOWS):
        # Only the first N_SCHEDULABLE flows have an open window.
        cwnd = 1e9 if i < N_SCHEDULABLE else 1.0
        flow = FlowState(
            flow_id=i,
            port_index=0,
            src_addr=1,
            dst_addr=2,
            size_packets=10**9,
            frame_bytes=1024,
            cwnd_or_rate=cwnd,
        )
        if i >= N_SCHEDULABLE:
            flow.nxt = flow.una + 1  # window full: not schedulable
        flows.append(flow)
        scheduler.enqueue_flow(flow)
    sim.run(until_ps=duration_ps)
    return scheduler, emitted


def test_scheduling_loop(benchmark):
    duration = 2 * MS
    scheduler, emitted = run_once(benchmark, lambda: build_and_run(duration))

    ticks = scheduler.ticks
    productive = sum(emitted.values())
    max_depth = scheduler.sched_fifo.stats.max_depth
    print_header(
        "Section 5.2: rescheduling-loop scheduling",
        f"{N_FLOWS} flows enqueued, {N_SCHEDULABLE} schedulable, "
        f"{duration / MS:.0f} ms at 11.97 Mpps service rate",
    )
    counts = [emitted.get(i, 0) for i in range(N_SCHEDULABLE)]
    print_table(
        [
            {"metric": "service ticks", "value": ticks},
            {"metric": "SCHE emitted (productive ticks)", "value": productive},
            {
                "metric": "wasted-tick fraction",
                "value": f"{1 - productive / ticks:.4f}",
            },
            {"metric": "scheduling FIFO max depth", "value": max_depth},
            {
                "metric": "per-flow SCHE (min/max over schedulable)",
                "value": f"{min(counts)}/{max(counts)}",
            },
            {
                "metric": "reschedule loop latency vs TX period",
                "value": (
                    f"{cycles_to_ps(RESCHEDULE_LOOP_CYCLES)} ps << {TX_INTERVAL} ps"
                ),
            },
        ],
        ["metric", "value"],
    )

    # Uniqueness bounds the FIFO by the flow count.
    assert max_depth <= N_FLOWS
    # Unschedulable flows are descheduled after ONE look each; thereafter
    # every tick serves a schedulable flow.  Wasted ticks are therefore
    # at most the initial (N_FLOWS - N_SCHEDULABLE) scan, a one-time cost
    # — not a recurring one as in the naive cyclic scan.
    assert ticks - productive <= (N_FLOWS - N_SCHEDULABLE) + 1
    # Fairness across schedulable flows.
    assert max(counts) - min(counts) <= 1
    # The rescheduling loop fits comfortably within a TX period.
    assert cycles_to_ps(RESCHEDULE_LOOP_CYCLES) < TX_INTERVAL


def test_scheduler_event_rate(benchmark):
    """Raw simulator performance: scheduler events per host second."""

    def run():
        return build_and_run(1 * MS)

    scheduler, emitted = benchmark(run)
    assert scheduler.ticks > 0
