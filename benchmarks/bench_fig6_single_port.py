"""Figure 6: single-port multi-flow scheduling.

Multiple DCTCP flows leave one test port toward one receiver port
through a pass-through fabric: the scheduling FIFO must share the port
evenly (flat, equal per-flow rate lines summing to ~100 Gbps).  The
paper runs 180 s on hardware; the simulation runs a few milliseconds —
fairness of the rescheduling loop is established within one RTT.
"""

from conftest import print_header, print_table, run_once

from repro import ControlPlane, TestConfig
from repro.measure.fairness import jain_index
from repro.units import GBPS, MS, US, format_rate

N_FLOWS = 6
DURATION = 4 * MS
SAMPLE = 250 * US


def run():
    cp = ControlPlane()
    tester = cp.deploy(
        TestConfig(
            cc_algorithm="dctcp",
            n_test_ports=2,
            flows_per_port=N_FLOWS,
            cc_params={"initial_ssthresh": 512.0},
        )
    )
    cp.wire_loopback_fabric()
    sampler = tester.enable_rate_sampling(period_ps=SAMPLE)
    cp.start_flows(size_packets=10**9, pattern="pairs")
    cp.run(duration_ps=DURATION)
    return tester, sampler


def test_fig6_single_port_scheduling(benchmark):
    tester, sampler = run_once(benchmark, run)

    # Steady-state: the second half of the samples.
    steady = sampler.samples[len(sampler.samples) // 2 :]
    flows = sorted(
        name for name in steady[-1].rates_bps if name.startswith("flow")
    )
    rows = []
    for name in flows:
        rates = [sample.rates_bps[name] for sample in steady]
        rows.append(
            {
                "flow": name,
                "mean rate": format_rate(sum(rates) / len(rates)),
                "min": format_rate(min(rates)),
                "max": format_rate(max(rates)),
            }
        )
    print_header(
        "Figure 6: single-port multi-flow scheduling",
        f"{N_FLOWS} DCTCP flows on one 100 G port, {DURATION / MS:.0f} ms "
        f"(paper: 180 s)",
    )
    print_table(rows, ["flow", "mean rate", "min", "max"])

    last = steady[-1].rates_bps
    flow_rates = [rate for name, rate in last.items() if name.startswith("flow")]
    total = sum(flow_rates)
    fairness = jain_index(flow_rates)
    print(f"\ntotal throughput: {format_rate(total)} (paper: ~100 Gbps)")
    print(f"Jain fairness   : {fairness:.4f} (1.0 = perfectly even)")

    assert len(flow_rates) == N_FLOWS
    assert fairness > 0.98
    assert total >= 0.9 * 100 * GBPS
