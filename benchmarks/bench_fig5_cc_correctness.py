"""Figure 5: CC module correctness — cwnd and alpha vs the reference.

One DCTCP flow with deterministic injected drops (points A and C) and an
ECN-marking episode (point B), traced through Marlin's fine-grained
logging and compared with the independent ns3-style reference simulator.
Prints both trajectories' landmarks and the deviation metrics.
"""

import numpy as np
from conftest import print_header, print_table, run_once

from repro import ControlPlane, TestConfig
from repro.reference.ns3_dctcp import run_reference_dctcp
from repro.units import MS, US, microseconds

TOTAL_PACKETS = 4000
POINT_A = 1200
POINT_C = 2800
MARK_B = frozenset(range(2000, 2020))
DROPS = frozenset({POINT_A, POINT_C})


def run_marlin():
    cp = ControlPlane()
    tester = cp.deploy(
        TestConfig(
            cc_algorithm="dctcp",
            n_test_ports=2,
            trace_cc=True,
            cc_params={"initial_ssthresh": 64.0, "initial_cwnd": 1.0},
        )
    )
    cp.wire_loopback_fabric()
    dropped = set()

    def packet_filter(packet, port):
        if packet.ptype == "DATA":
            if (
                packet.psn in DROPS
                and packet.psn not in dropped
                and not packet.meta.get("is_rtx")
            ):
                dropped.add(packet.psn)
                return False
            if packet.psn in MARK_B:
                packet.mark_ce()
        return True

    cp.fabric.packet_filter = packet_filter
    flow = tester.start_flow(port_index=0, dst_port_index=1, size_packets=TOTAL_PACKETS)
    cp.run(duration_ps=20 * MS)
    cwnd = tester.nic.logger.series(f"flow{flow.flow_id}", "cwnd_or_rate")
    alpha = tester.nic.logger.series(f"flow{flow.flow_id}.slow", "alpha")
    return flow, cwnd, alpha


def test_fig5_cc_correctness(benchmark):
    def experiment():
        flow, (mt, mc), (at, av) = run_marlin()
        reference = run_reference_dctcp(
            total_packets=TOTAL_PACKETS,
            drop_psns=DROPS,
            mark_psns=MARK_B,
            rtt_ps=6 * US,
        )
        return flow, mt, mc, at, av, reference

    flow, mt, mc, at, av, ref = run_once(benchmark, experiment)

    print_header(
        "Figure 5: DCTCP cwnd/alpha, Marlin vs reference ('ns3')",
        f"{TOTAL_PACKETS} packets; drops at PSN {POINT_A} (A) and {POINT_C} (C); "
        f"ECN marks at PSN 2000-2019 (B)",
    )
    print_table(
        [
            {
                "metric": "flow completion time (us)",
                "Marlin": round(microseconds(flow.fct_ps), 1),
                "reference": round(microseconds(ref.finish_ps), 1),
            },
            {
                "metric": "retransmissions",
                "Marlin": flow.rtx_sent,
                "reference": ref.retransmissions,
            },
            {
                "metric": "peak cwnd (packets)",
                "Marlin": round(max(mc), 1),
                "reference": round(max(ref.cwnd_values), 1),
            },
            {
                "metric": "slow-start exit cwnd",
                "Marlin": round(max(mc[:200]), 1),
                "reference": round(max(ref.cwnd_values[:200]), 1),
            },
            {
                "metric": "final alpha",
                "Marlin": round(av[-1], 4),
                "reference": round(ref.alpha_values[-1], 4),
            },
            {
                "metric": "peak alpha after B",
                "Marlin": round(max(av[len(av) // 3 :]), 4),
                "reference": round(max(ref.alpha_values[len(ref.alpha_values) // 3 :]), 4),
            },
        ],
        ["metric", "Marlin", "reference"],
    )

    # Trajectory deviation on normalized time.
    m_norm = np.asarray(mt, dtype=float) / mt[-1]
    r_norm = np.asarray(ref.cwnd_times_ps, dtype=float) / ref.cwnd_times_ps[-1]
    grid = np.linspace(0.02, 0.98, 200)
    marlin_i = np.interp(grid, m_norm, mc)
    ref_i = np.interp(grid, r_norm, ref.cwnd_values)
    deviation = float(np.mean(np.abs(marlin_i - ref_i) / np.maximum(ref_i, 1.0)))
    print(f"\nmean cwnd trajectory deviation (normalized time): {deviation:.3f}")

    assert flow.finished and ref.completed
    assert flow.rtx_sent == ref.retransmissions == 2
    assert deviation < 0.15
    assert abs(av[-1] - ref.alpha_values[-1]) < 0.01
