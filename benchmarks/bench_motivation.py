"""Motivation: why CC testing needs CC-aware traffic (paper Section 1).

Programmable-switch testers of the Norma/HyperTester/IMap class generate
configurable traffic at Tbps rates but cannot run congestion control —
they keep blasting through congestion.  This bench drives the same
fan-in bottleneck twice:

* three fixed-rate 100 Gbps streams from a CC-less switch tester, and
* three DCTCP flows from the Marlin tester,

and compares loss, delivered goodput, and queue occupancy.  The CC-less
tester drowns the bottleneck (it measures loss but cannot react); the
CC tester converges to the bottleneck rate with zero loss — the
behaviour an operator actually needs to evaluate CC configurations.
"""

from conftest import print_header, print_table, run_once

from repro import ControlPlane, TestConfig
from repro.baselines.pswitch_tester import PswitchTester
from repro.net.switch import NetworkSwitch
from repro.net.topology import Topology
from repro.sim import Simulator
from repro.units import GBPS, MS, format_rate

N_SENDERS = 3
DURATION = 4 * MS
QUEUE_CAPACITY = 2**22  # 4 MB, as the Marlin runs use


def run_ccless():
    sim = Simulator()
    topo = Topology(sim)
    fabric = NetworkSwitch(sim, "fabric")
    topo.add_device(fabric)
    tester = PswitchTester(sim, N_SENDERS + 1)
    for index, port in enumerate(tester.ports):
        fabric_port = fabric.add_ecn_port(capacity_bytes=QUEUE_CAPACITY)
        topo.connect(port, fabric_port)
        fabric.set_route(index + 1, fabric_port)
    for src in range(N_SENDERS):
        tester.add_stream(
            src,
            src_addr=src + 1,
            dst_addr=N_SENDERS + 1,
            rate_bps=100 * GBPS,  # "configure the rate": full line rate
        )
    tester.start_all()
    sim.run(until_ps=DURATION)
    bottleneck = fabric.ports[N_SENDERS]
    sent = tester.total_sent
    delivered = tester.data_received
    return {
        "tester": "pswitch (CC-less, Norma-class)",
        "offered": format_rate(sent * 1024 * 8 / (DURATION / 1e12)),
        "delivered": format_rate(delivered * 1024 * 8 / (DURATION / 1e12)),
        "lost pkts": bottleneck.queue.stats.dropped_packets,
        "loss %": round(100 * bottleneck.queue.stats.dropped_packets / max(sent, 1), 1),
        "peak queue (kB)": bottleneck.queue.stats.max_backlog_bytes // 1000,
    }


def run_marlin():
    cp = ControlPlane()
    tester = cp.deploy(
        TestConfig(
            cc_algorithm="dctcp",
            n_test_ports=N_SENDERS + 1,
            cc_params={"initial_ssthresh": 1024.0},
        )
    )
    cp.wire_loopback_fabric(queue_capacity_bytes=QUEUE_CAPACITY)
    cp.start_flows(size_packets=10**9, pattern="fan_in")
    cp.run(duration_ps=DURATION)
    counters = cp.read_measurements()
    assert cp.fabric is not None
    bottleneck = cp.fabric.ports[N_SENDERS]
    sent = counters["switch.data_generated"]
    delivered = counters["switch.acks_generated"]
    return {
        "tester": "Marlin (DCTCP)",
        "offered": format_rate(sent * 1024 * 8 / (DURATION / 1e12)),
        "delivered": format_rate(delivered * 1024 * 8 / (DURATION / 1e12)),
        "lost pkts": bottleneck.queue.stats.dropped_packets,
        "loss %": round(100 * bottleneck.queue.stats.dropped_packets / max(sent, 1), 1),
        "peak queue (kB)": bottleneck.queue.stats.max_backlog_bytes // 1000,
    }


def test_motivation_ccless_vs_cc(benchmark):
    ccless, marlin = run_once(benchmark, lambda: (run_ccless(), run_marlin()))
    print_header(
        "Motivation (Section 1 / Table 1 R1): CC-less vs CC-aware testing",
        f"{N_SENDERS} x 100 G senders into one 100 G port, {DURATION / MS:.0f} ms",
    )
    print_table(
        [ccless, marlin],
        ["tester", "offered", "delivered", "lost pkts", "loss %", "peak queue (kB)"],
    )

    # The CC-less tester overdrives the bottleneck 3:1 and suffers heavy
    # sustained loss; the CC tester converges to ~100 G with zero loss.
    assert ccless["lost pkts"] > 10_000
    assert marlin["lost pkts"] == 0
    assert ccless["peak queue (kB)"] >= QUEUE_CAPACITY // 1000 - 10
