"""Section 5.3 ablation: packet-frequency control on and off.

Three demonstrations:

1. **Ingress (Challenge 3)** — a burst of same-flow INFO packets at the
   64 B line rate is replayed into the FPGA twice: with RX timers
   (no RMW conflicts) and bypassing them (conflicts corrupt CC state);
2. **Egress (Challenge 1)** — SCHE packets are pushed at the 64 B line
   rate into one switch port's register queue, overflowing it ("false
   packet losses"), then replayed paced at the per-port DATA rate
   (zero losses);
3. the **static analysis** table: RMW cycle budgets per MTU and the
   per-algorithm safety verdicts, including Cubic's required PPS
   reduction (Section 8).
"""

from conftest import print_header, print_table, run_once

import repro.cc as cc
from repro import ControlPlane, TestConfig
from repro.fpga.hls import algorithm_cycles
from repro.fpga.timers import FrequencyControl
from repro.pswitch.module_c import DataGenerator
from repro.pswitch.packets import make_ack, make_data, make_info, make_sche
from repro.net.device import Device
from repro.sim import Simulator
from repro.units import MS, US, serialization_time_ps, RATE_100G


def _ack_burst(cp, tester, n=32):
    from repro.units import serialization_time_ps

    flow = tester.start_flow(port_index=0, dst_port_index=1, size_packets=10**6)
    cp.run(duration_ps=100 * US)
    spacing = serialization_time_ps(64, tester.config.port_rate_bps)
    for i in range(n):
        data = make_data(
            flow.flow_id, i, src_addr=1, dst_addr=2, frame_bytes=1024, tx_tstamp_ps=0
        )
        info = make_info(make_ack(data, i + 1), 0)
        cp.sim.at(cp.sim.now + i * spacing, tester.nic.receive, info, tester.nic.port)
    cp.run(duration_ps=200 * US)
    return tester.nic.bram.conflicts


def ingress_ablation(disable_rx_timer):
    cp = ControlPlane()
    tester = cp.deploy(
        TestConfig(
            cc_algorithm="dctcp", n_test_ports=2, disable_rx_timer=disable_rx_timer
        )
    )
    cp.wire_loopback_fabric()
    return _ack_burst(cp, tester)


class _Null(Device):
    def receive(self, packet, port):
        pass


def egress_ablation(paced):
    """Feed 200 SCHE into one port's register queue at the 64 B line rate
    (unpaced) or at the DATA rate (paced); count false packet losses."""
    sim = Simulator()
    source = _Null(sim, "gen-host")
    port = source.add_port(rate_bps=RATE_100G)
    sink = _Null(sim, "sink")
    from repro.net.link import Link

    Link(port, sink.add_port(), delay_ps=0)
    generator = DataGenerator(sim, [port], template_bytes=1024, queue_capacity=128)
    interval = serialization_time_ps(1024 if paced else 64, RATE_100G)
    for i in range(200):
        sche = make_sche(1, i, 0, src_addr=1, dst_addr=2, frame_bytes=1024)
        sim.at(i * interval, generator.on_sche, sche)
    sim.run()
    return generator.sche_dropped


def test_frequency_control_ingress(benchmark):
    with_timer, without_timer = run_once(
        benchmark, lambda: (ingress_ablation(False), ingress_ablation(True))
    )
    print_header(
        "Section 5.3 ablation (ingress): RX timers vs RMW conflicts",
        "32 same-flow INFO packets at 148.8 Mpps into the DCTCP module "
        "(24-cycle RMW)",
    )
    print_table(
        [
            {"configuration": "RX timer at 11.97 Mpps (paper)", "RMW conflicts": with_timer},
            {"configuration": "RX timer bypassed (ablation)", "RMW conflicts": without_timer},
        ],
        ["configuration", "RMW conflicts"],
    )
    assert with_timer == 0
    assert without_timer > 0


def test_frequency_control_egress(benchmark):
    paced, unpaced = run_once(
        benchmark, lambda: (egress_ablation(True), egress_ablation(False))
    )
    print_header(
        "Section 5.3 ablation (egress): TX pacing vs register-queue overflow",
        "200 SCHE into a 128-entry register queue",
    )
    print_table(
        [
            {
                "configuration": "SCHE paced at 11.97 Mpps (paper)",
                "false packet losses": paced,
            },
            {
                "configuration": "SCHE at 148.8 Mpps (ablation)",
                "false packet losses": unpaced,
            },
        ],
        ["configuration", "false packet losses"],
    )
    assert paced == 0
    assert unpaced > 0


def test_frequency_control_analysis(benchmark):
    def analyze():
        rows = []
        for mtu in (1024, 1518):
            control = FrequencyControl(mtu, 12)
            for name in ("reno", "dctcp", "dcqcn", "cubic", "timely"):
                cycles = algorithm_cycles(cc.create(name))
                problems = control.validate(cycles)
                rows.append(
                    {
                        "MTU": mtu,
                        "algorithm": name,
                        "cycles": cycles,
                        "budget": control.max_rmw_cycles,
                        "safe": "yes" if not problems else "no",
                        "pps reduction": control.pps_reduction_factor(cycles),
                    }
                )
        return rows

    rows = run_once(benchmark, analyze)
    print_header(
        "Section 5.3 / Section 8: RMW cycle budgets per algorithm and MTU"
    )
    print_table(rows, ["MTU", "algorithm", "cycles", "budget", "safe", "pps reduction"])

    by_key = {(row["MTU"], row["algorithm"]): row for row in rows}
    assert by_key[(1518, "dctcp")]["budget"] == 40  # paper's 40-cycle bound
    assert by_key[(1024, "dctcp")]["budget"] == 27  # paper's 27-cycle note
    assert by_key[(1024, "dctcp")]["safe"] == "yes"
    assert by_key[(1518, "cubic")]["safe"] == "no"  # Section 8
    assert by_key[(1518, "cubic")]["pps reduction"] >= 2
