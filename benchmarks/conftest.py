"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure from the paper's evaluation
(see DESIGN.md section 4).  Hardware-scale runs are reproduced at scaled
duration/port counts — rates, RTTs, and BDP relationships are preserved —
and each bench prints its scale factors alongside its results so the
output is comparable to the paper's figures.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import pytest


def print_header(title: str, scale_note: str = "") -> None:
    print()
    print("=" * 72)
    print(title)
    if scale_note:
        print(f"[scale] {scale_note}")
    print("=" * 72)


def print_table(rows: Sequence[dict], columns: Sequence[str]) -> None:
    widths = {
        col: max(len(col), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns))


def check_mark(flag: bool) -> str:
    return "yes" if flag else "no"


def cdf_summary(name: str, fcts_us: np.ndarray) -> dict:
    return {
        "series": name,
        "flows": len(fcts_us),
        "p10_us": round(float(np.percentile(fcts_us, 10)), 1),
        "p50_us": round(float(np.percentile(fcts_us, 50)), 1),
        "p90_us": round(float(np.percentile(fcts_us, 90)), 1),
        "p99_us": round(float(np.percentile(fcts_us, 99)), 1),
        "max_us": round(float(np.max(fcts_us)), 1),
    }


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
