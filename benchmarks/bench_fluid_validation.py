"""Fluid-model validation: flow-level vs packet-level, side by side.

The Figure 10 bench relies on the fluid model where packet-level
simulation is infeasible.  This bench earns that trust where both are
feasible: identical closed-loop fixed-size workloads run through the
full packet-level tester and through the fluid model, at two flow
populations, for DCQCN and DCTCP; mean FCTs must agree within 2x
(same regime/order — the fluid model abstracts queueing transients).
"""

from conftest import print_header, print_table, run_once

import numpy as np

from repro import ControlPlane, TestConfig
from repro.fluid import FluidSimulator, dcqcn_profile, dctcp_profile
from repro.units import MICROSECOND, MS
from repro.workload import ClosedLoopGenerator, FixedSize, FlowSlot

CASES = [
    # (algorithm, flows sharing one port, flow size bytes)
    ("dcqcn", 4, 2_000 * 1024),
    ("dcqcn", 8, 1_000 * 1024),
    ("dctcp", 4, 2_000 * 1024),
]


def packet_level(alg, n_flows, size_bytes):
    params = {"initial_ssthresh": 512.0} if alg == "dctcp" else {}
    cp = ControlPlane()
    tester = cp.deploy(
        TestConfig(cc_algorithm=alg, n_test_ports=2, cc_params=params)
    )
    cp.wire_loopback_fabric()
    generator = ClosedLoopGenerator(
        tester,
        FixedSize(size_bytes),
        [FlowSlot(0, 1) for _ in range(n_flows)],
        rng=np.random.default_rng(0),
        stop_after_flows=3 * n_flows,
    )
    generator.start()
    cp.run(duration_ps=120 * MS)
    return float(np.mean(tester.fct.fcts_us()))


def fluid_level(alg, n_flows, size_bytes):
    profile = (
        dcqcn_profile(jitter_sigma=0.0)
        if alg == "dcqcn"
        else dctcp_profile(jitter_sigma=0.0)
    )
    fluid = FluidSimulator(n_ports=1, flows_per_port=n_flows, seed=0)
    return fluid.flow_fct_ps(size_bytes, profile) / MICROSECOND


def test_fluid_vs_packet_validation(benchmark):
    def run():
        rows = []
        for alg, n_flows, size_bytes in CASES:
            packet_us = packet_level(alg, n_flows, size_bytes)
            fluid_us = fluid_level(alg, n_flows, size_bytes)
            rows.append(
                {
                    "case": f"{alg}, {n_flows} flows, {size_bytes // 1024} kB",
                    "packet-level (us)": round(packet_us, 1),
                    "fluid (us)": round(fluid_us, 1),
                    "ratio": round(fluid_us / packet_us, 2),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print_header(
        "Fluid-model validation (backs the Figure 10 methodology)",
        "closed-loop fixed-size flows over one 100 G port, mean FCT",
    )
    print_table(rows, ["case", "packet-level (us)", "fluid (us)", "ratio"])
    for row in rows:
        assert 0.5 <= row["ratio"] <= 2.0, row
