"""Figure 8: multi-flow performance under congestion.

Flows start sequentially on different ports, all routed to the same
destination port, then terminate sequentially: DCTCP and DCQCN must
converge to an even share of the 100 Gbps bottleneck after each arrival
and re-absorb bandwidth after each departure.  DCTCP is expected to show
more throughput oscillation than DCQCN (the paper's observation).

The paper staggers 12 flows over 180 s; the simulation staggers 3 flows
over milliseconds — thousands of RTTs between events, enough for
convergence at each step.
"""

import numpy as np
from conftest import print_header, print_table, run_once

from repro import ControlPlane, TestConfig
from repro.measure.fairness import jain_index
from repro.units import GBPS, MS, US, format_rate

N_SENDERS = 3
STAGGER = 3 * MS
SAMPLE = 250 * US


def run(alg):
    params = {"initial_ssthresh": 1024.0} if alg == "dctcp" else {}
    cp = ControlPlane()
    tester = cp.deploy(
        TestConfig(cc_algorithm=alg, n_test_ports=N_SENDERS + 1, cc_params=params)
    )
    cp.wire_loopback_fabric()
    sampler = tester.enable_rate_sampling(period_ps=SAMPLE)
    flows = []
    for i in range(N_SENDERS):
        flow = tester.start_flow(
            port_index=i,
            dst_port_index=N_SENDERS,
            size_packets=10**9,  # long-lived; terminated explicitly
            start_at_ps=i * STAGGER,
        )
        flows.append(flow)
        # Terminations in arrival order, after all arrivals are done.
        cp.sim.at((N_SENDERS + i) * STAGGER, tester.stop_flow, flow.flow_id)
    cp.run(duration_ps=2 * N_SENDERS * STAGGER)
    return tester, sampler, flows


def phase_rates(sampler, phase_index):
    """Mean per-flow rates over the last third of phase ``phase_index``
    (phases are STAGGER-long windows between arrival/departure events)."""
    lo = phase_index * STAGGER + 2 * STAGGER // 3
    hi = (phase_index + 1) * STAGGER
    window = [s for s in sampler.samples if lo <= s.time_ps <= hi]
    rates: dict[str, list[float]] = {}
    for sample in window:
        for name, rate in sample.rates_bps.items():
            if name.startswith("flow"):
                rates.setdefault(name, []).append(rate)
    means = {
        name: float(np.mean(series))
        for name, series in rates.items()
        if np.mean(series) > 1 * GBPS
    }
    return means


def summarize(alg, sampler):
    rows = []
    phases = []
    labels = (
        [f"{k + 1} active (arriving)" for k in range(N_SENDERS)]
        + [f"{N_SENDERS - k - 1} active (departing)" for k in range(N_SENDERS)]
    )
    for index, label in enumerate(labels):
        means = phase_rates(sampler, index)
        values = sorted(means.values(), reverse=True)
        rows.append(
            {
                "phase": label,
                "per-flow": " ".join(format_rate(v) for v in values) or "-",
                "total": format_rate(sum(values)),
                "jain": round(jain_index(values), 3) if values else "-",
            }
        )
        phases.append((label, values))
    print_header(
        f"Figure 8 ({alg.upper()}): staggered flows over a shared bottleneck",
        f"{N_SENDERS} senders -> 1 port, events every {STAGGER / MS:.0f} ms "
        f"(paper: 12 flows over 180 s)",
    )
    print_table(rows, ["phase", "per-flow", "total", "jain"])
    return phases


def oscillation(sampler, flow_name="flow1"):
    """Coefficient of variation of one flow's steady-phase rate."""
    lo, hi = STAGGER * (N_SENDERS - 1), STAGGER * N_SENDERS
    series = [
        s.rates_bps.get(flow_name, 0.0)
        for s in sampler.samples
        if lo <= s.time_ps <= hi
    ]
    series = [v for v in series if v > 0]
    return float(np.std(series) / np.mean(series)) if series else 0.0


def check_phases(phases, min_jain):
    expected_active = list(range(1, N_SENDERS + 1)) + list(
        range(N_SENDERS - 1, -1, -1)
    )
    for (label, values), expected in zip(phases, expected_active):
        assert len(values) == expected, f"{label}: {len(values)} != {expected}"
        if expected >= 1:
            assert sum(values) >= 0.75 * 100 * GBPS, f"{label}: underutilized"
        if expected >= 2:
            assert jain_index(values) > min_jain, f"{label}: unfair {values}"


def test_fig8_congestion_dctcp(benchmark):
    tester, sampler, flows = run_once(benchmark, lambda: run("dctcp"))
    phases = summarize("dctcp", sampler)
    cv = oscillation(sampler)
    print(f"\nDCTCP steady-phase rate oscillation (CV): {cv:.3f}")
    check_phases(phases, min_jain=0.80)


def test_fig8_congestion_dcqcn(benchmark):
    tester, sampler, flows = run_once(benchmark, lambda: run("dcqcn"))
    phases = summarize("dcqcn", sampler)
    cv = oscillation(sampler)
    print(f"\nDCQCN steady-phase rate oscillation (CV): {cv:.3f}")
    check_phases(phases, min_jain=0.95)
