"""Extension benches beyond the paper's tables and figures.

1. **Multi-pipeline scaling** (Sections 4.3/6): throughput vs pipeline
   count, plus a live two-pipeline run — the paper's 2-pipeline switch
   with both Alveo ports driven reaches 2.4 Tbps at MTU 1024.
2. **Receiver-logic placement** (Figure 2's dashed path): switch-side vs
   FPGA-side receiver logic — identical CC behaviour, one extra port,
   slightly longer feedback loop.
3. **INT/HPCC end-to-end**: the R2 story — an INT-based algorithm
   running unmodified on the tester, with the Section 8 per-flow PPS
   cap keeping its 59-cycle fast path conflict-free.
"""

from conftest import print_header, print_table, run_once

from repro import ControlPlane, TestConfig
from repro.core.multi_pipeline import MultiPipelineTester, scaling_table
from repro.measure.fairness import jain_index
from repro.sim import Simulator
from repro.units import GBPS, MS, TBPS, US, format_rate


def test_multi_pipeline_scaling(benchmark):
    def run():
        rows = scaling_table(1024, 4)
        # Live 2-pipeline run at reduced port count for simulation speed.
        sim = Simulator()
        tester = MultiPipelineTester(
            sim, TestConfig(cc_algorithm="dcqcn", n_test_ports=2), n_pipelines=2
        )
        tester.wire_fabrics()
        for p in range(2):
            tester.start_flow(
                pipeline=p, port_index=0, dst_port_index=1, size_packets=10**9
            )
        duration = 500 * US
        sim.run(until_ps=duration)
        counters = tester.read_counters()
        rate = counters["switch.data_generated"] * 1024 * 8 / (duration / 1e12)
        return rows, rate

    rows, live_rate = run_once(benchmark, run)
    print_header(
        "Extension: multi-pipeline scaling (Sections 4.3/6)",
        "one 100 G FPGA port per pipeline; one Alveo card drives two",
    )
    print_table(
        [
            {
                "pipelines": row.pipelines,
                "FPGA cards": row.fpga_cards,
                "test ports": row.test_ports,
                "throughput": format_rate(row.throughput_bps),
            }
            for row in rows
        ],
        ["pipelines", "FPGA cards", "test ports", "throughput"],
    )
    print(f"\nlive 2-pipeline run (2 ports each): {format_rate(live_rate)} "
          "(2 x ~100 G port pairs)")
    assert rows[1].throughput_bps == 2.4 * TBPS
    assert live_rate >= 0.9 * 2 * 100 * GBPS


def test_receiver_logic_placement(benchmark):
    def run():
        results = {}
        for placement, on_fpga in (("switch (Module A)", False),
                                   ("FPGA (dashed path)", True)):
            cp = ControlPlane()
            tester = cp.deploy(
                TestConfig(
                    cc_algorithm="dctcp",
                    n_test_ports=2,
                    receiver_logic_on_fpga=on_fpga,
                    cc_params={"initial_ssthresh": 512.0},
                )
            )
            cp.wire_loopback_fabric()
            cp.start_flows(size_packets=5000, pattern="pairs")
            cp.run(duration_ps=5 * MS)
            record = tester.fct.records[0]
            results[placement] = {
                "placement": placement,
                "ports used": tester.switch.allocation.total_ports,
                "FCT (us)": round(record.fct_ps / 1e6, 1),
                "goodput": format_rate(
                    record.size_bytes * 8 / (record.fct_ps / 1e12)
                ),
            }
        return results

    results = run_once(benchmark, run)
    print_header(
        "Extension: receiver-logic placement (Figure 2 dashed path)",
        "5,000-packet DCTCP flow; FPGA placement costs one port + hops",
    )
    print_table(list(results.values()), ["placement", "ports used", "FCT (us)", "goodput"])
    on_switch = results["switch (Module A)"]
    on_fpga = results["FPGA (dashed path)"]
    assert on_fpga["ports used"] == on_switch["ports used"] + 1
    assert on_fpga["FCT (us)"] > on_switch["FCT (us)"]  # extra hops
    assert on_fpga["FCT (us)"] < on_switch["FCT (us)"] * 1.1


def test_int_hpcc_end_to_end(benchmark):
    def run():
        cp = ControlPlane()
        tester = cp.deploy(
            TestConfig(
                cc_algorithm="hpcc",
                n_test_ports=4,
                int_enabled=True,
                flows_per_port=3,
                cc_params={"initial_window": 8.0},
            )
        )
        cp.wire_loopback_fabric()
        sampler = tester.enable_rate_sampling(period_ps=500 * US)
        cp.start_flows(size_packets=10**9, pattern="fan_in")
        cp.run(duration_ps=6 * MS)
        rates = [
            r for n, r in sampler.samples[-1].rates_bps.items()
            if n.startswith("flow")
        ]
        assert cp.fabric is not None
        queue = cp.fabric.ports[3].queue
        return tester, rates, queue

    tester, rates, queue = run_once(benchmark, run)
    print_header(
        "Extension: INT-based CC (HPCC) on the tester",
        "9 flows -> one port; 59-cycle fast path under the 3x PPS cap",
    )
    print_table(
        [
            {"metric": "per-flow PPS reduction", "value": tester.nic.per_flow_pps_reduction},
            {"metric": "bottleneck throughput", "value": format_rate(sum(rates))},
            {"metric": "Jain fairness", "value": round(jain_index(rates), 3)},
            {"metric": "RMW conflicts", "value": tester.nic.bram.conflicts},
            {"metric": "RMW stalls absorbed", "value": tester.nic.rmw_stalls},
            {"metric": "peak bottleneck queue (kB)", "value": queue.stats.max_backlog_bytes // 1000},
        ],
        ["metric", "value"],
    )
    assert tester.nic.bram.conflicts == 0
    assert jain_index(rates) > 0.95
    assert sum(rates) >= 0.85 * 100 * GBPS
    assert queue.stats.max_backlog_bytes < 84_000  # HPCC keeps queues short
