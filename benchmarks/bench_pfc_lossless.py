"""PFC extension bench: lossless incast and the ECN-before-PAUSE story.

DCQCN's deployment pairs it with PFC: PAUSE frames guarantee
losslessness, and DCQCN's job is to keep PAUSE from firing (with its
head-of-line-blocking side effects).  Three configurations of the same
3-to-1 DCQCN incast over small-buffer switches:

1. no PFC                    -> buffer overruns drop packets;
2. PFC, aggressive ECN       -> lossless AND PAUSE almost never fires;
3. PFC, ECN above XOFF       -> lossless but PAUSE storms (HOL risk).
"""

from conftest import print_header, print_table, run_once

from repro import ControlPlane, TestConfig
from repro.net.pfc import enable_pfc
from repro.units import GBPS, MS, format_rate

CAPACITY = 128 * 1024
XOFF, XON = 40_000, 20_000
DURATION = 15 * MS


def run_case(name, *, pfc, ecn_threshold):
    cp = ControlPlane()
    tester = cp.deploy(TestConfig(cc_algorithm="dcqcn", n_test_ports=4))
    cp.wire_loopback_fabric(
        queue_capacity_bytes=CAPACITY, ecn_threshold_bytes=ecn_threshold
    )
    assert cp.fabric is not None
    controller = enable_pfc(cp.fabric, xoff_bytes=XOFF, xon_bytes=XON) if pfc else None
    cp.start_flows(size_packets=3000, pattern="fan_in")
    cp.run(duration_ps=DURATION)
    counters = cp.read_measurements()
    drops = sum(p.queue.stats.dropped_packets for p in cp.fabric.ports)
    return {
        "configuration": name,
        "network drops": drops,
        "PAUSE frames": controller.pause_frames_sent if controller else "-",
        "flows done": counters["fpga.flows_completed"],
        "goodput": format_rate(
            counters["switch.acks_generated"] * 1024 * 8 / (DURATION / 1e12)
        ),
    }


def test_pfc_lossless_incast(benchmark):
    rows = run_once(
        benchmark,
        lambda: [
            run_case("no PFC, ECN K=20kB", pfc=False, ecn_threshold=20_000),
            run_case("PFC + ECN K=20kB (recommended)", pfc=True, ecn_threshold=20_000),
            run_case("PFC + ECN K=100kB (K > XOFF)", pfc=True, ecn_threshold=100_000),
        ],
    )
    print_header(
        "Extension: PFC losslessness vs ECN configuration",
        f"3-to-1 DCQCN incast, {CAPACITY // 1024} kB buffers, "
        f"XOFF/XON {XOFF // 1000}/{XON // 1000} kB, {DURATION / MS:.0f} ms",
    )
    print_table(
        rows,
        ["configuration", "network drops", "PAUSE frames", "flows done", "goodput"],
    )

    no_pfc, recommended, miscfg = rows
    assert no_pfc["network drops"] > 0
    assert recommended["network drops"] == 0
    assert miscfg["network drops"] == 0
    # With ECN below XOFF, DCQCN reacts first: far fewer PAUSE frames
    # than when marking starts only above the PFC threshold.
    assert recommended["PAUSE frames"] < miscfg["PAUSE frames"]
