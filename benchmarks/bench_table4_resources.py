"""Table 4: per-CC-module lines of code, clock cycles, and resources.

Regenerates the paper's implementation-cost table from the op-cost model
(cycles), the per-flow state model (BRAM at 65,536 flows), and the
linear LUT/FF fit, printed side by side with the paper's measured values.
LoC is reported twice: the paper's HLS line counts and our Python module
line counts.
"""

import inspect

from conftest import print_header, print_table, run_once

import repro.cc as cc
from repro.fpga.resources import PAPER_TABLE4, estimate_resources


def python_loc(algorithm_name: str) -> int:
    module = inspect.getmodule(type(cc.create(algorithm_name)))
    source = inspect.getsource(module)
    return sum(1 for line in source.splitlines() if line.strip())


def build_rows():
    rows = []
    for name in ("reno", "dctcp", "dcqcn"):
        algorithm = cc.create(name)
        report = estimate_resources(algorithm)
        paper = PAPER_TABLE4[name]
        rows.append(
            {
                "algorithm": name,
                "LoC (paper HLS)": paper["loc"],
                "LoC (ours, py)": python_loc(name),
                "clk (paper)": paper["cycles"],
                "clk (ours)": report.cycles,
                "CC LUT% (paper/ours)": f"{paper['cc_lut']}/{report.cc_lut_pct:.1f}",
                "CC FF% (paper/ours)": f"{paper['cc_ff']}/{report.cc_ff_pct:.1f}",
                "BRAM% (paper/ours)": f"{paper['bram']}/{report.bram_pct:.1f}",
            }
        )
    return rows


def test_table4_resources(benchmark):
    rows = run_once(benchmark, build_rows)

    print_header(
        "Table 4: CC module implementation cost (paper Table 4)",
        "cycles from the HLS op-cost model; BRAM for 65,536 flows",
    )
    print_table(
        rows,
        [
            "algorithm",
            "LoC (paper HLS)",
            "LoC (ours, py)",
            "clk (paper)",
            "clk (ours)",
            "CC LUT% (paper/ours)",
            "CC FF% (paper/ours)",
            "BRAM% (paper/ours)",
        ],
    )

    by_name = {row["algorithm"]: row for row in rows}
    # Cycle counts reproduce exactly.
    assert by_name["reno"]["clk (ours)"] == 2
    assert by_name["dctcp"]["clk (ours)"] == 24
    assert by_name["dcqcn"]["clk (ours)"] == 6
    # BRAM within 2.5 points of the paper for every algorithm.
    for name in ("reno", "dctcp", "dcqcn"):
        paper_bram, ours_bram = by_name[name]["BRAM% (paper/ours)"].split("/")
        assert abs(float(paper_bram) - float(ours_bram)) <= 2.5

    # Extension algorithms (not in the paper's table): same cost models.
    extra = []
    for name in ("cubic", "timely", "hpcc", "swift"):
        algorithm = cc.create(name)
        report = estimate_resources(algorithm)
        extra.append(
            {
                "algorithm": name,
                "clk (ours)": report.cycles,
                "CC LUT% (ours)": round(report.cc_lut_pct, 1),
                "BRAM% (ours)": round(report.bram_pct, 1),
                "fits 27-cycle budget": "yes" if report.cycles <= 27 else "no",
            }
        )
    print("\nExtension algorithms (beyond the paper's Table 4):")
    print_table(
        extra,
        ["algorithm", "clk (ours)", "CC LUT% (ours)", "BRAM% (ours)",
         "fits 27-cycle budget"],
    )
    by_extra = {row["algorithm"]: row for row in extra}
    assert by_extra["cubic"]["fits 27-cycle budget"] == "no"  # Section 8
    assert by_extra["hpcc"]["fits 27-cycle budget"] == "no"
