"""Sections 3.3 and 4.3: throughput amplification and port allocation.

Two parts:

1. the closed-form arithmetic — 148.8 Mpps of SCHE feeding
   floor(148.8 / data_pps) ports: 1.2 Tbps at MTU 1024, 1.8 Tbps ideal /
   1.3 Tbps pipeline-capped at MTU 1518, crossover at MTU 1072;
2. a measured amplification run — the full simulated tester drives all
   12 test ports at line rate from one 100 Gbps SCHE stream, and the
   aggregate generated DATA rate is read back from the port counters.
"""

from conftest import print_header, print_table, run_once

from repro import ControlPlane, TestConfig
from repro.core import amplification_report
from repro.pswitch.port_allocation import allocate_ports
from repro.units import GBPS, MS, TBPS, US, format_rate


def test_amplification_arithmetic(benchmark):
    reports = run_once(
        benchmark, lambda: [amplification_report(mtu) for mtu in (512, 1024, 1072, 1518)]
    )
    print_header("Section 3.3: throughput amplification arithmetic")
    print_table(
        [
            {
                "MTU": report.mtu_bytes,
                "SCHE Mpps": f"{report.sche_pps / 1e6:.1f}",
                "DATA Mpps/port": f"{report.data_pps_per_port / 1e6:.3f}",
                "factor": report.amplification_factor,
                "ideal": format_rate(report.ideal_rate_bps),
                "one pipeline": format_rate(report.pipeline_rate_bps),
            }
            for report in reports
        ],
        ["MTU", "SCHE Mpps", "DATA Mpps/port", "factor", "ideal", "one pipeline"],
    )
    by_mtu = {report.mtu_bytes: report for report in reports}
    assert by_mtu[1024].pipeline_rate_bps == 1.2 * TBPS
    assert by_mtu[1518].ideal_rate_bps == 1.8 * TBPS
    assert by_mtu[1518].pipeline_rate_bps == 1.3 * TBPS
    assert by_mtu[1072].amplification_factor == 13

    allocation = allocate_ports(1024)
    print(
        f"\nSection 4.3 port allocation @MTU1024: {allocation.test_ports} test + "
        f"{allocation.sche_info_ports} SCHE/INFO + {allocation.enqueue_ports} "
        f"enqueue + {allocation.loopback_ports} loopback ports "
        f"({allocation.total_ports}/16 used)"
    )
    assert allocation.total_ports <= 16


def test_amplification_measured(benchmark):
    """Drive the full 12-port tester and measure the generated rate."""
    duration = 300 * US

    def run():
        cp = ControlPlane()
        tester = cp.deploy(
            TestConfig(cc_algorithm="dcqcn", template_bytes=1024)
        )  # 12 test ports, the Section 4.3 optimum
        cp.wire_loopback_fabric()
        # 6 sender ports -> 6 receiver ports, each pair at line rate, and
        # the reverse pairing too so all 12 ports transmit DATA.
        n = tester.n_test_ports
        for src in range(n):
            tester.start_flow(
                port_index=src,
                dst_port_index=(src + n // 2) % n,
                size_packets=10**9,
            )
        cp.run(duration_ps=duration)
        counters = cp.read_measurements()
        data_bits = counters["switch.data_generated"] * 1024 * 8
        sche_bits = counters["switch.sche_accepted"] * 64 * 8
        return data_bits, sche_bits, counters

    data_bits, sche_bits, counters = run_once(benchmark, run)
    seconds = duration / 1e12
    data_rate = data_bits / seconds
    sche_goodput = sche_bits / seconds
    print_header(
        "Section 3.3 measured: SCHE -> DATA amplification",
        f"full tester simulation, {duration / US:.0f} us at 12 x 100 Gbps",
    )
    print(f"generated DATA rate : {format_rate(data_rate)} (paper: 1.2 Tbps)")
    print(f"SCHE stream payload : {format_rate(sche_goodput)} over one 100 G port")
    print(f"amplification ratio : {data_bits / sche_bits:.1f}x in payload bits")
    print(f"false packet losses : {counters['switch.sche_dropped']}")

    # Within 10% of the 1.2 Tbps headline (ramp effects at this duration).
    assert data_rate >= 0.9 * 1.2e12
    assert counters["switch.sche_dropped"] == 0
