PYTHON ?= python
export PYTHONPATH := src

.PHONY: test compiled bench bench-quick clean

test:
	$(PYTHON) -m pytest -x -q

## Build the optional C run-loop backend (repro.sim._cengine) in place.
## Purely an accelerator: results are bit-identical to the python
## backend, and everything works without it (auto-detection falls back).
compiled:
	$(PYTHON) setup.py build_ext --inplace

## Perf-regression suite: writes BENCH_PR10.json and fails if any guarded
## rate drops more than its tolerance below benchmarks/perf_baseline.json
## (10% for engine/datapath, 20% default; the obs layer also has an
## absolute metrics-on overhead budget).  A loud warning — not a failure —
## is printed when the baseline was recorded on a different machine.
## Builds the compiled backend first (best-effort: the suite measures
## whatever backend `auto` resolves to and stamps it in the report).
bench:
	-$(MAKE) compiled
	$(PYTHON) benchmarks/run_perf_suite.py \
		--output BENCH_PR10.json \
		--baseline benchmarks/perf_baseline.json \
		--check

## Quarter-size workloads for a fast smoke signal (same regression check).
bench-quick:
	-$(MAKE) compiled
	$(PYTHON) benchmarks/run_perf_suite.py \
		--output BENCH_PR10.json \
		--baseline benchmarks/perf_baseline.json \
		--check --quick

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache src/*.egg-info build
	rm -f src/repro/sim/_cengine*.so
