PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-quick clean

test:
	$(PYTHON) -m pytest -x -q

## Perf-regression suite: writes BENCH_PR3.json and fails if any guarded
## rate drops >20% below benchmarks/perf_baseline.json (or the obs layer
## exceeds its metrics-on overhead budget).
bench:
	$(PYTHON) benchmarks/run_perf_suite.py \
		--output BENCH_PR3.json \
		--baseline benchmarks/perf_baseline.json \
		--check

## Quarter-size workloads for a fast smoke signal (same regression check).
bench-quick:
	$(PYTHON) benchmarks/run_perf_suite.py \
		--output BENCH_PR3.json \
		--baseline benchmarks/perf_baseline.json \
		--check --quick

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache src/*.egg-info
