PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-quick clean

test:
	$(PYTHON) -m pytest -x -q

## Perf-regression suite: writes BENCH_PR7.json and fails if any guarded
## rate drops more than its tolerance below benchmarks/perf_baseline.json
## (10% for engine/datapath, 20% default; the obs layer also has an
## absolute metrics-on overhead budget).  A loud warning — not a failure —
## is printed when the baseline was recorded on a different machine.
bench:
	$(PYTHON) benchmarks/run_perf_suite.py \
		--output BENCH_PR7.json \
		--baseline benchmarks/perf_baseline.json \
		--check

## Quarter-size workloads for a fast smoke signal (same regression check).
bench-quick:
	$(PYTHON) benchmarks/run_perf_suite.py \
		--output BENCH_PR7.json \
		--baseline benchmarks/perf_baseline.json \
		--check --quick

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache src/*.egg-info
