"""Parameter sweep: how the ECN marking threshold shapes DCTCP and DCQCN.

The paper's motivation (Section 1): operators must "find the optimal
configuration by adjusting CC parameters" — and switch parameters like
the ECN threshold K interact with the CC algorithm.  This example sweeps
K over a fan-in bottleneck and reports, per algorithm:

* aggregate bottleneck throughput (too-small K -> underutilization),
* flow fairness,
* peak queue backlog (too-large K -> standing queues and latency).

The (algorithm, K) grid points are independent simulations, so they are
sharded across a ``repro.parallel.CampaignRunner`` process pool; pass a
worker count as the first argument (default: all cores).

Run:  python examples/congestion_sweep.py [workers]
"""

import sys

from repro import ControlPlane, TestConfig
from repro.core.sweep import steady_state_flow_rates
from repro.measure.fairness import jain_index
from repro.parallel import CampaignRunner
from repro.units import MS, US, format_rate

THRESHOLDS = [20_000, 84_000, 400_000, 1_600_000]
ALGORITHMS = ("dctcp", "dcqcn")


def run_once(alg: str, ecn_threshold_bytes: int):
    """One grid point (top level, so it pickles into pool workers)."""
    cp = ControlPlane()
    params = {"initial_ssthresh": 1024.0} if alg == "dctcp" else {}
    tester = cp.deploy(
        TestConfig(cc_algorithm=alg, n_test_ports=4, cc_params=params)
    )
    cp.wire_loopback_fabric(ecn_threshold_bytes=ecn_threshold_bytes)
    sampler = tester.enable_rate_sampling(period_ps=500 * US)
    for src in range(3):
        tester.start_flow(port_index=src, dst_port_index=3, size_packets=10**9)
    cp.run(duration_ps=6 * MS)

    # Average the second half of the sampled windows — a single window
    # is noise (a flow mid-cut or mid-recovery skews the numbers).
    rates = steady_state_flow_rates(sampler)
    assert cp.fabric is not None
    bottleneck = cp.fabric.ports[3]  # egress toward test port 3
    return {
        "K (kB)": ecn_threshold_bytes // 1000,
        "throughput": format_rate(sum(rates)),
        "fairness": round(jain_index(rates), 3),
        "peak queue (kB)": bottleneck.queue.stats.max_backlog_bytes // 1000,
        "marked pkts": bottleneck.queue.stats.ecn_marked_packets,
    }


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else None
    grid = [(alg, k) for alg in ALGORITHMS for k in THRESHOLDS]
    with CampaignRunner(workers=workers) as runner:
        campaign = runner.run(run_once, grid)
    rows = dict(zip(grid, campaign.values()))
    stats = campaign.stats()
    print(f"ran {stats['tasks']} simulations on {stats['workers']} worker(s) "
          f"in {stats['campaign_wall_s']:.1f} s "
          f"({stats['tasks_per_sec']:.2f} sims/s)")
    for alg in ALGORITHMS:
        print(f"\n=== {alg.upper()}: ECN threshold sweep "
              f"(3 flows -> one 100 Gbps port) ===")
        header = None
        for k in THRESHOLDS:
            row = rows[(alg, k)]
            if header is None:
                header = list(row)
                print("  ".join(f"{h:>16s}" for h in header))
            print("  ".join(f"{str(row[h]):>16s}" for h in header))


if __name__ == "__main__":
    main()
