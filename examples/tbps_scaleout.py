"""Scale-out: from one pipeline to multi-Tbps, and the dashed receiver path.

Walks the Section 3.3/4.3 arithmetic from one amplified pipeline
(1.2 Tbps) to the paper's full 2-pipeline switch (2.4 Tbps), runs a live
two-pipeline test, and demonstrates the Figure 2 dashed path where
receiver logic runs on the FPGA.

Run:  python examples/tbps_scaleout.py
"""

from repro import ControlPlane, TestConfig, amplification_report
from repro.core.multi_pipeline import MultiPipelineTester, scaling_table
from repro.sim import Simulator
from repro.units import MS, US, format_rate


def arithmetic() -> None:
    print("=== amplification (Section 3.3) ===")
    for mtu in (1024, 1518):
        report = amplification_report(mtu)
        print(f"MTU {mtu}: x{report.amplification_factor} -> "
              f"{format_rate(report.ideal_rate_bps)} ideal, "
              f"{format_rate(report.pipeline_rate_bps)} in one pipeline")
    print("\n=== pipeline scale-out (Section 4.3) ===")
    for row in scaling_table(1024, 4):
        print(f"{row.pipelines} pipeline(s): {row.test_ports} test ports, "
              f"{row.fpga_cards} FPGA card(s), "
              f"{format_rate(row.throughput_bps)}")


def live_two_pipelines() -> None:
    print("\n=== live 2-pipeline run (paper's hardware shape) ===")
    sim = Simulator()
    tester = MultiPipelineTester(
        sim, TestConfig(cc_algorithm="dcqcn", n_test_ports=4), n_pipelines=2
    )
    tester.wire_fabrics()
    for pipeline in range(2):
        for src in (0, 1):
            tester.start_flow(
                pipeline=pipeline,
                port_index=src,
                dst_port_index=src + 2,
                size_packets=10**9,
            )
    duration = 400 * US
    sim.run(until_ps=duration)
    counters = tester.read_counters()
    rate = counters["switch.data_generated"] * 1024 * 8 / (duration / 1e12)
    print(f"aggregate capacity : {format_rate(tester.aggregate_capacity_bps)}")
    print(f"measured (8 ports) : {format_rate(rate)}")
    print(f"false losses       : {counters['switch.sche_dropped']}")


def dashed_receiver_path() -> None:
    print("\n=== receiver logic on the FPGA (Figure 2 dashed path) ===")
    for on_fpga in (False, True):
        cp = ControlPlane()
        tester = cp.deploy(
            TestConfig(
                cc_algorithm="dctcp",
                n_test_ports=2,
                receiver_logic_on_fpga=on_fpga,
                cc_params={"initial_ssthresh": 512.0},
            )
        )
        cp.wire_loopback_fabric()
        cp.start_flows(size_packets=5000, pattern="pairs")
        cp.run(duration_ps=5 * MS)
        record = tester.fct.records[0]
        where = "FPGA  " if on_fpga else "switch"
        print(f"receiver on {where}: FCT {record.fct_ps / 1e6:.1f} us, "
              f"{tester.switch.allocation.total_ports} switch ports used")


def main() -> None:
    arithmetic()
    live_two_pipelines()
    dashed_receiver_path()


if __name__ == "__main__":
    main()
