"""Writing a custom CC algorithm against the Table 3 interface.

The paper's R2 requirement is *customizable CC*: operators write the CC
module in a high-level language against the HLS entry-function contract
(Table 3) and flash it onto the FPGA.  The software equivalent: subclass
:class:`repro.cc.CCAlgorithm`, declare the fast path's arithmetic (so
the frequency-control analysis can check the cycle budget), register it,
and select it by name in the test configuration.

The example implements AIMD-ECN — a deliberately simple window algorithm
that grows additively and halves on any ECN echo — then verifies it
drives flows to completion and shares a bottleneck fairly.

Run:  python examples/custom_cc.py
"""

from dataclasses import dataclass

from repro import ControlPlane, TestConfig, register_cc
from repro.cc import (
    CCAlgorithm,
    CCMode,
    EventType,
    IntrinsicInput,
    IntrinsicOutput,
    OpCounts,
    TIMER_RTO,
)
from repro.fpga.hls import algorithm_cycles
from repro.fpga.timers import FrequencyControl
from repro.measure.fairness import jain_index
from repro.units import MS, US, format_rate


@dataclass
class AimdState:
    """Customized variable block: must fit the 64 B hardware budget."""

    last_ack: int = 0
    #: One multiplicative cut per window of data.
    cwr_end: int = -1


@register_cc
class AimdEcn(CCAlgorithm):
    """Additive increase, halve on ECN echo.  Window mode, no slow path."""

    name = "aimd-ecn"
    mode = CCMode.WINDOW
    # Fast path: a couple of compares, one add, one shift for the halving.
    ops = OpCounts(add_sub=2, compare=3, shift=1)

    def __init__(self, *, increment: float = 1.0, rto_ps: int = 200 * US) -> None:
        self.increment = increment
        self.rto_ps = rto_ps

    def initial_cust(self) -> AimdState:
        return AimdState()

    def initial_cwnd_or_rate(self, link_rate_bps: int) -> float:
        return 8.0

    def on_flow_start(self, cust, slow, now_ps) -> IntrinsicOutput:
        return IntrinsicOutput(rst_timers=[(TIMER_RTO, self.rto_ps)])

    def on_event(self, intr: IntrinsicInput, cust: AimdState, slow) -> IntrinsicOutput:
        if intr.evt_type == EventType.TIMEOUT:
            return IntrinsicOutput(
                cwnd_or_rate=1.0,
                rewind_to_una=True,
                rst_timers=[(TIMER_RTO, self.rto_ps)],
            )
        if intr.evt_type != EventType.RX or intr.psn <= cust.last_ack:
            return IntrinsicOutput()
        cust.last_ack = intr.psn
        cwnd = intr.cwnd_or_rate
        if intr.flags.ecn and intr.psn > cust.cwr_end:
            cwnd = max(cwnd / 2.0, 1.0)  # the shift in hardware
            cust.cwr_end = intr.nxt
        else:
            cwnd += self.increment / max(cwnd, 1.0)
        return IntrinsicOutput(
            cwnd_or_rate=cwnd, rst_timers=[(TIMER_RTO, self.rto_ps)]
        )


def main() -> None:
    # The frequency-control analysis every CC module should pass before
    # deployment (Section 5.3): does the fast path fit the RMW budget?
    cycles = algorithm_cycles(AimdEcn())
    control = FrequencyControl(template_bytes=1024, n_test_ports=12)
    print(f"aimd-ecn fast path: {cycles} cycles "
          f"(budget {control.max_rmw_cycles} at MTU 1024)")
    problems = control.validate(cycles)
    print("frequency-control verdict:", problems or "safe")

    # Deploy it by name, like any built-in algorithm.
    cp = ControlPlane()
    tester = cp.deploy(
        TestConfig(cc_algorithm="aimd-ecn", n_test_ports=4, flows_per_port=1)
    )
    cp.wire_loopback_fabric()
    sampler = tester.enable_rate_sampling(period_ps=500 * US)

    # Three flows into one port: the custom algorithm must share fairly.
    for src in range(3):
        tester.start_flow(port_index=src, dst_port_index=3, size_packets=10**9)
    cp.run(duration_ps=8 * MS)

    rates = {
        name: rate
        for name, rate in sampler.samples[-1].rates_bps.items()
        if name.startswith("flow")
    }
    print("\nper-flow rates on the shared bottleneck:")
    for name, rate in sorted(rates.items()):
        print(f"  {name}: {format_rate(rate)}")
    print(f"total: {format_rate(sum(rates.values()))}, "
          f"Jain fairness: {jain_index(list(rates.values())):.3f}")


if __name__ == "__main__":
    main()
