"""Testing CC over a leaf-spine fabric (the paper's 'large-scale
networks', in miniature).

Wires a Marlin tester's ports across a 2-leaf / 2-spine fabric with
per-flow ECMP, then runs a cross-leaf incast: three senders on leaf 0
converge on one receiver port on leaf 1.  Shows per-flow convergence at
the congested edge port, and that the spine mesh load-balances flows.

Run:  python examples/leaf_spine_incast.py
"""

from repro import TestConfig
from repro.core.tester import MarlinTester
from repro.measure.fairness import jain_index
from repro.net.leaf_spine import wire_tester_leaf_spine
from repro.sim import Simulator
from repro.units import MS, US, format_rate


def main() -> None:
    sim = Simulator()
    tester = MarlinTester(
        sim, TestConfig(cc_algorithm="dcqcn", n_test_ports=8)
    )
    fabric = wire_tester_leaf_spine(sim, tester, n_leaves=2, n_spines=2)
    print(f"fabric: {fabric.n_leaves} leaves x {fabric.n_spines} spines; "
          f"{tester.n_test_ports} tester ports round-robin across leaves")

    sampler = tester.enable_rate_sampling(period_ps=500 * US)
    # Even ports sit on leaf 0, odd on leaf 1: a cross-leaf 3-to-1 incast.
    for src in (0, 2, 4):
        tester.start_flow(port_index=src, dst_port_index=1, size_packets=10**9)
    sim.run(until_ps=8 * MS)

    rates = {
        name: rate
        for name, rate in sampler.samples[-1].rates_bps.items()
        if name.startswith("flow")
    }
    print("\ncross-leaf incast (3 senders on leaf 0 -> 1 port on leaf 1):")
    for name, rate in sorted(rates.items()):
        print(f"  {name}: {format_rate(rate)}")
    print(f"  total {format_rate(sum(rates.values()))}, "
          f"Jain {jain_index(list(rates.values())):.3f}")

    load = fabric.spine_load()
    print(f"\nspine load balance (forwarded packets): {load}")
    print("ECMP keeps each flow on one spine; multiple flows spread across both.")


if __name__ == "__main__":
    main()
