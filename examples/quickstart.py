"""Quickstart: deploy a Marlin tester and run a DCTCP test.

This is the 60-second tour: configure a test (CC algorithm, parameters,
ports), deploy it through the control plane, wire the tester's ports
through an intermediate switch, start flows, and read the measurements —
exactly the operator workflow of the paper's Section 3.2.

Run:  python examples/quickstart.py
"""

from repro import ControlPlane, TestConfig
from repro.units import MS, format_rate, format_time


def main() -> None:
    # 1. Describe the test: DCTCP on 2 test ports of a simulated
    #    Tofino+Alveo tester, one flow per port pair.
    config = TestConfig(
        cc_algorithm="dctcp",
        cc_params={"initial_ssthresh": 256.0},
        template_bytes=1024,  # DATA packet size (sets the 12x amplification)
        n_test_ports=2,
        trace_cc=True,  # fine-grained cwnd logging via the QDMA path
    )

    # 2. Deploy: the control plane builds the programmable-switch and
    #    FPGA-NIC models and cables them together.
    control_plane = ControlPlane()
    tester = control_plane.deploy(config)
    print(f"deployed tester: {tester.n_test_ports} test ports, "
          f"algorithm={tester.algorithm.name}")
    if tester.nic.frequency_warnings:
        print("frequency-control warnings:", tester.nic.frequency_warnings)

    # 3. Wire the tested network: an intermediate switch that routes each
    #    test port's address straight back to it (the paper's testbed).
    control_plane.wire_loopback_fabric()

    # 4. Start one 500-packet flow from port 0 to port 1 and run 5 ms.
    flow = tester.start_flow(port_index=0, dst_port_index=1, size_packets=500)
    control_plane.run(duration_ps=5 * MS)

    # 5. Read the results.
    print(f"\nflow completed: {flow.finished}")
    print(f"flow completion time: {format_time(flow.fct_ps)}")
    goodput = flow.size_packets * 1024 * 8 / (flow.fct_ps / 1e12)
    print(f"goodput: {format_rate(goodput)}")

    print("\nhardware counters (control-plane registers):")
    for name, value in control_plane.read_measurements().items():
        print(f"  {name:32s} {value}")

    # 6. The traced congestion window (Figure 5-style data).
    times, cwnd = tester.nic.logger.series(f"flow{flow.flow_id}", "cwnd_or_rate")
    print(f"\ncwnd trace: {len(cwnd)} points, peak {max(cwnd):.1f} packets")
    print("first five points:",
          [(format_time(t), round(w, 1)) for t, w in list(zip(times, cwnd))[:5]])


if __name__ == "__main__":
    main()
