"""WebSearch FCT testing: packet-level and fluid, side by side.

Reproduces the paper's comprehensive-test methodology (Section 7.5) at
two scales:

* a packet-level run with a modest flow population (the regime the
  discrete-event simulator handles),
* the flow-level (fluid) run at the full 65,536-flow concurrency the
  hardware supports, against the ideal equal-share reference.

Run:  python examples/websearch_fct.py
"""

import numpy as np

from repro import ControlPlane, TestConfig
from repro.fluid import FluidSimulator, dcqcn_profile, dctcp_profile, ideal_profile
from repro.measure.fct import cdf_points
from repro.units import MS, format_rate
from repro.workload import ClosedLoopGenerator, FlowSlot, websearch
from repro.workload.distributions import EmpiricalCdf, WEBSEARCH_CDF_POINTS


def packet_level() -> None:
    print("=== packet-level: 8 closed-loop WebSearch flows, DCQCN ===")
    # Scale the sizes down 10x so tail flows finish within the run.
    scaled = EmpiricalCdf(
        tuple((size // 10, prob) for size, prob in WEBSEARCH_CDF_POINTS)
    )
    cp = ControlPlane()
    tester = cp.deploy(TestConfig(cc_algorithm="dcqcn", n_test_ports=2))
    cp.wire_loopback_fabric()
    generator = ClosedLoopGenerator(
        tester,
        scaled,
        [FlowSlot(0, 1) for _ in range(8)],
        rng=np.random.default_rng(1),
        stop_after_flows=80,
    )
    generator.start()
    cp.run(duration_ps=200 * MS)
    stats = tester.fct.stats()
    print(f"flows: {stats.count}  mean {stats.mean_us:.0f} us  "
          f"p50 {stats.p50_us:.0f} us  p99 {stats.p99_us:.0f} us")


def fluid_level() -> None:
    print("\n=== fluid: 65,532 concurrent flows across 12 ports ===")
    fluid = FluidSimulator(n_ports=12, flows_per_port=65_536 // 12, seed=5)
    for profile in (ideal_profile(), dctcp_profile(), dcqcn_profile()):
        result = fluid.run(profile, websearch(), flows_total=30_000)
        fcts = result.fcts_us
        values, probs = cdf_points(fcts)
        # Report the CDF at the paper's decade marks.
        marks = {
            f"1e{k}us": float(np.mean(fcts <= 10.0**k)) for k in range(1, 8)
        }
        marks_str = " ".join(f"{k}:{v:.2f}" for k, v in marks.items())
        print(f"{profile.name:>6s}: median {np.median(fcts):>12.0f} us   "
              f"CDF@[{marks_str}]")
    aggregate = result.throughput_bps() * 12 * (65_536 // 12)
    print(f"aggregate goodput (last run): {format_rate(aggregate)}")


def main() -> None:
    packet_level()
    fluid_level()


if __name__ == "__main__":
    main()
