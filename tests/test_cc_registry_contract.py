"""The registry and the Table 3 programming contract."""

import dataclasses

import pytest

from repro import cc
from repro.cc.base import CCAlgorithm, CCMode, IntrinsicOutput, OpCounts
from repro.errors import CCModuleError, ConfigError
from repro.fpga.bram import FlowBram
from repro.fpga.cc_module import CCModuleRuntime, cust_block_bytes


class TestRegistry:
    def test_builtins_available(self):
        names = cc.available()
        for expected in ("reno", "dctcp", "dcqcn", "cubic", "timely"):
            assert expected in names

    def test_create_with_params(self):
        alg = cc.create("reno", initial_ssthresh=128.0)
        assert alg.initial_ssthresh == 128.0

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            cc.create("bbr")

    def test_register_custom(self):
        @cc.register
        class MyCC(cc.Reno):
            name = "test-mycc"

        try:
            assert isinstance(cc.create("test-mycc"), MyCC)
        finally:
            from repro.cc import registry

            registry._REGISTRY.pop("test-mycc", None)

    def test_reregister_same_class_ok(self):
        from repro.cc import registry

        registry.register(cc.Reno)  # idempotent

    def test_register_conflicting_name_rejected(self):
        with pytest.raises(ConfigError):

            @cc.register
            class FakeReno(cc.Dctcp):
                name = "reno"

    def test_abstract_name_rejected(self):
        class Nameless(cc.Reno):
            name = "abstract"

        with pytest.raises(ConfigError):
            cc.register(Nameless)


class TestTable3Contract:
    def test_cust_blocks_fit_64_bytes(self):
        """Table 3: the customized variable block is at most 64 B."""
        for name in cc.available():
            alg = cc.create(name)
            assert cust_block_bytes(alg.initial_cust()) <= cc.CUST_VAR_BYTES

    def test_cust_must_be_dataclass(self):
        with pytest.raises(CCModuleError):
            cust_block_bytes(object())

    def test_oversized_cust_rejected(self):
        fields = {f"f{i}": (int, dataclasses.field(default=0)) for i in range(20)}
        Huge = dataclasses.make_dataclass(
            "Huge", [(n, t, d) for n, (t, d) in fields.items()]
        )

        class HugeCC(cc.Reno):
            name = "test-huge"

            def initial_cust(self):
                return Huge()

        with pytest.raises(CCModuleError):
            CCModuleRuntime(HugeCC(), FlowBram())

    def test_fast_path_may_not_write_slow_vars(self):
        """Simple dual-port BRAM ownership (Section 5.1)."""

        class BadCC(cc.Dctcp):
            name = "test-bad"

            def on_event(self, intr, cust, slow):
                slow.alpha = 0.123  # illegal write
                return IntrinsicOutput()

        runtime = CCModuleRuntime(BadCC(), FlowBram(), check_contracts=True)
        alg = runtime.algorithm
        intr = cc.IntrinsicInput(
            evt_type=cc.EventType.RX,
            psn=1,
            cwnd_or_rate=1.0,
            una=0,
            nxt=0,
            flags=cc.Flags(ack=True),
            prb_rtt=-1,
            tstamp=0,
        )
        with pytest.raises(CCModuleError):
            runtime.invoke(1, intr, alg.initial_cust(), alg.initial_slow())

    def test_legal_fast_path_passes_contract_check(self):
        runtime = CCModuleRuntime(cc.Dctcp(), FlowBram(), check_contracts=True)
        intr = cc.IntrinsicInput(
            evt_type=cc.EventType.RX,
            psn=1,
            cwnd_or_rate=1.0,
            una=1,
            nxt=1,
            flags=cc.Flags(ack=True),
            prb_rtt=-1,
            tstamp=0,
        )
        alg = runtime.algorithm
        out = runtime.invoke(1, intr, alg.initial_cust(), alg.initial_slow())
        assert out.cwnd_or_rate is not None

    def test_validate_rejects_nameless(self):
        class NoName(CCAlgorithm):
            def initial_cust(self):
                return None

            def initial_cwnd_or_rate(self, link_rate_bps):
                return 1.0

            def on_event(self, intr, cust, slow):
                return IntrinsicOutput()

        with pytest.raises(CCModuleError):
            NoName().validate()

    def test_runtime_counts_invocations_and_charges_rmw(self):
        bram = FlowBram()
        runtime = CCModuleRuntime(cc.Reno(), bram)
        intr = cc.IntrinsicInput(
            evt_type=cc.EventType.RX,
            psn=1,
            cwnd_or_rate=1.0,
            una=1,
            nxt=1,
            flags=cc.Flags(ack=True),
            prb_rtt=-1,
            tstamp=0,
        )
        runtime.invoke(1, intr, runtime.algorithm.initial_cust(), None)
        assert runtime.invocations == 1
        assert bram.rmw_operations == 1

    def test_ops_declared_for_builtins(self):
        for name in cc.available():
            ops = cc.create(name).ops
            assert isinstance(ops, OpCounts)
            total = (
                ops.add_sub + ops.compare + ops.shift + ops.mul32
                + ops.div16 + ops.div32 + ops.cube_root_lut
            )
            assert total > 0
