"""Extensions: receiver-on-FPGA, multi-pipeline, export, CLI."""

import csv
import json

import pytest

from repro import ControlPlane, TestConfig
from repro.cli import main as cli_main
from repro.core.multi_pipeline import (
    MultiPipelineTester,
    PIPELINES_PER_SWITCH,
    scaling_table,
)
from repro.errors import ConfigError
from repro.measure.export import (
    counters_to_json,
    fct_to_csv,
    throughput_to_csv,
    trace_to_json,
)
from repro.sim import Simulator, TraceRecorder
from repro.units import GBPS, MS, TBPS, US


def deploy(**cfg):
    cp = ControlPlane()
    tester = cp.deploy(TestConfig(**cfg))
    cp.wire_loopback_fabric()
    return cp, tester


class TestReceiverOnFpga:
    def test_flow_completes_via_dashed_path(self):
        cp, tester = deploy(
            cc_algorithm="dctcp",
            n_test_ports=2,
            receiver_logic_on_fpga=True,
            cc_params={"initial_ssthresh": 256.0},
        )
        cp.start_flows(size_packets=2000, pattern="pairs")
        cp.run(duration_ps=5 * MS)
        assert len(tester.fct) == 1
        # The switch's local receiver never ran; the FPGA's did.
        assert tester.switch.receiver.data_received == 0
        assert tester.nic.fpga_receiver is not None
        assert tester.nic.fpga_receiver.data_received == 2000

    def test_extra_port_reserved(self):
        cp, tester = deploy(n_test_ports=2, receiver_logic_on_fpga=True)
        assert tester.switch.receiver_port is not None
        assert tester.nic.receiver_port is not None
        assert tester.switch.allocation.receiver_logic_ports == 1

    def test_costs_one_test_port_at_full_allocation(self):
        # 16 - 4 reserved = 12 test ports at MTU 1518 (vs 13 without).
        cp = ControlPlane()
        tester = cp.deploy(
            TestConfig(template_bytes=1518, receiver_logic_on_fpga=True)
        )
        assert tester.n_test_ports == 12

    def test_adds_latency_but_same_behaviour(self):
        def fct_with(receiver_on_fpga):
            cp, tester = deploy(
                cc_algorithm="dctcp",
                n_test_ports=2,
                receiver_logic_on_fpga=receiver_on_fpga,
                cc_params={"initial_ssthresh": 512.0},
            )
            cp.start_flows(size_packets=3000, pattern="pairs")
            cp.run(duration_ps=5 * MS)
            return tester.fct.records[0].fct_ps

        on_switch = fct_with(False)
        on_fpga = fct_with(True)
        assert on_fpga > on_switch  # two extra cable hops per RTT
        assert on_fpga < on_switch * 1.1  # but only slightly

    def test_roce_mode_on_fpga_receiver(self):
        cp, tester = deploy(
            cc_algorithm="dcqcn", n_test_ports=2, receiver_logic_on_fpga=True
        )
        cp.start_flows(size_packets=1000, pattern="pairs")
        cp.run(duration_ps=3 * MS)
        assert len(tester.fct) == 1
        from repro.pswitch.module_a import ReceiverMode

        assert tester.nic.fpga_receiver.mode is ReceiverMode.ROCE

    def test_completion_releases_fpga_receiver_state(self):
        cp, tester = deploy(
            cc_algorithm="dctcp", n_test_ports=2, receiver_logic_on_fpga=True
        )
        flow = tester.start_flow(port_index=0, dst_port_index=1, size_packets=200)
        cp.run(duration_ps=3 * MS)
        assert flow.finished
        assert flow.flow_id not in tester.nic.fpga_receiver.flows


class TestMultiPipeline:
    def test_scaling_table(self):
        rows = scaling_table(1024, 4)
        assert rows[0].throughput_bps == pytest.approx(1.2 * TBPS)
        assert rows[1].throughput_bps == pytest.approx(2.4 * TBPS)
        assert rows[1].fpga_cards == 1  # one U280 drives two pipelines
        assert rows[2].fpga_cards == 2

    def test_paper_hardware_is_two_pipelines(self):
        assert PIPELINES_PER_SWITCH == 2

    def test_pipelines_independent(self):
        sim = Simulator()
        tester = MultiPipelineTester(
            sim, TestConfig(cc_algorithm="dcqcn", n_test_ports=2), n_pipelines=2
        )
        tester.wire_fabrics()
        tester.start_flow(pipeline=0, port_index=0, dst_port_index=1,
                          size_packets=1000)
        tester.start_flow(pipeline=1, port_index=0, dst_port_index=1,
                          size_packets=1000)
        sim.run(until_ps=3 * MS)
        assert len(tester.fct) == 2
        for pipeline in tester.pipelines:
            assert pipeline.switch.data_generator.data_generated == 1000

    def test_aggregate_counters(self):
        sim = Simulator()
        tester = MultiPipelineTester(
            sim, TestConfig(cc_algorithm="dcqcn", n_test_ports=2), n_pipelines=3
        )
        tester.wire_fabrics()
        for p in range(3):
            tester.start_flow(pipeline=p, port_index=0, dst_port_index=1,
                              size_packets=500)
        sim.run(until_ps=3 * MS)
        counters = tester.read_counters()
        assert counters["switch.data_generated"] == 1500
        assert counters["fpga.flows_completed"] == 3

    def test_aggregate_capacity(self):
        sim = Simulator()
        tester = MultiPipelineTester(sim, TestConfig(), n_pipelines=2)
        assert tester.aggregate_capacity_bps == pytest.approx(2.4 * TBPS)
        assert tester.total_test_ports == 24

    def test_bad_pipeline_index(self):
        sim = Simulator()
        tester = MultiPipelineTester(
            sim, TestConfig(n_test_ports=2), n_pipelines=1
        )
        with pytest.raises(ConfigError):
            tester.pipeline(5)
        with pytest.raises(ConfigError):
            MultiPipelineTester(sim, TestConfig(), n_pipelines=0)


class TestExport:
    def run_small(self):
        # DCTCP: its window changes every ACK, so trace_cc produces data.
        cp, tester = deploy(cc_algorithm="dctcp", n_test_ports=2, trace_cc=True)
        sampler = tester.enable_rate_sampling(period_ps=200 * US)
        cp.start_flows(size_packets=500, pattern="pairs")
        cp.run(duration_ps=2 * MS)
        return cp, tester, sampler

    def test_fct_csv(self, tmp_path):
        cp, tester, sampler = self.run_small()
        path = fct_to_csv(tester.fct, tmp_path / "fct.csv")
        rows = list(csv.DictReader(path.open()))
        assert len(rows) == len(tester.fct)
        assert float(rows[0]["fct_us"]) > 0
        assert int(rows[0]["size_packets"]) == 500

    def test_throughput_csv(self, tmp_path):
        cp, tester, sampler = self.run_small()
        path = throughput_to_csv(sampler, tmp_path / "tp.csv")
        rows = list(csv.DictReader(path.open()))
        assert rows
        assert any(float(v) > 0 for row in rows for k, v in row.items()
                   if k != "time_us")

    def test_trace_json(self, tmp_path):
        cp, tester, sampler = self.run_small()
        path = trace_to_json(tester.nic.logger.trace, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert any(channel.startswith("flow") for channel in payload)

    def test_counters_json(self, tmp_path):
        cp, tester, sampler = self.run_small()
        path = counters_to_json(cp.read_measurements(), tmp_path / "c.json")
        payload = json.loads(path.read_text())
        assert payload["switch.data_generated"] == 500

    def test_empty_trace_exports(self, tmp_path):
        path = trace_to_json(TraceRecorder(), tmp_path / "empty.json")
        assert json.loads(path.read_text()) == {}


class TestCli:
    def test_algorithms(self, capsys):
        assert cli_main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "dctcp" in out and "hpcc" in out

    def test_amplification(self, capsys):
        assert cli_main(["amplification", "--mtu", "1024"]) == 0
        out = capsys.readouterr().out
        assert "1.20 Tbps" in out
        assert "148.8 Mpps" in out

    def test_capabilities(self, capsys):
        assert cli_main(["capabilities"]) == 0
        out = capsys.readouterr().out
        assert "Marlin" in out and "Table 2" in out

    def test_resources(self, capsys):
        assert cli_main(["resources", "--algorithm", "cubic"]) == 0
        out = capsys.readouterr().out
        assert "reduce per-flow PPS" in out or "RMW conflicts" in out

    def test_run_with_export(self, capsys, tmp_path):
        code = cli_main(
            [
                "run",
                "--algorithm",
                "dcqcn",
                "--duration-ms",
                "2",
                "--size-packets",
                "500",
                "--export-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flows completed : 1" in out
        assert (tmp_path / "fct.csv").exists()
        assert (tmp_path / "counters.json").exists()

    def test_run_closed_loop_workload(self, capsys):
        code = cli_main(
            [
                "run",
                "--algorithm",
                "dcqcn",
                "--workload",
                "websearch",
                "--size-scale",
                "50",
                "--flows-per-port",
                "4",
                "--duration-ms",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Closed loop: many flows complete within the window.
        completed = int(out.split("flows completed :")[1].split()[0])
        assert completed > 10

    def test_run_fan_in(self, capsys):
        code = cli_main(
            [
                "run",
                "--algorithm",
                "dctcp",
                "--ports",
                "3",
                "--pattern",
                "fan_in",
                "--duration-ms",
                "2",
                "--size-packets",
                "300",
            ]
        )
        assert code == 0
