"""Determinism regression for the tuple-heap engine overhaul.

The seed stored every event as an ``Event`` object and compared them in
Python; the overhaul stores fast events as bare tuples and cancellable
events behind :class:`EventHandle`.  These tests pin the observable
contract: a seeded multi-flow tester produces bit-identical
measurements, event counts, and trace series across runs — and the
old-style handle-returning scheduling API executes the exact same
schedule as the fast path.
"""

from repro import ControlPlane, TestConfig
from repro.units import MS


def _trace_fingerprint(cp):
    trace = cp.tester.nic.logger.trace
    return tuple(
        (channel, tuple(record.time_ps for record in trace.channel(channel)))
        for channel in trace.channels()
    )


def _run_tester(route_through_handles: bool = False):
    cp = ControlPlane()
    if route_through_handles:
        _route_scheduling_through_handles(cp.sim)
    cp.deploy(TestConfig(cc_algorithm="dctcp", n_test_ports=2, flows_per_port=2, trace_cc=True))
    cp.wire_loopback_fabric()
    cp.start_flows(size_packets=600, pattern="fan_in")
    cp.run(duration_ps=2 * MS)
    return (
        tuple(sorted(cp.read_measurements().items())),
        cp.sim.events_executed,
        _trace_fingerprint(cp),
    )


def _route_scheduling_through_handles(sim):
    """Replace the fast-path scheduling methods with the old-style
    handle-returning API on one simulator instance."""

    def schedule(time_ps, fn, *args):
        sim.schedule_handle(time_ps, fn, *args)

    def after(delay_ps, fn, *args):
        sim.after_handle(delay_ps, fn, *args)

    def call_now(fn, *args):
        sim.schedule_handle(sim.now, fn, *args)

    sim.schedule = schedule
    sim.at = schedule
    sim.after = after
    sim.call_now = call_now


class TestSeededTesterDeterminism:
    def test_identical_across_runs(self):
        first = _run_tester()
        second = _run_tester()
        assert first[0] == second[0]  # measurements
        assert first[1] == second[1]  # events executed
        assert first[2] == second[2]  # trace series

    def test_old_style_scheduling_api_matches_fast_path(self):
        """Routing every schedule through EventHandle entries must not
        change a single measurement, event count, or trace timestamp:
        both entry shapes share one (time, seq) order."""
        fast = _run_tester()
        handled = _run_tester(route_through_handles=True)
        assert fast == handled

    def test_trace_fingerprint_is_nontrivial(self):
        measurements, events, trace = _run_tester()
        assert events > 1000
        assert any(times for _, times in trace)
        assert dict(measurements)["switch.data_generated"] > 0
