"""The sharded campaign runner: determinism, ordering, bounded failure."""

import os
import threading
import time

import pytest

from repro.core.multi_pipeline import scaling_table
from repro.core.sweep import cc_parameter_sweep, steady_state_flow_rates, sweep_campaign
from repro.errors import CampaignError
from repro.fluid import dcqcn_profile, dctcp_profile, fluid_fct_campaign
from repro.measure.throughput import ThroughputSample
from repro.obs.heartbeat import Heartbeat
from repro.parallel import CampaignRunner, derive_task_seed
from repro.units import GBPS, MS
from repro.workload import websearch


# -- picklable task functions (must be top level) ------------------------------


def square(x, seed=0):
    return x * x


def echo_seed(x, seed=0):
    return (x, seed)


def crash_on_two(x):
    if x == 2:
        os._exit(3)  # simulates a segfaulted/OOM-killed worker
    return x


def raise_on_zero(x):
    if x == 0:
        raise ValueError("task zero is broken")
    return x


def sleep_on_one(x):
    if x == 1:
        time.sleep(3.0)
    return x


def crash_first_attempt(x, marker_dir):
    """Dies hard on its first run (leaving a marker), succeeds on retry."""
    marker = os.path.join(marker_dir, f"task-{x}.attempted")
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("1")
        os._exit(5)
    return x


class TestDeriveTaskSeed:
    def test_stable_and_distinct(self):
        assert derive_task_seed(42, 3) == derive_task_seed(42, 3)
        assert derive_task_seed(42, 3) != derive_task_seed(42, 4)
        assert derive_task_seed(42, 3) != derive_task_seed(43, 3)

    def test_multipart_spawn_keys(self):
        assert derive_task_seed(0, 1, 2) == derive_task_seed(0, 1, 2)
        assert derive_task_seed(0, 1, 2) != derive_task_seed(0, 2, 1)

    def test_nonnegative_and_wide(self):
        seeds = {derive_task_seed(7, index) for index in range(64)}
        assert len(seeds) == 64
        assert all(0 <= seed < 2**63 for seed in seeds)


class TestRunnerBasics:
    def test_order_preserved_across_chunks(self):
        with CampaignRunner(workers=2, chunk_size=2) as runner:
            result = runner.run(square, [(i,) for i in range(7)])
        assert result.values() == [i * i for i in range(7)]
        assert [r.index for r in result.results] == list(range(7))
        assert result.ok

    def test_task_forms(self):
        with CampaignRunner(workers=0) as runner:
            result = runner.run(square, [3, (4,), {"x": 5}])
        assert result.values() == [9, 16, 25]

    def test_seed_injection_matches_derivation(self):
        with CampaignRunner(workers=2) as runner:
            result = runner.run(echo_seed, [(i,) for i in range(5)], seed=99)
        assert result.values() == [
            (i, derive_task_seed(99, i)) for i in range(5)
        ]

    def test_stats_shape(self):
        with CampaignRunner(workers=2, chunk_size=2) as runner:
            stats = runner.run(square, [(i,) for i in range(4)]).stats()
        assert stats["tasks"] == 4
        assert stats["failed"] == 0
        assert stats["workers"] == 2
        assert stats["campaign_wall_s"] > 0
        assert stats["tasks_per_sec"] > 0

    def test_empty_campaign_rejected(self):
        with CampaignRunner(workers=1) as runner:
            with pytest.raises(CampaignError):
                runner.run(square, [])

    def test_bad_configuration_rejected(self):
        with pytest.raises(CampaignError):
            CampaignRunner(workers=-1)
        with pytest.raises(CampaignError):
            CampaignRunner(chunk_size=0)
        with pytest.raises(CampaignError):
            CampaignRunner(task_timeout_s=0)
        with pytest.raises(CampaignError):
            CampaignRunner(max_retries=-1)


class TestWarmPool:
    def test_started_runner_serves_repeat_campaigns(self):
        """The `repro serve` contract: one start(), many run()s, all
        bit-identical to the inline path."""
        tasks = [(i,) for i in range(8)]
        with CampaignRunner(workers=1) as inline:
            expected = inline.run(echo_seed, tasks, seed=3).values()
        with CampaignRunner(workers=2, chunk_size=2) as runner:
            assert not runner.started
            runner.start()
            assert runner.started
            first = runner.run(echo_seed, tasks, seed=3)
            second = runner.run(echo_seed, tasks, seed=3)
        assert first.values() == expected
        assert second.values() == expected

    def test_start_is_idempotent_and_keeps_the_pool(self):
        with CampaignRunner(workers=2) as runner:
            runner.start()
            executor = runner._executor
            runner.start()
            assert runner._executor is executor

    def test_start_is_a_noop_inline(self):
        runner = CampaignRunner(workers=1)
        assert runner.start() is runner
        assert not runner.started
        runner.close()

    def test_warm_pool_survives_heartbeat_campaigns(self):
        # start() provisions the heartbeat transport up front, so a later
        # run(on_heartbeat=...) must reuse the warm pool, not rebuild it.
        with CampaignRunner(workers=2, chunk_size=1) as runner:
            runner.start()
            executor = runner._executor
            beats = []
            result = runner.run(
                square, [(i,) for i in range(4)], on_heartbeat=beats.append
            )
            assert result.ok
            assert runner._executor is executor


class TestResultsDirLifecycle:
    def test_created_on_first_run_not_at_construction(self, tmp_path):
        target = tmp_path / "campaign-artifacts"
        with CampaignRunner(workers=1, results_dir=target) as runner:
            # Constructing (e.g. probing a spec server-side) writes nothing.
            assert not target.exists()
            runner.run(square, [(1,), (2,)])
        assert (target / "campaign.json").exists()


class TestHeartbeatsDuringBackoff:
    def test_beats_delivered_while_retry_backoff_sleeps(self, tmp_path):
        """A beat that lands in the queue while every task sits in the
        retry-backoff heap must reach the listener within one poll
        interval — not after the whole backoff window (the stalled-
        progress bug `repro serve` exposed)."""
        received = []

        def on_beat(beat):
            received.append((time.monotonic(), beat.task_id))

        injected_at = []
        runner = CampaignRunner(
            workers=2, chunk_size=1, max_retries=2, backoff_base_s=2.0
        )

        def inject():
            # By now both workers have crashed and the runner is inside
            # the ~2 s backoff window with nothing inflight.
            time.sleep(0.7)
            injected_at.append(time.monotonic())
            runner._hb_queue.put(
                Heartbeat(
                    task_id=99,
                    pid=0,
                    sim_now_ps=1,
                    sim_until_ps=2,
                    events_executed=1,
                    wall_s=0.0,
                )
            )

        with runner:
            runner.start()
            thread = threading.Thread(target=inject, daemon=True)
            thread.start()
            result = runner.run(
                crash_first_attempt,
                [(i, str(tmp_path)) for i in range(2)],
                on_heartbeat=on_beat,
            )
            thread.join()
        assert result.ok
        assert all(r.attempts == 2 for r in result.results)
        delivery = [stamp for stamp, task in received if task == 99]
        assert delivery, "injected heartbeat was never delivered"
        assert delivery[0] - injected_at[0] < 0.8, (
            "heartbeat sat undelivered through the retry-backoff window"
        )


class TestRunnerDeterminism:
    def test_worker_count_invariant(self):
        """Same campaign seed, any pool width -> bit-identical values."""
        tasks = [(i,) for i in range(12)]
        with CampaignRunner(workers=1) as serial:
            expected = serial.run(echo_seed, tasks, seed=7).values()
        with CampaignRunner(workers=4, chunk_size=3) as pooled:
            assert pooled.run(echo_seed, tasks, seed=7).values() == expected


class TestRunnerFailures:
    def test_task_exception_is_structured_and_isolated(self):
        with CampaignRunner(workers=2, chunk_size=2) as runner:
            result = runner.run(raise_on_zero, [(i,) for i in range(4)])
        assert not result.ok
        [failed] = result.errors
        assert failed.index == 0
        assert failed.error.kind == "exception"
        assert "task zero is broken" in failed.error.message
        assert failed.attempts == 1  # deterministic failures are not retried
        assert result.values(strict=False) == [None, 1, 2, 3]
        with pytest.raises(CampaignError, match="task zero"):
            result.values()

    def test_worker_crash_retried_then_surfaced(self):
        """A dying worker breaks the pool: the runner rebuilds it, retries
        the affected tasks, and surfaces a structured error for the one
        that keeps crashing — the rest of the campaign completes."""
        with CampaignRunner(
            workers=2, chunk_size=2, max_retries=1, backoff_base_s=0.01
        ) as runner:
            result = runner.run(crash_on_two, [(i,) for i in range(4)])
        crashed = [r for r in result.errors if r.index == 2]
        assert len(crashed) == 1
        assert crashed[0].error.kind == "crash"
        assert crashed[0].attempts == 2  # initial + one retry
        for index in (0, 1, 3):
            assert result.results[index].value == index

    def test_timeout_retried_then_surfaced_without_hanging(self):
        start = time.perf_counter()
        with CampaignRunner(
            workers=2,
            chunk_size=1,
            task_timeout_s=0.3,
            max_retries=1,
            backoff_base_s=0.01,
        ) as runner:
            result = runner.run(sleep_on_one, [(i,) for i in range(4)])
        elapsed = time.perf_counter() - start
        [timed_out] = result.errors
        assert timed_out.index == 1
        assert timed_out.error.kind == "timeout"
        assert timed_out.attempts == 2
        for index in (0, 2, 3):
            assert result.results[index].value == index
        # Two 0.3 s deadlines + backoff, not the 3 s sleep per attempt.
        assert elapsed < 2.5


class TestSteadyStateMeasurement:
    def _sampler(self, samples):
        class FakeSampler:
            pass

        sampler = FakeSampler()
        sampler.samples = samples
        return sampler

    def test_averages_second_half_only(self):
        samples = [
            ThroughputSample(time_ps=t, rates_bps={"flow1": rate, "port0": 999.0})
            for t, rate in ((1, 100.0), (2, 100.0), (3, 10.0), (4, 20.0))
        ]
        # Second half = samples 3 and 4; the startup windows are ignored,
        # as are non-flow meters.
        assert steady_state_flow_rates(self._sampler(samples)) == [15.0]

    def test_empty_samples(self):
        assert steady_state_flow_rates(self._sampler([])) == []

    def test_flow_order_deterministic(self):
        samples = [
            ThroughputSample(time_ps=1, rates_bps={"flow2": 2.0, "flow1": 1.0}),
            ThroughputSample(time_ps=2, rates_bps={"flow2": 2.0, "flow1": 1.0}),
        ]
        assert steady_state_flow_rates(self._sampler(samples)) == [1.0, 2.0]


class TestParallelSweep:
    GRID = [{"rate_ai_bps": 1 * GBPS}, {"rate_ai_bps": 3 * GBPS}, {"rate_ai_bps": 5 * GBPS}]

    def test_parallel_identical_to_serial(self):
        """The acceptance-criterion invariant: same campaign seed,
        workers=1 and workers=4 produce identical SweepPoint lists."""
        kwargs = dict(n_senders=2, duration_ps=int(1.5 * MS), seed=11)
        serial = cc_parameter_sweep("dcqcn", self.GRID, workers=1, **kwargs)
        parallel = cc_parameter_sweep("dcqcn", self.GRID, workers=4, **kwargs)
        assert serial == parallel
        assert [point.params for point in parallel] == self.GRID

    def test_seed_replicates_aggregate(self):
        points, campaign = sweep_campaign(
            "dcqcn",
            self.GRID[:2],
            n_senders=2,
            duration_ps=1 * MS,
            workers=2,
            seeds=2,
        )
        assert len(points) == 2
        assert all(point.n_seeds == 2 for point in points)
        assert campaign.stats()["tasks"] == 4  # 2 grid points x 2 replicates
        assert campaign.stats()["events_total"] > 0


class TestScalingTableParallel:
    def test_matches_serial(self):
        assert scaling_table(max_pipelines=6, workers=2) == scaling_table(
            max_pipelines=6
        )


class TestFluidCampaign:
    def test_parallel_identical_to_serial(self):
        profiles = [dctcp_profile(), dcqcn_profile()]
        kwargs = dict(
            workload="websearch",
            flows_per_port_levels=(4, 8),
            flows_total=2_000,
            seed=5,
        )
        serial, _ = fluid_fct_campaign(profiles, websearch(), workers=1, **kwargs)
        parallel, campaign = fluid_fct_campaign(
            profiles, websearch(), workers=2, **kwargs
        )
        assert serial == parallel
        assert [
            (point.algorithm, point.flows_per_port) for point in parallel
        ] == [("dctcp", 4), ("dctcp", 8), ("dcqcn", 4), ("dcqcn", 8)]
        assert campaign.stats()["events_total"] == sum(
            point.flows_total for point in parallel
        )
