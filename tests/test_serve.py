"""The campaign daemon: spec parsing, result cache, job queue, HTTP API."""

import json

import pytest

from repro.errors import ConfigError, ReproError
from repro.obs.export import parse_prometheus_text
from repro.obs.manifest import CONFIG_HASH_VERSION
from repro.parallel import CampaignRunner
from repro.serve import (
    JobQueue,
    ReproServer,
    ResultCache,
    ServeClient,
    ServeError,
    parse_spec,
)

#: One fast sweep: a single grid point, half a simulated millisecond.
TINY_SWEEP = {
    "kind": "sweep",
    "algorithm": "dcqcn",
    "grid": [{"rate_ai_bps": 1e9}],
    "n_senders": 2,
    "duration_ms": 0.5,
}


class TestParseSpec:
    def test_sweep_defaults_applied(self):
        spec = parse_spec({"kind": "sweep", "algorithm": "dcqcn"})
        assert spec.kind == "sweep"
        assert spec.config["n_senders"] == 3
        assert spec.config["grid"] == [{}]
        assert spec.n_tasks == 1
        assert "sweep dcqcn" in spec.describe()

    def test_fluid_defaults_applied(self):
        spec = parse_spec({"kind": "fluid", "algorithms": ["dctcp", "ideal"]})
        assert spec.config["workload"] == "websearch"
        assert spec.config["backend"] == "closed_form"
        assert spec.n_tasks == 2

    def test_seeds_multiply_task_count(self):
        spec = parse_spec(
            {"kind": "sweep", "algorithm": "dctcp", "grid": [{}, {}], "seeds": 3}
        )
        assert spec.n_tasks == 6

    @pytest.mark.parametrize(
        "payload,match",
        [
            ("not a dict", "JSON object"),
            ({}, "'kind'"),
            ({"kind": "nope"}, "'kind'"),
            ({"kind": "sweep"}, "algorithm"),
            ({"kind": "sweep", "algorithm": "dcqcn", "bogus": 1}, "unknown spec field"),
            ({"kind": "sweep", "algorithm": "dcqcn", "grid": []}, "grid"),
            ({"kind": "sweep", "algorithm": "dcqcn", "n_senders": 1}, "n_senders"),
            ({"kind": "sweep", "algorithm": "dcqcn", "duration_ms": 0}, "duration_ms"),
            ({"kind": "sweep", "algorithm": "dcqcn", "seed": True}, "seed"),
            ({"kind": "fluid", "algorithms": ["martian"]}, "unknown fluid profile"),
            ({"kind": "fluid", "algorithms": ["dctcp"], "workload": "x"}, "workload"),
            ({"kind": "fluid", "algorithms": ["dctcp"], "backend": "gpu"}, "backend"),
        ],
    )
    def test_bad_specs_rejected(self, payload, match):
        with pytest.raises(ConfigError, match=match):
            parse_spec(payload)

    def test_hash_invariant_to_key_order_and_spelled_defaults(self):
        """The cache-dedup contract: key order and explicitly spelling a
        default must not change the canonical hash."""
        terse = parse_spec({"kind": "sweep", "algorithm": "dcqcn"})
        verbose = parse_spec(
            {
                "seed": 0,
                "duration_ms": 6.0,
                "algorithm": "dcqcn",
                "n_senders": 3,
                "kind": "sweep",
                "grid": [{}],
                "ecn_threshold_bytes": 84_000,
                "seeds": None,
            }
        )
        assert terse.config_hash == verbose.config_hash
        changed = parse_spec({"kind": "sweep", "algorithm": "dcqcn", "seed": 1})
        assert changed.config_hash != terse.config_hash

    def test_grid_entry_key_order_invariant(self):
        left = parse_spec(
            {"kind": "sweep", "algorithm": "dcqcn", "grid": [{"a": 1, "b": 2}]}
        )
        right = parse_spec(
            {"kind": "sweep", "algorithm": "dcqcn", "grid": [{"b": 2, "a": 1}]}
        )
        assert left.config_hash == right.config_hash


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = parse_spec(TINY_SWEEP)
        assert cache.get(spec.config_hash) is None  # miss
        cache.put(spec.config_hash, spec.config, {"points": [1, 2]}, seed=0)
        entry = cache.get(spec.config_hash)
        assert entry["result"] == {"points": [1, 2]}
        assert entry["config_hash"] == spec.config_hash
        assert entry["config_hash_version"] == CONFIG_HASH_VERSION
        assert entry["manifest"]["config_hash"] == spec.config_hash
        assert len(cache) == 1
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = parse_spec(TINY_SWEEP)
        cache.put(spec.config_hash, spec.config, {"ok": True}, seed=0)
        [entry_path] = (tmp_path / "cache").glob("*/*.json")
        entry_path.write_text("{ this is not json")
        assert cache.get(spec.config_hash) is None

    def test_mismatched_hash_is_a_miss(self, tmp_path):
        """An entry whose recorded hash disagrees with its filename key
        (tampering, or a hash-version migration) must not be served."""
        cache = ResultCache(tmp_path / "cache")
        spec = parse_spec(TINY_SWEEP)
        cache.put(spec.config_hash, spec.config, {"ok": True}, seed=0)
        [entry_path] = (tmp_path / "cache").glob("*/*.json")
        entry = json.loads(entry_path.read_text())
        entry["config_hash"] = "0" * 64
        entry_path.write_text(json.dumps(entry))
        assert cache.get(spec.config_hash) is None


class TestResultCacheEviction:
    @staticmethod
    def _key(i: int) -> str:
        return f"{i:02x}" + "ab" * 31

    def test_max_entries_prunes_oldest(self, tmp_path):
        import time

        cache = ResultCache(tmp_path / "cache", max_entries=3)
        for i in range(5):
            cache.put(self._key(i), {"i": i}, {"points": [i]})
            time.sleep(0.02)  # distinct mtimes on coarse-clock kernels
        assert len(cache) == 3
        assert cache.evictions == 2
        assert cache.get(self._key(0)) is None
        assert cache.get(self._key(1)) is None
        assert cache.get(self._key(4)) is not None
        assert cache.stats()["evictions"] == 2

    def test_hit_refreshes_lru_order(self, tmp_path):
        import time

        cache = ResultCache(tmp_path / "cache", max_entries=2)
        cache.put(self._key(0), {}, {"points": [0]})
        time.sleep(0.02)
        cache.put(self._key(1), {}, {"points": [1]})
        time.sleep(0.02)
        assert cache.get(self._key(0)) is not None  # 0 becomes most recent
        time.sleep(0.02)
        cache.put(self._key(2), {}, {"points": [2]})
        assert cache.get(self._key(0)) is not None  # survived the prune
        assert cache.get(self._key(1)) is None      # the LRU victim

    def test_ttl_expires_entries(self, tmp_path):
        import time

        cache = ResultCache(tmp_path / "cache", ttl_s=0.05)
        cache.put(self._key(0), {}, {"points": []})
        assert cache.get(self._key(0)) is not None
        time.sleep(0.1)
        assert cache.get(self._key(0)) is None  # expired: evicted + miss
        assert cache.evictions == 1
        assert len(cache) == 0

    def test_unbounded_by_default(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for i in range(5):
            cache.put(self._key(i), {"i": i}, {"points": [i]})
        assert len(cache) == 5
        assert cache.evictions == 0

    def test_limit_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path / "cache", max_entries=0)
        with pytest.raises(ValueError):
            ResultCache(tmp_path / "cache", ttl_s=0)

    def test_server_exposes_eviction_metric(self, tmp_path):
        from repro.serve import ReproServer

        server = ReproServer(
            port=0,
            workers=1,
            cache_dir=tmp_path / "cache",
            cache_max_entries=1,
        )
        try:
            server.cache.put(self._key(0), {}, {"points": []})
            server.cache.put(self._key(1), {}, {"points": []})
            metrics = {
                (s.name): s.value
                for s in server.registry.collect()
            }
            assert metrics["repro_serve_cache_evictions_total"] == 1
            assert server.cache.stats()["evictions"] == 1
        finally:
            # The HTTP/queue side never started; only the pool needs
            # shutting down.
            server.queue.runner.close()


class TestJobQueue:
    def _wait_done(self, queue, job_id, timeout_s=60.0):
        job, _ = queue.wait(job_id, timeout_s=timeout_s)
        while job is not None and not job.finished:
            job, _ = queue.wait(job_id, timeout_s=timeout_s)
        return job

    def test_run_then_cache_hit(self, tmp_path):
        events = []
        queue = JobQueue(
            CampaignRunner(workers=1),
            ResultCache(tmp_path / "cache"),
            on_event=lambda event, job: events.append(event),
        )
        queue.start()
        try:
            spec = parse_spec(TINY_SWEEP)
            job = queue.submit(spec)
            assert job.state in ("queued", "running")
            job = self._wait_done(queue, job.id)
            assert job.state == "done"
            assert not job.cached
            assert job.progress() == 1.0
            assert len(job.result["points"]) == 1
            assert job.beats, "the sweep should have streamed heartbeats"

            # Identical spec again: served from cache, instantly done.
            again = queue.submit(parse_spec(dict(TINY_SWEEP)))
            assert again.id != job.id
            assert again.cached
            assert again.state == "done"
            assert again.result == job.result
            assert events.count("accepted") == 1
            assert events.count("cache_hit") == 1
        finally:
            queue.close()

    def test_submit_while_inflight_shares_the_job(self, tmp_path):
        queue = JobQueue(CampaignRunner(workers=1), ResultCache(tmp_path / "c"))
        queue.start()
        try:
            first = queue.submit(parse_spec(TINY_SWEEP))
            second = queue.submit(parse_spec(TINY_SWEEP))
            # Either coalesced onto the in-flight job, or (if the first
            # finished in between) satisfied from its cached result.
            assert second.id == first.id or second.cached
            assert self._wait_done(queue, first.id).state == "done"
        finally:
            queue.close()

    def test_queue_full_rejected(self, tmp_path):
        # Never started: nothing drains, so the second distinct submit
        # overflows a queue of depth 1.
        queue = JobQueue(
            CampaignRunner(workers=1), ResultCache(tmp_path / "c"), max_queued=1
        )
        queue.submit(parse_spec(TINY_SWEEP))
        with pytest.raises(ReproError, match="full"):
            queue.submit(parse_spec({**TINY_SWEEP, "seed": 7}))
        assert queue.queue_depth() == 1

    def test_failed_job_reports_error(self, tmp_path):
        queue = JobQueue(CampaignRunner(workers=1), ResultCache(tmp_path / "c"))
        queue.start()
        try:
            job = queue.submit(
                parse_spec({**TINY_SWEEP, "algorithm": "no-such-algorithm"})
            )
            job = self._wait_done(queue, job.id)
            assert job.state == "failed"
            assert "no-such-algorithm" in job.error
            # A failed run must NOT poison the cache.
            assert queue.cache.get(job.config_hash) is None
        finally:
            queue.close()


class TestServeHttp:
    @pytest.fixture()
    def server(self, tmp_path):
        server = ReproServer(port=0, workers=1, cache_dir=tmp_path / "cache")
        server.start_background()
        yield server
        server.close()

    def test_end_to_end_submit_poll_and_cached_resubmit(self, server):
        client = ServeClient(server.host, server.port)
        assert client.health()["ok"] is True

        submitted = client.submit(TINY_SWEEP)
        assert submitted["state"] in ("queued", "running", "done")
        beats = []
        final = client.wait(
            submitted["job_id"], timeout_s=120.0, on_heartbeat=beats.append
        )
        assert final["state"] == "done"
        assert final["cached"] is False
        assert len(final["result"]["points"]) == 1
        assert beats and beats[-1]["final"]
        # Cursor-windowed long-polling must deliver each beat exactly once.
        keys = [(b["task_id"], b["sim_now_ps"], b["final"]) for b in beats]
        assert len(keys) == len(set(keys))

        # Same campaign, permuted keys: instant cache hit, result inline.
        resubmitted = client.submit(dict(reversed(list(TINY_SWEEP.items()))))
        assert resubmitted["state"] == "done"
        assert resubmitted["cached"] is True
        assert resubmitted["result"] == final["result"]
        assert resubmitted["job_id"] != final["job_id"]

        assert [job["job_id"] for job in client.jobs()] == [
            final["job_id"],
            resubmitted["job_id"],
        ]

        samples = {
            name: value
            for name, _, value in parse_prometheus_text(client.metrics())
        }
        assert samples["repro_serve_jobs_accepted_total"] == 2
        assert samples["repro_serve_jobs_completed_total"] == 1
        assert samples["repro_serve_cache_hits_total"] == 1
        assert samples["repro_serve_cache_misses_total"] == 1
        assert samples["repro_serve_cache_entries"] == 1
        assert samples["repro_serve_queue_depth"] == 0

    def test_error_surfaces(self, server):
        client = ServeClient(server.host, server.port)
        with pytest.raises(ServeError) as bad_spec:
            client.submit({"kind": "sweep"})  # missing algorithm
        assert bad_spec.value.status == 400
        assert "algorithm" in str(bad_spec.value)

        with pytest.raises(ServeError) as bad_json:
            client.submit({"kind": "sweep", "algorithm": "dcqcn", "bogus": 1})
        assert bad_json.value.status == 400

        with pytest.raises(ServeError) as missing:
            client.job("job-999999")
        assert missing.value.status == 404
