"""Vectorized fluid kernels must match the scalar reference exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluid import FluidSimulator, dcqcn_profile, dctcp_profile, ideal_profile
from repro.units import MICROSECOND
from repro.workload import websearch


@pytest.fixture(params=[4, 100, 5461])
def fluid(request):
    return FluidSimulator(n_ports=1, flows_per_port=request.param, seed=3)


PROFILES = [
    ideal_profile(),
    dctcp_profile(jitter_sigma=0.0),
    dcqcn_profile(jitter_sigma=0.0),
]

SIZES = np.array(
    [1, 500, 1_000, 10_000, 64_000, 200_000, 1_000_000, 5_000_000, 30_000_000],
    dtype=float,
)


class TestVectorScalarEquivalence:
    @pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
    def test_batch_matches_scalar(self, fluid, profile):
        batch = fluid._fct_batch_ps(SIZES, profile)
        scalar = np.array([fluid.flow_fct_ps(s, profile) for s in SIZES])
        assert np.allclose(batch, scalar, rtol=1e-9)

    @given(size=st.floats(min_value=1, max_value=3e7))
    @settings(max_examples=120, deadline=None)
    def test_random_sizes_match(self, size):
        fluid = FluidSimulator(n_ports=1, flows_per_port=1000, seed=0)
        for profile in PROFILES:
            batch = fluid._fct_batch_ps(np.array([size]), profile)[0]
            scalar = fluid.flow_fct_ps(size, profile)
            assert batch == pytest.approx(scalar, rel=1e-9)

    def test_monotone_in_size(self, fluid):
        for profile in PROFILES:
            fct = fluid._fct_batch_ps(SIZES, profile)
            assert np.all(np.diff(fct) >= 0)

    def test_run_uses_vectorized_path(self):
        """Full run equals per-flow scalar evaluation on the same draws."""
        fluid = FluidSimulator(n_ports=2, flows_per_port=50, seed=11)
        profile = dctcp_profile(jitter_sigma=0.0)
        result = fluid.run(profile, websearch(), flows_total=500)
        expected = [
            fluid.flow_fct_ps(float(s), profile) / MICROSECOND
            for s in result.sizes_bytes
        ]
        assert np.allclose(result.fcts_us, expected)

    def test_large_batch_fast(self):
        """100k flows should take well under a second per profile."""
        import time

        fluid = FluidSimulator(n_ports=12, flows_per_port=5461, seed=1)
        sizes = websearch().sample_many(np.random.default_rng(0), 100_000)
        start = time.monotonic()
        for profile in PROFILES:
            fluid._fct_batch_ps(sizes.astype(float), profile)
        assert time.monotonic() - start < 5.0
