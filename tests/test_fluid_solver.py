"""The columnar fluid solver: oracle equivalence, determinism, and
population management (arrivals, departures, compaction)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.kernels import (
    KERNEL_DCQCN,
    KERNEL_DCTCP,
    KERNEL_IDEAL,
    KERNEL_SLOW_START,
    fluid_kernel,
    kernel_name,
)
from repro.errors import ConfigError
from repro.fluid import (
    ColumnarFluidSolver,
    SolverConfig,
    dcqcn_profile,
    dctcp_profile,
    fluid_fct_campaign,
    ideal_fct_ps,
    ideal_profile,
    kernel_for_profile,
    run_fluid_point,
)
from repro.units import BITS_PER_BYTE, MICROSECOND, RATE_100G, US
from repro.workload import websearch


class TestKernelMapping:
    def test_explicit_names(self):
        assert fluid_kernel("ideal") == KERNEL_IDEAL
        assert fluid_kernel("constant") == KERNEL_IDEAL
        assert fluid_kernel("slow_start") == KERNEL_SLOW_START
        assert fluid_kernel("dctcp") == KERNEL_DCTCP
        assert fluid_kernel("dcqcn") == KERNEL_DCQCN

    def test_registry_fallback_by_cc_mode(self):
        # Window-mode algorithms fall back to the generic window kernel,
        # rate-mode ones to the rate kernel.
        assert fluid_kernel("reno") == KERNEL_SLOW_START
        assert fluid_kernel("timely") == KERNEL_DCQCN

    def test_unknown_raises(self):
        with pytest.raises(ConfigError):
            fluid_kernel("definitely-not-a-cc")

    def test_kernel_names_round_trip(self):
        for code in (KERNEL_IDEAL, KERNEL_SLOW_START, KERNEL_DCTCP, KERNEL_DCQCN):
            assert fluid_kernel(kernel_name(code)) == code

    def test_kernel_for_profile(self):
        assert kernel_for_profile(ideal_profile()) == KERNEL_IDEAL
        assert kernel_for_profile(dctcp_profile()) == KERNEL_DCTCP
        assert kernel_for_profile(dcqcn_profile()) == KERNEL_DCQCN


class TestIdealOracle:
    """The ideal kernel must reproduce the closed-form FCT exactly —
    completion interpolation makes it independent of dt."""

    def test_static_population_matches_closed_form(self):
        n, size = 10, 1_000_000
        solver = ColumnarFluidSolver(n_bottlenecks=1, seed=1)
        solver.add_flows([size] * n, kernel="ideal")
        while solver.n_active:
            solver.step(64)
        result = solver.completions()
        expect_us = ideal_fct_ps(size, n, RATE_100G) / MICROSECOND
        assert result.fcts_us == pytest.approx([expect_us] * n, rel=1e-9)

    def test_dt_independence(self):
        fcts = []
        for dt in (1 * US, 7 * US):
            solver = ColumnarFluidSolver(
                n_bottlenecks=1, config=SolverConfig(dt_ps=dt), seed=1
            )
            solver.add_flows([250_000] * 4, kernel="ideal")
            while solver.n_active:
                solver.step()
            fcts.append(solver.completions().fcts_us)
        assert fcts[0] == pytest.approx(fcts[1], rel=1e-9)

    def test_closed_loop_matches_per_flow_oracle(self):
        # Under closed-loop replacement the population is constant, so
        # every ideal flow runs at C/n for its whole life: its FCT is the
        # scalar oracle's.  The seed cohort starts on a step boundary and
        # is exact; respawned flows start mid-step, so they carry at most
        # one dt of discretization.
        n_slots = 16
        solver = ColumnarFluidSolver(n_bottlenecks=1, seed=7)
        dt_us = solver.config.dt_ps / MICROSECOND
        dist = websearch()
        sizes = dist.sample_many(solver.rng, n_slots)
        solver.add_flows(sizes, kernel="ideal")
        run = solver.run_closed_loop(dist, flows_total=400)
        expect_us = np.array(
            [
                ideal_fct_ps(size, n_slots, RATE_100G) / MICROSECOND
                for size in run.sizes_bytes
            ]
        )
        seeded = run.flow_ids < n_slots
        np.testing.assert_allclose(
            run.fcts_us[seeded], expect_us[seeded], rtol=1e-9
        )
        np.testing.assert_allclose(run.fcts_us, expect_us, atol=dt_us, rtol=1e-9)

    def test_closed_form_scalar_oracle_agrees(self):
        # Same steady state through the FluidSimulator profile kernel
        # (ideal profile: utilization 1, constant rate).
        from repro.fluid import FluidSimulator

        sim = FluidSimulator(n_ports=1, flows_per_port=8)
        solver = ColumnarFluidSolver(n_bottlenecks=1, seed=3)
        solver.add_flows([500_000] * 8, kernel="ideal")
        while solver.n_active:
            solver.step(32)
        got = solver.completions().fcts_us[0] * MICROSECOND
        want = sim.flow_fct_ps(500_000, ideal_profile())
        assert got == pytest.approx(want, rel=1e-9)


class TestClosedLoopBehaviour:
    """Loose steady-state checks for the feedback kernels: the columnar
    dynamics must land in the same regime as the closed-form profiles."""

    @pytest.fixture(scope="class")
    def points(self):
        dist = websearch()
        out = {}
        for backend in ("closed_form", "columnar"):
            for profile in (ideal_profile(), dcqcn_profile()):
                out[(backend, profile.name)] = run_fluid_point(
                    profile,
                    dist,
                    flows_per_port=8,
                    flows_total=2000,
                    n_ports=2,
                    seed=11,
                    backend=backend,
                )
        return out

    def test_mean_fct_consistent_across_backends(self, points):
        for algorithm in ("ideal", "dcqcn"):
            closed = points[("closed_form", algorithm)].mean_fct_us
            columnar = points[("columnar", algorithm)].mean_fct_us
            assert columnar == pytest.approx(closed, rel=0.5)

    def test_dcqcn_short_flow_advantage(self, points):
        # Line-rate start: DCQCN's median (short flows dominate the
        # websearch count) beats equal-share ideal in both backends.
        for backend in ("closed_form", "columnar"):
            dcqcn = points[(backend, "dcqcn")]
            ideal = points[(backend, "ideal")]
            assert dcqcn.p50_fct_us < ideal.p50_fct_us

    def test_dctcp_queue_sits_near_threshold(self):
        # DCTCP's marking loop keeps the standing queue around K.
        cfg = SolverConfig()
        solver = ColumnarFluidSolver(n_bottlenecks=1, config=cfg, seed=2)
        solver.add_flows([1_000_000_000] * 8, kernel="dctcp")
        solver.step(4000)
        assert solver.n_active == 8  # long flows: nobody finished yet
        queue_bytes = solver.queue_bits[0] / BITS_PER_BYTE
        assert 0.2 * cfg.ecn_threshold_bytes < queue_bytes < 5 * cfg.ecn_threshold_bytes


class TestDeterminism:
    def _run(self, seed):
        solver = ColumnarFluidSolver(n_bottlenecks=2, seed=seed)
        dist = websearch()
        sizes = dist.sample_many(solver.rng, 32)
        solver.add_flows(sizes, bottleneck=np.arange(32, dtype=np.int32) % 2)
        run = solver.run_closed_loop(dist, flows_total=300)
        return solver, run

    def test_same_seed_bit_identical(self):
        a_solver, a = self._run(42)
        b_solver, b = self._run(42)
        assert np.array_equal(a.fcts_us, b.fcts_us)
        assert np.array_equal(a.sizes_bytes, b.sizes_bytes)
        assert np.array_equal(a.flow_ids, b.flow_ids)
        for name in ColumnarFluidSolver._COLUMNS:
            col_a = getattr(a_solver, name)[: a_solver.n_rows]
            col_b = getattr(b_solver, name)[: b_solver.n_rows]
            assert np.array_equal(col_a, col_b), name

    def test_different_seed_differs(self):
        _, a = self._run(42)
        _, b = self._run(43)
        assert not np.array_equal(a.sizes_bytes, b.sizes_bytes)

    def test_campaign_worker_count_invariant(self):
        dist = websearch()
        kwargs = dict(
            workload="websearch",
            flows_per_port_levels=(4, 8),
            flows_total=300,
            n_ports=2,
            seed=5,
            backend="columnar",
        )
        profiles = [ideal_profile(), dcqcn_profile()]
        serial, _ = fluid_fct_campaign(profiles, dist, workers=1, **kwargs)
        pooled, _ = fluid_fct_campaign(profiles, dist, workers=2, **kwargs)
        assert serial == pooled


class TestSolverTelemetry:
    def _run(self, seed, *, telemetry, sample_every=1):
        solver = ColumnarFluidSolver(n_bottlenecks=2, seed=seed)
        if telemetry:
            solver.enable_telemetry(sample_every=sample_every)
        dist = websearch()
        sizes = dist.sample_many(solver.rng, 32)
        solver.add_flows(sizes, bottleneck=np.arange(32, dtype=np.int32) % 2)
        run = solver.run_closed_loop(dist, flows_total=300)
        return solver, run

    def test_telemetry_on_is_bit_identical(self):
        """Sampling only reads solver state: same seed, same FCTs,
        same columns, telemetry on or off."""
        off_solver, off = self._run(11, telemetry=False)
        on_solver, on = self._run(11, telemetry=True)
        assert np.array_equal(off.fcts_us, on.fcts_us)
        assert np.array_equal(off.sizes_bytes, on.sizes_bytes)
        for name in ColumnarFluidSolver._COLUMNS:
            col_off = getattr(off_solver, name)[: off_solver.n_rows]
            col_on = getattr(on_solver, name)[: on_solver.n_rows]
            assert np.array_equal(col_off, col_on), name

    def test_series_shapes_and_content(self):
        solver, run = self._run(11, telemetry=True)
        series = solver.telemetry.arrays()
        n = len(solver.telemetry)
        assert n == run.steps
        assert series["time_ps"].shape == (n,)
        for key in ("queue_bytes", "offered_bps", "mark", "active_flows"):
            assert series[key].shape == (n, 2), key
        assert series["completions"].shape == (n,)
        assert np.all(np.diff(series["time_ps"]) > 0)
        assert int(series["completions"].sum()) == solver.flows_completed
        # Closed loop holds the population constant at 16 per bottleneck.
        assert np.all(series["active_flows"] == 16)
        assert np.all(series["queue_bytes"] >= 0)

    def test_sample_every_decimates(self):
        every, _ = self._run(11, telemetry=True)
        sparse, _ = self._run(11, telemetry=True, sample_every=10)
        dense = every.telemetry.arrays()
        thin = sparse.telemetry.arrays()
        assert len(sparse.telemetry) == -(-len(every.telemetry) // 10)
        assert np.array_equal(thin["time_ps"], dense["time_ps"][::10])
        assert np.array_equal(thin["queue_bytes"], dense["queue_bytes"][::10])

    def test_sample_every_validation(self):
        solver = ColumnarFluidSolver()
        with pytest.raises(ConfigError):
            solver.enable_telemetry(sample_every=0)

    def test_disable_telemetry_stops_sampling(self):
        solver = ColumnarFluidSolver(n_bottlenecks=1, seed=0)
        solver.enable_telemetry()
        solver.add_flows([10_000] * 4, kernel="ideal")
        solver.step(3)
        assert len(solver.telemetry) == 3
        solver.disable_telemetry()
        assert solver.telemetry is None
        solver.step(3)  # no crash, nothing sampled

    def test_save_round_trip(self, tmp_path):
        solver, _ = self._run(11, telemetry=True)
        path = tmp_path / "series.npz"
        solver.telemetry.save(path)
        loaded = np.load(path)
        series = solver.telemetry.arrays()
        for key in series:
            assert np.array_equal(loaded[key], series[key]), key

    def test_metrics_bindings(self):
        from repro.obs import MetricsRegistry, instrument_fluid_solver

        solver, run = self._run(11, telemetry=False)
        registry = MetricsRegistry()
        instrument_fluid_solver(solver, registry)
        samples = {s.name: s.value for s in registry.collect()}
        assert samples["repro_fluid_steps_total"] == run.steps
        assert samples["repro_fluid_flow_steps_total"] == run.flow_steps
        assert samples["repro_fluid_flows_completed_total"] == solver.flows_completed
        assert samples["repro_fluid_active_flows"] == solver.n_active


class TestPopulation:
    def test_add_flows_validation(self):
        solver = ColumnarFluidSolver(n_bottlenecks=2)
        with pytest.raises(ConfigError):
            solver.add_flows([])
        with pytest.raises(ConfigError):
            solver.add_flows([0])
        with pytest.raises(ConfigError):
            solver.add_flows([100], bottleneck=2)
        with pytest.raises(ConfigError):
            solver.add_flows([100], bottleneck=[0, 1])
        with pytest.raises(ConfigError):
            solver.add_flows([100], kernel="no-such-kernel")

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            SolverConfig(dt_ps=0).validate()
        with pytest.raises(ConfigError):
            SolverConfig(compact_slack=1.0).validate()
        with pytest.raises(ConfigError):
            ColumnarFluidSolver(n_bottlenecks=0)
        with pytest.raises(ConfigError):
            ColumnarFluidSolver(n_bottlenecks=2, capacity_bps=[1e9])

    def test_backend_validation(self):
        with pytest.raises(ConfigError):
            run_fluid_point(
                ideal_profile(),
                websearch(),
                flows_per_port=4,
                flows_total=10,
                backend="warp",
            )

    def test_growth_preserves_state(self):
        solver = ColumnarFluidSolver(n_bottlenecks=1, capacity_hint=4)
        first = solver.add_flows([1000] * 4, kernel="dctcp")
        snapshot = solver.remaining_bits[:4].copy()
        second = solver.add_flows([2000] * 100, kernel="dctcp")
        assert solver.n_rows == 104
        assert np.array_equal(solver.remaining_bits[:4], snapshot)
        assert np.array_equal(solver.flow_id[:4], first)
        assert second[0] == first[-1] + 1

    def test_compaction_preserves_live_rows(self):
        solver = ColumnarFluidSolver(n_bottlenecks=1, seed=0)
        # Short flows finish early and leave dead rows behind the big ones.
        solver.add_flows([2_000] * 8, kernel="ideal")
        big = solver.add_flows([5_000_000] * 4, kernel="ideal")
        while solver.n_active > 4:
            solver.step()
        live = {
            int(fid): float(rem)
            for fid, rem, act in zip(
                solver.flow_id[: solver.n_rows],
                solver.remaining_bits[: solver.n_rows],
                solver.active[: solver.n_rows],
            )
            if act
        }
        freed = solver.compact()
        assert freed == 8
        assert solver.n_rows == solver.n_active == 4
        assert np.array_equal(solver.flow_id[:4], big)
        for fid, rem in zip(solver.flow_id[:4], solver.remaining_bits[:4]):
            assert live[int(fid)] == rem
        assert solver.compact() == 0  # idempotent
        # The survivors still finish, and the completion log is intact.
        while solver.n_active:
            solver.step(64)
        result = solver.completions()
        assert result.fcts_us.size == 12
        assert solver.flows_added == solver.flows_completed == 12

    def test_auto_compaction_open_loop(self):
        cfg = SolverConfig(compact_min_rows=32, compact_slack=1.5)
        solver = ColumnarFluidSolver(n_bottlenecks=1, config=cfg, seed=0)
        solver.add_flows([1_000] * 63, kernel="ideal")
        solver.add_flows([20_000_000], kernel="ideal")
        while solver.n_active > 1:
            solver.step()
        # 63 dead rows against 1 live flow: the slack policy must have
        # compacted them away.
        assert solver.n_rows < 32

    def test_flow_step_accounting(self):
        solver = ColumnarFluidSolver(n_bottlenecks=1)
        solver.add_flows([1_000_000] * 100, kernel="dcqcn")
        solver.step(5)
        assert solver.steps_run == 5
        assert solver.flow_steps == 500


@given(
    sizes=st.lists(
        st.integers(min_value=100, max_value=2_000_000), min_size=1, max_size=16
    ),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_open_loop_conservation(sizes, seed):
    """Open loop with the ideal kernel: every byte admitted completes,
    ids and sizes survive, and FCTs are bounded below by the serialized
    transmission time."""
    solver = ColumnarFluidSolver(n_bottlenecks=1, seed=seed)
    ids = solver.add_flows(sizes, kernel="ideal")
    for _ in range(200_000):
        if not solver.n_active:
            break
        solver.step(16)
    assert solver.n_active == 0
    result = solver.completions()
    assert sorted(result.flow_ids.tolist()) == sorted(ids.tolist())
    assert sorted(result.sizes_bytes.tolist()) == sorted(float(s) for s in sizes)
    # No flow beats the bare wire time for its own bytes.
    wire_us = result.sizes_bytes * BITS_PER_BYTE / RATE_100G * 1e6
    assert np.all(result.fcts_us >= wire_us * (1 - 1e-12))
    # Equal shares: a bigger flow never finishes before a smaller one.
    # (Same-step completions are logged in row order, so sort by size,
    # not by log position.)
    finish = result.fcts_us  # all started at t=0
    by_size = np.argsort(result.sizes_bytes, kind="stable")
    assert np.all(np.diff(finish[by_size]) >= -1e-6)
