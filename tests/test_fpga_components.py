"""FPGA leaf components: clock, FIFOs, BRAM, HLS cost model, logger."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import Cubic, Dcqcn, Dctcp, OpCounts, Reno
from repro.errors import CCModuleError, RMWConflictError, ResourceExceededError
from repro.fpga.bram import FlowBram
from repro.fpga.clock import cycles_to_ps, ps_to_cycles
from repro.fpga.fifos import Fifo
from repro.fpga.hls import algorithm_cycles, estimate_cycles
from repro.fpga.logger import MAX_VALUES_PER_RECORD, QdmaLogger, RECORDS_PER_UPLOAD
from repro.fpga.resources import (
    MAX_FLOWS,
    PAPER_TABLE4,
    estimate_resources,
    flow_state_bytes,
    max_flows,
)
from repro.units import FPGA_CYCLE_PS


class TestClock:
    def test_roundtrip(self):
        assert ps_to_cycles(cycles_to_ps(40)) == 40

    def test_cycle_is_322mhz(self):
        assert cycles_to_ps(1) == FPGA_CYCLE_PS

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cycles_to_ps(-1)
        with pytest.raises(ValueError):
            ps_to_cycles(-1)


class TestFifo:
    def test_fifo_order(self):
        fifo = Fifo(4)
        for i in range(3):
            assert fifo.push(i)
        assert [fifo.pop() for _ in range(3)] == [0, 1, 2]

    def test_drop_on_full(self):
        fifo = Fifo(2)
        fifo.push(1)
        fifo.push(2)
        assert not fifo.push(3)
        assert fifo.stats.dropped == 1

    def test_stats(self):
        fifo = Fifo(8)
        for i in range(5):
            fifo.push(i)
        fifo.pop()
        assert fifo.stats.pushed == 5
        assert fifo.stats.popped == 1
        assert fifo.stats.max_depth == 5

    def test_pop_empty(self):
        assert Fifo(2).pop() is None

    @given(st.lists(st.one_of(st.just(None), st.integers()), max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_model_equivalence(self, ops):
        fifo = Fifo(8)
        model = []
        for op in ops:
            if op is None:
                expected = model.pop(0) if model else None
                assert fifo.pop() == expected
            else:
                if len(model) < 8:
                    assert fifo.push(op)
                    model.append(op)
                else:
                    assert not fifo.push(op)


class TestFlowBram:
    def test_storage(self):
        bram = FlowBram()
        bram.write(1, "state")
        assert bram.read(1) == "state"
        assert 1 in bram
        bram.delete(1)
        assert bram.read(1) is None

    def test_non_overlapping_rmw_ok(self):
        bram = FlowBram()
        assert not bram.begin_rmw(1, 0, 100)
        assert not bram.begin_rmw(1, 100, 100)
        assert bram.conflicts == 0

    def test_overlapping_rmw_conflicts(self):
        bram = FlowBram()
        bram.begin_rmw(1, 0, 100)
        assert bram.begin_rmw(1, 50, 100)
        assert bram.conflicts == 1

    def test_different_flows_never_conflict(self):
        bram = FlowBram()
        bram.begin_rmw(1, 0, 100)
        assert not bram.begin_rmw(2, 10, 100)

    def test_strict_mode_raises(self):
        bram = FlowBram(strict=True)
        bram.begin_rmw(1, 0, 100)
        with pytest.raises(RMWConflictError):
            bram.begin_rmw(1, 50, 100)


class TestHlsModel:
    def test_reno_is_2_cycles(self):
        assert algorithm_cycles(Reno()) == 2

    def test_dctcp_is_24_cycles(self):
        assert algorithm_cycles(Dctcp()) == 24

    def test_dcqcn_is_6_cycles(self):
        assert algorithm_cycles(Dcqcn()) == 6

    def test_cubic_is_about_100_cycles(self):
        cycles = algorithm_cycles(Cubic())
        assert 90 <= cycles <= 110  # Section 8: "around 100 clock cycles"

    def test_empty_ops_is_one_cycle(self):
        assert estimate_cycles(OpCounts()) == 1

    def test_division_dominates(self):
        assert estimate_cycles(OpCounts(div16=1)) > estimate_cycles(
            OpCounts(add_sub=8, mul32=2)
        )


class TestResources:
    def test_paper_bram_ordering(self):
        """Table 4 ordering: DCQCN < Reno < DCTCP in BRAM."""
        reno = estimate_resources(Reno()).bram_pct
        dctcp = estimate_resources(Dctcp()).bram_pct
        dcqcn = estimate_resources(Dcqcn()).bram_pct
        assert dcqcn < reno < dctcp

    def test_bram_close_to_paper(self):
        for alg, paper in ((Reno(), 59), (Dctcp(), 63), (Dcqcn(), 46)):
            measured = estimate_resources(alg).bram_pct
            assert measured == pytest.approx(paper, abs=2.5)

    def test_65536_flows_fit_bram(self):
        for alg in (Reno(), Dctcp(), Dcqcn()):
            assert max_flows(alg) >= MAX_FLOWS

    def test_uram_scales_further(self):
        """Section 8: 276 Mb of URAM allows scaling beyond 65,536 flows."""
        assert max_flows(Dctcp(), use_uram=True) > 4 * max_flows(Dctcp())

    def test_state_bytes_by_mode(self):
        assert flow_state_bytes(Dcqcn()) == 64  # rate mode, no slow path
        assert flow_state_bytes(Reno()) == 80  # window extras
        assert flow_state_bytes(Dctcp()) == 88  # window + slow path

    def test_strict_over_budget_raises(self):
        with pytest.raises(ResourceExceededError):
            estimate_resources(Dctcp(), n_flows=10_000_000, strict=True)

    def test_report_rows_have_paper_counterparts(self):
        for name in ("reno", "dctcp", "dcqcn"):
            assert name in PAPER_TABLE4


class TestQdmaLogger:
    def test_log_and_series(self):
        logger = QdmaLogger()
        logger.log(10, "flow1", cwnd=2.0)
        logger.log(20, "flow1", cwnd=4.0)
        times, values = logger.series("flow1", "cwnd")
        assert times == [10, 20]
        assert values == [2.0, 4.0]

    def test_record_budget_enforced(self):
        logger = QdmaLogger()
        too_many = {f"v{i}": i for i in range(MAX_VALUES_PER_RECORD + 1)}
        with pytest.raises(CCModuleError):
            logger.log(0, "x", **too_many)

    def test_upload_aggregation(self):
        logger = QdmaLogger()
        for i in range(RECORDS_PER_UPLOAD):
            logger.log(i, "c", v=i)
        assert logger.uploads == 1
        logger.log(999, "c", v=0)
        assert logger.uploads == 1
        logger.flush()
        assert logger.uploads == 2

    def test_flush_empty_is_noop(self):
        logger = QdmaLogger()
        logger.flush()
        assert logger.uploads == 0
