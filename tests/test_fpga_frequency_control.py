"""Packet-frequency control (Section 5.3): RX/TX timer derivation and the
safety analysis."""

import pytest

from repro.cc import Cubic, Dcqcn, Dctcp, Reno
from repro.errors import ConfigError
from repro.fpga.hls import algorithm_cycles
from repro.fpga.timers import FrequencyControl
from repro.units import FPGA_CYCLE_PS, serialization_time_ps, RATE_100G


class TestDerivedPeriods:
    def test_tx_interval_matches_template_serialization(self):
        fc = FrequencyControl(1024, 12)
        assert fc.tx_interval_ps == serialization_time_ps(1024, RATE_100G)

    def test_rx_defaults_to_tx(self):
        fc = FrequencyControl(1518, 12)
        assert fc.rx_interval_ps == fc.tx_interval_ps

    def test_rx_override(self):
        fc = FrequencyControl(1518, 12, rx_interval_override_ps=1000)
        assert fc.rx_interval_ps == 1000

    def test_sche_interval_is_64b_time(self):
        fc = FrequencyControl(1024, 12)
        assert fc.sche_interval_ps == serialization_time_ps(64, RATE_100G)


class TestRmwBudget:
    def test_paper_40_cycles_at_1518(self):
        """Section 5.3: 'RMW operations are allowed to take a maximum of
        40 clock cycles' at MTU 1518."""
        assert FrequencyControl(1518, 12).max_rmw_cycles == 40

    def test_paper_27_cycles_at_1024(self):
        """Section 6: 'when the template packet size is 1024B, the CC
        module has 27 clock cycles for processing'."""
        assert FrequencyControl(1024, 12).max_rmw_cycles == 27

    def test_dctcp_fits_1024_budget(self):
        """The paper's DCTCP (24 cycles) meets the 27-cycle constraint."""
        fc = FrequencyControl(1024, 12)
        assert algorithm_cycles(Dctcp()) <= fc.max_rmw_cycles
        assert fc.validate(algorithm_cycles(Dctcp())) == []

    def test_all_paper_algorithms_fit(self):
        fc = FrequencyControl(1024, 12)
        for alg in (Reno(), Dctcp(), Dcqcn()):
            assert fc.validate(algorithm_cycles(alg)) == []


class TestViolations:
    def test_rx_slower_than_tx_flagged(self):
        fc = FrequencyControl(1024, 12, rx_interval_override_ps=10**6)
        problems = fc.validate(2)
        assert any("RX FIFOs will overflow" in p for p in problems)

    def test_cubic_flagged_at_line_rate(self):
        """Section 8: Cubic (~100 cycles) cannot run per-packet at line
        rate; the analysis must demand a PPS reduction."""
        fc = FrequencyControl(1518, 12)
        cycles = algorithm_cycles(Cubic())
        problems = fc.validate(cycles)
        assert any("RMW conflicts" in p for p in problems)
        factor = fc.pps_reduction_factor(cycles)
        assert factor >= 2  # ~98 cycles vs 40-cycle budget -> 3x

    def test_pps_reduction_exact(self):
        fc = FrequencyControl(1518, 12)
        assert fc.pps_reduction_factor(40) == 1
        assert fc.pps_reduction_factor(41) == 2
        assert fc.pps_reduction_factor(98) == 3

    def test_too_many_ports_exceed_sche_line_rate(self):
        # 64 B SCHE takes 6720 ps; at MTU 1024 the TX period is 83,520 ps,
        # which fits 12 SCHE but not 13.
        assert FrequencyControl(1024, 12).validate(2) == []
        problems = FrequencyControl(1024, 13).validate(2)
        assert any("line rate" in p for p in problems)

    def test_pps_reduction_rejects_bad_input(self):
        fc = FrequencyControl(1024, 12)
        with pytest.raises(ConfigError):
            fc.pps_reduction_factor(0)
