"""Leaf-spine fabrics, ECMP hashing, and tester-over-fabric runs."""

import pytest

from repro import TestConfig
from repro.core.tester import MarlinTester
from repro.errors import ConfigError
from repro.measure.fairness import jain_index
from repro.net.leaf_spine import (
    attach_endpoint,
    build_leaf_spine,
    wire_tester_leaf_spine,
)
from repro.net.packet import Packet
from repro.net.switch import NetworkSwitch
from repro.net.device import Device
from repro.net.link import Link
from repro.sim import Simulator
from repro.units import GBPS, MS, US


class Sink(Device):
    def __init__(self, sim, name=None):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, port):
        self.received.append(packet)


class TestEcmpRouting:
    def build(self, n_paths=4):
        sim = Simulator()
        switch = NetworkSwitch(sim, "sw")
        ingress = Sink(sim, "in")
        Link(ingress.add_port(), switch.add_ecn_port(), delay_ps=0)
        sinks = []
        group = []
        for i in range(n_paths):
            port = switch.add_ecn_port()
            sink = Sink(sim, f"path{i}")
            Link(port, sink.add_port(), delay_ps=0)
            group.append(port)
            sinks.append(sink)
        switch.set_ecmp_route(9, group)
        return sim, switch, sinks

    def test_flow_sticks_to_one_path(self):
        sim, switch, sinks = self.build()
        for psn in range(20):
            switch.receive(Packet("DATA", 1, 9, 64, flow_id=77, psn=psn), None)
        sim.run()
        used = [i for i, sink in enumerate(sinks) if sink.received]
        assert len(used) == 1
        assert len(sinks[used[0]].received) == 20

    def test_many_flows_spread_over_paths(self):
        sim, switch, sinks = self.build(n_paths=4)
        for flow in range(64):
            switch.receive(Packet("DATA", 1, 9, 64, flow_id=flow, psn=0), None)
        sim.run()
        counts = [len(sink.received) for sink in sinks]
        assert all(count > 0 for count in counts)  # every path used
        assert max(counts) <= 3 * min(counts) + 4  # roughly balanced

    def test_hash_deterministic(self):
        sim1, switch1, sinks1 = self.build()
        sim2, switch2, sinks2 = self.build()
        for switch, sim in ((switch1, sim1), (switch2, sim2)):
            switch.receive(Packet("DATA", 5, 9, 64, flow_id=123, psn=0), None)
            sim.run()
        path1 = [i for i, s in enumerate(sinks1) if s.received]
        path2 = [i for i, s in enumerate(sinks2) if s.received]
        assert path1 == path2

    def test_empty_group_rejected(self):
        switch = NetworkSwitch(Simulator())
        with pytest.raises(ConfigError):
            switch.set_ecmp_route(1, [])

    def test_foreign_port_rejected(self):
        sim = Simulator()
        switch = NetworkSwitch(sim)
        other = Sink(sim)
        with pytest.raises(ConfigError):
            switch.set_ecmp_route(1, [other.add_port()])


class TestFabricConstruction:
    def test_mesh_shape(self):
        fabric = build_leaf_spine(Simulator(), 3, 2)
        assert fabric.n_leaves == 3 and fabric.n_spines == 2
        for leaf in fabric.leaves:
            assert len(leaf.ports) == 2  # one uplink per spine
        for spine in fabric.spines:
            assert len(spine.ports) == 3  # one downlink per leaf

    def test_attach_endpoint_installs_routes(self):
        sim = Simulator()
        fabric = build_leaf_spine(sim, 2, 2)
        host = Sink(sim, "h")
        address = attach_endpoint(fabric, 0, host.add_port())
        assert fabric.leaf_of(address) == 0
        # Owning leaf routes directly; spines route down to leaf 0.
        assert fabric.leaves[0].route_for(address) is not None
        for spine in fabric.spines:
            assert spine.route_for(address) is not None

    def test_validation(self):
        with pytest.raises(ConfigError):
            build_leaf_spine(Simulator(), 0, 1)
        fabric = build_leaf_spine(Simulator(), 1, 1)
        with pytest.raises(ConfigError):
            fabric.leaf_of(999)
        host = Sink(fabric.topology.sim, "h")
        with pytest.raises(ConfigError):
            attach_endpoint(fabric, 5, host.add_port())


class TestTesterOverFabric:
    def deploy(self, n_ports=4, n_leaves=2, n_spines=2, alg="dcqcn", **cc):
        sim = Simulator()
        tester = MarlinTester(
            sim, TestConfig(cc_algorithm=alg, n_test_ports=n_ports, cc_params=cc)
        )
        fabric = wire_tester_leaf_spine(sim, tester, n_leaves, n_spines)
        return sim, tester, fabric

    def test_cross_leaf_flow_completes(self):
        sim, tester, fabric = self.deploy()
        # Port 0 on leaf 0 -> port 1 on leaf 1: crosses the spine mesh.
        flow = tester.start_flow(port_index=0, dst_port_index=1, size_packets=2000)
        sim.run(until_ps=5 * MS)
        assert flow.finished
        assert sum(fabric.spine_load()) > 0

    def test_same_leaf_flow_stays_local(self):
        sim, tester, fabric = self.deploy(n_ports=4, n_leaves=2)
        # Ports 0 and 2 both land on leaf 0 (round-robin).
        flow = tester.start_flow(port_index=0, dst_port_index=2, size_packets=500)
        sim.run(until_ps=3 * MS)
        assert flow.finished
        assert sum(fabric.spine_load()) == 0

    def test_cross_leaf_incast_converges(self):
        """3 senders on leaf 0 incast one receiver on leaf 1: congestion
        forms at leaf 1's endpoint port; CC shares it fairly."""
        sim, tester, fabric = self.deploy(n_ports=8, n_leaves=2, alg="dcqcn")
        # Even ports -> leaf 0, odd -> leaf 1.
        sampler = tester.enable_rate_sampling(period_ps=500 * US)
        for src in (0, 2, 4):
            tester.start_flow(port_index=src, dst_port_index=1, size_packets=10**9)
        sim.run(until_ps=8 * MS)
        rates = [
            r for n, r in sampler.samples[-1].rates_bps.items()
            if n.startswith("flow")
        ]
        assert len(rates) == 3
        assert jain_index(rates) > 0.9
        assert sum(rates) >= 0.8 * 100 * GBPS

    def test_spines_share_multi_flow_load(self):
        """Many cross-leaf flows spread across both spines via ECMP."""
        sim, tester, fabric = self.deploy(n_ports=4, n_leaves=2, n_spines=2)
        for i in range(8):
            tester.start_flow(
                port_index=0 if i % 2 == 0 else 2,  # leaf 0 sources
                dst_port_index=1 if i % 2 == 0 else 3,  # leaf 1 sinks
                size_packets=300,
            )
        sim.run(until_ps=10 * MS)
        load = fabric.spine_load()
        assert all(count > 0 for count in load)
