"""The per-port scheduler: rescheduling events, uniqueness, fairness,
priority FIFO, rate pacing (Section 5.2)."""

import pytest

from repro.cc.base import CCMode
from repro.fpga.flow import FlowState
from repro.fpga.scheduler import PortScheduler
from repro.sim import Simulator

TX = 1000  # ps per tick for these tests


def make_flow(flow_id, *, size=100, cwnd=10.0, mode=CCMode.WINDOW, port=0):
    return FlowState(
        flow_id=flow_id,
        port_index=port,
        src_addr=1,
        dst_addr=2,
        size_packets=size,
        frame_bytes=1024,
        cwnd_or_rate=cwnd,
    )


class Harness:
    def __init__(self, mode=CCMode.WINDOW, tx=TX):
        self.sim = Simulator()
        self.emitted = []
        self.scheduler = PortScheduler(
            self.sim, 0, tx, mode, self.emit, on_bytes_sent=None
        )

    def emit(self, flow, psn, is_rtx):
        self.emitted.append((self.sim.now, flow.flow_id, psn, is_rtx))


class TestWindowScheduling:
    def test_emits_one_per_tick(self):
        h = Harness()
        flow = make_flow(1, cwnd=100.0)
        h.scheduler.enqueue_flow(flow)
        h.sim.run(until_ps=5 * TX - 1)
        times = [t for t, *_ in h.emitted]
        assert times == [0, TX, 2 * TX, 3 * TX, 4 * TX]

    def test_psns_sequential(self):
        h = Harness()
        flow = make_flow(1, cwnd=100.0)
        h.scheduler.enqueue_flow(flow)
        h.sim.run(until_ps=4 * TX - 1)
        assert [psn for _, _, psn, _ in h.emitted] == [0, 1, 2, 3]
        assert flow.nxt == 4

    def test_window_limit_deschedules(self):
        h = Harness()
        flow = make_flow(1, cwnd=3.0)
        h.scheduler.enqueue_flow(flow)
        h.sim.run(until_ps=10 * TX)
        assert len(h.emitted) == 3  # window of 3, no ACKs
        assert not flow.scheduled

    def test_reactivation_after_window_opens(self):
        h = Harness()
        flow = make_flow(1, cwnd=2.0)
        h.scheduler.enqueue_flow(flow)
        h.sim.run(until_ps=5 * TX)
        assert len(h.emitted) == 2
        # An ACK arrives: window opens; the CC framework re-enqueues.
        flow.una = 2
        h.scheduler.enqueue_flow(flow)
        h.sim.run(until_ps=10 * TX)
        assert len(h.emitted) == 4

    def test_uniqueness_invariant(self):
        """Enqueueing an already-scheduled flow must not duplicate it."""
        h = Harness()
        flow = make_flow(1, cwnd=100.0)
        h.scheduler.enqueue_flow(flow)
        h.scheduler.enqueue_flow(flow)
        h.scheduler.enqueue_flow(flow)
        assert len(h.scheduler.sched_fifo) == 1
        h.sim.run(until_ps=3 * TX - 1)
        # Still exactly one event cycling: one emission per tick.
        assert len(h.emitted) == 3

    def test_round_robin_fairness(self):
        """n active flows share the port's ticks equally (Figure 6)."""
        h = Harness()
        flows = [make_flow(i, cwnd=1000.0) for i in range(4)]
        for flow in flows:
            h.scheduler.enqueue_flow(flow)
        h.sim.run(until_ps=40 * TX - 1)
        counts = {}
        for _, fid, _, _ in h.emitted:
            counts[fid] = counts.get(fid, 0) + 1
        assert set(counts.values()) == {10}

    def test_finished_flow_dropped(self):
        h = Harness()
        flow = make_flow(1, cwnd=100.0)
        flow.finished = True
        h.scheduler.enqueue_flow(flow)
        h.sim.run(until_ps=5 * TX)
        assert h.emitted == []

    def test_flow_size_limit(self):
        h = Harness()
        flow = make_flow(1, size=3, cwnd=100.0)
        h.scheduler.enqueue_flow(flow)
        h.sim.run(until_ps=10 * TX)
        assert len(h.emitted) == 3
        assert not flow.scheduled


class TestPriorityFifo:
    def test_rtx_served_before_scheduling_fifo(self):
        h = Harness()
        flow = make_flow(1, cwnd=100.0)
        h.scheduler.enqueue_flow(flow)
        h.sim.run(until_ps=2 * TX)
        h.scheduler.enqueue_rtx(flow, 0)
        h.sim.run(until_ps=3 * TX)
        # The tick after the rtx enqueue emits psn 0 as a retransmission.
        rtx_events = [e for e in h.emitted if e[3]]
        assert rtx_events and rtx_events[0][2] == 0
        assert flow.rtx_sent == 1

    def test_rtx_does_not_advance_nxt(self):
        h = Harness()
        flow = make_flow(1, cwnd=0.5)  # window won't allow normal sends
        flow.cwnd_or_rate = 1.0
        flow.nxt = 5
        flow.una = 5
        h.scheduler.enqueue_rtx(flow, 2)
        h.sim.run(until_ps=2 * TX)
        assert flow.nxt == 5
        assert h.emitted[0][2] == 2

    def test_rtx_for_finished_flow_skipped(self):
        h = Harness()
        flow = make_flow(1)
        flow.finished = True
        h.scheduler.enqueue_rtx(flow, 0)
        h.sim.run(until_ps=2 * TX)
        assert h.emitted == []


class TestRateScheduling:
    def test_pacing_limits_rate(self):
        h = Harness(mode=CCMode.RATE)
        # 1024 B frames, rate chosen so pacing interval = 4 ticks.
        wire_bits = (1024 + 20) * 8
        rate = wire_bits * 1e12 / (4 * TX)
        flow = make_flow(1, mode=CCMode.RATE, cwnd=rate)
        h.scheduler.enqueue_flow(flow)
        h.sim.run(until_ps=20 * TX)
        times = [t for t, *_ in h.emitted]
        diffs = [b - a for a, b in zip(times, times[1:])]
        assert all(d == 4 * TX for d in diffs)

    def test_full_rate_sends_every_tick(self):
        h = Harness(mode=CCMode.RATE)
        wire_bits = (1024 + 20) * 8
        rate = wire_bits * 1e12 / TX  # exactly one frame per tick
        flow = make_flow(1, mode=CCMode.RATE, cwnd=rate)
        h.scheduler.enqueue_flow(flow)
        h.sim.run(until_ps=10 * TX - 1)
        assert len(h.emitted) == 10

    def test_rate_flow_completes_and_deschedules(self):
        h = Harness(mode=CCMode.RATE)
        rate = (1024 + 20) * 8 * 1e12 / TX
        flow = make_flow(1, size=5, mode=CCMode.RATE, cwnd=rate)
        h.scheduler.enqueue_flow(flow)
        h.sim.run(until_ps=20 * TX)
        assert len(h.emitted) == 5
        assert not flow.scheduled

    def test_two_rate_flows_share_ticks(self):
        h = Harness(mode=CCMode.RATE)
        rate = (1024 + 20) * 8 * 1e12 / TX
        flows = [make_flow(i, mode=CCMode.RATE, cwnd=rate) for i in range(2)]
        for flow in flows:
            h.scheduler.enqueue_flow(flow)
        h.sim.run(until_ps=20 * TX)
        counts = {}
        for _, fid, _, _ in h.emitted:
            counts[fid] = counts.get(fid, 0) + 1
        # Each wants full rate but the port alternates: equal split.
        assert abs(counts[0] - counts[1]) <= 1


class TestByteCounter:
    def test_callback_invoked_with_counter(self):
        sim = Simulator()
        seen = []

        def on_bytes(flow):
            seen.append(flow.counter_bytes)

        sched = PortScheduler(sim, 0, TX, CCMode.WINDOW, lambda *a: None,
                              on_bytes_sent=on_bytes)
        flow = make_flow(1, cwnd=100.0)
        sched.enqueue_flow(flow)
        sim.run(until_ps=3 * TX - 1)
        assert seen == [1024, 2048, 3072]


class TestValidation:
    def test_bad_tx_interval(self):
        with pytest.raises(ValueError):
            PortScheduler(Simulator(), 0, 0, CCMode.WINDOW, lambda *a: None)
