"""Chrome trace-event export: constructors, the validator gate, the
profiler-span bridge, and the campaign results-dir merge."""

import json

import pytest

from repro.obs import flight
from repro.obs.profile import SimProfiler
from repro.obs.trace import (
    build_chrome_trace,
    campaign_trace_events,
    complete_event,
    counter_event,
    instant_event,
    metadata_event,
    spans_to_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.parallel import CampaignRunner
from repro.sim import Simulator


# -- picklable task functions (must be top level) ------------------------------


def tiny_sim_task(until_ps):
    from repro.obs.heartbeat import run_with_heartbeats

    sim = Simulator()
    ticks = []
    sim.at(0, lambda: ticks.append(sim.now))
    # Heartbeat-aware so the campaign journal gets at least the final
    # progress beat per task (rendered as trace instants).
    run_with_heartbeats(sim, until_ps)
    recorder = flight.current()
    if recorder is not None:
        recorder.record(sim.now, "engine", "run_done", events=sim.events_executed)
    return sim.events_executed


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    flight.uninstall()
    flight.configure_autodump(None)


class TestConstructorsRoundTrip:
    def test_document_survives_json_round_trip(self, tmp_path):
        events = [
            metadata_event("process_name", pid=1, name="worker"),
            complete_event("task 0", ts_us=0.0, dur_us=12.5, pid=1, tid=0,
                           args={"ok": True}),
            instant_event("heartbeat", ts_us=3.0, pid=1, tid=0),
            counter_event("events", ts_us=3.0, pid=1,
                          values={"events_executed": 42.0}),
        ]
        path = write_chrome_trace(tmp_path / "trace.json", events,
                                  metadata={"origin": "test"})
        payload = json.loads(path.read_text())
        validate_chrome_trace(payload)  # what we wrote is what we promise
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"] == {"origin": "test"}
        assert [e["ph"] for e in payload["traceEvents"]] == ["M", "X", "i", "C"]

    def test_negative_duration_is_clamped(self):
        event = complete_event("t", ts_us=0, dur_us=-5.0, pid=0, tid=0)
        assert event["dur"] == 0.0


class TestValidator:
    def test_rejects_non_object_payload(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"displayTimeUnit": "ms"})

    def test_rejects_bad_phase(self):
        bad = {"traceEvents": [{"name": "x", "ph": "Z", "ts": 0,
                                "pid": 0, "tid": 0}]}
        with pytest.raises(ValueError, match="invalid phase"):
            validate_chrome_trace(bad)

    def test_rejects_x_without_duration(self):
        bad = {"traceEvents": [{"name": "x", "ph": "X", "ts": 0,
                                "pid": 0, "tid": 0}]}
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(bad)

    def test_rejects_non_integer_pid(self):
        bad = {"traceEvents": [{"name": "x", "ph": "i", "ts": 0,
                                "pid": "worker", "tid": 0}]}
        with pytest.raises(ValueError, match="pid"):
            validate_chrome_trace(bad)

    def test_rejects_boolean_timestamp(self):
        bad = {"traceEvents": [{"name": "x", "ph": "i", "ts": True,
                                "pid": 0, "tid": 0}]}
        with pytest.raises(ValueError, match="ts"):
            validate_chrome_trace(bad)


def _alpha() -> None:
    pass


def _beta() -> None:
    pass


class TestProfilerSpans:
    def test_spans_become_complete_events(self):
        sim = Simulator()
        profiler = sim.enable_profiling(max_spans=100)
        sim.at(0, _alpha)
        sim.at(1000, _beta)
        sim.run()
        spans = profiler.spans()
        assert [owner for owner, _, _ in spans] == ["_alpha", "_beta"]
        events = spans_to_events(spans, pid=7, tid=3)
        validate_chrome_trace(build_chrome_trace(events))
        assert all(e["ph"] == "X" and e["pid"] == 7 for e in events)
        # Spans are (start, duration) in wall seconds -> microseconds.
        assert events[0]["ts"] <= events[1]["ts"]

    def test_span_ring_is_bounded(self):
        sim = Simulator()
        profiler = sim.enable_profiling(max_spans=4)
        for i in range(10):
            sim.at(i * 1000, _alpha)
        sim.run()
        assert len(profiler.spans()) == 4

    def test_spans_off_by_default(self):
        profiler = SimProfiler()
        profiler.record(_alpha, 0.001)
        assert profiler.spans() == []
        assert profiler.rows()[0].calls == 1


class TestCampaignMerge:
    def test_empty_dir_is_a_usage_error(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            campaign_trace_events(tmp_path)

    def test_merges_journal_heartbeats_and_dumps(self, tmp_path):
        runner = CampaignRunner(workers=1, results_dir=tmp_path)
        try:
            runner.run(
                tiny_sim_task,
                [(1_000_000,), (2_000_000,)],
                on_heartbeat=lambda beat: None,
            )
        finally:
            runner.close()
        events = campaign_trace_events(tmp_path)
        payload = build_chrome_trace(events)
        validate_chrome_trace(payload)
        # Round trip through serialization stays valid.
        validate_chrome_trace(json.loads(json.dumps(payload)))

        phases = {e["ph"] for e in events}
        assert {"M", "X", "i"} <= phases
        task_spans = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in task_spans} == {"task 0", "task 1"}
        assert all(e["cat"] == "task" for e in task_spans)
        # Heartbeats arrive as instants with a matching counter sample.
        beats = [e for e in events if e.get("cat") == "heartbeat"]
        assert beats and phases >= {"C"}
        # Metadata rows precede everything after the stable sort.
        assert events[0]["ph"] == "M"
        # All timestamps are campaign-relative, so none negative.
        assert all(e.get("ts", 0) >= 0 for e in events)

    def test_merges_failure_dump_from_journal_free_dir(self, tmp_path):
        """A dir holding only flight dumps (no journal) still renders."""
        flight.configure_autodump(tmp_path, spool_interval_s=0.0)
        recorder = flight.begin_task(0)
        recorder.record(10, "queue", "drop", queue="fabric:p0")
        flight.end_task(recorder, ok=False, error="boom")
        events = campaign_trace_events(tmp_path)
        validate_chrome_trace(build_chrome_trace(events))
        names = {e["name"] for e in events if e["ph"] == "i"}
        assert "queue.drop" in names
        assert "flight dump (exception)" in names

    def test_half_written_dump_is_skipped(self, tmp_path):
        (tmp_path / "flight-task00000.json").write_text('{"kind": "flight')
        flight.configure_autodump(tmp_path, spool_interval_s=0.0)
        recorder = flight.begin_task(1)
        flight.end_task(recorder, ok=False, error="x")
        events = campaign_trace_events(tmp_path)
        assert events  # the torn file did not poison the merge
