"""Figure 5: Marlin's DCTCP module vs the independent reference.

The paper validates the CC module by tracing cwnd and alpha for one
DCTCP flow with deliberately injected drops (points A, C) and ECN marks
(point B) and overlaying the ns-3 trajectory.  Here the same scenario
runs through the full Marlin datapath (FPGA NIC + programmable switch +
fabric with a deterministic packet filter) and through the independent
reference simulator, and the trajectories must agree.
"""

import numpy as np
import pytest

from repro import ControlPlane, TestConfig
from repro.reference.ns3_dctcp import run_reference_dctcp
from repro.units import MS, US

TOTAL_PACKETS = 4000
DROPS = frozenset({1200, 2800})  # points A and C
MARKS = frozenset(range(2000, 2020))  # point B


def run_marlin(total=TOTAL_PACKETS, drops=DROPS, marks=MARKS):
    cp = ControlPlane()
    tester = cp.deploy(
        TestConfig(
            cc_algorithm="dctcp",
            n_test_ports=2,
            trace_cc=True,
            cc_params={"initial_ssthresh": 64.0, "initial_cwnd": 1.0},
        )
    )
    cp.wire_loopback_fabric()
    dropped = set()

    def packet_filter(packet, port):
        if packet.ptype == "DATA":
            if (
                packet.psn in drops
                and packet.psn not in dropped
                and not packet.meta.get("is_rtx")
            ):
                dropped.add(packet.psn)
                return False
            if packet.psn in marks:
                packet.mark_ce()
        return True

    cp.fabric.packet_filter = packet_filter
    flow = tester.start_flow(port_index=0, dst_port_index=1, size_packets=total)
    cp.run(duration_ps=20 * MS)
    return tester, flow


@pytest.fixture(scope="module")
def runs():
    tester, flow = run_marlin()
    reference = run_reference_dctcp(
        total_packets=TOTAL_PACKETS,
        drop_psns=DROPS,
        mark_psns=MARKS,
        rtt_ps=6 * US,
    )
    return tester, flow, reference


class TestFigure5:
    def test_both_complete(self, runs):
        tester, flow, reference = runs
        assert flow.finished
        assert reference.completed

    def test_same_retransmission_count(self, runs):
        tester, flow, reference = runs
        assert flow.rtx_sent == reference.retransmissions == len(DROPS)

    def test_fct_within_10_percent(self, runs):
        tester, flow, reference = runs
        assert flow.fct_ps == pytest.approx(reference.finish_ps, rel=0.10)

    def test_slow_start_reaches_ssthresh_in_both(self, runs):
        tester, flow, reference = runs
        _, marlin_cwnd = tester.nic.logger.series(f"flow{flow.flow_id}", "cwnd_or_rate")
        assert max(marlin_cwnd[:200]) >= 64.0
        assert max(reference.cwnd_values[:200]) >= 64.0

    def test_peak_window_agrees(self, runs):
        tester, flow, reference = runs
        _, marlin_cwnd = tester.nic.logger.series(f"flow{flow.flow_id}", "cwnd_or_rate")
        assert max(marlin_cwnd) == pytest.approx(max(reference.cwnd_values), rel=0.10)

    def test_cwnd_trajectory_close_on_normalized_time(self, runs):
        """Resample both trajectories on normalized time; mean relative
        deviation must be small."""
        tester, flow, reference = runs
        mt, mv = tester.nic.logger.series(f"flow{flow.flow_id}", "cwnd_or_rate")
        rt, rv = reference.cwnd_times_ps, reference.cwnd_values
        m_norm = np.asarray(mt, dtype=float) / mt[-1]
        r_norm = np.asarray(rt, dtype=float) / rt[-1]
        grid = np.linspace(0.02, 0.98, 200)
        marlin_i = np.interp(grid, m_norm, mv)
        ref_i = np.interp(grid, r_norm, rv)
        deviation = np.abs(marlin_i - ref_i) / np.maximum(ref_i, 1.0)
        assert float(np.mean(deviation)) < 0.15

    def test_alpha_trajectories_agree(self, runs):
        """Alpha decays from 1.0 and ends near zero in both
        implementations, at matching final values."""
        tester, flow, reference = runs
        _, marlin_alpha = tester.nic.logger.series(f"flow{flow.flow_id}.slow", "alpha")
        ref_alpha = reference.alpha_values
        assert marlin_alpha[0] < 1.0  # already decaying from init 1.0
        assert marlin_alpha[-1] < 0.05
        assert marlin_alpha[-1] == pytest.approx(ref_alpha[-1], abs=0.01)

    def test_ecn_point_b_raises_alpha_in_both(self, runs):
        """The mark episode at point B interrupts the monotone decay."""
        tester, flow, reference = runs
        _, marlin_alpha = tester.nic.logger.series(f"flow{flow.flow_id}.slow", "alpha")
        ref_alpha = reference.alpha_values

        def has_bump(series):
            # Alpha strictly decays except when marks arrive; a bump is a
            # later sample exceeding an earlier one.
            return any(b > a + 1e-9 for a, b in zip(series, series[1:]))

        assert has_bump(marlin_alpha)
        assert has_bump(ref_alpha)

    def test_no_injection_means_clean_line_rate(self):
        tester, flow = run_marlin(total=2000, drops=frozenset(), marks=frozenset())
        assert flow.finished
        assert flow.rtx_sent == 0
