"""Reno trace consistency: Marlin's Reno vs the reference simulator.

With ECN marks disabled, the reference DCTCP sender degenerates to
exactly NewReno (alpha never engages), giving an independent oracle for
the Reno module too — the Figure 5 methodology applied to the paper's
simplest algorithm.
"""

import numpy as np
import pytest

from repro import ControlPlane, TestConfig
from repro.reference.ns3_dctcp import run_reference_dctcp
from repro.units import MS, US

TOTAL = 3000
DROPS = frozenset({900, 2100})


def run_marlin_reno():
    cp = ControlPlane()
    tester = cp.deploy(
        TestConfig(
            cc_algorithm="reno",
            n_test_ports=2,
            trace_cc=True,
            cc_params={"initial_ssthresh": 64.0, "initial_cwnd": 1.0},
        )
    )
    cp.wire_loopback_fabric()
    dropped = set()

    def drop_filter(packet, port):
        if (
            packet.ptype == "DATA"
            and packet.psn in DROPS
            and packet.psn not in dropped
            and not packet.meta.get("is_rtx")
        ):
            dropped.add(packet.psn)
            return False
        return True

    cp.fabric.packet_filter = drop_filter
    flow = tester.start_flow(port_index=0, dst_port_index=1, size_packets=TOTAL)
    cp.run(duration_ps=20 * MS)
    return tester, flow


@pytest.fixture(scope="module")
def runs():
    tester, flow = run_marlin_reno()
    reference = run_reference_dctcp(
        total_packets=TOTAL,
        drop_psns=DROPS,
        mark_psns=frozenset(),  # no ECN: pure NewReno behaviour
        rtt_ps=6 * US,
    )
    return tester, flow, reference


class TestRenoConsistency:
    def test_both_complete_with_same_recovery_count(self, runs):
        tester, flow, reference = runs
        assert flow.finished and reference.completed
        assert flow.rtx_sent == reference.retransmissions == len(DROPS)

    def test_fct_close(self, runs):
        tester, flow, reference = runs
        assert flow.fct_ps == pytest.approx(reference.finish_ps, rel=0.10)

    def test_trajectory_deviation_small(self, runs):
        tester, flow, reference = runs
        mt, mv = tester.nic.logger.series(f"flow{flow.flow_id}", "cwnd_or_rate")
        grid = np.linspace(0.02, 0.98, 150)
        marlin = np.interp(grid, np.asarray(mt) / mt[-1], mv)
        ref = np.interp(
            grid,
            np.asarray(reference.cwnd_times_ps) / reference.cwnd_times_ps[-1],
            reference.cwnd_values,
        )
        deviation = float(np.mean(np.abs(marlin - ref) / np.maximum(ref, 1.0)))
        assert deviation < 0.15

    def test_no_alpha_activity_in_reno(self, runs):
        """Sanity: Reno logs no slow-path (alpha) channel at all."""
        tester, flow, reference = runs
        assert tester.nic.logger.series(f"flow{flow.flow_id}.slow", "alpha") == (
            [],
            [],
        )
