"""Modules A (receiver logic), B (INFO generator), C (DATA generator)."""

import pytest

from repro.net.device import Device
from repro.net.link import Link
from repro.net.packet import CE, ECT
from repro.pswitch.module_a import ReceiverLogic, ReceiverMode
from repro.pswitch.module_b import InfoGenerator
from repro.pswitch.module_c import DataGenerator
from repro.pswitch.packets import (
    PTYPE_ACK,
    PTYPE_DATA,
    PTYPE_INFO,
    make_ack,
    make_data,
    make_sche,
)
from repro.sim import Simulator
from repro.units import MICROSECOND, serialization_time_ps, RATE_100G


def data_packet(psn, flow=1, ce=False, t=0):
    p = make_data(
        flow, psn, src_addr=10, dst_addr=20, frame_bytes=1024, tx_tstamp_ps=t
    )
    if ce:
        p.mark_ce()
    return p


class TestReceiverTcp:
    def make(self):
        return ReceiverLogic(ReceiverMode.TCP, ooo_capacity=4)

    def test_in_order_cumulative_acks(self):
        recv = self.make()
        acks = [recv.on_data(data_packet(psn), 0)[0] for psn in range(3)]
        assert [a.psn for a in acks] == [1, 2, 3]
        assert all(a.ptype == PTYPE_ACK for a in acks)
        assert all(a.size_bytes == 64 for a in acks)

    def test_ack_swaps_addresses(self):
        recv = self.make()
        ack = recv.on_data(data_packet(0), 0)[0]
        assert ack.src == 20 and ack.dst == 10

    def test_out_of_order_generates_dupack(self):
        recv = self.make()
        recv.on_data(data_packet(0), 0)
        dup = recv.on_data(data_packet(2), 0)[0]
        assert dup.psn == 1  # still expecting 1

    def test_hole_fill_jumps_cumulative_ack(self):
        recv = self.make()
        recv.on_data(data_packet(0), 0)
        recv.on_data(data_packet(2), 0)
        recv.on_data(data_packet(3), 0)
        ack = recv.on_data(data_packet(1), 0)[0]
        assert ack.psn == 4  # 1 fills the hole; 2,3 were buffered

    def test_ooo_buffer_bounded(self):
        recv = self.make()
        for psn in range(2, 10):
            recv.on_data(data_packet(psn), 0)
        assert recv.ooo_dropped == 4  # capacity 4

    def test_ecn_echo(self):
        recv = self.make()
        ack = recv.on_data(data_packet(0, ce=True), 0)[0]
        assert ack.ecn_echo

    def test_duplicate_retx_reacked(self):
        recv = self.make()
        recv.on_data(data_packet(0), 0)
        ack = recv.on_data(data_packet(0), 0)[0]
        assert ack.psn == 1

    def test_ack_echoes_tx_timestamp(self):
        recv = self.make()
        ack = recv.on_data(data_packet(0, t=777), 0)[0]
        assert ack.meta["echo_tstamp_ps"] == 777

    def test_forget_flow_releases_state(self):
        recv = self.make()
        recv.on_data(data_packet(0), 0)
        recv.forget_flow(1)
        assert 1 not in recv.flows


class TestReceiverRoce:
    def make(self, cnp_interval=50 * MICROSECOND):
        return ReceiverLogic(ReceiverMode.ROCE, cnp_interval_ps=cnp_interval)

    def test_in_order_acks(self):
        recv = self.make()
        responses = recv.on_data(data_packet(0), 0)
        assert len(responses) == 1
        assert responses[0].psn == 1

    def test_out_of_order_nacks_once(self):
        recv = self.make()
        recv.on_data(data_packet(0), 0)
        first = recv.on_data(data_packet(3), 0)
        second = recv.on_data(data_packet(4), 0)
        assert first[0].meta["nack"] and first[0].psn == 1
        assert second == []  # gap already NACKed
        assert recv.nacks_generated == 1

    def test_ooo_packets_dropped(self):
        recv = self.make()
        recv.on_data(data_packet(0), 0)
        recv.on_data(data_packet(3), 0)
        assert recv.ooo_dropped == 1
        # Retransmission restarts from the gap: go-back-N.
        ack = recv.on_data(data_packet(1), 0)[0]
        assert ack.psn == 2

    def test_cnp_on_ce_mark(self):
        recv = self.make()
        responses = recv.on_data(data_packet(0, ce=True), 0)
        cnps = [r for r in responses if r.meta.get("cnp")]
        assert len(cnps) == 1
        assert recv.cnps_generated == 1

    def test_cnp_rate_limited(self):
        recv = self.make(cnp_interval=100)
        recv.on_data(data_packet(0, ce=True), 0)
        r2 = recv.on_data(data_packet(1, ce=True), 50)
        assert not any(r.meta.get("cnp") for r in r2)
        r3 = recv.on_data(data_packet(2, ce=True), 150)
        assert any(r.meta.get("cnp") for r in r3)

    def test_duplicate_reacked(self):
        recv = self.make()
        recv.on_data(data_packet(0), 0)
        responses = recv.on_data(data_packet(0), 0)
        assert responses[0].psn == 1 and not responses[0].meta["nack"]


class TestInfoGenerator:
    def test_transform_preserves_fields(self):
        gen = InfoGenerator()
        data = data_packet(4, ce=True, t=500)
        ack = make_ack(data, 5, created_ps=600)
        info = gen.on_ack(ack, rx_port=7, now_ps=700)
        assert info.ptype == PTYPE_INFO
        assert info.size_bytes == 64
        assert info.flow_id == 1
        assert info.psn == 5
        assert info.ecn_echo
        assert info.meta["rx_port"] == 7
        assert info.meta["echo_tstamp_ps"] == 500
        assert gen.infos_generated == 1


class Collector(Device):
    def __init__(self, sim, name=None):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, port):
        self.received.append((self.sim.now, packet))


class TestDataGenerator:
    def build(self, n_ports=2, queue_capacity=4):
        sim = Simulator()
        source = Collector(sim, "marlin")
        sinks = []
        ports = []
        for i in range(n_ports):
            port = source.add_port(rate_bps=RATE_100G)
            sink = Collector(sim, f"sink{i}")
            Link(port, sink.add_port(), delay_ps=0)
            ports.append(port)
            sinks.append(sink)
        gen = DataGenerator(
            sim, ports, template_bytes=1024, queue_capacity=queue_capacity
        )
        return sim, gen, sinks

    def sche(self, psn, port=0, flow=1):
        return make_sche(
            flow, psn, port, src_addr=10, dst_addr=20, frame_bytes=1024
        )

    def test_sche_produces_data(self):
        sim, gen, sinks = self.build()
        gen.on_sche(self.sche(0))
        sim.run()
        assert len(sinks[0].received) == 1
        _, packet = sinks[0].received[0]
        assert packet.ptype == PTYPE_DATA
        assert packet.psn == 0
        assert packet.src == 10 and packet.dst == 20
        assert packet.size_bytes == 1024
        assert packet.ecn == ECT

    def test_generation_respects_temp_grid(self):
        """DATA emission happens on the TEMP multicast grid: one packet per
        template interval per port."""
        sim, gen, sinks = self.build()
        for psn in range(3):
            gen.on_sche(self.sche(psn))
        sim.run()
        interval = gen.temp_interval_ps
        start_times = [t - serialization_time_ps(1024, RATE_100G)
                       for t, _ in sinks[0].received]
        assert all(t % interval == 0 for t in start_times)
        diffs = [b - a for a, b in zip(start_times, start_times[1:])]
        assert all(d >= interval for d in diffs)

    def test_ports_generate_independently(self):
        sim, gen, sinks = self.build()
        gen.on_sche(self.sche(0, port=0))
        gen.on_sche(self.sche(0, port=1, flow=2))
        sim.run()
        assert len(sinks[0].received) == 1
        assert len(sinks[1].received) == 1

    def test_queue_overflow_is_false_packet_loss(self):
        sim, gen, sinks = self.build(queue_capacity=2)
        for psn in range(5):
            gen.on_sche(self.sche(psn))
        # Three SCHE beyond capacity arrive before any TEMP dequeue... the
        # first enqueue triggers a generation at t=0 grid point, but all
        # five arrive at t=0, so capacity 2 drops three.
        assert gen.sche_dropped == 3
        sim.run()
        assert len(sinks[0].received) == 2

    def test_per_flow_counters(self):
        sim, gen, sinks = self.build()
        gen.on_sche(self.sche(0, flow=7))
        gen.on_sche(self.sche(1, flow=7))
        sim.run()
        assert gen.flow_tx_packets[7] == 2

    def test_invalid_port_rejected(self):
        sim, gen, sinks = self.build()
        with pytest.raises(ValueError):
            gen.on_sche(self.sche(0, port=9))

    def test_rtx_flag_propagates(self):
        sim, gen, sinks = self.build()
        gen.on_sche(
            make_sche(1, 5, 0, src_addr=1, dst_addr=2, frame_bytes=1024, is_rtx=True)
        )
        sim.run()
        assert sinks[0].received[0][1].meta["is_rtx"]
