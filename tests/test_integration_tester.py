"""End-to-end integration tests of the deployed tester.

These reproduce, at reduced scale, the qualitative results of every
packet-level experiment in the paper's evaluation: single-flow line
rate, single-port fairness (Figure 6), per-port isolation (Figure 7),
fan-in convergence (Figure 8), loss recovery, closed-loop generation,
and the Section 5.3 ablations (RX-timer removal -> RMW conflicts;
TX pacing -> no register-queue overflow).
"""

import numpy as np
import pytest

from repro import ControlPlane, TestConfig
from repro.measure.fairness import jain_index
from repro.units import GBPS, MS, US
from repro.workload import ClosedLoopGenerator, FixedSize, FlowSlot


def deploy(config):
    cp = ControlPlane()
    tester = cp.deploy(config)
    cp.wire_loopback_fabric()
    return cp, tester


class TestSingleFlow:
    @pytest.mark.parametrize("alg", ["reno", "dctcp", "dcqcn", "cubic", "timely"])
    def test_flow_completes(self, alg):
        params = {"initial_ssthresh": 256.0} if alg in ("reno", "dctcp", "cubic") else {}
        cp, tester = deploy(
            TestConfig(cc_algorithm=alg, n_test_ports=2, cc_params=params)
        )
        cp.start_flows(size_packets=300, pattern="pairs")
        cp.run(duration_ps=5 * MS)
        assert len(tester.fct) == 1
        assert tester.read_counters()["switch.sche_dropped"] == 0

    def test_single_flow_reaches_line_rate(self):
        """Section 7: 'throughput can reach the line rate for a single
        flow' — within 10% here, covering ramp-up."""
        cp, tester = deploy(TestConfig(cc_algorithm="dcqcn", n_test_ports=2))
        cp.start_flows(size_packets=10_000, pattern="pairs")
        cp.run(duration_ps=3 * MS)
        record = tester.fct.records[0]
        goodput = record.size_bytes * 8 / (record.fct_ps / 1e12)
        assert goodput >= 0.9 * 100 * GBPS

    def test_deterministic_across_runs(self):
        def run_once():
            cp, tester = deploy(TestConfig(cc_algorithm="dctcp", n_test_ports=2))
            cp.start_flows(size_packets=500, pattern="pairs")
            cp.run(duration_ps=2 * MS)
            return tester.fct.records[0].fct_ps

        assert run_once() == run_once()


class TestFigure6SinglePortFairness:
    def test_flows_share_port_evenly(self):
        cp, tester = deploy(
            TestConfig(
                cc_algorithm="dctcp",
                n_test_ports=2,
                flows_per_port=4,
                cc_params={"initial_ssthresh": 512.0},
            )
        )
        sampler = tester.enable_rate_sampling(period_ps=200 * US)
        cp.start_flows(size_packets=10**9, pattern="pairs")
        cp.run(duration_ps=3 * MS)
        rates = {
            name: rate
            for name, rate in sampler.samples[-1].rates_bps.items()
            if name.startswith("flow")
        }
        assert len(rates) == 4
        assert jain_index(list(rates.values())) > 0.98
        assert sum(rates.values()) >= 0.9 * 100 * GBPS


class TestFigure7MultiPortIsolation:
    def test_each_port_pair_runs_at_line_rate(self):
        cp, tester = deploy(TestConfig(cc_algorithm="dcqcn", n_test_ports=4))
        sampler = tester.enable_rate_sampling(period_ps=200 * US)
        cp.start_flows(size_packets=10**9, pattern="pairs")
        cp.run(duration_ps=2 * MS)
        rates = {
            name: rate
            for name, rate in sampler.samples[-1].rates_bps.items()
            if name.startswith("flow")
        }
        assert len(rates) == 2  # ports 0->2, 1->3
        for rate in rates.values():
            assert rate >= 0.9 * 100 * GBPS


class TestFigure8Congestion:
    @pytest.mark.parametrize("alg", ["dctcp", "dcqcn"])
    def test_fan_in_converges_to_fair_share(self, alg):
        params = {"initial_ssthresh": 1024.0} if alg == "dctcp" else {}
        cp, tester = deploy(
            TestConfig(cc_algorithm=alg, n_test_ports=4, cc_params=params)
        )
        sampler = tester.enable_rate_sampling(period_ps=500 * US)
        cp.start_flows(size_packets=10**9, pattern="fan_in")  # 3 -> 1
        cp.run(duration_ps=8 * MS)
        rates = [
            rate
            for name, rate in sampler.samples[-1].rates_bps.items()
            if name.startswith("flow")
        ]
        assert len(rates) == 3
        assert jain_index(rates) > 0.9
        total = sum(rates)
        assert 0.8 * 100 * GBPS <= total <= 1.02 * 100 * GBPS

    def test_flow_departure_releases_bandwidth(self):
        """Second half of Figure 8: when flows end, survivors take over."""
        cp, tester = deploy(
            TestConfig(
                cc_algorithm="dcqcn",
                n_test_ports=4,
            )
        )
        sampler = tester.enable_rate_sampling(period_ps=500 * US)
        # Two finite flows and one long flow into the same port.
        tester.start_flow(port_index=0, dst_port_index=3, size_packets=10**9)
        tester.start_flow(port_index=1, dst_port_index=3, size_packets=20_000)
        tester.start_flow(port_index=2, dst_port_index=3, size_packets=20_000)
        cp.run(duration_ps=12 * MS)
        assert len(tester.fct) == 2  # the finite flows completed
        survivor_rates = sampler.series("flow1")[1]
        # After the others finish, the survivor approaches line rate.
        assert survivor_rates[-1] >= 0.85 * 100 * GBPS


class TestLossRecovery:
    def test_fast_retransmit_recovers_dropped_packet(self):
        cp, tester = deploy(
            TestConfig(
                cc_algorithm="dctcp",
                n_test_ports=2,
                cc_params={"initial_ssthresh": 256.0},
            )
        )
        dropped = []

        def drop_psn_100(packet, port):
            if packet.ptype == "DATA" and packet.psn == 100 and not dropped:
                dropped.append(packet.psn)
                return False
            return True

        assert cp.fabric is not None
        cp.fabric.packet_filter = drop_psn_100
        cp.start_flows(size_packets=2000, pattern="pairs")
        cp.run(duration_ps=10 * MS)
        assert dropped == [100]
        assert len(tester.fct) == 1  # completed despite the loss
        assert tester.read_counters()["fpga.rtx_emitted"] >= 1

    def test_rto_recovers_tail_loss(self):
        cp, tester = deploy(
            TestConfig(
                cc_algorithm="reno",
                n_test_ports=2,
                cc_params={"rto_ps": 100 * US, "initial_ssthresh": 64.0},
            )
        )
        dropped = []

        def drop_last(packet, port):
            # Drop the final packet's first copy: no dupacks possible.
            if packet.ptype == "DATA" and packet.psn == 199 and not dropped:
                dropped.append(packet.psn)
                return False
            return True

        cp.fabric.packet_filter = drop_last
        cp.start_flows(size_packets=200, pattern="pairs")
        cp.run(duration_ps=10 * MS)
        assert dropped
        assert len(tester.fct) == 1
        assert tester.read_counters()["fpga.timeouts_fired"] >= 1


class TestClosedLoopGeneration:
    def test_new_flow_starts_on_completion(self):
        cp, tester = deploy(TestConfig(cc_algorithm="dcqcn", n_test_ports=2))
        generator = ClosedLoopGenerator(
            tester,
            FixedSize(100 * 1024),
            [FlowSlot(0, 1)],
            rng=np.random.default_rng(0),
            stop_after_flows=5,
        )
        generator.start()
        cp.run(duration_ps=20 * MS)
        assert generator.flows_started == 5
        assert generator.flows_completed == 5
        assert len(tester.fct) == 5
        # Closed loop: each flow starts when the previous finishes.
        records = sorted(tester.fct.records, key=lambda r: r.start_ps)
        for prev, nxt in zip(records, records[1:]):
            assert nxt.start_ps == prev.finish_ps


class TestSection53Ablations:
    def test_rx_timer_prevents_rmw_conflicts(self):
        """With frequency control: zero conflicts, even for DCTCP's
        24-cycle RMW."""
        cp, tester = deploy(TestConfig(cc_algorithm="dctcp", n_test_ports=2))
        cp.start_flows(size_packets=3000, pattern="pairs")
        cp.run(duration_ps=5 * MS)
        assert tester.nic.bram.conflicts == 0

    @staticmethod
    def _ack_burst(cp, tester, n=16):
        """Deliver a back-to-back burst of same-flow INFOs (the paper's
        'DPDK sends ACKs in bursts' scenario) at the 64 B line rate."""
        from repro.pswitch.packets import make_ack, make_data, make_info
        from repro.units import serialization_time_ps

        flow = tester.start_flow(port_index=0, dst_port_index=1, size_packets=10**6)
        cp.run(duration_ps=100 * US)
        spacing = serialization_time_ps(64, tester.config.port_rate_bps)
        for i in range(n):
            data = make_data(
                flow.flow_id, i, src_addr=1, dst_addr=2, frame_bytes=1024,
                tx_tstamp_ps=0,
            )
            info = make_info(make_ack(data, i + 1), 0)
            cp.sim.at(cp.sim.now + i * spacing, tester.nic.receive, info, tester.nic.port)
        cp.run(duration_ps=100 * US)

    def test_disabling_rx_timer_causes_conflicts(self):
        """Ablation (Challenge 3): INFO bursts at 64 B line rate hit the
        CC module faster than its 24-cycle RMW latency."""
        cp, tester = deploy(
            TestConfig(cc_algorithm="dctcp", n_test_ports=2, disable_rx_timer=True)
        )
        self._ack_burst(cp, tester)
        assert tester.nic.bram.conflicts > 0

    def test_rx_timer_absorbs_same_burst(self):
        """The identical burst is harmless once the RX timer paces it."""
        cp, tester = deploy(TestConfig(cc_algorithm="dctcp", n_test_ports=2))
        self._ack_burst(cp, tester)
        assert tester.nic.bram.conflicts == 0

    def test_tx_pacing_prevents_queue_overflow(self):
        """Challenge 1: the switch's register queues never overflow when
        the TX timers pace SCHE at the per-port DATA rate."""
        cp, tester = deploy(
            TestConfig(cc_algorithm="dcqcn", n_test_ports=2, flows_per_port=8)
        )
        cp.start_flows(size_packets=5000, pattern="pairs")
        cp.run(duration_ps=5 * MS)
        counters = cp.read_measurements()
        assert counters["switch.sche_dropped"] == 0

    def test_rx_fifo_absorbs_bursts(self):
        cp, tester = deploy(TestConfig(cc_algorithm="dctcp", n_test_ports=2))
        cp.start_flows(size_packets=2000, pattern="pairs")
        cp.run(duration_ps=5 * MS)
        assert cp.read_measurements()["fpga.rx_fifo_drops"] == 0


class TestMeasurementPlane:
    def test_counters_consistent(self):
        cp, tester = deploy(TestConfig(cc_algorithm="dctcp", n_test_ports=2))
        cp.start_flows(size_packets=400, pattern="pairs")
        cp.run(duration_ps=3 * MS)
        counters = cp.read_measurements()
        assert counters["switch.sche_accepted"] == counters["switch.data_generated"]
        assert counters["switch.acks_generated"] >= 400
        assert counters["fpga.infos_processed"] <= counters["switch.infos_generated"]

    def test_trace_cc_records_cwnd(self):
        cp, tester = deploy(
            TestConfig(cc_algorithm="dctcp", n_test_ports=2, trace_cc=True)
        )
        flow = tester.start_flow(port_index=0, dst_port_index=1, size_packets=500)
        cp.run(duration_ps=3 * MS)
        times, values = tester.nic.logger.series(f"flow{flow.flow_id}", "cwnd_or_rate")
        assert len(values) > 10
        assert values[0] >= 1.0
