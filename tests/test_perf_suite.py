"""The perf-suite report plumbing: schema normalization, provenance
fingerprints, and the regression gate (no benches are actually run)."""

import json
from pathlib import Path

import pytest

from repro.perf import (
    check_provenance,
    check_regression,
    load_bench_report,
    normalize_report,
)
from repro.perf.suite import GUARDED_RATES, PROVENANCE_FIELDS, print_trajectory

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_report(env=None, benches=None, schema=2):
    report = {"schema": schema, "benches": benches or {}}
    if env is not None:
        report["env"] = env
    return report


class TestNormalize:
    def test_schema_1_upgraded(self):
        report = {"benches": {"engine_event_rate": {"events_per_sec": 1.0}}}
        out = normalize_report(report)
        assert out["schema"] == 2
        assert out["schema_original"] == 1
        assert out["env"] == {}
        assert out["benches"]["engine_event_rate"]["events_per_sec"] == 1.0

    def test_schema_2_passthrough(self):
        report = make_report(env={"platform": "x"}, schema=2)
        out = normalize_report(report)
        assert out["schema_original"] == 2
        assert out["env"] == {"platform": "x"}

    def test_missing_blocks_defaulted(self):
        out = normalize_report({})
        assert out["env"] == {} and out["benches"] == {}

    def test_load_checked_in_reports(self):
        # Every historical BENCH_*.json vintage must parse uniformly.
        paths = sorted(REPO_ROOT.glob("BENCH_PR*.json"))
        assert paths, "expected checked-in bench reports at the repo root"
        for path in paths:
            report = load_bench_report(path)
            assert report["schema"] == 2
            assert isinstance(report["env"], dict)
            assert report["benches"], path

    def test_load_baseline(self):
        baseline = load_bench_report(REPO_ROOT / "benchmarks/perf_baseline.json")
        guarded = {bench for bench, _ in GUARDED_RATES}
        assert guarded <= set(baseline["benches"])


class TestProvenance:
    ENV = {
        "platform": "Linux-6.0-x86_64",
        "python_version": "3.11.7",
        "implementation": "CPython",
        "cpu_count": 4,
    }

    def test_identical_env_clean(self):
        report = make_report(env=dict(self.ENV))
        baseline = make_report(env=dict(self.ENV))
        assert check_provenance(report, baseline) == []

    def test_each_field_detected(self):
        for field in PROVENANCE_FIELDS:
            run_env = dict(self.ENV)
            run_env[field] = "something-else"
            mismatches = check_provenance(
                make_report(env=run_env), make_report(env=dict(self.ENV))
            )
            assert len(mismatches) == 1
            assert field in mismatches[0]

    def test_schema_1_baseline_flagged(self):
        mismatches = check_provenance(
            make_report(env=dict(self.ENV)), normalize_report({})
        )
        assert len(mismatches) == 1
        assert "no environment fingerprint" in mismatches[0]

    def test_extra_env_fields_ignored(self):
        base_env = dict(self.ENV, git_sha="abc123")
        run_env = dict(self.ENV, git_sha="def456")
        assert check_provenance(
            make_report(env=run_env), make_report(env=base_env)
        ) == []


class TestRegressionGate:
    def baseline(self, **overrides):
        benches = {
            "engine_event_rate": {"events_per_sec": 1000.0, "tolerance": 0.10},
            "datapath_rate": {"packets_per_sec": 100.0, "tolerance": 0.10},
            "fluid_rate": {"flows_per_sec": 500.0},
            "fluid_rate_1m": {"flow_steps_per_sec": 5000.0},
            "parallel_speedup": {"points_per_sec": 10.0},
        }
        benches.update(overrides)
        return make_report(benches=benches)

    def test_clean_pass(self):
        report = self.baseline()
        assert check_regression(report, self.baseline(), 0.20) == []

    def test_default_tolerance(self):
        report = self.baseline(fluid_rate={"flows_per_sec": 390.0})
        failures = check_regression(report, self.baseline(), 0.20)
        assert len(failures) == 1 and "fluid_rate.flows_per_sec" in failures[0]
        # 390 > 500 * (1 - 0.25): a looser gate passes.
        assert check_regression(report, self.baseline(), 0.25) == []

    def test_per_bench_tolerance_overrides_default(self):
        # 850 is fine under the 20% default but trips the entry's own 10%.
        report = self.baseline(engine_event_rate={"events_per_sec": 850.0})
        failures = check_regression(report, self.baseline(), 0.20)
        assert len(failures) == 1
        assert "engine_event_rate" in failures[0]
        assert "10%" in failures[0]

    def test_partial_report_skips_missing_benches(self):
        # An --only run guards only what it measured.
        report = make_report(
            benches={"fluid_rate_1m": {"flow_steps_per_sec": 6000.0}}
        )
        assert check_regression(report, self.baseline(), 0.20) == []

    def test_partial_report_still_guards_measured(self):
        report = make_report(
            benches={"fluid_rate_1m": {"flow_steps_per_sec": 1.0}}
        )
        failures = check_regression(report, self.baseline(), 0.20)
        assert len(failures) == 1 and "fluid_rate_1m" in failures[0]

    def test_obs_budget(self):
        baseline = self.baseline(obs_overhead={"max_overhead_frac": 0.05})
        report = self.baseline(obs_overhead={"overhead_frac": 0.20})
        failures = check_regression(report, baseline, 0.20)
        assert len(failures) == 1 and "obs_overhead" in failures[0]
        report = self.baseline(obs_overhead={"overhead_frac": 0.01})
        assert check_regression(report, baseline, 0.20) == []

    def test_checked_in_baseline_has_tight_gates(self):
        # The satellite contract: engine and datapath floors run at 10%.
        baseline = load_bench_report(REPO_ROOT / "benchmarks/perf_baseline.json")
        for bench in ("engine_event_rate", "datapath_rate"):
            assert baseline["benches"][bench]["tolerance"] == pytest.approx(0.10)
        assert (
            baseline["benches"]["fluid_rate_1m"]["flow_steps_per_sec"]
            >= 5_000_000
        )


class TestTrajectory:
    def test_renders_all_vintages(self, capsys, tmp_path):
        old = tmp_path / "BENCH_OLD.json"  # schema 1: no env block
        old.write_text(
            json.dumps({"benches": {"engine_event_rate": {"events_per_sec": 1.0}}})
        )
        new = tmp_path / "BENCH_NEW.json"
        new.write_text(
            json.dumps(
                make_report(
                    env={"platform": "Linux-x"},
                    benches={"datapath_rate": {"packets_per_sec": 2.0}},
                )
            )
        )
        assert print_trajectory([old, new]) == 0
        out = capsys.readouterr().out
        assert "BENCH_OLD" in out and "BENCH_NEW" in out
        assert "engine_event_rate.events_per_sec" in out

    def test_unreadable_report_fails(self, tmp_path, capsys):
        assert print_trajectory([tmp_path / "missing.json"]) == 1
        assert "cannot read" in capsys.readouterr().err
