"""Periodic timers and restartable timeouts."""

import pytest

from repro.errors import SimulationError
from repro.sim import PeriodicTimer, Simulator, Timeout


class TestPeriodicTimer:
    def test_fires_every_period(self):
        sim = Simulator()
        times = []
        timer = PeriodicTimer(sim, 100, lambda: times.append(sim.now), start=True)
        sim.run(until_ps=550)
        assert times == [100, 200, 300, 400, 500]
        assert timer.fire_count == 5

    def test_phase_offset(self):
        sim = Simulator()
        times = []
        PeriodicTimer(sim, 100, lambda: times.append(sim.now), start=True, phase_ps=30)
        sim.run(until_ps=400)
        assert times == [130, 230, 330]

    def test_cancel_stops_firing(self):
        sim = Simulator()
        times = []
        timer = PeriodicTimer(sim, 100, lambda: times.append(sim.now), start=True)
        sim.at(250, timer.cancel)
        sim.run(until_ps=1000)
        assert times == [100, 200]
        assert not timer.running

    def test_set_period_takes_effect_next_cycle(self):
        sim = Simulator()
        times = []
        timer = PeriodicTimer(sim, 100, lambda: times.append(sim.now), start=True)
        sim.at(150, timer.set_period, 300)
        sim.run(until_ps=900)
        # 100 fires, 200 was already scheduled, then 500, 800.
        assert times == [100, 200, 500, 800]

    def test_callback_can_cancel_timer(self):
        sim = Simulator()
        count = []
        timer = PeriodicTimer(sim, 10, lambda: (count.append(1), timer.cancel()))
        timer.start()
        sim.run(until_ps=100)
        assert len(count) == 1

    def test_rejects_nonpositive_period(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0, lambda: None)

    def test_restart_resets_phase(self):
        sim = Simulator()
        times = []
        timer = PeriodicTimer(sim, 100, lambda: times.append(sim.now))
        timer.start()
        sim.at(50, timer.start)  # restart mid-period
        sim.run(until_ps=200)
        assert times == [150]


class TestTimeout:
    def test_expires_once(self):
        sim = Simulator()
        fired = []
        timeout = Timeout(sim, 500, lambda: fired.append(sim.now))
        timeout.restart()
        sim.run(until_ps=2000)
        assert fired == [500]
        assert timeout.expirations == 1
        assert not timeout.armed

    def test_restart_pushes_deadline(self):
        sim = Simulator()
        fired = []
        timeout = Timeout(sim, 500, lambda: fired.append(sim.now))
        timeout.restart()
        sim.at(400, timeout.restart)
        sim.run(until_ps=2000)
        assert fired == [900]

    def test_cancel_disarms(self):
        sim = Simulator()
        fired = []
        timeout = Timeout(sim, 500, lambda: fired.append(1))
        timeout.restart()
        sim.at(100, timeout.cancel)
        sim.run(until_ps=2000)
        assert fired == []

    def test_restart_with_new_duration(self):
        sim = Simulator()
        fired = []
        timeout = Timeout(sim, 500, lambda: fired.append(sim.now))
        timeout.restart(duration_ps=50)
        sim.run(until_ps=2000)
        assert fired == [50]
        assert timeout.duration_ps == 50

    def test_rearm_after_expiry(self):
        sim = Simulator()
        fired = []

        def on_fire():
            fired.append(sim.now)
            if len(fired) < 3:
                timeout.restart()

        timeout = Timeout(sim, 100, on_fire)
        timeout.restart()
        sim.run(until_ps=1000)
        assert fired == [100, 200, 300]

    def test_rejects_nonpositive_duration(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Timeout(sim, 0, lambda: None)
        timeout = Timeout(sim, 10, lambda: None)
        with pytest.raises(SimulationError):
            timeout.restart(duration_ps=-5)


class TestHeapBoundedness:
    """Restart-heavy timers must keep O(live events) heap entries, not
    O(total restarts) — the acceptance criterion for the engine overhaul."""

    def test_timeout_restart_storm_keeps_one_entry(self):
        sim = Simulator()
        timeout = Timeout(sim, 500, lambda: None)
        timeout.restart()
        for _ in range(10_000):
            timeout.restart()
        assert sim.pending_events == 1

    def test_periodic_restart_storm_keeps_one_entry(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, 100, lambda: None, start=True)
        for _ in range(10_000):
            timer.start()
        assert sim.pending_events == 1

    def test_per_ack_rto_pattern_stays_bounded(self):
        # The ConnectX/EventGenerator pattern: every "ACK" event restarts
        # the flow's RTO.  The heap must stay O(flows), not O(acks).
        sim = Simulator()
        n_flows = 8
        timeouts = [Timeout(sim, 1_000_000, lambda: None) for _ in range(n_flows)]
        acks = []

        def ack(i, n):
            timeouts[i].restart()
            acks.append(i)
            if n < 500:
                sim.after(100, ack, i, n + 1)

        for i in range(n_flows):
            sim.at(i, ack, i, 0)
        sim.run(until_ps=200_000)
        assert len(acks) > 3000
        # One live RTO entry per flow plus at most a handful of deferral
        # re-pushes in flight.
        assert sim.live_events <= 2 * n_flows + 1
        assert sim.pending_events <= 4 * n_flows + 64

    def test_timer_fires_correctly_after_many_restarts(self):
        sim = Simulator()
        fired = []
        timeout = Timeout(sim, 1000, lambda: fired.append(sim.now))
        timeout.restart()
        for t in range(1, 50):
            sim.at(t * 10, timeout.restart)
        sim.run()
        # Last restart at t=490 -> fires at 1490.
        assert fired == [1490]
