"""Periodic timers and restartable timeouts."""

import pytest

from repro.errors import SimulationError
from repro.sim import PeriodicTimer, Simulator, Timeout


class TestPeriodicTimer:
    def test_fires_every_period(self):
        sim = Simulator()
        times = []
        timer = PeriodicTimer(sim, 100, lambda: times.append(sim.now), start=True)
        sim.run(until_ps=550)
        assert times == [100, 200, 300, 400, 500]
        assert timer.fire_count == 5

    def test_phase_offset(self):
        sim = Simulator()
        times = []
        PeriodicTimer(sim, 100, lambda: times.append(sim.now), start=True, phase_ps=30)
        sim.run(until_ps=400)
        assert times == [130, 230, 330]

    def test_cancel_stops_firing(self):
        sim = Simulator()
        times = []
        timer = PeriodicTimer(sim, 100, lambda: times.append(sim.now), start=True)
        sim.at(250, timer.cancel)
        sim.run(until_ps=1000)
        assert times == [100, 200]
        assert not timer.running

    def test_set_period_takes_effect_next_cycle(self):
        sim = Simulator()
        times = []
        timer = PeriodicTimer(sim, 100, lambda: times.append(sim.now), start=True)
        sim.at(150, timer.set_period, 300)
        sim.run(until_ps=900)
        # 100 fires, 200 was already scheduled, then 500, 800.
        assert times == [100, 200, 500, 800]

    def test_callback_can_cancel_timer(self):
        sim = Simulator()
        count = []
        timer = PeriodicTimer(sim, 10, lambda: (count.append(1), timer.cancel()))
        timer.start()
        sim.run(until_ps=100)
        assert len(count) == 1

    def test_rejects_nonpositive_period(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0, lambda: None)

    def test_restart_resets_phase(self):
        sim = Simulator()
        times = []
        timer = PeriodicTimer(sim, 100, lambda: times.append(sim.now))
        timer.start()
        sim.at(50, timer.start)  # restart mid-period
        sim.run(until_ps=200)
        assert times == [150]


class TestTimeout:
    def test_expires_once(self):
        sim = Simulator()
        fired = []
        timeout = Timeout(sim, 500, lambda: fired.append(sim.now))
        timeout.restart()
        sim.run(until_ps=2000)
        assert fired == [500]
        assert timeout.expirations == 1
        assert not timeout.armed

    def test_restart_pushes_deadline(self):
        sim = Simulator()
        fired = []
        timeout = Timeout(sim, 500, lambda: fired.append(sim.now))
        timeout.restart()
        sim.at(400, timeout.restart)
        sim.run(until_ps=2000)
        assert fired == [900]

    def test_cancel_disarms(self):
        sim = Simulator()
        fired = []
        timeout = Timeout(sim, 500, lambda: fired.append(1))
        timeout.restart()
        sim.at(100, timeout.cancel)
        sim.run(until_ps=2000)
        assert fired == []

    def test_restart_with_new_duration(self):
        sim = Simulator()
        fired = []
        timeout = Timeout(sim, 500, lambda: fired.append(sim.now))
        timeout.restart(duration_ps=50)
        sim.run(until_ps=2000)
        assert fired == [50]
        assert timeout.duration_ps == 50

    def test_rearm_after_expiry(self):
        sim = Simulator()
        fired = []

        def on_fire():
            fired.append(sim.now)
            if len(fired) < 3:
                timeout.restart()

        timeout = Timeout(sim, 100, on_fire)
        timeout.restart()
        sim.run(until_ps=1000)
        assert fired == [100, 200, 300]

    def test_rejects_nonpositive_duration(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Timeout(sim, 0, lambda: None)
        timeout = Timeout(sim, 10, lambda: None)
        with pytest.raises(SimulationError):
            timeout.restart(duration_ps=-5)
