"""Reno state machine: slow start, CA, fast retransmit/recovery, RTO."""

import pytest

from repro.cc import EventType, Flags, IntrinsicInput, Reno, TIMER_RTO
from repro.cc.base import CCMode


def rx_event(psn, *, cwnd, una=0, nxt=0, ecn=False, nack=False, t=0):
    return IntrinsicInput(
        evt_type=EventType.RX,
        psn=psn,
        cwnd_or_rate=cwnd,
        una=una,
        nxt=nxt,
        flags=Flags(ack=True, ecn=ecn, nack=nack),
        prb_rtt=-1,
        tstamp=t,
    )


def timeout_event(*, cwnd, timer_id=TIMER_RTO, t=0):
    return IntrinsicInput(
        evt_type=EventType.TIMEOUT,
        psn=-1,
        cwnd_or_rate=cwnd,
        una=0,
        nxt=0,
        flags=Flags(),
        prb_rtt=-1,
        tstamp=t,
        timer_id=timer_id,
    )


@pytest.fixture
def reno():
    return Reno(initial_cwnd=1.0, initial_ssthresh=8.0)


class TestMode:
    def test_is_window_mode(self, reno):
        assert reno.mode is CCMode.WINDOW

    def test_initial_values(self, reno):
        assert reno.initial_cwnd_or_rate(100_000_000_000) == 1.0
        assert reno.initial_cust().ssthresh == 8.0

    def test_flow_start_arms_rto(self, reno):
        out = reno.on_flow_start(reno.initial_cust(), None, 0)
        assert (TIMER_RTO, reno.rto_ps) in out.rst_timers


class TestSlowStart:
    def test_cwnd_grows_by_acked(self, reno):
        cust = reno.initial_cust()
        out = reno.on_event(rx_event(1, cwnd=1.0), cust, None)
        assert out.cwnd_or_rate == 2.0

    def test_exponential_doubling_per_window(self, reno):
        cust = reno.initial_cust()
        cwnd = 1.0
        acked = 0
        # ACK an entire window each "round": cwnd doubles until ssthresh.
        for _ in range(3):
            for _ in range(int(cwnd)):
                acked += 1
                out = reno.on_event(rx_event(acked, cwnd=cwnd), cust, None)
                cwnd = out.cwnd_or_rate
        assert cwnd == 8.0  # 1 -> 2 -> 4 -> 8

    def test_new_ack_resets_rto(self, reno):
        cust = reno.initial_cust()
        out = reno.on_event(rx_event(1, cwnd=1.0), cust, None)
        assert (TIMER_RTO, reno.rto_ps) in out.rst_timers


class TestCongestionAvoidance:
    def test_linear_growth_above_ssthresh(self, reno):
        cust = reno.initial_cust()
        cust.last_ack = 10
        out = reno.on_event(rx_event(11, cwnd=8.0), cust, None)
        assert out.cwnd_or_rate == pytest.approx(8.0 + 1.0 / 8.0)

    def test_max_cwnd_cap(self):
        reno = Reno(initial_ssthresh=2.0, max_cwnd=10.0)
        cust = reno.initial_cust()
        out = reno.on_event(rx_event(1, cwnd=10.0), cust, None)
        assert out.cwnd_or_rate == 10.0


class TestFastRetransmit:
    def drive_dupacks(self, reno, cust, cwnd, n, una=5, nxt=20):
        out = None
        for _ in range(n):
            out = reno.on_event(
                rx_event(cust.last_ack, cwnd=cwnd, una=una, nxt=nxt), cust, None
            )
            if out.cwnd_or_rate is not None:
                cwnd = out.cwnd_or_rate
        return out, cwnd

    def test_three_dupacks_trigger_retransmit(self, reno):
        cust = reno.initial_cust()
        cust.last_ack = 5
        out, cwnd = self.drive_dupacks(reno, cust, 10.0, 3)
        assert out.rtx_psn == 5  # retransmit una
        assert cust.in_recovery
        assert cust.ssthresh == 5.0
        assert cwnd == 8.0  # ssthresh + 3

    def test_two_dupacks_do_nothing(self, reno):
        cust = reno.initial_cust()
        cust.last_ack = 5
        out, cwnd = self.drive_dupacks(reno, cust, 10.0, 2)
        assert out.rtx_psn == -1
        assert not cust.in_recovery

    def test_window_inflation_during_recovery(self, reno):
        cust = reno.initial_cust()
        cust.last_ack = 5
        out, cwnd = self.drive_dupacks(reno, cust, 10.0, 4)
        assert cwnd == 9.0  # inflated by the 4th dupack

    def test_full_ack_exits_recovery(self, reno):
        cust = reno.initial_cust()
        cust.last_ack = 5
        self.drive_dupacks(reno, cust, 10.0, 3)
        out = reno.on_event(rx_event(20, cwnd=8.0, una=20, nxt=20), cust, None)
        assert not cust.in_recovery
        assert out.cwnd_or_rate == 5.0  # deflate to ssthresh

    def test_partial_ack_retransmits_next_hole(self, reno):
        cust = reno.initial_cust()
        cust.last_ack = 5
        self.drive_dupacks(reno, cust, 10.0, 3)
        out = reno.on_event(rx_event(10, cwnd=8.0, una=10, nxt=20), cust, None)
        assert cust.in_recovery  # still recovering
        assert out.rtx_psn == 10


class TestTimeout:
    def test_timeout_collapses_window(self, reno):
        cust = reno.initial_cust()
        out = reno.on_event(timeout_event(cwnd=16.0), cust, None)
        assert out.cwnd_or_rate == 1.0
        assert out.rewind_to_una
        assert cust.ssthresh == 8.0

    def test_timeout_backs_off_exponentially(self, reno):
        cust = reno.initial_cust()
        out1 = reno.on_event(timeout_event(cwnd=16.0), cust, None)
        out2 = reno.on_event(timeout_event(cwnd=1.0), cust, None)
        (_, d1), = out1.rst_timers
        (_, d2), = out2.rst_timers
        assert d2 == 2 * d1

    def test_new_ack_resets_backoff(self, reno):
        cust = reno.initial_cust()
        reno.on_event(timeout_event(cwnd=16.0), cust, None)
        assert cust.rto_backoff == 2
        reno.on_event(rx_event(1, cwnd=1.0), cust, None)
        assert cust.rto_backoff == 1

    def test_other_timer_ignored(self, reno):
        cust = reno.initial_cust()
        out = reno.on_event(timeout_event(cwnd=16.0, timer_id=5), cust, None)
        assert out.cwnd_or_rate is None
