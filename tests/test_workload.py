"""Workload distributions and the closed-loop generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    EmpiricalCdf,
    FixedSize,
    WEBSEARCH_CDF_POINTS,
    hadoop,
    websearch,
)


class TestFixedSize:
    def test_constant(self):
        dist = FixedSize(5000)
        rng = np.random.default_rng(0)
        assert dist.sample_bytes(rng) == 5000
        assert dist.mean_bytes() == 5000.0

    def test_packets_roundup(self):
        dist = FixedSize(2500)
        rng = np.random.default_rng(0)
        assert dist.sample_packets(rng, 1024) == 3

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            FixedSize(0)

    def test_packets_min_one(self):
        dist = FixedSize(10)
        rng = np.random.default_rng(0)
        assert dist.sample_packets(rng, 1024) == 1


class TestEmpiricalCdf:
    def test_websearch_quantiles(self):
        dist = websearch()
        assert dist.quantile(0.15) == pytest.approx(10_000)
        assert dist.quantile(0.97) == pytest.approx(10_000_000)
        assert dist.quantile(1.0) == pytest.approx(30_000_000)

    def test_websearch_mean_heavy_tailed(self):
        # The WebSearch mean sits near 1.6 MB despite a ~64 kB median.
        dist = websearch()
        assert 1.0e6 <= dist.mean_bytes() <= 2.5e6
        assert dist.quantile(0.5) < 100_000

    def test_sampling_reproducible(self):
        dist = websearch()
        a = dist.sample_many(np.random.default_rng(42), 100)
        b = dist.sample_many(np.random.default_rng(42), 100)
        assert np.array_equal(a, b)

    def test_empirical_mean_matches_analytic(self):
        dist = websearch()
        samples = dist.sample_many(np.random.default_rng(1), 200_000)
        assert samples.mean() == pytest.approx(dist.mean_bytes(), rel=0.05)

    def test_empirical_cdf_matches_anchors(self):
        dist = websearch()
        samples = dist.sample_many(np.random.default_rng(2), 100_000)
        for size, prob in WEBSEARCH_CDF_POINTS[1:-1]:
            empirical = float(np.mean(samples <= size))
            assert empirical == pytest.approx(prob, abs=0.01)

    def test_hadoop_is_short_flow_heavy(self):
        """Hadoop's median is sub-kB; WebSearch's is tens of kB."""
        assert hadoop().quantile(0.5) < 1_000
        assert websearch().quantile(0.5) > 10_000
        assert hadoop().mean_bytes() < websearch().mean_bytes()

    def test_hadoop_samples_within_support(self):
        import numpy as np

        samples = hadoop().sample_many(np.random.default_rng(0), 10_000)
        assert samples.min() >= 1
        assert samples.max() <= 10_000_000

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([(0, 0.0)])
        with pytest.raises(ValueError):
            EmpiricalCdf([(10, 0.0), (5, 1.0)])  # sizes not increasing
        with pytest.raises(ValueError):
            EmpiricalCdf([(0, 0.5), (10, 1.0)])  # doesn't start at 0
        with pytest.raises(ValueError):
            EmpiricalCdf([(0, 0.0), (10, 0.9)])  # doesn't end at 1

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            websearch().quantile(1.5)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50, deadline=None)
    def test_samples_within_support(self, seed):
        dist = websearch()
        rng = np.random.default_rng(seed)
        size = dist.sample_bytes(rng)
        assert 1 <= size <= 30_000_000

    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=1, max_value=9000),
    )
    @settings(max_examples=50, deadline=None)
    def test_packet_conversion_consistent(self, seed, payload):
        dist = websearch()
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        size = dist.sample_bytes(rng_a)
        packets = dist.sample_packets(rng_b, payload)
        assert packets == max(1, -(-size // payload))
