"""TestConfig validation, amplification reports, capability matrices."""

import pytest

from repro.baselines import (
    CommercialTesterModel,
    FpgaTesterModel,
    SoftwareTesterModel,
)
from repro.core import (
    TestConfig,
    amplification_report,
    device_characteristics_table,
    max_generated_rate_bps,
)
from repro.core import tester_requirements_table as requirements_table
from repro.core.capabilities import required_pps
from repro.errors import ConfigError
from repro.units import TBPS


class TestTestConfig:
    def test_defaults_valid(self):
        TestConfig().validate()

    def test_template_too_small(self):
        with pytest.raises(ConfigError):
            TestConfig(template_bytes=64).validate()

    def test_flows_per_port_positive(self):
        with pytest.raises(ConfigError):
            TestConfig(flows_per_port=0).validate()

    def test_receiver_mode_values(self):
        with pytest.raises(ConfigError):
            TestConfig(receiver_mode="weird").validate()
        TestConfig(receiver_mode="roce").validate()

    def test_port_rate_positive(self):
        with pytest.raises(ConfigError):
            TestConfig(port_rate_bps=0).validate()


class TestAmplification:
    def test_headline_1_2_tbps(self):
        report = amplification_report(1024)
        assert report.amplification_factor == 12
        assert report.pipeline_rate_bps == pytest.approx(1.2 * TBPS)

    def test_theoretical_1_8_tbps(self):
        report = amplification_report(1518)
        assert report.ideal_rate_bps == pytest.approx(1.8 * TBPS)
        assert report.pipeline_rate_bps == pytest.approx(1.3 * TBPS)

    def test_unconstrained_rate(self):
        assert max_generated_rate_bps(1518, pipeline_limited=False) == pytest.approx(
            1.8 * TBPS
        )

    def test_report_consistency(self):
        report = amplification_report(1024)
        assert report.amplification_factor == int(
            report.sche_pps // report.data_pps_per_port
        )


class TestBaselineModels:
    def test_software_tester_below_tbps(self):
        """Section 2.1: 3 GHz / 50 cycles = 60 Mpps < 81 Mpps needed."""
        model = SoftwareTesterModel()
        assert model.max_pps == pytest.approx(60e6)
        assert required_pps() == pytest.approx(81.3e6, rel=0.01)
        assert not model.meets_rate(1 * TBPS, 1518)

    def test_software_tester_cannot_schedule_single_flow_line_rate(self):
        # 100 Gbps of 1024 B frames needs 11.97 Mpps -- a host can do that,
        # but 64 B SCHE-style scheduling at 148.8 Mpps it cannot.
        model = SoftwareTesterModel()
        assert not model.single_flow_line_rate_ok(64)

    def test_multicore_scaling(self):
        model = SoftwareTesterModel(cores=8, scaling_efficiency=0.8)
        assert model.max_pps == pytest.approx(8 * 0.8 * 60e6)
        # Even 8 cores remain NIC-limited below Tbps.
        assert not model.meets_rate(1 * TBPS, 1518)

    def test_fpga_tester_interface_bound(self):
        """Section 2.1: 4 cards x 2 x 100 G = 800 Gbps < 1 Tbps."""
        model = FpgaTesterModel()
        assert model.max_throughput_bps == 800_000_000_000
        assert not model.meets_rate(1 * TBPS)
        assert model.frequency_ok(1518)  # 322 MHz >> 8.127 Mpps

    def test_commercial_tester_limits(self):
        model = CommercialTesterModel()
        assert not model.supports_custom_cc
        assert not model.reaches_tbps


class TestTable1:
    def test_matches_paper(self):
        rows = {row.tester: row for row in requirements_table()}
        sw = rows["software & FPGA"]
        assert (sw.r1_cc_traffic, sw.r2_custom_cc, sw.r3_tbps) == (True, True, False)
        commercial = rows["commercial"]
        assert (commercial.r1_cc_traffic, commercial.r2_custom_cc, commercial.r3_tbps) == (
            True,
            False,
            False,
        )
        pswitch = rows["programmable switch"]
        assert (pswitch.r1_cc_traffic, pswitch.r2_custom_cc, pswitch.r3_tbps) == (
            False,
            False,
            True,
        )
        marlin = rows["Marlin"]
        assert (marlin.r1_cc_traffic, marlin.r2_custom_cc, marlin.r3_tbps) == (
            True,
            True,
            True,
        )


class TestTable2:
    def test_matches_paper(self):
        rows = {row.device: row for row in device_characteristics_table()}
        host = rows["host"]
        assert (host.programmability, host.frequency, host.throughput) == (
            True,
            False,
            False,
        )
        switch = rows["programmable switch"]
        assert (switch.programmability, switch.frequency, switch.throughput) == (
            False,
            True,
            True,
        )
        fpga = rows["FPGA"]
        assert (fpga.programmability, fpga.frequency, fpga.throughput) == (
            True,
            True,
            False,
        )
        marlin = rows["Marlin"]
        assert (marlin.programmability, marlin.frequency, marlin.throughput) == (
            True,
            True,
            True,
        )

    def test_marlin_is_only_triple_check(self):
        rows = device_characteristics_table()
        full = [r.device for r in rows if r.programmability and r.frequency and r.throughput]
        assert full == ["Marlin"]
