"""Coverage of remaining corners: error hierarchy, packet constructors,
parser robustness, FIFO bounds, pipeline usage model, public API surface."""

import pytest

from repro import available_cc, create_cc
from repro.errors import (
    CCModuleError,
    ConfigError,
    PortAllocationError,
    RMWConflictError,
    RegisterQueueOverflow,
    ReproError,
    ResourceExceededError,
    SimulationError,
)
from repro.fpga.parser import InfoParser
from repro.net.packet import Packet
from repro.pswitch.packets import (
    PTYPE_RDATA,
    make_data,
    make_rdata,
    make_temp,
)
from repro.sim import Simulator
from repro.units import MS


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            SimulationError,
            ConfigError,
            ResourceExceededError,
            RegisterQueueOverflow,
            RMWConflictError,
            CCModuleError,
            PortAllocationError,
        ):
            assert issubclass(exc, ReproError)

    def test_specific_subtyping(self):
        assert issubclass(RegisterQueueOverflow, ResourceExceededError)
        assert issubclass(PortAllocationError, ConfigError)


class TestPacketConstructors:
    def test_make_temp(self):
        temp = make_temp(1024, created_ps=5)
        assert temp.ptype == "TEMP"
        assert temp.size_bytes == 1024
        assert temp.created_ps == 5

    def test_make_rdata_preserves_fields(self):
        data = make_data(
            7, 42, src_addr=1, dst_addr=2, frame_bytes=1024, tx_tstamp_ps=99
        )
        data.mark_ce()
        rdata = make_rdata(data, rx_port=3, created_ps=100)
        assert rdata.ptype == PTYPE_RDATA
        assert rdata.size_bytes == 64  # truncated
        assert rdata.flow_id == 7 and rdata.psn == 42
        assert rdata.ce_marked
        assert rdata.meta["rx_port"] == 3
        assert rdata.meta["tx_tstamp_ps"] == 99


class TestParserRobustness:
    def test_non_info_counted_malformed(self):
        parser = InfoParser()
        assert parser.parse(Packet("DATA", 1, 2, 64), 0) is None
        assert parser.malformed == 1
        assert parser.parsed == 0

    def test_missing_echo_means_no_rtt(self):
        parser = InfoParser()
        info = Packet("INFO", 0, 0, 64, flow_id=1, psn=2, meta={"rx_port": 0})
        event = parser.parse(info, 1000)
        assert event is not None
        assert event.prb_rtt_ps == -1

    def test_fpga_drops_malformed_silently(self):
        from repro.cc import Reno
        from repro.fpga.nic import FpgaNic, FpgaNicConfig

        sim = Simulator()
        nic = FpgaNic(sim, Reno(), FpgaNicConfig(n_test_ports=1))
        nic.receive(Packet("GARBAGE", 1, 2, 64), nic.port)
        assert nic.parser.malformed == 1


class TestPublicApi:
    def test_registry_names_stable(self):
        names = set(available_cc())
        assert {"reno", "dctcp", "dcqcn", "cubic", "timely", "hpcc", "swift"} <= names

    def test_top_level_docstring_example_runs(self):
        """The doctest in repro/__init__.py, executed for real."""
        from repro import ControlPlane, TestConfig

        cp = ControlPlane()
        tester = cp.deploy(TestConfig(cc_algorithm="dctcp", n_test_ports=2))
        cp.wire_loopback_fabric()
        cp.start_flows(size_packets=200, pattern="pairs")
        cp.run(duration_ps=10**9)
        assert tester.fct.stats().count >= 1

    def test_every_public_module_has_docstring(self):
        import importlib
        import pkgutil

        import repro

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert missing == []

    def test_all_algorithms_have_table3_docs(self):
        for name in available_cc():
            algorithm = create_cc(name)
            assert (type(algorithm).__doc__ or "").strip(), name
            assert algorithm.on_event.__doc__ or type(algorithm).on_event is not None


class TestSchedFifoBounds:
    def test_capacity_below_flow_count_drops_events(self):
        """An undersized scheduling FIFO loses events (so the default is
        sized at the 65,536-flow maximum)."""
        from repro.cc.base import CCMode
        from repro.fpga.flow import FlowState
        from repro.fpga.scheduler import PortScheduler

        sim = Simulator()
        scheduler = PortScheduler(
            sim, 0, 1000, CCMode.WINDOW, lambda *a: None, fifo_capacity=4
        )
        flows = [
            FlowState(
                flow_id=i, port_index=0, src_addr=1, dst_addr=2,
                size_packets=10, frame_bytes=1024, cwnd_or_rate=10.0,
            )
            for i in range(8)
        ]
        for flow in flows:
            scheduler.enqueue_flow(flow)
        assert scheduler.sched_fifo.stats.dropped == 4


class TestPipelineUsageModel:
    def test_paper_build_close_to_reported_sram(self):
        from repro.pswitch.pipeline import marlin_dataplane_usage

        pipeline = marlin_dataplane_usage(12, 128, 65_536)
        # Paper: 58/960 SRAM blocks, 4 stages.
        assert 20 <= pipeline.sram_blocks_used <= 120
        assert pipeline.stages_used == 4


class TestExamples:
    def test_examples_compile(self):
        """Every example is at least syntactically sound and importable
        up to its main() guard (full runs are exercised manually)."""
        import py_compile
        from pathlib import Path

        examples = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))
        assert len(examples) >= 5
        for path in examples:
            py_compile.compile(str(path), doraise=True)

    def test_examples_have_docstrings_and_main(self):
        from pathlib import Path

        for path in (Path(__file__).parent.parent / "examples").glob("*.py"):
            source = path.read_text()
            assert source.lstrip().startswith('"""'), path.name
            assert '__name__ == "__main__"' in source, path.name


class TestMultiFlowIdScheme:
    def test_flow_ids_never_reused(self):
        from repro import ControlPlane, TestConfig

        cp = ControlPlane()
        tester = cp.deploy(TestConfig(cc_algorithm="dcqcn", n_test_ports=2))
        cp.wire_loopback_fabric()
        ids = set()
        for _ in range(5):
            flow = tester.start_flow(
                port_index=0, dst_port_index=1, size_packets=50
            )
            assert flow.flow_id not in ids
            ids.add(flow.flow_id)
            cp.run(duration_ps=1 * MS)
