"""Units and line-rate arithmetic — the paper's Section 3.3 constants."""

import pytest

from repro import units


class TestTimeConversions:
    def test_second_is_1e12_ps(self):
        assert units.SECOND == 10**12

    def test_seconds_roundtrip(self):
        assert units.seconds(units.SECOND) == 1.0
        assert units.seconds(500 * units.MS) == 0.5

    def test_microseconds(self):
        assert units.microseconds(3 * units.US) == 3.0

    def test_aliases(self):
        assert units.NS == units.NANOSECOND
        assert units.US == units.MICROSECOND
        assert units.MS == units.MILLISECOND


class TestWireBits:
    def test_min_frame(self):
        # 64 B + 20 B overhead = 672 bits.
        assert units.wire_bits(64) == 672

    def test_mtu_1518(self):
        assert units.wire_bits(1518) == (1518 + 20) * 8

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.wire_bits(0)
        with pytest.raises(ValueError):
            units.wire_bits(-5)


class TestLineRate:
    def test_sche_rate_is_148_8_mpps(self):
        # The paper's 148.8 Mpps for 64 B packets on 100 Gbps.
        pps = units.line_rate_pps(64)
        assert pps == pytest.approx(148.8e6, rel=0.001)

    def test_data_rate_1024_is_11_97_mpps(self):
        pps = units.line_rate_pps(1024)
        assert pps == pytest.approx(11.97e6, rel=0.001)

    def test_data_rate_1518_is_8_127_mpps(self):
        pps = units.line_rate_pps(1518)
        assert pps == pytest.approx(8.127e6, rel=0.001)

    def test_serialization_time_64b(self):
        # 672 bits at 100 Gbps = 6.72 ns = 6720 ps.
        assert units.serialization_time_ps(64, units.RATE_100G) == 6720

    def test_serialization_rounds_up(self):
        # 1 byte at 3 bps: 21*8 bits -> ceil(168e12/3).
        assert units.serialization_time_ps(1, 3) == 56 * units.SECOND

    def test_serialization_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            units.serialization_time_ps(64, 0)

    def test_interval_matches_serialization(self):
        assert units.line_rate_interval_ps(1024) == units.serialization_time_ps(
            1024, units.RATE_100G
        )


class TestGoodput:
    def test_full_payload(self):
        bps = units.goodput_bps(1024, 1024)
        assert bps == pytest.approx(units.line_rate_pps(1024) * 1024 * 8)

    def test_rejects_oversized_payload(self):
        with pytest.raises(ValueError):
            units.goodput_bps(64, 65)


class TestFpgaClock:
    def test_cycle_duration(self):
        # 322 MHz -> 3105 ps (truncated).
        assert units.FPGA_CYCLE_PS == units.SECOND // 322_000_000
        assert 3100 <= units.FPGA_CYCLE_PS <= 3110


class TestFormatting:
    def test_format_rate_tbps(self):
        assert units.format_rate(1.2e12) == "1.20 Tbps"

    def test_format_rate_gbps(self):
        assert units.format_rate(98.4e9) == "98.40 Gbps"

    def test_format_rate_mbps(self):
        assert units.format_rate(5e6) == "5.00 Mbps"

    def test_format_time(self):
        assert units.format_time(units.SECOND) == "1.000 s"
        assert units.format_time(1500 * units.NS).endswith("us")
