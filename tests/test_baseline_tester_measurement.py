"""The CC-less switch-tester baseline, per-flow stats, RTT sampling,
and config serialization."""

import json

import pytest

from repro import ControlPlane, TestConfig
from repro.baselines.pswitch_tester import PswitchTester
from repro.cli import main as cli_main
from repro.errors import ConfigError
from repro.net.switch import NetworkSwitch
from repro.net.topology import Topology
from repro.sim import Simulator
from repro.units import GBPS, MS, US


def build_ccless(rate_bps):
    sim = Simulator()
    topo = Topology(sim)
    fabric = NetworkSwitch(sim, "fabric")
    topo.add_device(fabric)
    tester = PswitchTester(sim, 2)
    for index, port in enumerate(tester.ports):
        fabric_port = fabric.add_ecn_port()
        topo.connect(port, fabric_port)
        fabric.set_route(index + 1, fabric_port)
    stream = tester.add_stream(0, src_addr=1, dst_addr=2, rate_bps=rate_bps)
    return sim, tester, fabric, stream


class TestPswitchTester:
    def test_fixed_rate_stream_holds_rate(self):
        sim, tester, fabric, stream = build_ccless(10 * GBPS)
        stream.start()
        sim.run(until_ps=1 * MS)
        rate = stream.sent_packets * (1024 + 20) * 8 / 1e-3
        assert rate == pytest.approx(10e9, rel=0.01)

    def test_ignores_ecn_feedback(self):
        """The defining R1 failure: ECN echoes are counted, not obeyed."""
        sim, tester, fabric, stream = build_ccless(100 * GBPS)
        # Force-mark everything via a tiny ECN threshold on the far port.
        fabric.ports[1].queue.ecn_threshold_bytes = 1
        stream.start()
        sim.run(until_ps=500 * US)
        before = stream.sent_packets
        assert tester.ecn_echoes_ignored > 0
        sim.run(until_ps=1 * MS)
        # Still emitting at full rate despite congestion signals.
        assert stream.sent_packets - before == pytest.approx(
            before, rel=0.05
        )

    def test_stop_stream(self):
        sim, tester, fabric, stream = build_ccless(10 * GBPS)
        stream.start()
        sim.run(until_ps=100 * US)
        stream.stop()
        count = stream.sent_packets
        sim.run(until_ps=1 * MS)
        assert stream.sent_packets == count

    def test_bad_rate_rejected(self):
        sim, tester, fabric, stream = build_ccless(10 * GBPS)
        with pytest.raises(ValueError):
            tester.add_stream(0, src_addr=1, dst_addr=2, rate_bps=0)

    def test_acks_counted(self):
        sim, tester, fabric, stream = build_ccless(10 * GBPS)
        stream.start()
        sim.run(until_ps=1 * MS)
        assert tester.acks_received > 0
        assert tester.data_received > 0


class TestFlowStats:
    def deploy(self, **cfg):
        cp = ControlPlane()
        tester = cp.deploy(TestConfig(**cfg))
        cp.wire_loopback_fabric()
        return cp, tester

    def test_clean_flow_has_no_loss(self):
        cp, tester = self.deploy(cc_algorithm="dctcp", n_test_ports=2)
        flow = tester.start_flow(port_index=0, dst_port_index=1, size_packets=800)
        cp.run(duration_ps=3 * MS)
        stats = tester.flow_stats(flow.flow_id)
        assert stats["finished"] == 1
        assert stats["acked"] == 800
        assert stats["lost_estimate"] == 0
        assert stats["retransmitted"] == 0
        assert stats["generated"] == 800

    def test_lossy_flow_reports_loss(self):
        cp, tester = self.deploy(
            cc_algorithm="dctcp",
            n_test_ports=2,
            cc_params={"initial_ssthresh": 256.0},
        )
        dropped = []

        def drop(packet, port):
            if packet.ptype == "DATA" and packet.psn == 50 and not dropped:
                dropped.append(packet.psn)
                return False
            return True

        cp.fabric.packet_filter = drop
        flow = tester.start_flow(port_index=0, dst_port_index=1, size_packets=800)
        cp.run(duration_ps=5 * MS)
        stats = tester.flow_stats(flow.flow_id)
        assert stats["finished"] == 1
        assert stats["retransmitted"] >= 1
        assert stats["lost_estimate"] == 1  # exactly the dropped packet

    def test_unknown_flow_rejected(self):
        cp, tester = self.deploy(n_test_ports=2)
        with pytest.raises(ConfigError):
            tester.flow_stats(999)


class TestRttSampling:
    def test_rtt_stats(self):
        cp = ControlPlane()
        tester = cp.deploy(
            TestConfig(cc_algorithm="dctcp", n_test_ports=2, sample_rtt=True)
        )
        cp.wire_loopback_fabric()
        cp.start_flows(size_packets=500, pattern="pairs")
        cp.run(duration_ps=3 * MS)
        stats = tester.rtt_stats_us()
        assert stats["count"] > 100
        # Fabric RTT: ~4 us of cable + pipeline/serialization.
        assert 3.0 <= stats["p50_us"] <= 20.0
        assert stats["max_us"] >= stats["p50_us"]

    def test_requires_enablement(self):
        cp = ControlPlane()
        tester = cp.deploy(TestConfig(n_test_ports=2))
        cp.wire_loopback_fabric()
        with pytest.raises(ConfigError):
            tester.rtt_stats_us()


class TestConfigSerialization:
    def test_roundtrip(self):
        config = TestConfig(cc_algorithm="dcqcn", n_test_ports=4, int_enabled=True)
        clone = TestConfig.from_dict(config.to_dict())
        assert clone == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            TestConfig.from_dict({"cc_algorithm": "reno", "bogus": 1})

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError):
            TestConfig.from_dict({"flows_per_port": 0})

    def test_json_roundtrip(self):
        config = TestConfig(cc_algorithm="swift", flows_per_port=2)
        payload = json.loads(json.dumps(config.to_dict()))
        assert TestConfig.from_dict(payload) == config

    def test_cli_config_file(self, tmp_path, capsys):
        config_path = tmp_path / "test.json"
        config_path.write_text(
            json.dumps(
                TestConfig(cc_algorithm="dcqcn", n_test_ports=2).to_dict()
            )
        )
        code = cli_main(
            [
                "run",
                "--config",
                str(config_path),
                "--duration-ms",
                "2",
                "--size-packets",
                "300",
            ]
        )
        assert code == 0
        assert "flows completed : 1" in capsys.readouterr().out
