"""Register queues (Section 4.2 semantics) and pipeline resource budgets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RegisterQueueOverflow, ResourceExceededError
from repro.pswitch.pipeline import (
    MAX_SRAM_BLOCKS,
    MAX_STAGES,
    PipelineModel,
    PipelineUsage,
    SUPPORTED_DATAPLANE_OPS,
    UNSUPPORTED_DATAPLANE_OPS,
    marlin_dataplane_usage,
)
from repro.pswitch.registers import RegisterArray, RegisterQueue


class TestRegisterArray:
    def test_read_write(self):
        arr = RegisterArray(8)
        arr.write(3, 42)
        assert arr.read(3) == 42
        assert arr.reads == 1 and arr.writes == 1

    def test_wraps_modulo_size(self):
        arr = RegisterArray(4)
        arr.write(5, "x")
        assert arr.read(1) == "x"

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            RegisterArray(0)


class TestRegisterQueue:
    def test_fifo_semantics(self):
        q = RegisterQueue(4)
        for i in range(3):
            q.enqueue(i)
        assert [q.dequeue() for _ in range(3)] == [0, 1, 2]
        assert q.dequeue() is None

    def test_overflow_drops_and_counts(self):
        q = RegisterQueue(2)
        assert q.enqueue("a") and q.enqueue("b")
        assert not q.enqueue("c")
        assert q.overflows == 1
        # The queue content is unchanged: "c" (the scheduled DATA) is lost.
        assert [q.dequeue(), q.dequeue()] == ["a", "b"]

    def test_strict_overflow_raises(self):
        q = RegisterQueue(1, strict=True)
        q.enqueue("a")
        with pytest.raises(RegisterQueueOverflow):
            q.enqueue("b")

    def test_wraparound_reuse(self):
        q = RegisterQueue(2)
        for i in range(10):
            assert q.enqueue(i)
            assert q.dequeue() == i

    def test_max_length_recorded(self):
        q = RegisterQueue(8)
        for i in range(5):
            q.enqueue(i)
        q.dequeue()
        assert q.max_length == 5

    @given(
        ops=st.lists(
            st.one_of(st.just("deq"), st.integers(min_value=0, max_value=999)),
            max_size=200,
        ),
        capacity=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_model_fifo(self, ops, capacity):
        """The register implementation behaves exactly like a bounded deque."""
        q = RegisterQueue(capacity)
        model = []
        for op in ops:
            if op == "deq":
                expected = model.pop(0) if model else None
                assert q.dequeue() == expected
            else:
                if len(model) < capacity:
                    assert q.enqueue(op)
                    model.append(op)
                else:
                    assert not q.enqueue(op)
            assert len(q) == len(model)
            assert q.full == (len(model) == capacity)


class TestPipelineModel:
    def test_marlin_program_fits_tofino(self):
        """The paper's build: 12 ports, 65,536 flows, 4 stages, modest SRAM."""
        pipeline = marlin_dataplane_usage(12, 128, 65_536)
        assert pipeline.stages_used <= MAX_STAGES
        assert pipeline.sram_blocks_used <= MAX_SRAM_BLOCKS
        # The paper reports 58/960 SRAM blocks; our estimate is the same
        # order of magnitude.
        assert 20 <= pipeline.sram_blocks_used <= 120

    def test_stage_budget_enforced(self):
        pipeline = PipelineModel()
        with pytest.raises(ResourceExceededError):
            pipeline.add(PipelineUsage("huge", stages=13))

    def test_sram_budget_enforced(self):
        pipeline = PipelineModel()
        with pytest.raises(ResourceExceededError):
            pipeline.add(PipelineUsage("huge", sram_blocks=961))

    def test_tcam_budget_enforced(self):
        pipeline = PipelineModel()
        with pytest.raises(ResourceExceededError):
            pipeline.add(PipelineUsage("huge", tcam_blocks=289))

    def test_cc_ops_not_supported_in_dataplane(self):
        """Section 2.1: the switch cannot express CC algorithms."""
        assert "register_rmw" in UNSUPPORTED_DATAPLANE_OPS
        assert "mul" in UNSUPPORTED_DATAPLANE_OPS
        assert "div" in UNSUPPORTED_DATAPLANE_OPS
        assert not (SUPPORTED_DATAPLANE_OPS & UNSUPPORTED_DATAPLANE_OPS)
