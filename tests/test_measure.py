"""Measurement layer: rate meters, FCT stats, Jain index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measure import FctCollector, RateMeter, ThroughputSampler, cdf_points, jain_index
from repro.sim import Simulator
from repro.units import MICROSECOND, SECOND


class TestRateMeter:
    def test_window_rate(self):
        meter = RateMeter()
        meter.count(12_500)  # 100,000 bits
        rate = meter.take_window_bps(MICROSECOND)
        assert rate == pytest.approx(1e11)  # 100 kbit in 1 us = 100 Gbps

    def test_window_resets(self):
        meter = RateMeter()
        meter.count(1000)
        meter.take_window_bps(MICROSECOND)
        assert meter.take_window_bps(MICROSECOND) == 0.0
        assert meter.total_bytes == 1000

    def test_bad_window(self):
        with pytest.raises(ValueError):
            RateMeter().take_window_bps(0)


class TestThroughputSampler:
    def test_sampling_series(self):
        sim = Simulator()
        sampler = ThroughputSampler(sim, period_ps=1000)
        sampler.start()
        meter = sampler.meter("f1")
        sim.at(100, meter.count, 125)  # 1000 bits in window 1
        sim.at(1500, meter.count, 250)  # 2000 bits in window 2
        sim.run(until_ps=2500)
        times, rates = sampler.series("f1")
        assert times == [1000, 2000]
        assert rates[0] == pytest.approx(1000 * SECOND / 1000)
        assert rates[1] == pytest.approx(2 * rates[0])

    def test_total_series(self):
        sim = Simulator()
        sampler = ThroughputSampler(sim, period_ps=1000)
        sampler.start()
        sampler.meter("a").count(125)
        sampler.meter("b").count(125)
        sim.run(until_ps=1000)
        _, totals = sampler.total_series()
        assert totals[0] == pytest.approx(2 * 125 * 8 * SECOND / 1000)

    def test_stop(self):
        sim = Simulator()
        sampler = ThroughputSampler(sim, period_ps=1000)
        sampler.start()
        sim.at(1500, sampler.stop)
        sim.run(until_ps=5000)
        assert len(sampler.samples) == 1


class TestFctCollector:
    def test_stats(self):
        fct = FctCollector()
        for i, duration_us in enumerate([10, 20, 30, 40]):
            fct.add(i, 10, 10_000, 0, duration_us * MICROSECOND)
        stats = fct.stats()
        assert stats.count == 4
        assert stats.mean_us == pytest.approx(25.0)
        assert stats.max_us == pytest.approx(40.0)

    def test_short_flow_subset(self):
        fct = FctCollector()
        fct.add(1, 10, 10_000, 0, 10 * MICROSECOND)
        fct.add(2, 1000, 1_000_000, 0, 500 * MICROSECOND)
        short = fct.short_flow_stats(cutoff_bytes=100_000)
        assert short.count == 1
        assert short.mean_us == pytest.approx(10.0)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            FctCollector().add(1, 1, 1, 100, 50)

    def test_empty_stats_raise(self):
        with pytest.raises(ValueError):
            FctCollector().stats()


class TestCdfPoints:
    def test_sorted_and_normalized(self):
        values, probs = cdf_points([3.0, 1.0, 2.0])
        assert values.tolist() == [1.0, 2.0, 3.0]
        assert probs.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_points([])


class TestJainIndex:
    def test_equal_rates_give_one(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog_gives_1_over_n(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([-1.0])

    @given(st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_bounds(self, rates):
        index = jain_index(rates)
        assert 1.0 / len(rates) - 1e-9 <= index <= 1.0 + 1e-9

    @given(
        st.floats(min_value=0.001, max_value=1e6),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_scale_invariant(self, rate, n):
        assert jain_index([rate] * n) == pytest.approx(1.0)
