"""Section 5.4 ablation: DCTCP alpha via the Slow Path (32-bit) vs the
fast path (16-bit fixed point).

"Using the Slow Path to update alpha in DCTCP allows increasing division
and alpha precision from 16-bit to 32-bit."
"""

import pytest

from repro import ControlPlane, TestConfig
from repro.cc import Dctcp
from repro.cc.dctcp import ALPHA16_SCALE, AlphaUpdateEvent
from repro.units import MS


class TestFastPathAlpha:
    def test_no_slow_state_when_disabled(self):
        assert Dctcp(use_slow_path=False).initial_slow() is None
        assert Dctcp(use_slow_path=True).initial_slow() is not None

    def test_effective_alpha_sources(self):
        fast = Dctcp(use_slow_path=False, initial_alpha=0.5)
        cust = fast.initial_cust()
        assert fast.effective_alpha(cust, None) == pytest.approx(0.5, abs=1e-4)

        slow_alg = Dctcp(use_slow_path=True, initial_alpha=0.5)
        slow = slow_alg.initial_slow()
        assert slow_alg.effective_alpha(slow_alg.initial_cust(), slow) == 0.5

    def test_alpha16_matches_float_at_coarse_fractions(self):
        """With large marking fractions, 16-bit tracking agrees with the
        float EWMA to within quantization."""
        alg = Dctcp(use_slow_path=False, g=1 / 16)
        cust = alg.initial_cust()
        alpha_float = 1.0
        for _ in range(50):
            cust.acked_cnt, cust.marked_cnt = 100, 25
            alg._update_alpha16(cust)
            cust.acked_cnt = cust.marked_cnt = 0
            alpha_float = (1 - 1 / 16) * alpha_float + (1 / 16) * 0.25
        assert cust.alpha_q16 / ALPHA16_SCALE == pytest.approx(
            alpha_float, abs=0.01
        )

    def test_16bit_loses_tiny_fractions(self):
        """The Section 5.4 point: g*F truncates below one quantum, so a
        tiny persistent marking fraction never registers in 16-bit alpha
        while the 32-bit slow path tracks it."""
        fast = Dctcp(use_slow_path=False, g=1 / 16, initial_alpha=0.0)
        cust = fast.initial_cust()
        for _ in range(200):
            cust.acked_cnt, cust.marked_cnt = 10_000, 1  # F = 1e-4
            fast._update_alpha16(cust)
            cust.acked_cnt = cust.marked_cnt = 0
        alpha16 = cust.alpha_q16 / ALPHA16_SCALE

        slow_alg = Dctcp(use_slow_path=True, g=1 / 16, initial_alpha=0.0)
        slow = slow_alg.initial_slow()
        for _ in range(200):
            slow_alg.slow_path(AlphaUpdateEvent(acked=10_000, marked=1), None, slow)

        assert alpha16 == 0.0  # quantized away
        assert slow.alpha == pytest.approx(1e-4, rel=0.05)  # converged

    def test_fast_path_variant_runs_end_to_end(self):
        cp = ControlPlane()
        tester = cp.deploy(
            TestConfig(
                cc_algorithm="dctcp",
                n_test_ports=2,
                cc_params={"use_slow_path": False, "initial_ssthresh": 256.0},
            )
        )
        cp.wire_loopback_fabric()
        cp.start_flows(size_packets=2000, pattern="pairs")
        cp.run(duration_ps=5 * MS)
        assert len(tester.fct) == 1
        # No slow-path events were emitted.
        assert tester.nic.slow_path.events_processed == 0

    def test_both_variants_converge_similarly_under_congestion(self):
        """At ordinary marking fractions the variants behave alike."""
        fcts = {}
        for use_slow in (True, False):
            cp = ControlPlane()
            tester = cp.deploy(
                TestConfig(
                    cc_algorithm="dctcp",
                    n_test_ports=3,
                    cc_params={
                        "use_slow_path": use_slow,
                        "initial_ssthresh": 512.0,
                    },
                )
            )
            cp.wire_loopback_fabric()
            for src in range(2):
                tester.start_flow(
                    port_index=src, dst_port_index=2, size_packets=3000
                )
            cp.run(duration_ps=10 * MS)
            assert len(tester.fct) == 2
            fcts[use_slow] = sum(r.fct_ps for r in tester.fct.records)
        assert fcts[True] == pytest.approx(fcts[False], rel=0.15)
