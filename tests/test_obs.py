"""Observability layer: metrics registry, export formats, profiler.

The load-bearing property here is the last class: metrics and profiling
must never perturb a simulation (ISSUE acceptance criterion — runs are
event-for-event identical with observability on or off).
"""

import math

import pytest

from repro.core import ControlPlane, TestConfig
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    instrument_control_plane,
    instrument_engine,
    parse_prometheus_text,
    sanitize_metric_name,
    to_json,
    to_prometheus,
)
from repro.obs.profile import SimProfiler, callback_owner
from repro.sim import Simulator
from repro.units import MS, US


class TestRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        c1 = registry.counter("hits_total", port="1")
        c2 = registry.counter("hits_total", port="1")
        assert c1 is c2
        c1.inc()
        c1.value += 2
        assert registry.find("hits_total", port="1") == 3

    def test_label_sets_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", port="1").inc(5)
        registry.counter("hits_total", port="2").inc(7)
        assert registry.find("hits_total", port="1") == 5
        assert registry.find("hits_total", port="2") == 7
        assert len(registry) == 2

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")
        with pytest.raises(ValueError):
            registry.bind("x_total", lambda: 1, kind="gauge")

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.get() == 12

    def test_bind_is_lazy_and_idempotent(self):
        registry = MetricsRegistry()
        state = {"n": 0}
        registry.bind("lazy_total", lambda: state["n"])
        state["n"] = 41
        registry.bind("lazy_total", lambda: state["n"] + 1)  # replaces
        assert registry.find("lazy_total") == 42
        assert len(registry) == 1

    def test_snapshot_folds_labels(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", port="3", switch="s0").inc(9)
        snap = registry.snapshot()
        assert snap == {"hits_total{port=3,switch=s0}": 9}


class TestHistogram:
    def test_log2_bucket_boundaries(self):
        h = Histogram("h", {}, n_buckets=4)  # bounds 1, 2, 4, 8, +Inf
        for value, bucket in [(0, 0), (1, 0), (1.5, 1), (2, 1), (3, 2),
                              (4, 2), (5, 3), (8, 3), (9, 4), (1000, 4)]:
            before = list(h.counts)
            h.observe(value)
            changed = [i for i in range(5) if h.counts[i] != before[i]]
            assert changed == [bucket], f"value {value} landed in {changed}"
        assert h.count == 10
        assert h.sum == pytest.approx(sum([0, 1, 1.5, 2, 3, 4, 5, 8, 9, 1000]))

    def test_cumulative_ends_at_count(self):
        h = Histogram("h", {}, n_buckets=3)
        for value in (1, 2, 100):
            h.observe(value)
        assert h.cumulative_counts()[-1] == h.count == 3
        assert h.bucket_bounds() == [1.0, 2.0, 4.0, math.inf]


class TestExport:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", port="1").inc(5)
        registry.counter("repro_hits_total", port="2").inc(2)
        registry.gauge("repro_depth").set(7)
        h = registry.histogram("repro_batch", n_buckets=3)
        h.observe(1)
        h.observe(3)
        return registry

    def test_prometheus_round_trip(self):
        text = to_prometheus(self._registry())
        samples = parse_prometheus_text(text)
        by_key = {(name, tuple(sorted(labels.items()))): value
                  for name, labels, value in samples}
        assert by_key[("repro_hits_total", (("port", "1"),))] == 5
        assert by_key[("repro_depth", ())] == 7
        assert by_key[("repro_batch_count", ())] == 2
        assert by_key[("repro_batch_bucket", (("le", "+Inf"),))] == 2
        assert by_key[("repro_batch_bucket", (("le", "1"),))] == 1

    def test_type_lines_once_per_family(self):
        text = to_prometheus(self._registry())
        type_lines = [l for l in text.splitlines() if l.startswith("# TYPE")]
        assert "# TYPE repro_hits_total counter" in type_lines
        assert "# TYPE repro_batch histogram" in type_lines
        assert len(type_lines) == len(set(type_lines))

    def test_empty_registry_exports(self):
        assert to_prometheus(MetricsRegistry()) == "\n"
        assert parse_prometheus_text(to_prometheus(MetricsRegistry())) == []
        assert to_json(MetricsRegistry()).strip() == "{}"

    @pytest.mark.parametrize(
        "bad",
        [
            "no value here",
            "1leading_digit 3",
            'name{unterminated="x} 1',
            'name{bad-label="x"} 1',
            "name 1 2 3",
            "# BOGUS comment line",
        ],
    )
    def test_parser_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)

    def test_parser_accepts_inf_nan(self):
        samples = parse_prometheus_text("a_bucket{le=\"+Inf\"} 3\nb NaN\n")
        assert samples[0][2] == 3.0
        assert math.isnan(samples[1][2])

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("switch.data_generated") == "switch_data_generated"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert parse_prometheus_text(f"{sanitize_metric_name('a.b-c')} 1")


class TestEngineInstrumentation:
    def test_engine_binding_tracks_counters(self):
        sim = Simulator()
        registry = MetricsRegistry()
        instrument_engine(sim, registry)
        handle = sim.schedule_handle(500, lambda: None)
        handle.cancel()
        sim.at(100, lambda: None)
        sim.run(until_ps=1000)
        assert registry.find("repro_sim_events_executed_total") == 1
        assert registry.find("repro_sim_events_cancelled_total") == 1
        assert registry.find("repro_sim_time_ps") == 1000


class TestProfiler:
    def test_callback_owner_names(self):
        class Widget:
            def poke(self):
                pass

        assert callback_owner(Widget().poke) == "Widget.poke"

        def free_fn():
            pass

        assert "free_fn" in callback_owner(free_fn)

    def test_profiled_run_attributes_time(self):
        sim = Simulator()
        sim.enable_profiling()

        class Ticker:
            def __init__(self):
                self.n = 0

            def tick(self):
                self.n += 1
                if sim.now < 10_000:
                    sim.after(1000, self.tick)

        ticker = Ticker()
        sim.at(0, ticker.tick)
        sim.run(until_ps=20_000)
        report = sim.profile()
        assert report.total_calls == ticker.n
        owners = [row.owner for row in report.rows]
        assert owners == ["Ticker.tick"]
        assert "Ticker.tick" in report.table()

    def test_profile_requires_enable(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            Simulator().profile()

    def test_profiled_run_is_identical(self):
        """The _run_profiled loop must execute the same events in the
        same order as the hot path."""

        def scenario(profiled):
            cp = ControlPlane()
            cp.deploy(TestConfig(cc_algorithm="dctcp", n_test_ports=2, seed=3))
            cp.wire_loopback_fabric()
            if profiled:
                cp.sim.enable_profiling()
            cp.start_flows(size_packets=50, pattern="pairs")
            cp.run(duration_ps=200 * US)
            return cp.sim.events_executed, cp.read_measurements()

        assert scenario(False) == scenario(True)

    def test_record_accumulates(self):
        profiler = SimProfiler()

        def fn():
            pass

        profiler.record(fn, 0.25)
        profiler.record(fn, 0.25)
        (row,) = profiler.rows()
        assert row.calls == 2
        assert row.seconds == pytest.approx(0.5)


class TestObservabilityIsInert:
    """ISSUE property test: metrics-on == metrics-off, event for event."""

    def _scenario(self, instrumented):
        cp = ControlPlane()
        cp.deploy(TestConfig(cc_algorithm="dcqcn", n_test_ports=4, seed=7))
        cp.wire_loopback_fabric(ecn_threshold_bytes=84_000)
        registry = instrument_control_plane(cp) if instrumented else None
        cp.start_flows(size_packets=10**9, pattern="fan_in")
        cp.run(duration_ps=1 * MS)
        fingerprint = (
            cp.sim.events_executed,
            cp.sim.now,
            tuple(sorted(cp.read_measurements().items())),
        )
        return fingerprint, registry

    def test_metrics_do_not_perturb_simulation(self):
        bare, _ = self._scenario(instrumented=False)
        observed, registry = self._scenario(instrumented=True)
        assert bare == observed
        # ... and the registry actually observed the run.
        assert registry.find("repro_sim_events_executed_total") == bare[0]
        assert registry.find("repro_pswitch_data_generated_total") > 0

    def test_prometheus_snapshot_of_real_run_parses(self):
        _, registry = self._scenario(instrumented=True)
        samples = parse_prometheus_text(to_prometheus(registry))
        names = {name for name, _, _ in samples}
        assert "repro_sim_events_executed_total" in names
        assert "repro_queue_ecn_marked_packets_total" in names
        assert "repro_qdma_batch_records_bucket" in names
