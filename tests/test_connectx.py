"""The ConnectX-style host DCQCN stack (Figure 9 baseline)."""

import numpy as np
import pytest

from repro.net.link import Link
from repro.net.host import Host
from repro.net.topology import n_cast_1
from repro.reference.connectx import (
    ALPHA_SCALE,
    ConnectXAgent,
    ConnectXFctHarness,
    DcqcnRpParams,
)
from repro.sim import Simulator
from repro.units import GBPS, MS, US
from repro.workload import FixedSize, websearch


def wire_hosts():
    sim = Simulator()
    a = Host(sim, 1)
    b = Host(sim, 2)
    Link(a.port, b.port, delay_ps=1 * US)
    return sim, ConnectXAgent(a), ConnectXAgent(b)


class TestSingleQp:
    def test_flow_completes(self):
        sim, sender, receiver = wire_hosts()
        qp = sender.create_qp(2)
        done = []
        sender.on_qp_complete = done.append
        qp.start_flow(100)
        sim.run(until_ps=10 * MS)
        assert done and done[0] is qp
        assert not qp.active

    def test_goodput_near_line_rate(self):
        sim, sender, receiver = wire_hosts()
        qp = sender.create_qp(2)
        qp.start_flow(5000)
        sim.run(until_ps=10 * MS)
        assert sender.completions
        _, size, fct_ps = sender.completions[0]
        goodput = size * 1024 * 8 / (fct_ps / 1e12)
        assert goodput >= 0.9 * 100 * GBPS

    def test_go_back_n_on_reorder_gap(self):
        sim, sender, receiver = wire_hosts()
        qp = sender.create_qp(2)
        qp.start_flow(10_000)  # long enough to still be active at 20 us
        # Emulate a loss: deliver a NACK for psn 5 directly.
        sim.run(until_ps=20 * US)
        qp.on_ack(5, nack=True, cnp=False)
        assert qp.nxt == 5
        sim.run(until_ps=10 * MS)
        assert not qp.active  # still completes

    def test_cnp_cuts_rate(self):
        sim, sender, receiver = wire_hosts()
        qp = sender.create_qp(2)
        qp.start_flow(10)
        before = qp.rate_bps
        qp.on_ack(-1, nack=False, cnp=True)
        assert qp.rate_bps == pytest.approx(before / 2)  # alpha starts at 1
        assert qp.target_bps == pytest.approx(before)
        assert qp.alpha_q == ALPHA_SCALE  # (1-g) + g of 1.0 stays 1.0

    def test_alpha_fixed_point_decays(self):
        sim, sender, receiver = wire_hosts()
        qp = sender.create_qp(2)
        qp.start_flow(10)
        qp.on_ack(-1, nack=False, cnp=True)
        sim.run(until_ps=1 * MS)
        assert qp.alpha_q < ALPHA_SCALE  # alpha timer decayed it

    def test_rate_recovers_after_cut(self):
        sim, sender, receiver = wire_hosts()
        qp = sender.create_qp(2)
        qp.start_flow(200_000)
        sim.run(until_ps=100 * US)
        qp.on_ack(-1, nack=False, cnp=True)
        cut_rate = qp.rate_bps
        sim.run(until_ps=30 * MS)
        assert qp.rate_bps > cut_rate

    def test_double_start_rejected(self):
        sim, sender, receiver = wire_hosts()
        qp = sender.create_qp(2)
        qp.start_flow(1000)
        with pytest.raises(RuntimeError):
            qp.start_flow(5)


class TestNotificationPoint:
    def test_ce_generates_cnp(self):
        sim, sender, receiver = wire_hosts()
        qp = sender.create_qp(2)
        qp.start_flow(2000)
        # Mark every DATA packet CE en route by monkeypatching delivery:
        original = receiver.on_receive

        def marking(packet):
            if packet.ptype == "DATA":
                packet.ecn = 3
            original(packet)

        receiver.host.agent = type("A", (), {"on_receive": staticmethod(marking)})()
        sim.run(until_ps=2 * MS)
        assert qp.rate_bps < 100 * GBPS  # CNPs arrived and cut the rate

    def test_cnp_rate_limited_per_flow(self):
        sim, sender, receiver = wire_hosts()
        from repro.net.packet import Packet, ECT

        # Two CE-marked packets close together: one CNP.
        for psn in (0, 1):
            data = Packet("DATA", 1, 2, 1024, flow_id=100001, psn=psn, ecn=3)
            receiver._receive_data(data)
        cnp_count = receiver._last_cnp_ps
        assert len(cnp_count) == 1


class TestFctHarness:
    def test_closed_loop_maintains_concurrency(self):
        sim = Simulator()
        topo, senders, receiver, _, _ = n_cast_1(sim, 2)
        agents = [ConnectXAgent(h) for h in senders]
        recv = ConnectXAgent(receiver)
        harness = ConnectXFctHarness(
            agents,
            recv,
            FixedSize(50 * 1024),
            qps_per_host=5,
            rng=np.random.default_rng(0),
            stop_after_flows=40,
        )
        harness.start()
        sim.run(until_ps=200 * MS)
        assert len(harness.fct) == 40
        stats = harness.fct.stats()
        assert stats.mean_us > 0

    def test_websearch_2cast1(self):
        sim = Simulator()
        topo, senders, receiver, _, _ = n_cast_1(sim, 2)
        agents = [ConnectXAgent(h) for h in senders]
        recv = ConnectXAgent(receiver)
        harness = ConnectXFctHarness(
            agents,
            recv,
            websearch(),
            qps_per_host=2,
            rng=np.random.default_rng(1),
            stop_after_flows=12,
        )
        harness.start()
        sim.run(until_ps=400 * MS)
        assert len(harness.fct) >= 10
