"""DCTCP: ECN-proportional cuts, per-window alpha slow path."""

import pytest

from repro.cc import AlphaUpdateEvent, Dctcp, EventType, Flags, IntrinsicInput


def rx(psn, *, cwnd, nxt, ecn=False, t=0):
    return IntrinsicInput(
        evt_type=EventType.RX,
        psn=psn,
        cwnd_or_rate=cwnd,
        una=psn,
        nxt=nxt,
        flags=Flags(ack=True, ecn=ecn),
        prb_rtt=-1,
        tstamp=t,
    )


@pytest.fixture
def dctcp():
    return Dctcp(initial_cwnd=1.0, initial_ssthresh=64.0, g=1.0 / 16.0)


class TestEcnResponse:
    def test_cut_proportional_to_alpha(self, dctcp):
        cust = dctcp.initial_cust()
        slow = dctcp.initial_slow()
        slow.alpha = 0.5
        cust.last_ack = 9
        cust.ssthresh = 2.0  # in CA
        out = dctcp.on_event(rx(10, cwnd=16.0, nxt=20, ecn=True), cust, slow)
        # 16 * (1 - 0.5/2) = 12, plus the CA growth applied first.
        assert out.cwnd_or_rate == pytest.approx((16.0 + 1 / 16.0) * 0.75)

    def test_one_cut_per_window(self, dctcp):
        cust = dctcp.initial_cust()
        slow = dctcp.initial_slow()
        slow.alpha = 1.0
        cust.last_ack = 0
        cust.ssthresh = 2.0
        out1 = dctcp.on_event(rx(1, cwnd=16.0, nxt=20, ecn=True), cust, slow)
        cut1 = out1.cwnd_or_rate
        # Second ECN echo inside the same window (psn < cwr_end=20): no cut.
        out2 = dctcp.on_event(rx(2, cwnd=cut1, nxt=20, ecn=True), cust, slow)
        assert out2.cwnd_or_rate >= cut1  # only CA growth, no reduction

    def test_cut_updates_ssthresh(self, dctcp):
        cust = dctcp.initial_cust()
        slow = dctcp.initial_slow()
        slow.alpha = 1.0
        cust.last_ack = 0
        cust.ssthresh = 2.0
        dctcp.on_event(rx(1, cwnd=16.0, nxt=20, ecn=True), cust, slow)
        assert cust.ssthresh == pytest.approx(cust.cwr_end and (16.0 + 1 / 16.0) / 2)

    def test_alpha_zero_means_no_cut(self, dctcp):
        cust = dctcp.initial_cust()
        slow = dctcp.initial_slow()
        slow.alpha = 0.0
        cust.last_ack = 0
        cust.ssthresh = 2.0
        out = dctcp.on_event(rx(1, cwnd=16.0, nxt=20, ecn=True), cust, slow)
        assert out.cwnd_or_rate == pytest.approx(16.0 + 1 / 16.0)


class TestAlphaSlowPath:
    def test_window_end_emits_slow_event(self, dctcp):
        cust = dctcp.initial_cust()
        slow = dctcp.initial_slow()
        cust.window_end = 5
        cust.last_ack = 4
        out = dctcp.on_event(rx(5, cwnd=8.0, nxt=12), cust, slow)
        events = [e for e in out.slow_path_events if isinstance(e, AlphaUpdateEvent)]
        assert len(events) == 1
        assert cust.acked_cnt == 0  # counters reset
        assert cust.window_end == 12

    def test_slow_path_ewma(self, dctcp):
        slow = dctcp.initial_slow()
        slow.alpha = 1.0
        dctcp.slow_path(AlphaUpdateEvent(acked=10, marked=0), None, slow)
        assert slow.alpha == pytest.approx(15.0 / 16.0)
        dctcp.slow_path(AlphaUpdateEvent(acked=10, marked=10), None, slow)
        assert slow.alpha == pytest.approx(15.0 / 16.0 * 15.0 / 16.0 + 1.0 / 16.0)

    def test_alpha_converges_to_mark_fraction(self, dctcp):
        slow = dctcp.initial_slow()
        for _ in range(200):
            dctcp.slow_path(AlphaUpdateEvent(acked=100, marked=25), None, slow)
        assert slow.alpha == pytest.approx(0.25, abs=1e-4)

    def test_marked_counter_tracks_ecn_acks(self, dctcp):
        cust = dctcp.initial_cust()
        slow = dctcp.initial_slow()
        cust.window_end = 100
        dctcp.on_event(rx(1, cwnd=8.0, nxt=10, ecn=True), cust, slow)
        dctcp.on_event(rx(2, cwnd=8.0, nxt=10, ecn=False), cust, slow)
        assert cust.acked_cnt == 2
        assert cust.marked_cnt == 1

    def test_empty_window_emits_no_event(self, dctcp):
        cust = dctcp.initial_cust()
        slow = dctcp.initial_slow()
        out = dctcp.on_event(
            IntrinsicInput(
                evt_type=EventType.RX,
                psn=0,
                cwnd_or_rate=4.0,
                una=0,
                nxt=5,
                flags=Flags(ack=True),
                prb_rtt=-1,
                tstamp=0,
            ),
            cust,
            slow,
        )
        assert out.slow_path_events == []

    def test_g_validation(self):
        with pytest.raises(ValueError):
            Dctcp(g=0.0)
        with pytest.raises(ValueError):
            Dctcp(g=1.5)


class TestInheritedRenoBehaviour:
    def test_loss_recovery_still_works(self, dctcp):
        cust = dctcp.initial_cust()
        slow = dctcp.initial_slow()
        cust.last_ack = 5
        out = None
        for _ in range(3):
            out = dctcp.on_event(
                IntrinsicInput(
                    evt_type=EventType.RX,
                    psn=5,
                    cwnd_or_rate=10.0,
                    una=5,
                    nxt=20,
                    flags=Flags(ack=True),
                    prb_rtt=-1,
                    tstamp=0,
                ),
                cust,
                slow,
            )
        assert out.rtx_psn == 5
        assert cust.in_recovery

    def test_paper_loc_matches_table4(self, dctcp):
        assert dctcp.lines_of_code == 175
        assert Dctcp.name == "dctcp"
