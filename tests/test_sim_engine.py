"""The discrete-event engine: ordering, determinism, cancellation."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(300, order.append, "c")
        sim.at(100, order.append, "a")
        sim.at(200, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.at(50, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.at(123, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [123]
        assert sim.now == 123

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(50, lambda: None)

    def test_after_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1, lambda: None)

    def test_call_now_runs_after_pending_same_time(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.call_now(lambda: order.append("now"))

        sim.at(10, first)
        sim.at(10, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second", "now"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_handle(10, fired.append, 1)
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule_handle(10, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.run() == 0

    def test_handle_pending_lifecycle(self):
        sim = Simulator()
        event = sim.after_handle(10, lambda: None)
        assert event.pending
        sim.run()
        assert not event.pending
        assert not event.cancelled

    def test_handle_and_fast_events_interleave_deterministically(self):
        sim = Simulator()
        order = []
        sim.at(10, order.append, "fast1")
        sim.schedule_handle(10, order.append, "handle")
        sim.at(10, order.append, "fast2")
        sim.run()
        assert order == ["fast1", "handle", "fast2"]

    def test_rearm_extends_deadline_without_new_entry(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_handle(100, lambda: fired.append(sim.now))
        event.rearm(250)
        assert sim.pending_events == 1
        sim.run()
        assert fired == [250]

    def test_rearm_earlier_deadline(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_handle(100, lambda: fired.append(sim.now))
        event.rearm(40)
        sim.run()
        assert fired == [40]

    def test_rearm_revives_cancelled_handle(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_handle(100, lambda: fired.append(sim.now))
        event.cancel()
        event.rearm(120)
        sim.run()
        assert fired == [120]

    def test_rearm_in_past_rejected(self):
        sim = Simulator()
        sim.at(100, lambda: None)
        event = sim.schedule_handle(200, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            event.rearm(50)


class TestCompaction:
    def test_cancelled_entries_are_compacted(self):
        sim = Simulator()
        handles = [sim.schedule_handle(1000 + i, lambda: None) for i in range(500)]
        keeper_fired = []
        sim.at(2000, keeper_fired.append, 1)
        for handle in handles:
            handle.cancel()
        # Cancelling over half the heap must have triggered compaction:
        # the heap stays O(live + threshold), not O(total cancellations).
        assert sim.compactions >= 1
        assert sim.live_events == 1
        assert sim.pending_events < 500
        sim.run()
        assert keeper_fired == [1]
        assert sim.pending_events == 0

    def test_live_events_excludes_dead(self):
        sim = Simulator()
        keep = sim.schedule_handle(10, lambda: None)
        drop = sim.schedule_handle(20, lambda: None)
        drop.cancel()
        assert sim.live_events == 1
        assert sim.dead_entries == 1
        assert keep.pending


class TestRunControl:
    def test_run_until_leaves_later_events(self):
        sim = Simulator()
        fired = []
        sim.at(100, fired.append, "early")
        sim.at(1000, fired.append, "late")
        sim.run(until_ps=500)
        assert fired == ["early"]
        assert sim.now == 500
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until_ps=777)
        assert sim.now == 777

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.at(i, fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_stop_from_within_event(self):
        sim = Simulator()
        fired = []

        def stopper():
            fired.append("stop")
            sim.stop()

        sim.at(1, stopper)
        sim.at(2, fired.append, "never")
        sim.run()
        assert fired == ["stop"]

    def test_step(self):
        sim = Simulator()
        fired = []
        sim.at(5, fired.append, 1)
        assert sim.step() is True
        assert sim.step() is False
        assert fired == [1]

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.at(1, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_reentrant_step_rejected(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.step()
            except SimulationError as exc:
                errors.append(exc)

        sim.at(1, nested)
        sim.run()
        assert len(errors) == 1

    def test_step_clears_stale_stop_request(self):
        sim = Simulator()
        fired = []
        sim.at(1, fired.append, 1)
        sim.stop()  # a stop with no run in progress must not wedge step()
        assert sim.step() is True
        assert fired == [1]

    def test_event_counts(self):
        sim = Simulator()
        for i in range(5):
            sim.at(i, lambda: None)
        assert sim.pending_events == 5
        sim.run()
        assert sim.events_executed == 5
        assert sim.pending_events == 0

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                sim.after(10, chain, n + 1)

        sim.at(0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3, 4, 5]
        assert sim.now == 50
