"""The discrete-event engine: ordering, determinism, cancellation."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(300, order.append, "c")
        sim.at(100, order.append, "a")
        sim.at(200, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.at(50, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.at(123, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [123]
        assert sim.now == 123

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(50, lambda: None)

    def test_after_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1, lambda: None)

    def test_call_now_runs_after_pending_same_time(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.call_now(lambda: order.append("now"))

        sim.at(10, first)
        sim.at(10, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second", "now"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.at(10, fired.append, 1)
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.at(10, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.run() == 0


class TestRunControl:
    def test_run_until_leaves_later_events(self):
        sim = Simulator()
        fired = []
        sim.at(100, fired.append, "early")
        sim.at(1000, fired.append, "late")
        sim.run(until_ps=500)
        assert fired == ["early"]
        assert sim.now == 500
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until_ps=777)
        assert sim.now == 777

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.at(i, fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_stop_from_within_event(self):
        sim = Simulator()
        fired = []

        def stopper():
            fired.append("stop")
            sim.stop()

        sim.at(1, stopper)
        sim.at(2, fired.append, "never")
        sim.run()
        assert fired == ["stop"]

    def test_step(self):
        sim = Simulator()
        fired = []
        sim.at(5, fired.append, 1)
        assert sim.step() is True
        assert sim.step() is False
        assert fired == [1]

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.at(1, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_event_counts(self):
        sim = Simulator()
        for i in range(5):
            sim.at(i, lambda: None)
        assert sim.pending_events == 5
        sim.run()
        assert sim.events_executed == 5
        assert sim.pending_events == 0

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                sim.after(10, chain, n + 1)

        sim.at(0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3, 4, 5]
        assert sim.now == 50
