"""Port allocation and the Section 4.3 arithmetic."""

import pytest

from repro.errors import PortAllocationError
from repro.pswitch.port_allocation import (
    PortAllocation,
    allocate_ports,
    amplification_factor,
)
from repro.units import RATE_100G, TBPS


class TestAmplificationFactor:
    def test_mtu_1024_gives_12(self):
        assert amplification_factor(1024) == 12

    def test_mtu_1518_gives_18(self):
        assert amplification_factor(1518) == 18

    def test_crossover_to_13_at_1072(self):
        # wire_bits(1072) = 8736 = exactly 13 x 672, so the factor crosses
        # to 13 at MTU 1072 (the paper's "greater than 1072 bytes").
        assert amplification_factor(1072) == 13
        assert amplification_factor(1071) == 12

    def test_small_frames_amplify_little(self):
        # 148 wire-bytes vs 84 wire-bytes: floor(148/84) = 1.
        assert amplification_factor(128) == 1


class TestAllocatePorts:
    def test_paper_optimum_at_1024(self):
        alloc = allocate_ports(1024)
        assert alloc.test_ports == 12
        assert alloc.data_throughput_bps == 1_200_000_000_000
        assert alloc.reserved_ports == 3
        assert alloc.total_ports == 15  # one port left spare in the pipeline

    def test_1518_capped_by_pipeline(self):
        alloc = allocate_ports(1518)
        assert alloc.amplification_factor == 18
        assert alloc.test_ports == 13  # 16 - 3 reserved
        assert alloc.data_throughput_bps == 1_300_000_000_000

    def test_receiver_logic_port_reserved(self):
        alloc = allocate_ports(1518, receiver_logic_on_fpga=True)
        assert alloc.receiver_logic_ports == 1
        assert alloc.test_ports == 12
        assert alloc.reserved_ports == 4

    def test_requested_ports_honored(self):
        alloc = allocate_ports(1024, requested_test_ports=4)
        assert alloc.test_ports == 4
        assert alloc.data_throughput_bps == 400_000_000_000

    def test_requested_beyond_amplification_rejected(self):
        with pytest.raises(PortAllocationError):
            allocate_ports(1024, requested_test_ports=13)

    def test_requested_beyond_pipeline_rejected(self):
        with pytest.raises(PortAllocationError):
            allocate_ports(1518, requested_test_ports=14)

    def test_requested_zero_rejected(self):
        with pytest.raises(PortAllocationError):
            allocate_ports(1024, requested_test_ports=0)

    def test_mtu_too_small_rejected(self):
        with pytest.raises(PortAllocationError):
            allocate_ports(64)

    def test_tiny_pipeline_rejected(self):
        with pytest.raises(PortAllocationError):
            allocate_ports(1024, pipeline_ports=3)

    def test_rates_exposed(self):
        alloc = allocate_ports(1024)
        assert alloc.sche_pps == pytest.approx(148.8e6, rel=0.001)
        assert alloc.data_pps_per_port == pytest.approx(11.97e6, rel=0.001)

    def test_headline_claim(self):
        """One pipeline + one 100 G FPGA port = 1.2 Tbps of CC traffic."""
        alloc = allocate_ports(1024, port_rate_bps=RATE_100G)
        assert alloc.data_throughput_bps == pytest.approx(1.2 * TBPS)
