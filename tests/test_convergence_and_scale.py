"""Convergence-time measurement and larger-population packet-level runs."""

import numpy as np
import pytest

from repro import ControlPlane, TestConfig
from repro.measure.convergence import convergence_time_ps, fairness_series
from repro.measure.throughput import ThroughputSampler
from repro.sim import Simulator
from repro.units import MS, US
from repro.workload import ClosedLoopGenerator, FlowSlot, websearch
from repro.workload.distributions import EmpiricalCdf, WEBSEARCH_CDF_POINTS


class TestConvergenceHelpers:
    def synthetic_sampler(self, fair_after_ps):
        sim = Simulator()
        sampler = ThroughputSampler(sim, period_ps=100 * US)
        sampler.start()
        a = sampler.meter("flow1")
        b = sampler.meter("flow2")

        def feed():
            # Unequal before fair_after, equal afterwards.
            if sim.now < fair_after_ps:
                a.count(10_000)
                b.count(2_000)
            else:
                a.count(6_000)
                b.count(6_000)
            if sim.now < 3 * MS:
                sim.after(100 * US, feed)

        sim.at(0, feed)
        sim.run(until_ps=3 * MS)
        return sampler

    def test_detects_convergence_point(self):
        sampler = self.synthetic_sampler(fair_after_ps=1 * MS)
        elapsed = convergence_time_ps(sampler, event_ps=0, min_rate_bps=1.0)
        assert elapsed is not None
        assert 1 * MS <= elapsed <= 1 * MS + 400 * US

    def test_returns_none_when_never_fair(self):
        sampler = self.synthetic_sampler(fair_after_ps=10 * MS)  # never
        assert convergence_time_ps(sampler, event_ps=0, min_rate_bps=1.0) is None

    def test_fairness_series_filters_inactive(self):
        sampler = self.synthetic_sampler(fair_after_ps=1 * MS)
        times, values = fairness_series(sampler, min_rate_bps=1.0)
        assert len(times) == len(values) > 0
        assert all(0.0 < v <= 1.0 for v in values)

    def test_hold_samples_validated(self):
        sampler = self.synthetic_sampler(fair_after_ps=1 * MS)
        with pytest.raises(ValueError):
            convergence_time_ps(sampler, 0, hold_samples=0)

    def test_real_arrival_convergence_measured(self):
        """DCQCN converges within ~1 ms of a second flow arriving."""
        cp = ControlPlane()
        tester = cp.deploy(TestConfig(cc_algorithm="dcqcn", n_test_ports=3))
        cp.wire_loopback_fabric()
        sampler = tester.enable_rate_sampling(period_ps=100 * US)
        tester.start_flow(port_index=0, dst_port_index=2, size_packets=10**9)
        tester.start_flow(
            port_index=1, dst_port_index=2, size_packets=10**9, start_at_ps=2 * MS
        )
        cp.run(duration_ps=6 * MS)
        elapsed = convergence_time_ps(sampler, event_ps=2 * MS)
        assert elapsed is not None
        assert elapsed <= 2 * MS


@pytest.mark.slow
class TestLargePopulations:
    def test_512_closed_loop_flows_packet_level(self):
        """512 concurrent WebSearch-scaled flows through the full packet
        datapath: everything completes or keeps progressing, with no
        internal losses and no RMW conflicts."""
        scaled = EmpiricalCdf(
            tuple((max(size // 100, 1), prob) for size, prob in WEBSEARCH_CDF_POINTS)
        )
        cp = ControlPlane()
        tester = cp.deploy(TestConfig(cc_algorithm="dcqcn", n_test_ports=2))
        cp.wire_loopback_fabric()
        generator = ClosedLoopGenerator(
            tester,
            scaled,
            [FlowSlot(0, 1) for _ in range(512)],
            rng=np.random.default_rng(0),
        )
        generator.start()
        cp.run(duration_ps=15 * MS)
        counters = cp.read_measurements()
        assert counters["switch.sche_dropped"] == 0
        assert counters["fpga.rmw_conflicts"] == 0
        assert counters["fpga.rx_fifo_drops"] == 0
        assert generator.flows_completed > 100
        # Concurrency is maintained: in-flight == slots.
        in_flight = sum(
            1 for f in tester.nic.flows.values() if f.started and not f.finished
        )
        assert in_flight == 512

    def test_packet_level_websearch_short_flow_shape(self):
        """At packet level too, DCQCN finishes short flows faster than
        DCTCP under identical closed-loop WebSearch load (the Figure 10
        inset's mechanism, observed without the fluid model)."""
        # /20 keeps the median flow a few packets (so slow start vs
        # line-rate start is visible) while tails stay tractable.
        scaled = EmpiricalCdf(
            tuple((max(size // 20, 1), prob) for size, prob in WEBSEARCH_CDF_POINTS)
        )
        medians = {}
        for alg in ("dcqcn", "dctcp"):
            params = {"initial_ssthresh": 64.0} if alg == "dctcp" else {}
            cp = ControlPlane()
            tester = cp.deploy(
                TestConfig(cc_algorithm=alg, n_test_ports=2, cc_params=params)
            )
            cp.wire_loopback_fabric()
            generator = ClosedLoopGenerator(
                tester,
                scaled,
                [FlowSlot(0, 1) for _ in range(64)],
                rng=np.random.default_rng(3),
            )
            generator.start()
            cp.run(duration_ps=15 * MS)
            short = [
                r.fct_us for r in tester.fct.records if r.size_bytes <= 50 * 1024
            ]
            assert len(short) > 100
            medians[alg] = float(np.median(short))
        assert medians["dcqcn"] < medians["dctcp"]
