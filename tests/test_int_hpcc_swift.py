"""INT telemetry, HPCC, Swift, and the Section 8 per-flow PPS cap."""

import pytest

from repro import ControlPlane, TestConfig
from repro.cc import EventType, Flags, Hpcc, IntrinsicInput, Swift
from repro.cc.base import CCMode
from repro.fpga.hls import algorithm_cycles
from repro.measure.fairness import jain_index
from repro.net import int_telemetry
from repro.net.int_telemetry import IntRecord, MAX_INT_HOPS
from repro.net.packet import Packet
from repro.units import GBPS, MICROSECOND, MS, US


def deploy(**cfg):
    cp = ControlPlane()
    tester = cp.deploy(TestConfig(**cfg))
    cp.wire_loopback_fabric()
    return cp, tester


class TestIntTelemetry:
    def test_enable_and_stamp(self):
        packet = Packet("DATA", 1, 2, 1024)
        int_telemetry.enable_int(packet)

        class FakePort:
            class queue:
                backlog_bytes = 5000

            tx_bytes = 123_456
            rate_bps = 100 * GBPS

        int_telemetry.stamp(packet, FakePort, 999)
        path = int_telemetry.int_path(packet)
        assert len(path) == 1
        assert path[0].queue_bytes == 5000
        assert path[0].tx_bytes == 123_456
        assert path[0].tstamp_ps == 999

    def test_stamp_noop_without_enable(self):
        packet = Packet("DATA", 1, 2, 1024)

        class FakePort:
            class queue:
                backlog_bytes = 0

            tx_bytes = 0
            rate_bps = 1

        int_telemetry.stamp(packet, FakePort, 0)
        assert int_telemetry.int_path(packet) == ()

    def test_hop_budget(self):
        packet = Packet("DATA", 1, 2, 1024)
        int_telemetry.enable_int(packet)

        class FakePort:
            class queue:
                backlog_bytes = 0

            tx_bytes = 0
            rate_bps = 1

        for _ in range(MAX_INT_HOPS + 3):
            int_telemetry.stamp(packet, FakePort, 0)
        assert len(int_telemetry.int_path(packet)) == MAX_INT_HOPS

    def test_echo(self):
        data = Packet("DATA", 1, 2, 1024)
        int_telemetry.enable_int(data)
        data.meta[int_telemetry.INT_PATH] = (IntRecord(1, 2, 3, 4),)
        ack = Packet("ACK", 2, 1, 64)
        int_telemetry.echo(data, ack)
        assert int_telemetry.int_path(ack) == (IntRecord(1, 2, 3, 4),)

    def test_end_to_end_int_reaches_cc_module(self):
        """DATA stamped at the fabric -> ACK echo -> INFO -> CC module."""
        seen_paths = []

        class Spy(Hpcc):
            name = "test-int-spy"

            def on_event(self, intr, cust, slow):
                if intr.int_path:
                    seen_paths.append(intr.int_path)
                return super().on_event(intr, cust, slow)

        cp = ControlPlane()
        from repro.core.tester import MarlinTester

        config = TestConfig(n_test_ports=2, int_enabled=True)
        tester = MarlinTester(cp.sim, config, algorithm=Spy())
        cp.tester = tester
        cp.wire_loopback_fabric()
        tester.start_flow(port_index=0, dst_port_index=1, size_packets=100)
        cp.run(duration_ps=2 * MS)
        assert seen_paths
        assert all(isinstance(r, IntRecord) for r in seen_paths[0])


def rx(psn, *, cwnd, nxt, int_path=(), rtt=-1, nack=False):
    return IntrinsicInput(
        evt_type=EventType.RX,
        psn=psn,
        cwnd_or_rate=cwnd,
        una=psn,
        nxt=nxt,
        flags=Flags(ack=True, nack=nack),
        prb_rtt=rtt,
        tstamp=0,
        int_path=int_path,
    )


class TestHpccUnit:
    def make(self):
        return Hpcc(base_rtt_ps=6 * MICROSECOND, initial_window=64.0)

    def records(self, t0, t1, qlen, tx_rate_frac, rate=100 * GBPS):
        """Two consecutive single-hop snapshots implying a tx rate."""
        dt = t1 - t0
        tx_bytes_delta = int(tx_rate_frac * rate * dt / 8e12)
        return (
            (IntRecord(t0, qlen, 1000, rate),),
            (IntRecord(t1, qlen, 1000 + tx_bytes_delta, rate),),
        )

    def test_high_utilization_shrinks_window(self):
        hpcc = self.make()
        cust = hpcc.initial_cust()
        first, second = self.records(0, 6_000_000, qlen=500_000, tx_rate_frac=1.0)
        hpcc.on_event(rx(1, cwnd=64.0, nxt=10, int_path=first), cust, None)
        out = hpcc.on_event(rx(2, cwnd=64.0, nxt=10, int_path=second), cust, None)
        assert cust.u > hpcc.eta
        assert out.cwnd_or_rate < 64.0

    def test_low_utilization_grows_window(self):
        hpcc = self.make()
        cust = hpcc.initial_cust()
        first, second = self.records(0, 6_000_000, qlen=0, tx_rate_frac=0.1)
        hpcc.on_event(rx(1, cwnd=64.0, nxt=10, int_path=first), cust, None)
        out = hpcc.on_event(rx(2, cwnd=64.0, nxt=10, int_path=second), cust, None)
        assert cust.u < hpcc.eta
        assert out.cwnd_or_rate > 64.0

    def test_wc_updates_once_per_rtt(self):
        hpcc = self.make()
        cust = hpcc.initial_cust()
        first, second = self.records(0, 6_000_000, qlen=0, tx_rate_frac=0.1)
        hpcc.on_event(rx(1, cwnd=64.0, nxt=10, int_path=first), cust, None)
        wc_after_first = cust.wc
        # Second ACK within the same round (psn < last_update_seq = 10).
        hpcc.on_event(rx(2, cwnd=64.0, nxt=10, int_path=second), cust, None)
        assert cust.wc == wc_after_first  # reference window unchanged

    def test_timeout_collapses(self):
        hpcc = self.make()
        cust = hpcc.initial_cust()
        out = hpcc.on_event(
            IntrinsicInput(
                evt_type=EventType.TIMEOUT,
                psn=-1,
                cwnd_or_rate=64.0,
                una=0,
                nxt=0,
                flags=Flags(),
                prb_rtt=-1,
                tstamp=0,
            ),
            cust,
            None,
        )
        assert out.cwnd_or_rate == 1.0
        assert out.rewind_to_una

    def test_needs_pps_reduction(self):
        """Section 8: HPCC's divisions exceed the 27-cycle budget."""
        from repro.fpga.timers import FrequencyControl

        cycles = algorithm_cycles(Hpcc())
        control = FrequencyControl(1024, 12)
        assert cycles > control.max_rmw_cycles
        assert control.pps_reduction_factor(cycles) >= 2

    def test_eta_validation(self):
        with pytest.raises(ValueError):
            Hpcc(eta=0.0)


class TestSwiftUnit:
    def make(self):
        return Swift(base_target_ps=12 * MICROSECOND, initial_cwnd=16.0)

    def test_below_target_increases(self):
        swift = self.make()
        cust = swift.initial_cust()
        out = swift.on_event(rx(1, cwnd=16.0, nxt=10, rtt=5 * MICROSECOND), cust, None)
        assert out.cwnd_or_rate > 16.0

    def test_above_target_decreases_once_per_rtt(self):
        swift = self.make()
        cust = swift.initial_cust()
        out1 = swift.on_event(
            rx(1, cwnd=16.0, nxt=10, rtt=100 * MICROSECOND), cust, None
        )
        assert out1.cwnd_or_rate < 16.0
        # Another over-target ACK in the same round: no further cut.
        out2 = swift.on_event(
            rx(2, cwnd=out1.cwnd_or_rate, nxt=10, rtt=100 * MICROSECOND), cust, None
        )
        assert out2.cwnd_or_rate == out1.cwnd_or_rate

    def test_decrease_bounded_by_max_mdf(self):
        swift = self.make()
        cust = swift.initial_cust()
        out = swift.on_event(
            rx(1, cwnd=16.0, nxt=10, rtt=10_000 * MICROSECOND), cust, None
        )
        assert out.cwnd_or_rate >= 16.0 * (1 - swift.max_mdf)

    def test_flow_scaling_raises_target_for_small_windows(self):
        swift = self.make()
        assert swift.target_delay_ps(1.0) > swift.target_delay_ps(100.0)

    def test_nack_rewinds(self):
        swift = self.make()
        cust = swift.initial_cust()
        out = swift.on_event(rx(5, cwnd=16.0, nxt=10, nack=True), cust, None)
        assert out.rewind_to_una

    def test_param_validation(self):
        with pytest.raises(ValueError):
            Swift(max_mdf=1.5)


class TestIntegration:
    def test_hpcc_fan_in_fair_and_conflict_free(self):
        """HPCC (59 cycles) under the PPS cap: fair sharing, zero RMW
        conflicts (stalls absorb residual bursts)."""
        cp, tester = deploy(
            cc_algorithm="hpcc",
            n_test_ports=4,
            int_enabled=True,
            flows_per_port=3,
        )
        assert tester.nic.per_flow_pps_reduction >= 2
        sampler = tester.enable_rate_sampling(period_ps=500 * US)
        cp.start_flows(size_packets=10**9, pattern="fan_in")
        cp.run(duration_ps=6 * MS)
        rates = [
            r for n, r in sampler.samples[-1].rates_bps.items() if n.startswith("flow")
        ]
        assert jain_index(rates) > 0.95
        assert sum(rates) >= 0.85 * 100 * GBPS
        assert tester.nic.bram.conflicts == 0

    def test_hpcc_keeps_queue_short(self):
        """HPCC's selling point: near-zero standing queues.  With a
        modest initial window, even the startup transient stays far below
        the ECN threshold DCTCP rides, and the steady-state backlog
        drains to nearly nothing."""
        cp, tester = deploy(
            cc_algorithm="hpcc",
            n_test_ports=4,
            int_enabled=True,
            flows_per_port=3,
            cc_params={"initial_window": 8.0},
        )
        cp.start_flows(size_packets=10**9, pattern="fan_in")
        cp.run(duration_ps=6 * MS)
        assert cp.fabric is not None
        queue = cp.fabric.ports[3].queue
        assert queue.stats.max_backlog_bytes < 84_000  # below DCTCP's K
        assert queue.backlog_bytes < 20_000  # steady state ~empty

    def test_swift_single_flow_completes_at_speed(self):
        cp, tester = deploy(cc_algorithm="swift", n_test_ports=2)
        cp.start_flows(size_packets=5000, pattern="pairs")
        cp.run(duration_ps=5 * MS)
        assert len(tester.fct) == 1
        record = tester.fct.records[0]
        goodput = record.size_bytes * 8 / (record.fct_ps / 1e12)
        assert goodput >= 0.5 * 100 * GBPS  # delay-based: below line rate ok

    def test_swift_fan_in_fair(self):
        cp, tester = deploy(cc_algorithm="swift", n_test_ports=4)
        sampler = tester.enable_rate_sampling(period_ps=500 * US)
        cp.start_flows(size_packets=10**9, pattern="fan_in")
        cp.run(duration_ps=8 * MS)
        rates = [
            r for n, r in sampler.samples[-1].rates_bps.items() if n.startswith("flow")
        ]
        assert jain_index(rates) > 0.9
        assert sum(rates) >= 0.8 * 100 * GBPS

    def test_pps_cap_inactive_for_fast_algorithms(self):
        cp, tester = deploy(cc_algorithm="dctcp", n_test_ports=2)
        assert tester.nic.per_flow_pps_reduction == 1
        assert tester.nic.schedulers[0].min_flow_spacing_ps == 0

    def test_int_disabled_by_default(self):
        cp, tester = deploy(cc_algorithm="dctcp", n_test_ports=2)
        cp.start_flows(size_packets=100, pattern="pairs")
        cp.run(duration_ps=1 * MS)
        assert not tester.switch.data_generator.int_enabled
