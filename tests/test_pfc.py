"""PFC: pause/resume mechanics, losslessness, and head-of-line blocking."""

import pytest

from repro import ControlPlane, TestConfig
from repro.errors import ConfigError
from repro.net.device import Device
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.pfc import PfcController, enable_pfc
from repro.net.switch import NetworkSwitch
from repro.sim import Simulator
from repro.units import GBPS, MS, US


class Sink(Device):
    def __init__(self, sim, name=None):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, port):
        self.received.append(packet)


class TestPortPause:
    def test_pause_holds_frames(self):
        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        pa = a.add_port()
        Link(pa, b.add_port(), delay_ps=0)
        pa.pause()
        pa.send(Packet("DATA", 1, 2, 64))
        sim.run(until_ps=1 * US)
        assert b.received == []
        pa.resume()
        sim.run(until_ps=2 * US)
        assert len(b.received) == 1

    def test_in_flight_frame_completes(self):
        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        pa = a.add_port()
        Link(pa, b.add_port(), delay_ps=0)
        pa.send(Packet("DATA", 1, 2, 1024))
        pa.send(Packet("DATA", 1, 2, 1024))
        sim.at(10, pa.pause)  # mid-first-frame
        sim.run(until_ps=1 * US)
        assert len(b.received) == 1  # first finished, second held

    def test_pause_idempotent(self):
        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        pa = a.add_port()
        Link(pa, b.add_port())
        pa.pause()
        pa.pause()
        assert pa.pause_events == 1
        pa.resume()
        pa.resume()
        assert not pa.paused


class TestControllerWatermarks:
    def build(self):
        sim = Simulator()
        switch = NetworkSwitch(sim, "sw")
        up = Sink(sim, "up")
        down = Sink(sim, "down")
        up_port = up.add_port()
        Link(up_port, switch.add_ecn_port(ecn_threshold_bytes=83_000), delay_ps=100)
        egress = switch.add_ecn_port(rate_bps=1 * GBPS, ecn_threshold_bytes=83_000)
        Link(egress, down.add_port(rate_bps=1 * GBPS), delay_ps=100)
        switch.set_route(2, egress)
        controller = PfcController(switch, xoff_bytes=10_000, xon_bytes=5_000)
        return sim, switch, up, up_port, controller

    def test_xoff_pauses_upstream(self):
        sim, switch, up, up_port, controller = self.build()
        # Blast enough to cross XOFF on the slow egress.
        for psn in range(30):
            up_port.send(Packet("DATA", 1, 2, 1024, flow_id=1, psn=psn))
        sim.run(until_ps=50 * US)
        assert controller.pause_frames_sent > 0
        assert up_port.pause_events > 0

    def test_xon_resumes_and_drains(self):
        sim, switch, up, up_port, controller = self.build()
        for psn in range(30):
            up_port.send(Packet("DATA", 1, 2, 1024, flow_id=1, psn=psn))
        sim.run(until_ps=2 * MS)
        assert controller.resume_frames_sent > 0
        assert not controller.currently_pausing
        assert not up_port.paused

    def test_watermark_validation(self):
        sim = Simulator()
        switch = NetworkSwitch(sim)
        with pytest.raises(ConfigError):
            PfcController(switch, xoff_bytes=100, xon_bytes=100)


class TestLosslessness:
    def incast(self, *, pfc: bool, queue_capacity=128 * 1024):
        """3-to-1 DCQCN incast into a switch with SMALL buffers.

        With PFC, XOFF at 40 kB leaves ~88 kB of headroom — enough to
        absorb the PAUSE flight time (1 us links: ~14 kB in flight per
        sender) from all three senders, the standard headroom sizing.
        """
        cp = ControlPlane()
        tester = cp.deploy(TestConfig(cc_algorithm="dcqcn", n_test_ports=4))
        cp.wire_loopback_fabric(
            queue_capacity_bytes=queue_capacity,
            ecn_threshold_bytes=20_000,
        )
        assert cp.fabric is not None
        if pfc:
            enable_pfc(cp.fabric, xoff_bytes=40_000, xon_bytes=20_000)
        cp.start_flows(size_packets=3000, pattern="fan_in")
        cp.run(duration_ps=20 * MS)
        drops = sum(p.queue.stats.dropped_packets for p in cp.fabric.ports)
        return cp, tester, drops

    def test_small_buffers_drop_without_pfc(self):
        cp, tester, drops = self.incast(pfc=False)
        assert drops > 0  # the burst overruns 64 kB buffers

    def test_pfc_makes_fabric_lossless(self):
        cp, tester, drops = self.incast(pfc=True)
        assert drops == 0
        assert len(tester.fct) == 3  # flows still complete


class TestHeadOfLineBlocking:
    def test_victim_flow_stalls_behind_paused_link(self):
        """The PFC pathology: a flow to an UNcongested destination slows
        because its ingress link is paused for someone else's congestion."""
        def victim_progress(pfc: bool) -> int:
            cp = ControlPlane()
            tester = cp.deploy(TestConfig(cc_algorithm="dcqcn", n_test_ports=5))
            cp.wire_loopback_fabric(
                queue_capacity_bytes=64 * 1024, ecn_threshold_bytes=60_000
            )
            if pfc:
                enable_pfc(cp.fabric, xoff_bytes=40_000, xon_bytes=20_000)
            # Congestion: ports 0-2 -> port 3 (with a high ECN threshold
            # the queue rides near XOFF, keeping PAUSE asserted often).
            for src in range(3):
                tester.start_flow(
                    port_index=src, dst_port_index=3, size_packets=10**9
                )
            # Victim: port 4 -> port 0's address, no congestion of its own.
            victim = tester.start_flow(
                port_index=4, dst_port_index=0, size_packets=10**9
            )
            # 10 ms reaches the steady-state ratio; at 5 ms the margin
            # sits within the noise of same-timestamp tie-breaking.
            cp.run(duration_ps=10 * MS)
            return victim.una

        with_pfc = victim_progress(True)
        without = victim_progress(False)
        assert with_pfc < 0.8 * without  # HOL blocking bites

    def test_dcqcn_keeps_pfc_quiet_with_proper_ecn(self):
        """The intended deployment: ECN threshold well below XOFF means
        DCQCN reacts first and PAUSE rarely (or never) fires."""
        cp = ControlPlane()
        tester = cp.deploy(TestConfig(cc_algorithm="dcqcn", n_test_ports=4))
        cp.wire_loopback_fabric(
            queue_capacity_bytes=4 * 2**20, ecn_threshold_bytes=84_000
        )
        controller = enable_pfc(
            cp.fabric, xoff_bytes=1 * 2**20, xon_bytes=512 * 1024
        )
        cp.start_flows(size_packets=10**9, pattern="fan_in")
        cp.run(duration_ps=8 * MS)
        assert controller.pause_frames_sent == 0  # CNPs did the job
