"""Round-trip tests for every measure.export writer.

Each artifact is written, re-read, and compared against the collector
that produced it; every writer is also exercised on an *empty*
collector, which must still yield a valid header-only (CSV) or
empty-object (JSON) file.
"""

import csv
import json

import pytest

from repro.measure import FctCollector, ThroughputSampler
from repro.measure.export import (
    counters_to_json,
    fct_to_csv,
    throughput_to_csv,
    trace_to_json,
)
from repro.sim import Simulator
from repro.sim.trace import TraceRecorder


def _read_csv(path):
    with path.open(newline="") as handle:
        return list(csv.reader(handle))


class TestFctCsv:
    def test_round_trip(self, tmp_path):
        collector = FctCollector()
        collector.add(1, 10, 10_240, 0, 5_000_000)
        collector.add(2, 20, 20_480, 1_000, 9_000_000)
        rows = _read_csv(fct_to_csv(collector, tmp_path / "fct.csv"))
        assert rows[0] == [
            "flow_id", "size_packets", "size_bytes", "start_ps", "finish_ps", "fct_us",
        ]
        assert len(rows) == 3
        record = collector.records[0]
        assert rows[1][:5] == [
            str(record.flow_id), str(record.size_packets), str(record.size_bytes),
            str(record.start_ps), str(record.finish_ps),
        ]
        assert float(rows[1][5]) == pytest.approx(record.fct_us, abs=1e-3)

    def test_empty_collector_header_only(self, tmp_path):
        rows = _read_csv(fct_to_csv(FctCollector(), tmp_path / "fct.csv"))
        assert len(rows) == 1 and rows[0][0] == "flow_id"


class TestThroughputCsv:
    def test_round_trip(self, tmp_path):
        sim = Simulator()
        sampler = ThroughputSampler(sim, period_ps=1_000_000)
        sampler.start()
        sampler.meter("flow1").count(12_500)
        sim.run(until_ps=2_000_000)
        rows = _read_csv(throughput_to_csv(sampler, tmp_path / "tput.csv"))
        assert rows[0] == ["time_us"] + sorted(sampler.meters)
        assert len(rows) == 1 + len(sampler.samples)
        sample = sampler.samples[0]
        assert float(rows[1][0]) == pytest.approx(sample.time_ps / 1e6)
        column = rows[0].index("flow1")
        assert float(rows[1][column]) == pytest.approx(
            sample.rates_bps["flow1"], abs=1.0
        )

    def test_empty_sampler_header_only(self, tmp_path):
        sim = Simulator()
        sampler = ThroughputSampler(sim, period_ps=1_000_000)
        rows = _read_csv(throughput_to_csv(sampler, tmp_path / "tput.csv"))
        assert rows == [["time_us"]]


class TestTraceJson:
    def test_round_trip(self, tmp_path):
        trace = TraceRecorder()
        trace.log(100, "cc", cwnd=10, rate=2.5)
        trace.log(200, "cc", cwnd=12, rate=3.5)
        trace.log(150, "queue", depth=7)
        payload = json.loads(trace_to_json(trace, tmp_path / "t.json").read_text())
        assert set(payload) == {"cc", "queue"}
        assert payload["cc"][0] == {"time_ps": 100, "cwnd": 10, "rate": 2.5}
        assert payload["queue"] == [{"time_ps": 150, "depth": 7}]

    def test_non_numeric_fields_survive(self, tmp_path):
        trace = TraceRecorder()
        trace.log(1, "events", kind="timeout", detail={"a": 1})
        payload = json.loads(trace_to_json(trace, tmp_path / "t.json").read_text())
        record = payload["events"][0]
        assert record["kind"] == "timeout"
        assert isinstance(record["detail"], (str, dict))

    def test_empty_trace(self, tmp_path):
        path = trace_to_json(TraceRecorder(), tmp_path / "t.json")
        assert json.loads(path.read_text()) == {}
        assert path.read_text().endswith("\n")


class TestCountersJson:
    def test_round_trip(self, tmp_path):
        counters = {"switch.data_generated": 42, "fpga.flows_completed": 3}
        path = counters_to_json(counters, tmp_path / "c.json")
        assert json.loads(path.read_text()) == counters

    def test_empty_counters(self, tmp_path):
        path = counters_to_json({}, tmp_path / "c.json")
        assert json.loads(path.read_text()) == {}
        assert path.read_text().endswith("\n")
