"""Closed-loop generator edge cases and the control-plane API."""

import numpy as np
import pytest

from repro import ControlPlane, TestConfig
from repro.errors import ConfigError
from repro.units import MS
from repro.workload import ClosedLoopGenerator, FixedSize, FlowSlot, websearch


def deployed(**cfg):
    cp = ControlPlane()
    tester = cp.deploy(TestConfig(**cfg))
    cp.wire_loopback_fabric()
    return cp, tester


class TestControlPlane:
    def test_double_deploy_rejected(self):
        cp = ControlPlane()
        cp.deploy(TestConfig(n_test_ports=2))
        with pytest.raises(ConfigError):
            cp.deploy(TestConfig(n_test_ports=2))

    def test_operations_require_deploy(self):
        cp = ControlPlane()
        with pytest.raises(ConfigError):
            cp.wire_loopback_fabric()
        with pytest.raises(ConfigError):
            cp.start_flows(size_packets=10)

    def test_pairs_pattern_requires_even_ports(self):
        cp, tester = deployed(n_test_ports=3)
        with pytest.raises(ConfigError):
            cp.start_flows(size_packets=10, pattern="pairs")

    def test_unknown_pattern(self):
        cp, tester = deployed(n_test_ports=2)
        with pytest.raises(ConfigError):
            cp.start_flows(size_packets=10, pattern="mesh")

    def test_fan_in_flow_count(self):
        cp, tester = deployed(n_test_ports=4, flows_per_port=2)
        flow_ids = cp.start_flows(size_packets=100, pattern="fan_in")
        assert len(flow_ids) == 6  # 3 sender ports x 2 flows

    def test_default_allocation_uses_paper_optimum(self):
        cp = ControlPlane()
        tester = cp.deploy(TestConfig(template_bytes=1024))
        assert tester.n_test_ports == 12

    def test_port_addresses_assigned_by_fabric(self):
        cp, tester = deployed(n_test_ports=2)
        assert tester.port_address(0) != tester.port_address(1)

    def test_unassigned_address_rejected(self):
        cp = ControlPlane()
        tester = cp.deploy(TestConfig(n_test_ports=2))
        with pytest.raises(ConfigError):
            tester.port_address(0)

    def test_start_flow_needs_exactly_one_destination(self):
        cp, tester = deployed(n_test_ports=2)
        with pytest.raises(ConfigError):
            tester.start_flow(port_index=0, size_packets=10)
        with pytest.raises(ConfigError):
            tester.start_flow(
                port_index=0, dst_port_index=1, dst_addr=5, size_packets=10
            )

    def test_receiver_mode_auto_resolution(self):
        cp_w, tester_w = deployed(n_test_ports=2, cc_algorithm="dctcp")
        cp_r, tester_r = deployed(n_test_ports=2, cc_algorithm="dcqcn")
        from repro.pswitch.module_a import ReceiverMode

        assert tester_w.switch.receiver.mode is ReceiverMode.TCP
        assert tester_r.switch.receiver.mode is ReceiverMode.ROCE


class TestClosedLoopGenerator:
    def test_stop_at_time(self):
        cp, tester = deployed(n_test_ports=2, cc_algorithm="dcqcn")
        generator = ClosedLoopGenerator(
            tester,
            FixedSize(50 * 1024),
            [FlowSlot(0, 1)],
            rng=np.random.default_rng(0),
            stop_at_ps=2 * MS,
        )
        generator.start()
        cp.run(duration_ps=10 * MS)
        assert generator.flows_completed == generator.flows_started
        assert tester.fct.records[-1].start_ps <= 2 * MS

    def test_manual_stop(self):
        cp, tester = deployed(n_test_ports=2, cc_algorithm="dcqcn")
        generator = ClosedLoopGenerator(
            tester, FixedSize(50 * 1024), [FlowSlot(0, 1)],
        )
        generator.start()
        cp.run(duration_ps=1 * MS)
        generator.stop()
        started = generator.flows_started
        cp.run(duration_ps=5 * MS)
        assert generator.flows_started == started

    def test_multiple_slots_independent(self):
        cp, tester = deployed(n_test_ports=4, cc_algorithm="dcqcn")
        slots = [FlowSlot(0, 2), FlowSlot(1, 3)]
        generator = ClosedLoopGenerator(
            tester,
            FixedSize(20 * 1024),
            slots,
            rng=np.random.default_rng(0),
            stop_after_flows=10,
        )
        generator.start()
        cp.run(duration_ps=20 * MS)
        assert generator.flows_completed == 10

    def test_empty_slots_rejected(self):
        cp, tester = deployed(n_test_ports=2)
        with pytest.raises(ConfigError):
            ClosedLoopGenerator(tester, FixedSize(1000), [])

    def test_websearch_sizes_vary(self):
        cp, tester = deployed(n_test_ports=2, cc_algorithm="dcqcn")
        generator = ClosedLoopGenerator(
            tester,
            websearch(),
            [FlowSlot(0, 1)],
            rng=np.random.default_rng(7),
            stop_after_flows=10,
        )
        generator.start()
        cp.run(duration_ps=100 * MS)
        sizes = {record.size_packets for record in tester.fct.records}
        assert len(sizes) > 3  # heavy-tailed draws differ
