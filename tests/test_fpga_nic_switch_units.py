"""Unit tests of the assembled FPGA NIC and Marlin switch devices, plus
the event generator and slow-path executor."""

import pytest

from repro.cc import Dctcp, Reno
from repro.cc.dctcp import AlphaUpdateEvent
from repro.errors import ConfigError
from repro.fpga.event_generator import EventGenerator
from repro.fpga.nic import FpgaNic, FpgaNicConfig
from repro.fpga.slow_path import SlowPathExecutor
from repro.net.link import Link
from repro.net.device import Device
from repro.pswitch.module_a import ReceiverMode
from repro.pswitch.packets import PTYPE_SCHE, make_data, make_info, make_ack, make_sche
from repro.pswitch.switch import MarlinSwitch, MarlinSwitchConfig
from repro.sim import Simulator
from repro.units import MICROSECOND, MS, US


class TestEventGenerator:
    def test_fires_and_dispatches(self):
        sim = Simulator()
        fired = []
        gen = EventGenerator(sim, lambda f, t: fired.append((f, t, sim.now)))
        gen.arm(1, 0, 500)
        sim.run(until_ps=1000)
        assert fired == [(1, 0, 500)]

    def test_rearm_extends(self):
        sim = Simulator()
        fired = []
        gen = EventGenerator(sim, lambda f, t: fired.append(sim.now))
        gen.arm(1, 0, 500)
        sim.at(300, gen.arm, 1, 0, 500)
        sim.run(until_ps=2000)
        assert fired == [800]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        gen = EventGenerator(sim, lambda f, t: fired.append(1))
        gen.arm(1, 0, 500)
        gen.cancel(1, 0)
        sim.run(until_ps=2000)
        assert fired == []

    def test_per_timer_independence(self):
        sim = Simulator()
        fired = []
        gen = EventGenerator(sim, lambda f, t: fired.append(t))
        gen.arm(1, 0, 100)
        gen.arm(1, 1, 200)
        sim.run(until_ps=300)
        assert fired == [0, 1]

    def test_forget_flow(self):
        sim = Simulator()
        fired = []
        gen = EventGenerator(sim, lambda f, t: fired.append(f))
        gen.arm(1, 0, 100)
        gen.arm(2, 0, 100)
        gen.forget_flow(1)
        sim.run(until_ps=300)
        assert fired == [2]
        assert not gen.armed(1, 0)


class TestSlowPathExecutor:
    def test_executes_with_latency(self):
        sim = Simulator()
        executor = SlowPathExecutor(sim, cycles=100)
        alg = Dctcp()
        slow = alg.initial_slow()
        executor.submit(alg, 1, AlphaUpdateEvent(acked=10, marked=10), None, slow)
        assert slow.alpha == 1.0  # not yet
        sim.run()
        assert slow.alpha < 1.0 or slow.alpha == pytest.approx(1.0)
        assert executor.events_processed == 1
        assert sim.now == executor.latency_ps

    def test_overrun_detection(self):
        sim = Simulator()
        executor = SlowPathExecutor(sim, cycles=1000)
        alg = Dctcp()
        slow = alg.initial_slow()
        executor.submit(alg, 1, AlphaUpdateEvent(acked=1, marked=0), None, slow)
        executor.submit(alg, 1, AlphaUpdateEvent(acked=1, marked=0), None, slow)
        assert executor.overruns == 1

    def test_distinct_flows_no_overrun(self):
        sim = Simulator()
        executor = SlowPathExecutor(sim, cycles=1000)
        alg = Dctcp()
        executor.submit(alg, 1, AlphaUpdateEvent(acked=1, marked=0), None, alg.initial_slow())
        executor.submit(alg, 2, AlphaUpdateEvent(acked=1, marked=0), None, alg.initial_slow())
        assert executor.overruns == 0

    def test_rate_update_callback(self):
        sim = Simulator()
        seen = []

        class SlowCC(Reno):
            name = "test-slowcc"

            def slow_path(self, event, cust, slow):
                return 42.0

        executor = SlowPathExecutor(
            sim, cycles=10, on_rate_update=lambda f, v: seen.append((f, v))
        )
        executor.submit(SlowCC(), 3, "ev", None, None)
        sim.run()
        assert seen == [(3, 42.0)]


class Sink(Device):
    def __init__(self, sim, name=None):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, port):
        self.received.append((self.sim.now, packet))


class TestFpgaNicUnit:
    def build(self, algorithm=None, **cfg_kwargs):
        sim = Simulator()
        algorithm = algorithm if algorithm is not None else Reno()
        cfg = FpgaNicConfig(n_test_ports=2, **cfg_kwargs)
        nic = FpgaNic(sim, algorithm, cfg)
        sink = Sink(sim, "sink")
        Link(nic.port, sink.add_port(), delay_ps=0)
        return sim, nic, sink

    def test_start_flow_emits_sche(self):
        sim, nic, sink = self.build()
        nic.start_flow(port_index=0, src_addr=1, dst_addr=2, size_packets=10)
        sim.run(until_ps=50 * US)  # below the RTO
        sches = [p for _, p in sink.received if p.ptype == PTYPE_SCHE]
        assert len(sches) == 1  # initial cwnd 1: exactly one packet in flight
        assert sches[0].psn == 0
        assert sches[0].meta["egress_port"] == 0

    def test_info_advances_flow(self):
        sim, nic, sink = self.build()
        flow = nic.start_flow(port_index=0, src_addr=1, dst_addr=2, size_packets=10)
        sim.run(until_ps=1 * US)
        data = make_data(flow.flow_id, 0, src_addr=1, dst_addr=2, frame_bytes=1024, tx_tstamp_ps=0)
        ack = make_ack(data, 1)
        info = make_info(ack, 0)
        nic.receive(info, nic.port)
        sim.run(until_ps=50 * US)  # below the RTO
        assert flow.una == 1
        assert flow.cwnd_or_rate == 2.0  # slow-start growth

    def test_completion_callback_and_fct(self):
        sim, nic, sink = self.build()
        done = []
        nic.on_complete(done.append)
        flow = nic.start_flow(port_index=0, src_addr=1, dst_addr=2, size_packets=3)
        sim.run(until_ps=1 * US)
        data = make_data(flow.flow_id, 2, src_addr=1, dst_addr=2, frame_bytes=1024, tx_tstamp_ps=0)
        info = make_info(make_ack(data, 3), 0)
        nic.receive(info, nic.port)
        sim.run(until_ps=1 * MS)
        assert done and done[0].flow_id == flow.flow_id
        assert flow.finished and flow.fct_ps >= 0
        assert nic.read_counters()["flows_completed"] == 1

    def test_unknown_flow_info_counted(self):
        sim, nic, sink = self.build()
        data = make_data(99, 0, src_addr=1, dst_addr=2, frame_bytes=1024, tx_tstamp_ps=0)
        info = make_info(make_ack(data, 1), 0)
        nic.receive(info, nic.port)
        sim.run(until_ps=1 * MS)
        assert nic.read_counters()["infos_unknown_flow"] == 1

    def test_bad_port_index_rejected(self):
        sim, nic, sink = self.build()
        with pytest.raises(ConfigError):
            nic.start_flow(port_index=5, src_addr=1, dst_addr=2, size_packets=1)

    def test_bad_size_rejected(self):
        sim, nic, sink = self.build()
        with pytest.raises(ConfigError):
            nic.start_flow(port_index=0, src_addr=1, dst_addr=2, size_packets=0)

    def test_duplicate_flow_id_rejected(self):
        sim, nic, sink = self.build()
        nic.start_flow(port_index=0, src_addr=1, dst_addr=2, size_packets=1, flow_id=7)
        with pytest.raises(ConfigError):
            nic.start_flow(port_index=0, src_addr=1, dst_addr=2, size_packets=1, flow_id=7)

    def test_rto_fires_without_feedback(self):
        sim, nic, sink = self.build(algorithm=Reno(rto_ps=100 * US))
        flow = nic.start_flow(port_index=0, src_addr=1, dst_addr=2, size_packets=10)
        sim.run(until_ps=1 * MS)
        assert nic.read_counters()["timeouts_fired"] >= 1
        assert flow.cwnd_or_rate == 1.0

    def test_delayed_start(self):
        sim, nic, sink = self.build()
        flow = nic.start_flow(
            port_index=0, src_addr=1, dst_addr=2, size_packets=5, start_at_ps=500 * US
        )
        sim.run(until_ps=100 * US)
        assert not flow.started
        sim.run(until_ps=600 * US)
        assert flow.started
        assert flow.start_ps == 500 * US

    def test_frequency_warnings_for_slow_cc(self):
        from repro.cc import Cubic

        sim, nic, sink = self.build(algorithm=Cubic())
        assert nic.frequency_warnings  # ~100 cycles > 27-cycle budget


class TestMarlinSwitchUnit:
    def build(self, receiver_mode=ReceiverMode.TCP):
        sim = Simulator()
        cfg = MarlinSwitchConfig(n_test_ports=2, receiver_mode=receiver_mode)
        switch = MarlinSwitch(sim, cfg)
        fpga_sink = Sink(sim, "fpga")
        Link(switch.fpga_port, fpga_sink.add_port(), delay_ps=0)
        net_sinks = []
        for port in switch.test_ports:
            sink = Sink(sim, f"net{port.index}")
            Link(port, sink.add_port(), delay_ps=0)
            net_sinks.append(sink)
        return sim, switch, fpga_sink, net_sinks

    def test_sche_in_data_out(self):
        sim, switch, fpga_sink, net_sinks = self.build()
        sche = make_sche(1, 0, 1, src_addr=10, dst_addr=20, frame_bytes=1024)
        switch.receive(sche, switch.fpga_port)
        sim.run(until_ps=1 * MS)
        datas = [p for _, p in net_sinks[1].received if p.ptype == "DATA"]
        assert len(datas) == 1
        assert datas[0].src == 10 and datas[0].dst == 20

    def test_sche_on_wrong_port_rejected(self):
        sim, switch, fpga_sink, net_sinks = self.build()
        sche = make_sche(1, 0, 0, src_addr=1, dst_addr=2, frame_bytes=1024)
        with pytest.raises(ConfigError):
            switch.receive(sche, switch.test_ports[0])

    def test_data_in_ack_out_same_port(self):
        sim, switch, fpga_sink, net_sinks = self.build()
        data = make_data(1, 0, src_addr=10, dst_addr=20, frame_bytes=1024, tx_tstamp_ps=0)
        switch.receive(data, switch.test_ports[1])
        sim.run(until_ps=1 * MS)
        acks = [p for _, p in net_sinks[1].received if p.ptype == "ACK"]
        assert len(acks) == 1
        assert acks[0].psn == 1

    def test_ack_in_info_out_fpga_port(self):
        sim, switch, fpga_sink, net_sinks = self.build()
        data = make_data(1, 0, src_addr=10, dst_addr=20, frame_bytes=1024, tx_tstamp_ps=5)
        ack = make_ack(data, 1)
        switch.receive(ack, switch.test_ports[0])
        sim.run(until_ps=1 * MS)
        infos = [p for _, p in fpga_sink.received if p.ptype == "INFO"]
        assert len(infos) == 1
        assert infos[0].meta["rx_port"] == 0

    def test_pipeline_latency_applied(self):
        sim, switch, fpga_sink, net_sinks = self.build()
        data = make_data(1, 0, src_addr=10, dst_addr=20, frame_bytes=1024, tx_tstamp_ps=0)
        switch.receive(data, switch.test_ports[0])
        sim.run(until_ps=1 * MS)
        t, _ = net_sinks[0].received[0]
        assert t >= switch.config.pipeline_latency_ps

    def test_counters(self):
        sim, switch, fpga_sink, net_sinks = self.build()
        sche = make_sche(1, 0, 0, src_addr=10, dst_addr=20, frame_bytes=1024)
        switch.receive(sche, switch.fpga_port)
        sim.run(until_ps=1 * MS)
        counters = switch.read_counters()
        assert counters["sche_accepted"] == 1
        assert counters["data_generated"] == 1

    def test_unknown_ptype_counted(self):
        sim, switch, fpga_sink, net_sinks = self.build()
        from repro.net.packet import Packet

        switch.receive(Packet("WEIRD", 1, 2, 64), switch.test_ports[0])
        assert switch.unknown_packets == 1

    def test_allocation_uses_paper_optimum(self):
        sim = Simulator()
        switch = MarlinSwitch(sim, MarlinSwitchConfig(template_bytes=1024))
        assert switch.n_test_ports == 12
        assert switch.allocation.data_throughput_bps == 1_200_000_000_000
