"""The fluid layer: ideal FCT and the flow-level CC model, including
cross-validation against the packet-level tester at small scale."""

import numpy as np
import pytest

from repro import ControlPlane, TestConfig
from repro.errors import ConfigError
from repro.fluid import (
    FluidSimulator,
    dcqcn_profile,
    dctcp_profile,
    ideal_fct_ps,
    ideal_fct_series_us,
    ideal_profile,
)
from repro.units import GBPS, MICROSECOND, MS, RATE_100G, SECOND
from repro.workload import websearch
from repro.workload.distributions import EmpiricalCdf


class TestIdealFct:
    def test_equal_share_formula(self):
        # 1 MB over 100 Gbps shared by 10 flows: 0.8 ms.
        fct = ideal_fct_ps(1_000_000, 10, 100e9)
        assert fct == pytest.approx(0.8 * 1e9, rel=1e-6)

    def test_vectorized_matches_scalar(self):
        sizes = [10_000, 100_000, 1_000_000]
        series = ideal_fct_series_us(sizes, 5, 100e9)
        for size, us in zip(sizes, series):
            assert us == pytest.approx(ideal_fct_ps(size, 5, 100e9) / MICROSECOND)

    def test_validation(self):
        with pytest.raises(ValueError):
            ideal_fct_ps(0, 1, 1e9)
        with pytest.raises(ValueError):
            ideal_fct_ps(1, 0, 1e9)
        with pytest.raises(ValueError):
            ideal_fct_series_us([0], 1, 1e9)


class TestProfiles:
    def test_profiles_validate(self):
        for profile in (dctcp_profile(), dcqcn_profile(), ideal_profile()):
            profile.validate()

    def test_bad_utilization(self):
        from repro.fluid.model import FluidCcProfile

        with pytest.raises(ConfigError):
            FluidCcProfile(name="x", utilization=0.0, startup="constant").validate()

    def test_bad_startup(self):
        from repro.fluid.model import FluidCcProfile

        with pytest.raises(ConfigError):
            FluidCcProfile(name="x", utilization=0.5, startup="warp").validate()


class TestFlowFct:
    def sim(self, n=100):
        return FluidSimulator(n_ports=1, flows_per_port=n, seed=1)

    def test_ideal_matches_closed_form(self):
        fluid = self.sim(10)
        fct = fluid.flow_fct_ps(1_000_000, ideal_profile())
        assert fct == pytest.approx(ideal_fct_ps(1_000_000, 10, RATE_100G), rel=1e-6)

    def test_dcqcn_short_flows_beat_dctcp(self):
        """Figure 10 inset: DCQCN's line-rate start finishes short flows
        far faster than DCTCP's slow start, which in turn beats ideal
        equal-share."""
        fluid = self.sim(1000)
        size = 10_000  # 10 kB
        dcqcn = fluid.flow_fct_ps(size, dcqcn_profile())
        dctcp = fluid.flow_fct_ps(size, dctcp_profile())
        ideal = fluid.flow_fct_ps(size, ideal_profile())
        assert dcqcn < dctcp < ideal

    def test_long_flows_near_equal_share(self):
        """Tail flows converge to the fair share in every profile."""
        fluid = self.sim(100)
        size = 30_000_000
        ideal = fluid.flow_fct_ps(size, ideal_profile())
        for profile in (dctcp_profile(jitter_sigma=0), dcqcn_profile(jitter_sigma=0)):
            fct = fluid.flow_fct_ps(size, profile)
            # Worse than ideal (utilization < 1) but within 15%.
            assert ideal < fct < 1.15 * ideal

    def test_slow_start_round_count(self):
        """A 10-packet flow takes ~log2(size) rounds of the effective RTT."""
        fluid = FluidSimulator(
            n_ports=1, flows_per_port=10_000, base_rtt_ps=6 * MICROSECOND
        )
        fct = fluid.flow_fct_ps(10 * 1000, dctcp_profile(jitter_sigma=0))
        rounds = fct / fluid.effective_rtt_ps()
        # ~3 ramp rounds (7 packets) plus the remainder at the fair share.
        assert 3 <= rounds <= 8

    def test_effective_rtt_inflates_in_sub_packet_regime(self):
        """With n flows whose one-packet floor exceeds capacity, the
        standing queue inflates the RTT to n*mss/C."""
        small = FluidSimulator(n_ports=1, flows_per_port=10)
        large = FluidSimulator(n_ports=1, flows_per_port=10_000)
        assert large.effective_rtt_ps() > 10 * small.effective_rtt_ps()
        mss_bits = large.mss_bytes * 8
        assert large.effective_rtt_ps() == pytest.approx(
            10_000 * mss_bits * 1e12 / RATE_100G
        )

    def test_dcqcn_short_flow_is_burst_plus_queue_pass(self):
        """A short DCQCN flow bursts into the standing queue and completes
        in roughly one effective RTT (one queue drain)."""
        fluid = FluidSimulator(n_ports=1, flows_per_port=1000)
        size = 10_000
        fct = fluid.flow_fct_ps(size, dcqcn_profile(jitter_sigma=0))
        serialization = size * 8 / RATE_100G * SECOND
        assert fct >= serialization + fluid.effective_rtt_ps()
        assert fct <= 3 * fluid.effective_rtt_ps()


class TestFluidRun:
    def test_run_collects_all_flows(self):
        fluid = FluidSimulator(n_ports=2, flows_per_port=50, seed=3)
        result = fluid.run(ideal_profile(), websearch(), flows_total=500)
        assert result.total_flows == 500
        assert np.all(result.fcts_us > 0)

    def test_deterministic_under_seed(self):
        fluid_a = FluidSimulator(n_ports=1, flows_per_port=10, seed=9)
        fluid_b = FluidSimulator(n_ports=1, flows_per_port=10, seed=9)
        a = fluid_a.run(dctcp_profile(), websearch(), flows_total=100)
        b = fluid_b.run(dctcp_profile(), websearch(), flows_total=100)
        assert np.array_equal(a.fcts_us, b.fcts_us)

    def test_jitter_disabled_is_pure_model(self):
        fluid = FluidSimulator(n_ports=1, flows_per_port=10, seed=9)
        result = fluid.run(
            dctcp_profile(jitter_sigma=0.0), websearch(), flows_total=50
        )
        expected = [
            fluid.flow_fct_ps(float(s), dctcp_profile(jitter_sigma=0.0)) / MICROSECOND
            for s in result.sizes_bytes
        ]
        assert np.allclose(result.fcts_us, expected)

    def test_throughput_estimate_positive(self):
        fluid = FluidSimulator(n_ports=12, flows_per_port=100, seed=0)
        result = fluid.run(dcqcn_profile(), websearch(), flows_total=2000)
        assert result.throughput_bps() > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            FluidSimulator(n_ports=0, flows_per_port=1)
        with pytest.raises(ConfigError):
            FluidSimulator(n_ports=1, flows_per_port=0)


class TestCrossValidation:
    """The fluid model must agree with the packet-level tester where both
    are feasible (the DESIGN.md validation obligation for Figure 10)."""

    @pytest.mark.slow
    def test_fluid_matches_packet_sim_at_small_scale(self):
        flows_per_port = 4
        size_packets = 2000  # ~2 MB at 1024 B
        cp = ControlPlane()
        tester = cp.deploy(
            TestConfig(
                cc_algorithm="dcqcn",
                n_test_ports=2,
                flows_per_port=flows_per_port,
            )
        )
        cp.wire_loopback_fabric()
        cp.start_flows(size_packets=size_packets, pattern="pairs")
        cp.run(duration_ps=30 * MS)
        assert len(tester.fct) == flows_per_port
        packet_mean_us = tester.fct.stats().mean_us

        fluid = FluidSimulator(n_ports=1, flows_per_port=flows_per_port, seed=0)
        fluid_fct_us = (
            fluid.flow_fct_ps(
                size_packets * 1024, dcqcn_profile(jitter_sigma=0.0)
            )
            / MICROSECOND
        )
        # Flow-level vs packet-level within 2x: same order, same regime.
        assert fluid_fct_us == pytest.approx(packet_mean_us, rel=1.0)
