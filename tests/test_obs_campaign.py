"""Campaign telemetry: heartbeats, manifests, and the CLI surface.

Covers the ISSUE acceptance path: ``repro sweep --workers 2
--metrics-out m.prom`` must stream live heartbeats and write a
grammar-valid Prometheus file, and ``repro report`` must print the
per-component profile plus queue/drop/ECN counters.
"""

import json

import pytest

from repro.cli import main
from repro.obs import parse_prometheus_text
from repro.obs.heartbeat import (
    Heartbeat,
    configure,
    run_with_heartbeats,
    set_task,
)
from repro.obs.manifest import build_manifest, config_hash, environment
from repro.sim import Simulator
from repro.units import MS


@pytest.fixture(autouse=True)
def _clean_sink():
    """Heartbeat sink is module state; never leak it across tests."""
    yield
    configure(None)
    set_task(None)


class TestRunWithHeartbeats:
    def _chain(self, sim, horizon):
        def tick():
            if sim.now < horizon:
                sim.after(1000, tick)

        sim.at(0, tick)

    def test_no_sink_matches_plain_run(self):
        a, b = Simulator(), Simulator()
        self._chain(a, 50_000)
        self._chain(b, 50_000)
        executed = run_with_heartbeats(a, 100_000)
        b.run(until_ps=100_000)
        assert (executed, a.now) == (b.events_executed, b.now)

    def test_slicing_does_not_change_the_run(self):
        a, b = Simulator(), Simulator()
        self._chain(a, 50_000)
        self._chain(b, 50_000)
        beats = []
        configure(beats.append)
        run_with_heartbeats(a, 100_000, n_slices=7)
        configure(None)
        b.run(until_ps=100_000)
        assert a.events_executed == b.events_executed
        assert a.now == b.now == 100_000
        assert len(beats) == 8  # 7 slices + final
        assert beats[-1].final and not beats[0].final
        assert beats[-1].sim_now_ps == 100_000

    def test_progress_is_monotonic_and_complete(self):
        sim = Simulator()
        self._chain(sim, 50_000)
        beats = []
        configure(beats.append)
        set_task(5)
        run_with_heartbeats(sim, 100_000)
        fractions = [beat.progress for beat in beats]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0
        assert all(beat.task_id == 5 for beat in beats)

    def test_counters_fn_snapshot(self):
        sim = Simulator()
        self._chain(sim, 5_000)
        beats = []
        configure(beats.append)
        run_with_heartbeats(sim, 10_000, counters_fn=lambda: {"x": sim.now})
        assert beats[-1].counters == {"x": 10_000}

    def test_broken_queue_never_raises(self):
        class FullQueue:
            def put_nowait(self, item):
                raise RuntimeError("full")

        sim = Simulator()
        self._chain(sim, 5_000)
        configure(FullQueue())
        run_with_heartbeats(sim, 10_000)  # must not raise
        assert sim.now == 10_000


class TestCampaignHeartbeats:
    def _sweep(self, workers, on_heartbeat=None):
        from repro.core.sweep import sweep_campaign

        return sweep_campaign(
            "dctcp",
            [{"g": 0.0625}, {"g": 0.125}],
            duration_ps=MS // 2,
            workers=workers,
            on_heartbeat=on_heartbeat,
        )

    def test_inline_heartbeats_and_identical_results(self):
        beats = []
        points, _ = self._sweep(workers=1, on_heartbeat=beats.append)
        silent_points, _ = self._sweep(workers=1)
        assert points == silent_points
        finals = [beat for beat in beats if beat.final]
        assert sorted(beat.task_id for beat in finals) == [0, 1]
        assert all(beat.counters for beat in finals)

    def test_pooled_heartbeats_and_identical_results(self):
        beats = []
        points, campaign = self._sweep(workers=2, on_heartbeat=beats.append)
        inline_points, _ = self._sweep(workers=1)
        assert points == inline_points
        assert campaign.n_workers == 2
        finals = {beat.task_id for beat in beats if beat.final}
        assert finals == {0, 1}
        # Beats crossed a process boundary: worker pids, not ours.
        import os

        assert all(beat.pid != os.getpid() for beat in beats)


class TestManifest:
    def test_config_hash_is_canonical(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_environment_fields(self):
        env = environment()
        assert set(env) == {
            "git_sha", "python_version", "implementation", "platform", "cpu_count",
            "sim_backend",
        }
        assert env["cpu_count"] >= 1
        assert set(env["sim_backend"]) == {"requested", "name", "fallback_reason"}

    def test_build_manifest(self):
        manifest = build_manifest(
            {"algorithm": "dctcp"}, seed=7, metrics={"m": 1}, extra={"note": "x"}
        )
        assert manifest["schema"] == 1
        assert manifest["seed"] == 7
        assert manifest["config_hash"] == config_hash({"algorithm": "dctcp"})
        assert manifest["metrics"] == {"m": 1}
        assert manifest["note"] == "x"
        assert "python_version" in manifest["environment"]


class TestCli:
    def test_sweep_streams_heartbeats_and_writes_prom(self, tmp_path, capsys):
        prom = tmp_path / "m.prom"
        manifest = tmp_path / "manifest.json"
        rc = main([
            "sweep", "--workers", "2", "--param", "g=0.0625,0.125",
            "--duration-ms", "0.5",
            "--metrics-out", str(prom), "--manifest", str(manifest),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[hb] task 0" in out and "[hb] task 1" in out
        assert "done" in out
        samples = parse_prometheus_text(prom.read_text())
        names = {name for name, _, _ in samples}
        assert "repro_campaign_tasks_total" in names
        assert "repro_sweep_switch_data_generated_total" in names
        payload = json.loads(manifest.read_text())
        assert payload["config"]["algorithm"] == "dctcp"
        assert payload["campaign"]["tasks"] == 2

    def test_sweep_no_progress_suppresses_hb_lines(self, tmp_path, capsys):
        rc = main([
            "sweep", "--param", "g=0.0625", "--duration-ms", "0.5",
            "--no-progress", "--metrics-out", str(tmp_path / "m.json"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[hb]" not in out
        assert json.loads((tmp_path / "m.json").read_text())

    def test_report_prints_profile_and_counters(self, tmp_path, capsys):
        prom = tmp_path / "report.prom"
        rc = main([
            "report", "--duration-ms", "0.5", "--metrics-out", str(prom),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "component" in out and "share" in out  # profile table
        assert "ECN marks" in out
        assert "dropped" in out
        assert "SCHE accepted/dropped" in out
        assert parse_prometheus_text(prom.read_text())

    def test_run_metrics_out(self, tmp_path, capsys):
        prom = tmp_path / "run.prom"
        rc = main([
            "run", "--duration-ms", "0.5", "--size-packets", "200",
            "--metrics-out", str(prom),
        ])
        assert rc == 0
        names = {name for name, _, _ in parse_prometheus_text(prom.read_text())}
        assert "repro_sim_events_executed_total" in names
        assert "repro_fifo_pushed_total" in names
