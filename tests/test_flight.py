"""The flight recorder: ring semantics, crash post-mortems, and the
zero-perturbation contract (recorder on == recorder off)."""

import dataclasses
import json
import os

import pytest

from repro.core.sweep import run_sweep_point
from repro.obs import flight
from repro.obs.flight import FlightRecorder, load_dump, task_dump_path
from repro.parallel import CampaignRunner


# -- picklable task functions (must be top level) ------------------------------


def record_then_maybe_die(x):
    """Records one flight event, spools, and hard-kills the process on
    ``x == 1`` — the closest a test can get to a segfaulted worker."""
    recorder = flight.current()
    if recorder is not None:
        recorder.record(0, "solver", "progress", x=x)
        recorder.spool()
    if x == 1:
        os._exit(9)
    return x


def raise_on_one(x):
    if x == 1:
        raise ValueError("deliberate")
    return x


@pytest.fixture(autouse=True)
def _clean_globals():
    """Recorder installation is process-global; never leak across tests."""
    yield
    flight.uninstall()
    flight.configure_autodump(None)


class TestFlightRecorder:
    def test_ring_is_bounded_and_counts_shed_history(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record(i, "queue", "drop", index=i)
        assert len(recorder) == 4
        assert recorder.events_recorded == 10
        events = recorder.events()
        assert [e["fields"]["index"] for e in events] == [6, 7, 8, 9]
        assert [e["seq"] for e in events] == [7, 8, 9, 10]
        payload = recorder.to_payload()
        assert payload["events_dropped"] == 6

    def test_note_uses_attached_sim_clock(self):
        class FakeSim:
            now = 1234

        recorder = FlightRecorder()
        recorder.note("queue", "drop")  # no sim attached yet
        flight.attach(sim=FakeSim(), recorder=recorder)
        recorder.note("queue", "drop")
        times = [e["time_ps"] for e in recorder.events()]
        assert times == [-1, 1234]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_dump_round_trip(self, tmp_path):
        recorder = FlightRecorder(meta={"task": 7})
        recorder.record(5, "pfc", "pause", congested_ports=2)
        path = recorder.dump(tmp_path / "dump.json", status="exception",
                             error="boom")
        payload = load_dump(path)
        assert payload["kind"] == "flight_recorder_dump"
        assert payload["status"] == "exception"
        assert payload["error"] == "boom"
        assert payload["meta"] == {"task": 7}
        assert payload["events"][0]["name"] == "pause"
        assert payload["pid"] == os.getpid()

    def test_load_dump_rejects_other_json(self, tmp_path):
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"kind": "something_else"}))
        with pytest.raises(ValueError):
            load_dump(other)

    def test_spool_written_at_creation_and_discarded(self, tmp_path):
        spool = tmp_path / "spool.json"
        recorder = FlightRecorder(spool_path=spool, spool_interval_s=0.0)
        assert spool.exists()  # instant death must still leave evidence
        assert load_dump(spool)["status"] == "running"
        recorder.record(1, "timer", "cancel", target_ps=9)
        assert load_dump(spool)["events"][-1]["name"] == "cancel"
        recorder.discard_spool()
        assert not spool.exists()

    def test_spool_interval_throttles_rewrites(self, tmp_path):
        spool = tmp_path / "spool.json"
        recorder = FlightRecorder(spool_path=spool, spool_interval_s=3600.0)
        recorder.record(1, "timer", "cancel")
        # Throttled: the file still holds only the creation-time snapshot.
        assert load_dump(spool)["events"] == []


class TestTaskLifecycle:
    def test_begin_end_success_removes_spool(self, tmp_path):
        flight.configure_autodump(tmp_path, spool_interval_s=0.0)
        recorder = flight.begin_task(3)
        assert recorder is flight.current()
        spool = task_dump_path(tmp_path, 3)
        assert spool.exists()
        flight.end_task(recorder, ok=True)
        assert not spool.exists()
        assert flight.current() is None

    def test_begin_end_failure_finalizes_dump(self, tmp_path):
        flight.configure_autodump(tmp_path, spool_interval_s=0.0)
        recorder = flight.begin_task(4)
        flight.end_task(recorder, ok=False, error="ValueError: deliberate")
        payload = load_dump(task_dump_path(tmp_path, 4))
        assert payload["status"] == "exception"
        assert payload["error"] == "ValueError: deliberate"
        assert payload["events"][-1]["name"] == "task_error"

    def test_begin_task_without_autodump_is_none(self):
        assert flight.begin_task(0) is None
        flight.end_task(None, ok=False, error="x")  # must not raise


class TestCampaignPostMortems:
    def test_killed_worker_leaves_preserved_dump(self, tmp_path):
        runner = CampaignRunner(workers=2, max_retries=1, results_dir=tmp_path)
        try:
            result = runner.run(record_then_maybe_die, [(0,), (1,), (2,)])
        finally:
            runner.close()
        assert not result.results[1].ok
        preserved = sorted(tmp_path.glob("flight-task00001-a*-crash.json"))
        assert preserved, "crash must preserve the worker's last spool"
        payload = load_dump(preserved[0])
        assert payload["status"] == "running"  # died mid-flight
        names = [e["name"] for e in payload["events"]]
        assert names == ["task_start", "progress"]
        # The journal records the terminal failure alongside the dumps.
        journal = json.loads((tmp_path / "campaign.json").read_text())
        failed = [t for t in journal["tasks"] if not t["ok"]]
        assert [t["index"] for t in failed] == [1]
        assert failed[0]["error_kind"] == "crash"

    def test_exception_task_dump_finalized_worker_side(self, tmp_path):
        runner = CampaignRunner(workers=2, results_dir=tmp_path)
        try:
            result = runner.run(raise_on_one, [(0,), (1,), (2,)])
        finally:
            runner.close()
        assert not result.results[1].ok
        payload = load_dump(task_dump_path(tmp_path, 1))
        assert payload["status"] == "exception"
        assert "deliberate" in payload["error"]

    def test_successful_campaign_leaves_only_journal(self, tmp_path):
        runner = CampaignRunner(workers=1, results_dir=tmp_path)
        try:
            runner.run(record_then_maybe_die, [(0,), (2,)])
        finally:
            runner.close()
        assert (tmp_path / "campaign.json").exists()
        assert list(tmp_path.glob("flight-task*.json")) == []


class TestZeroPerturbation:
    def test_recorder_on_is_event_identical(self, tmp_path):
        """The PR 3 contract: arming the recorder (and enabling its
        hooks through attach_control_plane) changes no simulated event."""
        kwargs = dict(n_senders=2, duration_ps=500_000_000, seed=3)
        baseline = run_sweep_point("dctcp", {}, **kwargs)

        recorder = FlightRecorder(
            spool_path=tmp_path / "spool.json", spool_interval_s=0.0
        )
        flight.install(recorder)
        try:
            recorded = run_sweep_point("dctcp", {}, **kwargs)
        finally:
            flight.uninstall()
        assert dataclasses.asdict(recorded) == dataclasses.asdict(baseline)
        # The run produced congestion, so the ring is not empty — the
        # comparison above was not vacuous.
        assert recorder.events_recorded > 0
        categories = {e["category"] for e in recorder.events()}
        assert categories & {"queue", "cc", "timer"}
