"""The independent ns3-style DCTCP oracle."""

import pytest

from repro.reference.ns3_dctcp import run_reference_dctcp
from repro.units import MICROSECOND


class TestCleanRun:
    def test_completes(self):
        run = run_reference_dctcp(total_packets=500)
        assert run.completed
        assert run.packets_delivered >= 500
        assert run.retransmissions == 0

    def test_slow_start_doubles(self):
        run = run_reference_dctcp(total_packets=2000, init_ssthresh=64.0)
        # Window trajectory passes through the doubling sequence.
        values = run.cwnd_values
        for landmark in (2.0, 4.0, 8.0, 16.0, 32.0, 64.0):
            assert any(abs(v - landmark) < 1e-9 for v in values)

    def test_caps_at_ssthresh_then_linear(self):
        run = run_reference_dctcp(total_packets=3000, init_ssthresh=16.0)
        values = run.cwnd_values
        above = [v for v in values if v > 16.0]
        # Growth above ssthresh is sub-exponential (1/cwnd per ACK).
        assert above
        jumps = [b - a for a, b in zip(above, above[1:])]
        assert max(jumps) <= 1.0 + 1e-9


class TestLossResponse:
    def test_fast_retransmit_halves_window(self):
        run = run_reference_dctcp(
            total_packets=3000, drop_psns={500}, init_ssthresh=64.0
        )
        assert run.completed
        assert run.retransmissions >= 1

    def test_multiple_losses(self):
        run = run_reference_dctcp(
            total_packets=4000, drop_psns={500, 2000}, init_ssthresh=64.0
        )
        assert run.completed
        assert run.retransmissions >= 2


class TestEcnResponse:
    def test_marks_reduce_alpha_increase(self):
        clean = run_reference_dctcp(total_packets=2000)
        marked = run_reference_dctcp(
            total_packets=2000, mark_psns=set(range(800, 900))
        )
        assert marked.completed
        # Marked run keeps a higher alpha than the clean run at the end.
        assert marked.alpha_values[-1] > clean.alpha_values[-1]

    def test_alpha_decays_without_marks(self):
        run = run_reference_dctcp(total_packets=3000, init_alpha=1.0)
        assert run.alpha_values[-1] < 0.1

    def test_ecn_cuts_window_not_psn(self):
        run = run_reference_dctcp(
            total_packets=2000, mark_psns=set(range(500, 520))
        )
        assert run.completed
        assert run.retransmissions == 0  # ECN is not loss
