"""DCQCN reaction point: CNP cuts, alpha timers, recovery stages."""

import pytest

from repro.cc import Dcqcn, EventType, Flags, IntrinsicInput
from repro.cc.base import CCMode, TIMER_ALG_A, TIMER_ALG_B
from repro.units import GBPS, RATE_100G


def cnp(rate):
    return IntrinsicInput(
        evt_type=EventType.RX,
        psn=-1,
        cwnd_or_rate=rate,
        una=0,
        nxt=0,
        flags=Flags(cnp=True, ecn=True),
        prb_rtt=-1,
        tstamp=0,
    )


def nack(rate):
    return IntrinsicInput(
        evt_type=EventType.RX,
        psn=5,
        cwnd_or_rate=rate,
        una=5,
        nxt=10,
        flags=Flags(nack=True),
        prb_rtt=-1,
        tstamp=0,
    )


def timer(rate, timer_id):
    return IntrinsicInput(
        evt_type=EventType.TIMEOUT,
        psn=-1,
        cwnd_or_rate=rate,
        una=0,
        nxt=0,
        flags=Flags(),
        prb_rtt=-1,
        tstamp=0,
        timer_id=timer_id,
    )


def byte_counter(rate):
    return IntrinsicInput(
        evt_type=EventType.BYTE_COUNTER,
        psn=-1,
        cwnd_or_rate=rate,
        una=0,
        nxt=0,
        flags=Flags(),
        prb_rtt=-1,
        tstamp=0,
    )


@pytest.fixture
def dcqcn():
    alg = Dcqcn(g=1.0 / 256.0)
    alg.initial_cwnd_or_rate(RATE_100G)
    return alg


class TestBasics:
    def test_rate_mode(self, dcqcn):
        assert dcqcn.mode is CCMode.RATE

    def test_starts_at_line_rate(self, dcqcn):
        assert dcqcn.initial_cwnd_or_rate(RATE_100G) == float(RATE_100G)

    def test_declares_byte_counter(self, dcqcn):
        assert dcqcn.byte_counter_bytes() == 10 * 1024 * 1024

    def test_g_validated(self):
        with pytest.raises(ValueError):
            Dcqcn(g=0)


class TestCnpResponse:
    def test_cut_by_alpha_half(self, dcqcn):
        cust = dcqcn.initial_cust()  # alpha = 1.0
        out = dcqcn.on_event(cnp(100e9), cust, None)
        assert out.cwnd_or_rate == pytest.approx(50e9)
        assert cust.target_rate == pytest.approx(100e9)

    def test_alpha_increases_toward_one(self, dcqcn):
        cust = dcqcn.initial_cust()
        cust.alpha = 0.0
        dcqcn.on_event(cnp(100e9), cust, None)
        assert cust.alpha == pytest.approx(1.0 / 256.0)

    def test_cnp_arms_both_timers(self, dcqcn):
        cust = dcqcn.initial_cust()
        out = dcqcn.on_event(cnp(100e9), cust, None)
        armed = {timer_id for timer_id, _ in out.rst_timers}
        assert armed == {TIMER_ALG_A, TIMER_ALG_B}

    def test_counters_reset(self, dcqcn):
        cust = dcqcn.initial_cust()
        cust.bc_count = 3
        cust.t_count = 2
        dcqcn.on_event(cnp(100e9), cust, None)
        assert cust.bc_count == 0 and cust.t_count == 0

    def test_rate_floor(self, dcqcn):
        cust = dcqcn.initial_cust()
        out = dcqcn.on_event(cnp(1e6), cust, None)
        assert out.cwnd_or_rate == dcqcn.min_rate_floor_bps


class TestAlphaTimer:
    def test_alpha_decays(self, dcqcn):
        cust = dcqcn.initial_cust()
        cust.alpha = 1.0
        out = dcqcn.on_event(timer(50e9, TIMER_ALG_A), cust, None)
        assert cust.alpha == pytest.approx(255.0 / 256.0)
        assert (TIMER_ALG_A, dcqcn.alpha_timer_ps) in out.rst_timers

    def test_alpha_timer_stops_when_tiny(self, dcqcn):
        cust = dcqcn.initial_cust()
        cust.alpha = 1e-5
        out = dcqcn.on_event(timer(50e9, TIMER_ALG_A), cust, None)
        assert out.rst_timers == []


class TestRateIncrease:
    def test_no_increase_before_any_cnp(self, dcqcn):
        cust = dcqcn.initial_cust()
        out = dcqcn.on_event(timer(50e9, TIMER_ALG_B), cust, None)
        assert out.cwnd_or_rate is None

    def test_fast_recovery_halves_gap(self, dcqcn):
        cust = dcqcn.initial_cust()
        dcqcn.on_event(cnp(100e9), cust, None)  # rate 50, target 100
        out = dcqcn.on_event(timer(50e9, TIMER_ALG_B), cust, None)
        assert out.cwnd_or_rate == pytest.approx(75e9)
        assert cust.target_rate == pytest.approx(100e9)  # unchanged in FR

    def test_additive_increase_after_f_stages(self, dcqcn):
        cust = dcqcn.initial_cust()
        dcqcn.on_event(cnp(100e9), cust, None)
        rate = 50e9
        for _ in range(dcqcn.fast_recovery_threshold):
            out = dcqcn.on_event(timer(rate, TIMER_ALG_B), cust, None)
            rate = out.cwnd_or_rate
        # t_count is now F: the next timer event adds Rai to the target.
        target_before = cust.target_rate
        dcqcn.on_event(timer(rate, TIMER_ALG_B), cust, None)
        assert cust.target_rate == pytest.approx(
            min(target_before + dcqcn.rate_ai_bps, 100e9)
        )

    def test_hyper_increase_when_both_counters_high(self, dcqcn):
        cust = dcqcn.initial_cust()
        dcqcn.on_event(cnp(100e9), cust, None)
        cust.bc_count = 10
        cust.t_count = 10
        cust.target_rate = 50e9
        dcqcn.on_event(byte_counter(40e9), cust, None)
        assert cust.target_rate == pytest.approx(50e9 + dcqcn.rate_hai_bps)

    def test_rate_capped_at_line_rate(self, dcqcn):
        cust = dcqcn.initial_cust()
        dcqcn.on_event(cnp(100e9), cust, None)
        cust.target_rate = 99.9e9
        cust.bc_count = 10
        cust.t_count = 10
        out = dcqcn.on_event(timer(99e9, TIMER_ALG_B), cust, None)
        assert out.cwnd_or_rate <= 100e9
        assert cust.target_rate <= 100e9

    def test_convergence_back_to_line_rate(self, dcqcn):
        """After one cut, repeated increase events recover the line rate."""
        cust = dcqcn.initial_cust()
        out = dcqcn.on_event(cnp(100e9), cust, None)
        rate = out.cwnd_or_rate
        for _ in range(200):
            out = dcqcn.on_event(timer(rate, TIMER_ALG_B), cust, None)
            if out.cwnd_or_rate is not None:
                rate = out.cwnd_or_rate
        assert rate == pytest.approx(100e9, rel=0.01)


class TestNack:
    def test_nack_rewinds_without_rate_change(self, dcqcn):
        cust = dcqcn.initial_cust()
        out = dcqcn.on_event(nack(80e9), cust, None)
        assert out.rewind_to_una
        assert out.cwnd_or_rate is None
