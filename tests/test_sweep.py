"""Operator sweep utilities: lossless-rate search and CC parameter grids."""

import pytest

from repro.core.sweep import cc_parameter_sweep, max_lossless_rate_bps
from repro.errors import ConfigError
from repro.units import GBPS, MS, RATE_100G


class TestMaxLosslessRate:
    def test_finds_bottleneck_rate(self):
        rate = max_lossless_rate_bps(
            bottleneck_rate_bps=RATE_100G,
            duration_ps=1 * MS,
            tolerance_bps=2 * GBPS,
        )
        # The answer is the port's line rate (the queue absorbs nothing
        # sustained beyond it): within tolerance + framing margin.
        assert 0.93 * RATE_100G <= rate <= 1.05 * RATE_100G

    def test_scales_with_bottleneck(self):
        rate = max_lossless_rate_bps(
            bottleneck_rate_bps=10 * GBPS,
            duration_ps=1 * MS,
            tolerance_bps=1 * GBPS,
        )
        assert 0.85 * 10 * GBPS <= rate <= 1.1 * 10 * GBPS

    def test_tolerance_validated(self):
        with pytest.raises(ConfigError):
            max_lossless_rate_bps(tolerance_bps=0)


class TestCcParameterSweep:
    def test_grid_order_and_metrics(self):
        points = cc_parameter_sweep(
            "dcqcn",
            [{"rate_ai_bps": 1 * GBPS}, {"rate_ai_bps": 5 * GBPS}],
            n_senders=2,
            duration_ps=3 * MS,
        )
        assert len(points) == 2
        assert points[0].params == {"rate_ai_bps": 1 * GBPS}
        for point in points:
            assert point.throughput_bps > 0.7 * RATE_100G
            assert 0.5 < point.fairness <= 1.0
            assert point.peak_queue_bytes > 0

    def test_dctcp_g_sweep_shows_queue_tradeoff(self):
        """Larger g reacts faster -> different queue occupancy profile;
        the sweep surfaces the difference operators tune for."""
        points = cc_parameter_sweep(
            "dctcp",
            [{"g": 1.0 / 64.0}, {"g": 1.0 / 4.0}],
            n_senders=2,
            duration_ps=4 * MS,
            base_params={"initial_ssthresh": 1024.0},
        )
        queues = [point.peak_queue_bytes for point in points]
        assert queues[0] != queues[1]  # the knob observably matters

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigError):
            cc_parameter_sweep("dctcp", [])

    def test_bad_seed_replicates_rejected(self):
        with pytest.raises(ConfigError):
            cc_parameter_sweep("dctcp", [{}], seeds=0)
        with pytest.raises(ConfigError):
            cc_parameter_sweep("dctcp", [{}], seeds=[])
