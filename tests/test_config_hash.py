"""The canonical config hasher: the result cache's correctness keystone.

The v1 digest (``json.dumps(..., default=str)``) had three cache-key
bugs: tuples and lists collided, ``NaN`` serialized as non-RFC JSON,
and arbitrary objects were hashed through ``str()`` — reprs with memory
addresses, so the "same" config hashed differently run to run.  v2 is a
strict type-tagged canonicalizer; these tests pin its invariants and
the v1 compatibility escape hatch.
"""

import json
import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.obs.manifest import (
    CONFIG_HASH_VERSION,
    build_manifest,
    canonical_config_bytes,
    config_hash,
)


class TestKeyOrderInvariance:
    def test_top_level(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_nested(self):
        left = {"outer": {"x": [1, 2], "y": {"p": 1, "q": 2}}, "z": 3}
        right = {"z": 3, "outer": {"y": {"q": 2, "p": 1}, "x": [1, 2]}}
        assert config_hash(left) == config_hash(right)

    def test_values_still_matter(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})
        assert config_hash({"a": 1}) != config_hash({"b": 1})


class TestTypeTagging:
    def test_tuple_differs_from_list(self):
        # The v1 collision: json.dumps serializes both as [1, 2].
        assert config_hash({"k": (1, 2)}) != config_hash({"k": [1, 2]})
        assert config_hash({"k": (1, 2)}, version=1) == config_hash(
            {"k": [1, 2]}, version=1
        )

    def test_bool_differs_from_int(self):
        assert config_hash({"k": True}) != config_hash({"k": 1})
        assert config_hash({"k": False}) != config_hash({"k": 0})

    def test_int_differs_from_float(self):
        assert config_hash({"k": 1}) != config_hash({"k": 1.0})

    def test_str_differs_from_number(self):
        assert config_hash({"k": "1"}) != config_hash({"k": 1})

    def test_none_is_hashable(self):
        assert config_hash({"k": None}) == config_hash({"k": None})
        assert config_hash({"k": None}) != config_hash({"k": 0})

    def test_empty_containers_distinct(self):
        assert config_hash({"k": []}) != config_hash({"k": {}})
        assert config_hash({"k": []}) != config_hash({"k": ()})


class TestRejection:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_floats_rejected(self, bad):
        with pytest.raises(ConfigError, match="non-finite"):
            config_hash({"k": bad})

    def test_nested_nan_names_the_path(self):
        with pytest.raises(ConfigError, match=r"\$\.outer\.rates\[1\]"):
            config_hash({"outer": {"rates": [1.0, float("nan")]}})

    def test_arbitrary_objects_rejected(self):
        class Opaque:
            pass

        with pytest.raises(ConfigError, match="no canonical form"):
            config_hash({"k": Opaque()})

    def test_non_string_keys_rejected(self):
        with pytest.raises(ConfigError, match="string keys"):
            config_hash({"k": {1: "a"}})

    def test_unknown_version_rejected(self):
        with pytest.raises(ConfigError, match="version"):
            config_hash({"a": 1}, version=3)

    def test_v1_still_accepts_objects(self):
        # The legacy digest hashed anything str()-able; keep that so old
        # manifests verify — even though it is exactly the bug v2 fixes.
        class Opaque:
            def __str__(self):
                return "stable"

        assert config_hash({"k": Opaque()}, version=1) == config_hash(
            {"k": Opaque()}, version=1
        )


class TestV1Compatibility:
    def test_v1_matches_legacy_digest(self):
        config = {"algorithm": "dcqcn", "grid": [{"g": 0.0625}], "seed": 0}
        legacy = hashlib.sha256(
            json.dumps(
                config, sort_keys=True, separators=(",", ":"), default=str
            ).encode()
        ).hexdigest()
        assert config_hash(config, version=1) == legacy
        assert config_hash(config, version=2) != legacy

    def test_default_is_v2(self):
        config = {"a": [1, 2.5, "x"], "b": {"c": None}}
        assert config_hash(config) == config_hash(config, version=2)

    def test_manifest_stamps_hash_version(self):
        manifest = build_manifest({"algorithm": "dctcp"})
        assert manifest["config_hash"] == config_hash({"algorithm": "dctcp"})
        assert manifest["config_hash_version"] == CONFIG_HASH_VERSION == 2


# -- property tests -------------------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)

_configs = st.dictionaries(
    st.text(max_size=10),
    st.recursive(
        _scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=8), children, max_size=4),
        ),
        max_leaves=12,
    ),
    max_size=6,
)


class TestProperties:
    @given(_configs)
    @settings(max_examples=60, deadline=None)
    def test_hash_is_deterministic_and_reorderable(self, config):
        digest = config_hash(config)
        assert digest == config_hash(config)
        reordered = dict(reversed(list(config.items())))
        assert config_hash(reordered) == digest

    @given(_configs)
    @settings(max_examples=60, deadline=None)
    def test_json_round_trip_preserves_hash(self, config):
        """Anything that survives a JSON round trip hashes identically
        after it — the property the HTTP cache path relies on."""
        round_tripped = json.loads(json.dumps(config))
        assert config_hash(round_tripped) == config_hash(config)

    @given(_configs, _configs)
    @settings(max_examples=60, deadline=None)
    def test_distinct_configs_distinct_hashes(self, left, right):
        if left != right:
            assert config_hash(left) != config_hash(right)

    @given(_configs)
    @settings(max_examples=30, deadline=None)
    def test_canonical_bytes_match_hash(self, config):
        assert (
            hashlib.sha256(canonical_config_bytes(config)).hexdigest()
            == config_hash(config)
        )
