"""Packets and queues, including ECN-marking semantics and hypothesis
invariants on the drop-tail queue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import CE, ECT, NOT_ECT, Packet
from repro.net.queue import DropTailQueue, EcnQueue


def make_packet(size=100, ecn=NOT_ECT):
    return Packet("DATA", 1, 2, size, flow_id=1, psn=0, ecn=ecn)


class TestPacket:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Packet("DATA", 1, 2, 0)

    def test_uids_unique(self):
        a, b = make_packet(), make_packet()
        assert a.uid != b.uid

    def test_mark_ce_only_when_ect(self):
        p = make_packet(ecn=NOT_ECT)
        p.mark_ce()
        assert not p.ce_marked
        q = make_packet(ecn=ECT)
        q.mark_ce()
        assert q.ce_marked
        assert q.ecn == CE

    def test_copy_is_independent(self):
        p = make_packet(ecn=ECT)
        p.meta["k"] = 1
        c = p.copy()
        assert c.uid != p.uid
        c.meta["k"] = 2
        assert p.meta["k"] == 1
        assert c.ecn == ECT


class TestDropTailQueue:
    def test_fifo_order(self):
        q = DropTailQueue(10_000)
        packets = [make_packet() for _ in range(5)]
        for p in packets:
            assert q.enqueue(p)
        out = [q.dequeue() for _ in range(5)]
        assert [p.uid for p in out] == [p.uid for p in packets]

    def test_drops_beyond_capacity(self):
        q = DropTailQueue(250)
        assert q.enqueue(make_packet(100))
        assert q.enqueue(make_packet(100))
        assert not q.enqueue(make_packet(100))
        assert q.stats.dropped_packets == 1
        assert q.backlog_bytes == 200

    def test_dequeue_empty_returns_none(self):
        q = DropTailQueue(100)
        assert q.dequeue() is None
        assert q.empty

    def test_stats_track_bytes(self):
        q = DropTailQueue(1000)
        q.enqueue(make_packet(300))
        q.enqueue(make_packet(200))
        q.dequeue()
        assert q.stats.enqueued_bytes == 500
        assert q.stats.dequeued_bytes == 300
        assert q.stats.max_backlog_bytes == 500

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=500), max_size=60),
        capacity=st.integers(min_value=500, max_value=5000),
    )
    @settings(max_examples=60, deadline=None)
    def test_backlog_invariants(self, sizes, capacity):
        """Backlog never exceeds capacity and equals the sum of queued sizes."""
        q = DropTailQueue(capacity)
        queued = []
        for size in sizes:
            p = make_packet(size)
            if q.enqueue(p):
                queued.append(size)
            assert q.backlog_bytes <= capacity
            assert q.backlog_bytes == sum(queued)
        drained = 0
        while not q.empty:
            drained += q.dequeue().size_bytes
        assert drained == sum(queued)
        assert q.backlog_bytes == 0


class TestEcnQueue:
    def test_marks_above_threshold(self):
        q = EcnQueue(10_000, ecn_threshold_bytes=300)
        q.enqueue(make_packet(200, ecn=ECT))  # backlog 200 < 300: no mark
        p2 = make_packet(200, ecn=ECT)
        q.enqueue(p2)  # backlog 400 >= 300: mark
        first = q.dequeue()
        assert not first.ce_marked
        assert p2.ce_marked
        assert q.stats.ecn_marked_packets == 1

    def test_non_ect_not_marked(self):
        q = EcnQueue(10_000, ecn_threshold_bytes=100)
        q.enqueue(make_packet(200, ecn=NOT_ECT))
        p = make_packet(200, ecn=NOT_ECT)
        q.enqueue(p)
        assert not p.ce_marked
        assert q.stats.ecn_marked_packets == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            EcnQueue(100, ecn_threshold_bytes=0)
        with pytest.raises(ValueError):
            EcnQueue(100, ecn_threshold_bytes=101)

    def test_still_drops_at_capacity(self):
        q = EcnQueue(250, ecn_threshold_bytes=100)
        q.enqueue(make_packet(200, ecn=ECT))
        assert not q.enqueue(make_packet(100, ecn=ECT))
        assert q.stats.dropped_packets == 1


class TestPacketPool:
    def _pool(self, **kwargs):
        from repro.net.packet import PacketPool

        return PacketPool(**kwargs)

    def test_acquire_release_reuses_object(self):
        pool = self._pool()
        first = pool.acquire("SCHE", 1, 2, 64, flow_id=7)
        pool.release(first)
        second = pool.acquire("ACK", 3, 4, 64, flow_id=9, psn=5)
        assert second is first  # same object, reinitialized
        assert (second.ptype, second.src, second.dst) == ("ACK", 3, 4)
        assert (second.flow_id, second.psn) == (9, 5)
        assert pool.stats()["reused"] == 1

    def test_reuse_gets_fresh_uid_and_cleared_meta(self):
        pool = self._pool()
        first = pool.acquire("SCHE", 1, 2, 64)
        first.meta["egress_port"] = 3
        old_uid, old_meta = first.uid, first.meta
        pool.release(first)
        second = pool.acquire("SCHE", 1, 2, 64)
        assert second.uid != old_uid
        assert second.meta is old_meta  # dict object reused...
        assert second.meta == {}  # ...but cleared

    def test_double_release_is_counted_once(self):
        pool = self._pool()
        packet = pool.acquire("SCHE", 1, 2, 64)
        pool.release(packet)
        pool.release(packet)  # silently ignored outside debug mode
        assert pool.stats()["released"] == 1
        assert pool.stats()["free"] == 1

    def test_debug_double_release_raises(self):
        from repro.errors import PacketPoolError

        pool = self._pool(debug=True)
        packet = pool.acquire("SCHE", 1, 2, 64)
        pool.release(packet)
        with pytest.raises(PacketPoolError, match="double release"):
            pool.release(packet)

    def test_debug_use_after_release_raises_on_meta_access(self):
        from repro.errors import PacketPoolError

        pool = self._pool(debug=True)
        packet = pool.acquire("SCHE", 1, 2, 64)
        packet.meta["egress_port"] = 1
        pool.release(packet)
        assert packet.ptype == "<freed>"
        with pytest.raises(PacketPoolError, match="use-after-release"):
            packet.meta["egress_port"]
        with pytest.raises(PacketPoolError, match="use-after-release"):
            packet.meta.get("egress_port")

    def test_max_free_bounds_the_free_list(self):
        pool = self._pool(max_free=2)
        packets = [pool.acquire("SCHE", 1, 2, 64) for _ in range(5)]
        for packet in packets:
            pool.release(packet)
        assert pool.stats()["free"] == 2

    def test_disabled_pool_never_recycles(self):
        pool = self._pool()
        pool.enabled = False
        packet = pool.acquire("SCHE", 1, 2, 64)
        pool.release(packet)
        assert pool.stats()["free"] == 0
        assert pool.acquire("SCHE", 1, 2, 64) is not packet

    def test_acquire_rejects_nonpositive_size_even_on_reuse(self):
        pool = self._pool()
        pool.release(pool.acquire("SCHE", 1, 2, 64))
        with pytest.raises(ValueError):
            pool.acquire("SCHE", 1, 2, 0)
