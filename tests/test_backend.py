"""Cross-backend determinism and resolution tests.

The backend contract (``repro.sim.backend``) promises that every run
loop produces *bit-identical* event streams — same pop order, same
clock stores, same counters — so switching backends can change
wall-clock speed but never a result.  This suite pins that promise at
three levels (raw engine schedule, full packet model, sharded
campaigns), plus the resolution/fallback behaviour the CLI and serve
layers rely on.

The compiled-backend halves of the identity tests skip when the
extension is not built; the fallback tests force it "unavailable"
regardless, so both arms are exercised on every machine.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core import ControlPlane
from repro.core.sweep import run_sweep_point, sweep_campaign
from repro.errors import ConfigError
from repro.obs.manifest import environment
from repro.sim import Simulator
from repro.sim import backend as backend_mod
from repro.sim.backend import (
    BackendFallbackWarning,
    available_backends,
    backend_names,
    compiled_available,
    resolve,
    stamp,
)
from repro.units import MS

needs_compiled = pytest.mark.skipif(
    not compiled_available(), reason="compiled engine extension not built"
)


@pytest.fixture
def no_compiled(monkeypatch):
    """Force the compiled extension 'unavailable' and re-arm the
    once-per-process fallback warning for this test."""
    monkeypatch.setattr(backend_mod, "_CENGINE", None)
    monkeypatch.setattr(backend_mod, "_PROBED", True)
    monkeypatch.setattr(
        backend_mod, "_CENGINE_ERROR", "forced unavailable (test)"
    )
    monkeypatch.setattr(backend_mod, "_WARNED_FALLBACK", False)


class TestResolution:
    def test_backend_names(self):
        assert backend_names() == ("auto", "python", "compiled")

    def test_available_backends(self):
        avail = available_backends()
        assert avail["auto"] is True
        assert avail["python"] is True
        assert avail["compiled"] == compiled_available()

    def test_explicit_python(self):
        backend = resolve("python")
        assert backend.name == "python"
        assert backend.requested == "python"
        assert backend.fallback_reason is None

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError, match="unknown sim backend"):
            resolve("turbo")

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv(backend_mod.ENV_VAR, "compiled")
        assert resolve("python").name == "python"

    def test_environment_consulted_without_argument(self, monkeypatch):
        monkeypatch.setenv(backend_mod.ENV_VAR, "python")
        backend = resolve(None)
        assert backend.name == "python"
        assert backend.requested == "python"

    def test_empty_environment_means_auto(self, monkeypatch):
        monkeypatch.setenv(backend_mod.ENV_VAR, "")
        assert resolve(None).requested == "auto"

    def test_simulator_rejects_unknown_backend(self):
        with pytest.raises(ConfigError):
            Simulator(backend="turbo")


class TestFallback:
    def test_explicit_compiled_falls_back_with_one_warning(self, no_compiled):
        with pytest.warns(BackendFallbackWarning, match="falling back"):
            backend = resolve("compiled")
        assert backend.name == "python"
        assert backend.requested == "compiled"
        assert "forced unavailable" in backend.fallback_reason
        # Second resolution in the same process: silent, still degraded.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = resolve("compiled")
        assert again.name == "python"
        assert again.fallback_reason is not None

    def test_auto_fallback_is_silent(self, no_compiled):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            backend = resolve("auto")
        assert backend.name == "python"
        assert backend.fallback_reason is None

    def test_degraded_simulator_still_runs(self, no_compiled):
        with pytest.warns(BackendFallbackWarning):
            sim = Simulator(backend="compiled")
        fired = []
        sim.after(10, fired.append, 1)
        sim.run(until_ps=20)
        assert fired == [1]
        assert sim.backend_name == "python"
        assert sim.backend_fallback_reason is not None

    def test_stamp_records_fallback_reason(self, no_compiled):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # stamping never warns
            record = stamp("compiled")
        assert record["requested"] == "compiled"
        assert record["name"] == "python"
        assert "forced unavailable" in record["fallback_reason"]

    def test_stamp_never_raises_on_unknown(self):
        record = stamp("turbo")
        assert record["name"] == "python"
        assert "unknown" in record["fallback_reason"]

    def test_manifest_environment_stamps_backend(self):
        env = environment()
        assert set(env["sim_backend"]) == {"requested", "name", "fallback_reason"}
        assert env["sim_backend"]["name"] in ("python", "compiled")


def _scripted_schedule(sim: Simulator) -> list:
    """A scenario exercising every scheduling shape: fast entries, ties,
    handles, re-arm, cancel, stop — returns the observed event stream."""
    log: list = []

    def note(tag):
        log.append((sim.now, tag))

    def spawn(tag, delay):
        note(tag)
        if delay:
            sim.after(delay, spawn, tag + "'", 0)

    sim.at(5, note, "a")
    sim.at(5, note, "b")          # same-timestamp batch
    sim.at(2, spawn, "c", 3)      # schedules c' into the a/b batch
    sim.call_now(note, "now")
    handle = sim.schedule_handle(4, note, "h")
    sim.rearm(handle, 7)          # supersedes the t=4 entry
    cancelled = sim.schedule_handle(6, note, "never")
    cancelled.cancel()
    sim.after(9, sim.stop)
    sim.after(11, note, "past-stop")
    sim.run(until_ps=50)
    log.append(("events", sim.events_executed))
    sim.run(until_ps=50)          # resume after stop(): drains the rest
    log.append(("events", sim.events_executed))
    return log


class TestBitIdentity:
    def test_python_schedule_reference(self):
        """The scripted stream against literal expectations, so a dual
        regression in both backends cannot cancel out."""
        log = _scripted_schedule(Simulator(backend="python"))
        assert log == [
            (0, "now"),
            (2, "c"),
            (5, "a"),
            (5, "b"),
            (5, "c'"),
            (7, "h"),
            ("events", 7),        # 6 notes/spawns + stop at t=9
            (11, "past-stop"),
            ("events", 8),
        ]

    @needs_compiled
    def test_schedule_streams_identical(self):
        log_py = _scripted_schedule(Simulator(backend="python"))
        log_c = _scripted_schedule(Simulator(backend="compiled"))
        assert log_py == log_c

    @needs_compiled
    def test_profiled_run_identical(self):
        """The dispatch hook (profiler) must not perturb either loop."""
        logs = {}
        for name in ("python", "compiled"):
            sim = Simulator(backend=name)
            sim.enable_profiling()
            logs[name] = _scripted_schedule(sim)
        assert logs["python"] == logs["compiled"]

    @needs_compiled
    def test_sweep_point_identical(self):
        """Full packet model: FCTs, throughput, fairness, queue peaks."""
        points = {
            name: run_sweep_point(
                "dctcp", {}, duration_ps=MS, sim_backend=name
            )
            for name in ("python", "compiled")
        }
        assert points["python"] == points["compiled"]

    @needs_compiled
    def test_counters_identical(self):
        counters = {}
        for name in ("python", "compiled"):
            cp = ControlPlane(sim_backend=name)
            from repro.core import TestConfig

            cp.deploy(TestConfig(cc_algorithm="dctcp", n_test_ports=3, seed=1))
            cp.wire_loopback_fabric()
            cp.start_flows(size_packets=10**9, pattern="fan_in")
            cp.run(duration_ps=MS)
            counters[name] = (cp.read_measurements(), cp.sim.events_executed)
        assert counters["python"] == counters["compiled"]


class TestCampaignDeterminism:
    def test_workers_bit_identical(self):
        """Sharding a campaign across a pool must not change any point."""
        grid = [{}, {"g": 0.0625}]
        results = {}
        for workers in (1, 2):
            points, _ = sweep_campaign(
                "dctcp",
                grid,
                duration_ps=MS,
                seeds=2,
                workers=workers,
                sim_backend="python",
            )
            results[workers] = points
        assert results[1] == results[2]

    @needs_compiled
    def test_workers_and_backend_bit_identical(self):
        """The full matrix: worker count x backend, one answer."""
        outcomes = set()
        for workers, name in ((1, "python"), (2, "compiled")):
            points, _ = sweep_campaign(
                "dctcp",
                [{}],
                duration_ps=MS,
                workers=workers,
                sim_backend=name,
            )
            outcomes.add(tuple(
                (p.throughput_bps, p.fairness, p.peak_queue_bytes,
                 p.flows_completed) for p in points
            ))
        assert len(outcomes) == 1


class TestPurePythonDatapathIdentity:
    def test_sweep_point_identical_without_extension(self):
        """The C queue/port cores must not change a single measurement.

        A subprocess blocks the extension import outright, forcing the
        pure-Python DropTailQueue/Port (and the python run loop), and
        its sweep point must equal this process's — whichever datapath
        implementation this process resolved to.
        """
        import dataclasses
        import json
        import subprocess
        import sys

        script = (
            "import sys, json, dataclasses\n"
            "sys.modules['repro.sim._cengine'] = None\n"
            "from repro.core.sweep import run_sweep_point\n"
            "from repro.units import MS\n"
            "point = run_sweep_point('dctcp', {}, duration_ps=MS)\n"
            "print(json.dumps(dataclasses.asdict(point)))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        )
        blocked = json.loads(proc.stdout)
        here = dataclasses.asdict(run_sweep_point("dctcp", {}, duration_ps=MS))
        assert blocked == here


class TestThreading:
    def test_control_plane_rejects_sim_and_backend(self):
        with pytest.raises(ConfigError, match="not both"):
            ControlPlane(sim=Simulator(), sim_backend="python")

    def test_control_plane_backend_kwarg(self):
        cp = ControlPlane(sim_backend="python")
        assert cp.sim.backend_name == "python"

    def test_cli_exposes_sim_backend(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["run", "--sim-backend", "python"])
        assert args.sim_backend == "python"
        args = parser.parse_args(["sweep", "--sim-backend", "compiled"])
        assert args.sim_backend == "compiled"
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--sim-backend", "turbo"])

    def test_spec_backend_normalizes_into_hash(self):
        from repro.serve.spec import parse_spec

        omitted = parse_spec({"kind": "sweep", "algorithm": "dctcp"})
        spelled = parse_spec(
            {"kind": "sweep", "algorithm": "dctcp", "sim_backend": "auto"}
        )
        forced = parse_spec(
            {"kind": "sweep", "algorithm": "dctcp", "sim_backend": "python"}
        )
        assert omitted.config["sim_backend"] == "auto"
        assert omitted.config_hash == spelled.config_hash
        assert omitted.config_hash != forced.config_hash

    def test_spec_rejects_unknown_backend(self):
        from repro.serve.spec import parse_spec

        with pytest.raises(ConfigError, match="sim_backend"):
            parse_spec(
                {"kind": "sweep", "algorithm": "dctcp", "sim_backend": "turbo"}
            )
