"""Cubic (LUT cube root, epoch dynamics) and TIMELY (RTT gradient)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import Cubic, EventType, Flags, IntrinsicInput, Timely, lut_cbrt
from repro.cc.base import CCMode
from repro.units import GBPS, MICROSECOND, MS, RATE_100G, SECOND


class TestLutCbrt:
    def test_exact_cubes(self):
        for x in (1.0, 8.0, 27.0, 64.0, 1000.0):
            assert lut_cbrt(x) == pytest.approx(x ** (1 / 3), rel=1e-4)

    def test_zero(self):
        assert lut_cbrt(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            lut_cbrt(-1.0)

    def test_small_values(self):
        assert lut_cbrt(0.001) == pytest.approx(0.1, rel=1e-4)

    @given(st.floats(min_value=1e-9, max_value=1e12))
    @settings(max_examples=300, deadline=None)
    def test_relative_error_bound(self, x):
        """The paper's LUT optimization must stay accurate enough for CC:
        relative error below 1e-4 across 21 orders of magnitude."""
        assert lut_cbrt(x) == pytest.approx(x ** (1.0 / 3.0), rel=1e-4)

    @given(st.floats(min_value=1e-6, max_value=1e9))
    @settings(max_examples=100, deadline=None)
    def test_monotonicity(self, x):
        assert lut_cbrt(x * 1.01) >= lut_cbrt(x)


def dupack(cwnd, una=5, nxt=30, t=0):
    return IntrinsicInput(
        evt_type=EventType.RX,
        psn=una,
        cwnd_or_rate=cwnd,
        una=una,
        nxt=nxt,
        flags=Flags(ack=True),
        prb_rtt=-1,
        tstamp=t,
    )


def new_ack(psn, cwnd, nxt=100, t=0):
    return IntrinsicInput(
        evt_type=EventType.RX,
        psn=psn,
        cwnd_or_rate=cwnd,
        una=psn,
        nxt=nxt,
        flags=Flags(ack=True),
        prb_rtt=-1,
        tstamp=t,
    )


class TestCubic:
    def make(self):
        return Cubic(initial_cwnd=1.0, initial_ssthresh=4.0, c=0.4, beta=0.3)

    def test_loss_starts_epoch(self):
        cubic = self.make()
        cust = cubic.initial_cust()
        cust.last_ack = 5
        out = None
        for _ in range(3):
            out = cubic.on_event(dupack(20.0, t=1000), cust, None)
        assert cust.epoch_start == 1000
        assert cust.w_max == 20.0
        # beta = 0.3 decrease: cut to 14 (+3 dupack inflation).
        assert out.cwnd_or_rate == pytest.approx(14.0 + 3.0)
        expected_k = (20.0 * 0.3 / 0.4) ** (1 / 3)
        assert cust.k_seconds == pytest.approx(expected_k, rel=1e-3)

    def test_concave_growth_toward_wmax(self):
        cubic = self.make()
        cust = cubic.initial_cust()
        cust.last_ack = 5
        for _ in range(3):
            cubic.on_event(dupack(20.0, t=0), cust, None)
        # Exit recovery with a full ACK.
        cubic.on_event(new_ack(40, 17.0, t=1000), cust, None)
        # Growth in CA follows the cubic target; near K the window
        # approaches w_max from below.
        t_at_k = int(cust.k_seconds * SECOND)
        out = cubic.on_event(new_ack(41, 14.0, t=t_at_k), cust, None)
        assert out.cwnd_or_rate > 14.0
        assert out.cwnd_or_rate <= 20.0 + 1.0

    def test_convex_growth_past_k(self):
        cubic = self.make()
        cust = cubic.initial_cust()
        cust.last_ack = 5
        for _ in range(3):
            cubic.on_event(dupack(20.0, t=0), cust, None)
        cubic.on_event(new_ack(40, 17.0, t=100), cust, None)
        t_past = int((cust.k_seconds + 2.0) * SECOND)
        out = cubic.on_event(new_ack(41, 20.0, t=t_past), cust, None)
        # target = 0.4 * 2^3 + 20 = 23.2 -> grow toward it.
        assert out.cwnd_or_rate > 20.0

    def test_timeout_starts_epoch_too(self):
        cubic = self.make()
        cust = cubic.initial_cust()
        out = cubic.on_event(
            IntrinsicInput(
                evt_type=EventType.TIMEOUT,
                psn=-1,
                cwnd_or_rate=30.0,
                una=0,
                nxt=0,
                flags=Flags(),
                prb_rtt=-1,
                tstamp=2000,
            ),
            cust,
            None,
        )
        assert cust.w_max == 30.0
        assert cust.epoch_start == 2000
        assert out.cwnd_or_rate == 1.0

    def test_param_validation(self):
        with pytest.raises(ValueError):
            Cubic(c=0)
        with pytest.raises(ValueError):
            Cubic(beta=1.5)


class TestTimely:
    def make(self):
        alg = Timely(
            t_low_ps=10 * MICROSECOND,
            t_high_ps=100 * MICROSECOND,
            min_rtt_ps=6 * MICROSECOND,
            delta_bps=1 * GBPS,
        )
        alg.initial_cwnd_or_rate(RATE_100G)
        return alg

    def rtt_event(self, rtt_ps, rate):
        return IntrinsicInput(
            evt_type=EventType.RX,
            psn=1,
            cwnd_or_rate=rate,
            una=1,
            nxt=5,
            flags=Flags(ack=True),
            prb_rtt=rtt_ps,
            tstamp=0,
        )

    def test_rate_mode(self):
        assert self.make().mode is CCMode.RATE

    def test_low_rtt_additive_increase(self):
        timely = self.make()
        cust = timely.initial_cust()
        out = timely.on_event(self.rtt_event(5 * MICROSECOND, 10e9), cust, None)
        assert out.cwnd_or_rate == pytest.approx(11e9)

    def test_high_rtt_multiplicative_decrease(self):
        timely = self.make()
        cust = timely.initial_cust()
        out = timely.on_event(self.rtt_event(200 * MICROSECOND, 50e9), cust, None)
        expected = 50e9 * (1 - timely.beta * (1 - 0.5))
        assert out.cwnd_or_rate == pytest.approx(expected)

    def test_negative_gradient_increases(self):
        timely = self.make()
        cust = timely.initial_cust()
        timely.on_event(self.rtt_event(50 * MICROSECOND, 10e9), cust, None)
        out = timely.on_event(self.rtt_event(40 * MICROSECOND, 10e9), cust, None)
        assert out.cwnd_or_rate > 10e9

    def test_positive_gradient_decreases(self):
        timely = self.make()
        cust = timely.initial_cust()
        timely.on_event(self.rtt_event(30 * MICROSECOND, 50e9), cust, None)
        out = timely.on_event(self.rtt_event(60 * MICROSECOND, 50e9), cust, None)
        assert out.cwnd_or_rate < 50e9

    def test_hai_mode_after_streak(self):
        timely = self.make()
        cust = timely.initial_cust()
        rate = 10e9
        rtt = 90 * MICROSECOND
        gains = []
        for _ in range(8):
            rtt -= MICROSECOND  # steadily improving
            out = timely.on_event(self.rtt_event(rtt, rate), cust, None)
            gains.append(out.cwnd_or_rate - rate)
            rate = out.cwnd_or_rate
        assert gains[-1] == pytest.approx(5 * timely.delta_bps)

    def test_rate_bounds(self):
        timely = self.make()
        cust = timely.initial_cust()
        out = timely.on_event(self.rtt_event(5 * MICROSECOND, 99.9e9), cust, None)
        assert out.cwnd_or_rate <= RATE_100G

    def test_nack_rewinds(self):
        timely = self.make()
        cust = timely.initial_cust()
        out = timely.on_event(
            IntrinsicInput(
                evt_type=EventType.RX,
                psn=3,
                cwnd_or_rate=10e9,
                una=3,
                nxt=9,
                flags=Flags(nack=True),
                prb_rtt=-1,
                tstamp=0,
            ),
            cust,
            None,
        )
        assert out.rewind_to_una

    def test_t_low_below_t_high(self):
        with pytest.raises(ValueError):
            Timely(t_low_ps=100, t_high_ps=100)
