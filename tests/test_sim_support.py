"""RNG streams and the trace recorder."""

from repro.sim import RngStreams, TraceRecorder


class TestRngStreams:
    def test_same_seed_same_draws(self):
        a = RngStreams(seed=7).stream("workload")
        b = RngStreams(seed=7).stream("workload")
        assert a.random(5).tolist() == b.random(5).tolist()

    def test_different_names_independent(self):
        streams = RngStreams(seed=7)
        a = streams.stream("a").random(5)
        b = streams.stream("b").random(5)
        assert a.tolist() != b.tolist()

    def test_different_seeds_differ(self):
        a = RngStreams(seed=1).stream("x").random(5)
        b = RngStreams(seed=2).stream("x").random(5)
        assert a.tolist() != b.tolist()

    def test_stream_is_cached(self):
        streams = RngStreams()
        assert streams.stream("x") is streams.stream("x")

    def test_new_stream_does_not_perturb_existing(self):
        streams_a = RngStreams(seed=3)
        gen = streams_a.stream("main")
        first = gen.random(3).tolist()

        streams_b = RngStreams(seed=3)
        streams_b.stream("other")  # created before "main" this time
        assert streams_b.stream("main").random(3).tolist() == first


class TestTraceRecorder:
    def test_log_and_read_series(self):
        trace = TraceRecorder()
        trace.log(10, "cwnd", value=1.0)
        trace.log(20, "cwnd", value=2.0)
        times, values = trace.series("cwnd", "value")
        assert times == [10, 20]
        assert values == [1.0, 2.0]

    def test_channels_sorted(self):
        trace = TraceRecorder()
        trace.log(0, "b")
        trace.log(0, "a")
        assert trace.channels() == ["a", "b"]

    def test_missing_channel_is_empty(self):
        trace = TraceRecorder()
        assert trace.channel("nope") == []
        assert trace.series("nope", "x") == ([], [])

    def test_record_getitem(self):
        trace = TraceRecorder()
        trace.log(5, "c", alpha=0.5)
        record = trace.channel("c")[0]
        assert record["alpha"] == 0.5
        assert record.time_ps == 5

    def test_len_and_iter(self):
        trace = TraceRecorder()
        trace.log(1, "a", v=1)
        trace.log(2, "b", v=2)
        trace.log(3, "a", v=3)
        assert len(trace) == 3
        assert [r.time_ps for r in trace] == [1, 3, 2]  # grouped by channel

    def test_series_skips_records_without_key(self):
        trace = TraceRecorder()
        trace.log(1, "c", x=1)
        trace.log(2, "c", y=2)
        times, values = trace.series("c", "x")
        assert times == [1]
        assert values == [1]

    def test_records_compat_view(self):
        trace = TraceRecorder()
        trace.log(1, "a", v=1)
        trace.log(2, "b", v=2)
        records = trace.records
        assert sorted(records) == ["a", "b"]
        assert records["a"][0]["v"] == 1
        assert records["b"][0].channel == "b"


class TestTraceGates:
    def test_master_gate_drops_everything(self):
        trace = TraceRecorder()
        trace.log(1, "c", v=1)
        trace.enabled = False
        trace.log(2, "c", v=2)
        trace.log(3, "new", v=3)
        trace.enabled = True
        trace.log(4, "c", v=4)
        assert trace.series("c", "v") == ([1, 4], [1, 4])
        assert trace.channel("new") == []

    def test_channel_gate_drops_only_that_channel(self):
        trace = TraceRecorder()
        trace.set_channel_enabled("noisy", False)
        trace.log(1, "noisy", v=1)
        trace.log(1, "kept", v=1)
        assert not trace.channel_enabled("noisy")
        assert trace.channel_enabled("kept")
        assert len(trace) == 1
        assert trace.series("kept", "v") == ([1], [1])

    def test_disabling_keeps_already_logged_data(self):
        trace = TraceRecorder()
        trace.log(1, "c", v=1)
        trace.set_channel_enabled("c", False)
        trace.log(2, "c", v=2)  # dropped
        assert trace.series("c", "v") == ([1], [1])
        assert "c" in trace.channels()
        trace.set_channel_enabled("c", True)
        trace.log(3, "c", v=3)
        assert trace.series("c", "v") == ([1, 3], [1, 3])

    def test_reenabling_never_logged_channel_is_noop(self):
        trace = TraceRecorder()
        trace.set_channel_enabled("ghost", False)
        trace.set_channel_enabled("ghost", True)
        trace.log(5, "ghost", v=5)
        assert trace.series("ghost", "v") == ([5], [5])
