"""System-level property tests: determinism, conservation, and
randomized robustness (hypothesis-driven where a strategy fits)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ControlPlane, TestConfig
from repro.pswitch.module_a import ReceiverLogic, ReceiverMode
from repro.pswitch.packets import make_data
from repro.units import MS, US


def deploy(**cfg):
    cp = ControlPlane()
    tester = cp.deploy(TestConfig(**cfg))
    cp.wire_loopback_fabric()
    return cp, tester


class TestDeterminism:
    @pytest.mark.parametrize("alg", ["dctcp", "dcqcn"])
    def test_counters_identical_across_runs(self, alg):
        def fingerprint():
            cp, tester = deploy(cc_algorithm=alg, n_test_ports=4, flows_per_port=2)
            cp.start_flows(size_packets=800, pattern="fan_in")
            cp.run(duration_ps=3 * MS)
            counters = tuple(sorted(cp.read_measurements().items()))
            fcts = tuple(r.fct_ps for r in tester.fct.records)
            return counters, fcts, cp.sim.events_executed

        assert fingerprint() == fingerprint()

    def test_seeded_workload_identical(self):
        from repro.workload import ClosedLoopGenerator, FlowSlot, websearch

        def fcts():
            cp, tester = deploy(cc_algorithm="dcqcn", n_test_ports=2)
            generator = ClosedLoopGenerator(
                tester,
                websearch(),
                [FlowSlot(0, 1)],
                rng=np.random.default_rng(123),
                stop_after_flows=8,
            )
            generator.start()
            cp.run(duration_ps=100 * MS)
            return [record.fct_ps for record in tester.fct.records]

        assert fcts() == fcts()


class TestConservation:
    def test_packet_conservation_lossless(self):
        """Without network loss: every SCHE becomes a DATA, every DATA an
        ACK, every ACK an INFO, and all INFOs reach the FPGA."""
        cp, tester = deploy(cc_algorithm="dctcp", n_test_ports=2)
        cp.start_flows(size_packets=1500, pattern="pairs")
        cp.run(duration_ps=5 * MS)
        counters = cp.read_measurements()
        assert counters["switch.sche_accepted"] == counters["switch.data_generated"]
        assert counters["switch.data_generated"] == counters["switch.acks_generated"]
        assert counters["switch.acks_generated"] == counters["switch.infos_generated"]
        assert (
            counters["fpga.infos_processed"] + counters["fpga.infos_unknown_flow"]
            == counters["switch.infos_generated"]
        )

    def test_flow_accounting(self):
        """una <= nxt <= size for every flow at all observation points."""
        cp, tester = deploy(cc_algorithm="dctcp", n_test_ports=2, flows_per_port=3)
        cp.start_flows(size_packets=2000, pattern="pairs")
        for _ in range(20):
            cp.run(duration_ps=200 * US)
            for flow in tester.nic.flows.values():
                assert 0 <= flow.una <= flow.size_packets
                assert flow.una <= flow.nxt <= flow.size_packets

    def test_fct_bounded_below_by_serialization(self):
        """No flow can finish faster than its serialization time."""
        cp, tester = deploy(cc_algorithm="dcqcn", n_test_ports=2)
        cp.start_flows(size_packets=1000, pattern="pairs")
        cp.run(duration_ps=3 * MS)
        from repro.units import serialization_time_ps, RATE_100G

        min_fct = 1000 * serialization_time_ps(1024, RATE_100G)
        assert tester.fct.records[0].fct_ps >= min_fct


class TestRandomLossRobustness:
    @pytest.mark.parametrize("loss_pct,alg", [(1, "dctcp"), (1, "dcqcn"), (5, "dctcp")])
    def test_flows_complete_under_random_loss(self, loss_pct, alg):
        """Seeded random loss: CC recovers and all flows complete."""
        params = (
            {"rto_ps": 150 * US, "initial_ssthresh": 256.0}
            if alg == "dctcp"
            else {}
        )
        cp, tester = deploy(cc_algorithm=alg, n_test_ports=2, cc_params=params)
        rng = np.random.default_rng(42)

        def lossy(packet, port):
            if packet.ptype == "DATA" and rng.random() < loss_pct / 100.0:
                return False
            return True

        assert cp.fabric is not None
        cp.fabric.packet_filter = lossy
        cp.start_flows(size_packets=1000, pattern="pairs")
        cp.run(duration_ps=60 * MS)
        assert len(tester.fct) == 1

    def test_ack_loss_recovered_by_cumulative_acks(self):
        cp, tester = deploy(
            cc_algorithm="dctcp",
            n_test_ports=2,
            cc_params={"rto_ps": 150 * US, "initial_ssthresh": 256.0},
        )
        rng = np.random.default_rng(7)

        def lossy(packet, port):
            if packet.ptype == "ACK" and rng.random() < 0.05:
                return False
            return True

        cp.fabric.packet_filter = lossy
        cp.start_flows(size_packets=1000, pattern="pairs")
        cp.run(duration_ps=30 * MS)
        assert len(tester.fct) == 1


class TestReceiverProperties:
    @given(
        psns=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=80),
    )
    @settings(max_examples=60, deadline=None)
    def test_tcp_receiver_cumulative_ack_invariants(self, psns):
        """For any arrival order: the cumulative ACK never decreases, and
        it equals 1 + the largest contiguously delivered prefix."""
        receiver = ReceiverLogic(ReceiverMode.TCP, ooo_capacity=128)
        delivered = set()
        last_ack = 0
        for psn in psns:
            data = make_data(1, psn, src_addr=1, dst_addr=2, frame_bytes=1024,
                             tx_tstamp_ps=0)
            ack = receiver.on_data(data, 0)[0]
            delivered.add(psn)
            expected = 0
            while expected in delivered:
                expected += 1
            assert ack.psn == expected
            assert ack.psn >= last_ack
            last_ack = ack.psn

    @given(
        psns=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=80),
    )
    @settings(max_examples=60, deadline=None)
    def test_roce_receiver_go_back_n_invariants(self, psns):
        """RoCE mode: expected PSN only advances on in-order arrivals and
        never decreases; every OOO packet is dropped."""
        receiver = ReceiverLogic(ReceiverMode.ROCE)
        expected = 0
        for psn in psns:
            data = make_data(1, psn, src_addr=1, dst_addr=2, frame_bytes=1024,
                             tx_tstamp_ps=0)
            receiver.on_data(data, 0)
            if psn == expected:
                expected += 1
            state = receiver.flow_state(1)
            assert state.expected_psn == expected


class TestStrictModes:
    def test_strict_tester_runs_clean(self):
        """strict=True raises on any internal loss/conflict; a correctly
        frequency-controlled run must therefore complete silently."""
        cp, tester = deploy(cc_algorithm="dctcp", n_test_ports=2, strict=True)
        cp.start_flows(size_packets=1500, pattern="pairs")
        cp.run(duration_ps=4 * MS)  # would raise on violation
        assert len(tester.fct) == 1


class TestHeapOrderProperty:
    """Hypothesis: interleaved schedule/cancel/re-arm sequences (with
    compaction firing whenever enough entries die) preserve the
    (time, seq) execution order the naive always-push reference heap
    defines, and never lose or duplicate a live event."""

    OPS = st.lists(
        st.tuples(
            st.sampled_from(["schedule", "handle", "cancel", "rearm"]),
            st.integers(min_value=0, max_value=1000),  # time_ps
            st.integers(min_value=0, max_value=10_000),  # handle selector
        ),
        max_size=300,
    )

    @staticmethod
    def _build(ops):
        from repro.sim import Simulator

        sim = Simulator()
        fired = []

        def record(eid):
            fired.append((eid, sim.now))

        handles = {}
        fast_entries = []  # (time_ps, op index) in schedule order
        expected = {}  # event id -> fire time, or None once cancelled
        for index, (op, time_ps, selector) in enumerate(ops):
            if op == "schedule":
                eid = ("fast", index)
                sim.at(time_ps, record, eid)
                fast_entries.append((time_ps, index))
                expected[eid] = time_ps
            elif op == "handle":
                eid = ("handle", index)
                handles[index] = sim.schedule_handle(time_ps, record, eid)
                expected[eid] = time_ps
            elif handles:
                key = sorted(handles)[selector % len(handles)]
                if op == "cancel":
                    handles[key].cancel()
                    expected[("handle", key)] = None
                else:  # rearm revives cancelled handles too
                    handles[key].rearm(time_ps)
                    expected[("handle", key)] = time_ps
        return sim, fired, fast_entries, expected

    @settings(max_examples=60, deadline=None)
    @given(ops=OPS)
    def test_engine_matches_reference(self, ops):
        sim, fired, fast_entries, expected = self._build(ops)
        live_before_run = {e: t for e, t in expected.items() if t is not None}
        assert sim.live_events == len(live_before_run)
        sim.run()

        # Exactly the non-cancelled events fire, each once, at its final
        # scheduled (or last re-armed) time.
        assert dict(fired) == live_before_run
        assert len(fired) == len(live_before_run)
        # Global time order is preserved.
        times = [t for _, t in fired]
        assert times == sorted(times)
        # Fast-path entries are never re-pushed, so their relative order
        # must equal the naive reference heap's (time, seq) sort exactly.
        reference = [
            ("fast", index)
            for time_ps, index in sorted(fast_entries, key=lambda e: (e[0], e[1]))
        ]
        assert [e for e, _ in fired if e[0] == "fast"] == reference
        # Compaction and lazy deletion leave nothing behind.
        assert sim.pending_events == 0
        assert sim.dead_entries == 0

    @settings(max_examples=30, deadline=None)
    @given(ops=OPS)
    def test_same_ops_same_execution(self, ops):
        sim1, fired1, _, _ = self._build(ops)
        sim1.run()
        sim2, fired2, _, _ = self._build(ops)
        sim2.run()
        assert fired1 == fired2

    @settings(max_examples=20, deadline=None)
    @given(
        times=st.lists(
            st.integers(min_value=0, max_value=50), min_size=80, max_size=200
        ),
        keep_every=st.integers(min_value=3, max_value=7),
    )
    def test_mass_cancellation_compacts_and_keeps_survivors(self, times, keep_every):
        """Cancel most of a dense heap (forcing compaction) and check the
        survivors still fire in (time, seq) order."""
        from repro.sim import Simulator

        sim = Simulator()
        fired = []

        def record(eid):
            fired.append(eid)

        handles = [
            (i, t, sim.schedule_handle(t, record, (t, i)))
            for i, t in enumerate(times)
        ]
        survivors = []
        for i, t, handle in handles:
            if i % keep_every:
                handle.cancel()
            else:
                survivors.append((t, i))
        sim.run()
        assert fired == sorted(survivors)
        assert sim.pending_events == 0
        assert sim.dead_entries == 0
