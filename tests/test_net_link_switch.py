"""Links, ports, devices, the network switch, and topology builders."""

import pytest

from repro.errors import ConfigError
from repro.net import (
    Host,
    Link,
    NetworkSwitch,
    Packet,
    Topology,
    dumbbell,
    fan_in,
    n_cast_1,
    one_to_one,
    passthrough,
)
from repro.net.device import Device, Port
from repro.sim import Simulator
from repro.units import GBPS, MICROSECOND, RATE_100G, serialization_time_ps


class Sink(Device):
    """Collects everything it receives."""

    def __init__(self, sim, name=None):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, port):
        self.received.append((self.sim.now, packet))


def wire_pair(sim, rate=RATE_100G, delay=1000):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    pa = a.add_port(rate_bps=rate)
    pb = b.add_port(rate_bps=rate)
    Link(pa, pb, delay_ps=delay)
    return a, b, pa, pb


class TestLink:
    def test_delivery_timing(self):
        sim = Simulator()
        a, b, pa, pb = wire_pair(sim, delay=1000)
        packet = Packet("DATA", 1, 2, 64)
        pa.send(packet)
        sim.run()
        t, received = b.received[0]
        # serialization (6720 ps at 100G for 64 B) + 1000 ps propagation.
        assert t == serialization_time_ps(64, RATE_100G) + 1000
        assert received is packet

    def test_back_to_back_serialization(self):
        sim = Simulator()
        a, b, pa, pb = wire_pair(sim, delay=0)
        for _ in range(3):
            pa.send(Packet("DATA", 1, 2, 64))
        sim.run()
        times = [t for t, _ in b.received]
        step = serialization_time_ps(64, RATE_100G)
        assert times == [step, 2 * step, 3 * step]

    def test_full_duplex(self):
        sim = Simulator()
        a, b, pa, pb = wire_pair(sim)
        pa.send(Packet("DATA", 1, 2, 64))
        pb.send(Packet("DATA", 2, 1, 64))
        sim.run()
        assert len(a.received) == 1
        assert len(b.received) == 1

    def test_port_single_link(self):
        sim = Simulator()
        a, b, pa, pb = wire_pair(sim)
        c = Sink(sim, "c")
        pc = c.add_port()
        with pytest.raises(ConfigError):
            Link(pa, pc)

    def test_send_unconnected_port_fails(self):
        sim = Simulator()
        d = Sink(sim)
        p = d.add_port()
        with pytest.raises(ConfigError):
            p.send(Packet("DATA", 1, 2, 64))

    def test_negative_delay_rejected(self):
        sim = Simulator()
        a = Sink(sim)
        b = Sink(sim)
        with pytest.raises(ConfigError):
            Link(a.add_port(), b.add_port(), delay_ps=-1)

    def test_rate_limits_throughput(self):
        sim = Simulator()
        a, b, pa, pb = wire_pair(sim, rate=10 * GBPS, delay=0)
        n = 100
        for _ in range(n):
            pa.send(Packet("DATA", 1, 2, 1024))
        sim.run()
        elapsed = sim.now
        bits = n * (1024 + 20) * 8
        assert bits / (elapsed / 1e12) == pytest.approx(10e9, rel=0.01)

    def test_port_counters(self):
        sim = Simulator()
        a, b, pa, pb = wire_pair(sim)
        pa.send(Packet("DATA", 1, 2, 500))
        sim.run()
        assert pa.tx_packets == 1 and pa.tx_bytes == 500
        assert pb.rx_packets == 1 and pb.rx_bytes == 500


class TestNetworkSwitch:
    def build(self):
        sim = Simulator()
        switch = NetworkSwitch(sim, "sw")
        left = Sink(sim, "left")
        right = Sink(sim, "right")
        lp = left.add_port()
        rp = right.add_port()
        sp0 = switch.add_ecn_port()
        sp1 = switch.add_ecn_port()
        Link(lp, sp0, delay_ps=0)
        Link(rp, sp1, delay_ps=0)
        switch.set_route(2, sp1)
        return sim, switch, left, right, lp

    def test_forwards_by_destination(self):
        sim, switch, left, right, lp = self.build()
        lp.send(Packet("DATA", 1, 2, 64))
        sim.run()
        assert len(right.received) == 1
        assert switch.forwarded_packets == 1

    def test_drops_unrouted(self):
        sim, switch, left, right, lp = self.build()
        lp.send(Packet("DATA", 1, 99, 64))
        sim.run()
        assert right.received == []
        assert switch.dropped_no_route == 1

    def test_packet_filter_can_drop(self):
        sim, switch, left, right, lp = self.build()
        switch.packet_filter = lambda packet, port: packet.psn != 1
        for psn in range(3):
            lp.send(Packet("DATA", 1, 2, 64, psn=psn))
        sim.run()
        assert sorted(p.psn for _, p in right.received) == [0, 2]

    def test_route_must_belong_to_switch(self):
        sim = Simulator()
        switch = NetworkSwitch(sim)
        other = Sink(sim)
        port = other.add_port()
        with pytest.raises(ConfigError):
            switch.set_route(1, port)

    def test_route_for(self):
        sim = Simulator()
        switch = NetworkSwitch(sim)
        p = switch.add_ecn_port()
        switch.set_route(5, p)
        assert switch.route_for(5) is p
        assert switch.route_for(6) is None


class TestTopologyBuilders:
    def test_topology_duplicate_names_rejected(self):
        sim = Simulator()
        topo = Topology(sim)
        topo.add_device(Sink(sim, "x"))
        with pytest.raises(ConfigError):
            topo.add_device(Sink(sim, "x"))

    def test_address_allocation_monotonic(self):
        topo = Topology(Simulator())
        assert topo.allocate_address() == 1
        assert topo.allocate_address() == 2

    def test_passthrough_port_count(self):
        sim = Simulator()
        topo, switch = passthrough(sim, 3)
        assert len(switch.ports) == 6

    def test_one_to_one_routes(self):
        sim = Simulator()
        topo, switch = passthrough(sim, 2)
        senders = [Sink(sim, f"s{i}") for i in range(2)]
        receivers = [Sink(sim, f"r{i}") for i in range(2)]
        sp = [d.add_port() for d in senders]
        rp = [d.add_port() for d in receivers]
        one_to_one(topo, switch, sp, rp, [1, 2], [11, 12])
        sp[0].send(Packet("DATA", 1, 11, 64))
        sp[1].send(Packet("DATA", 2, 12, 64))
        sim.run()
        assert len(receivers[0].received) == 1
        assert len(receivers[1].received) == 1

    def test_one_to_one_length_mismatch(self):
        sim = Simulator()
        topo, switch = passthrough(sim, 2)
        with pytest.raises(ConfigError):
            one_to_one(topo, switch, [], [], [1], [2])

    def test_fan_in_congests_single_port(self):
        sim = Simulator()
        topo, switch = passthrough(sim, 2)
        senders = [Sink(sim, f"s{i}") for i in range(3)]
        receiver = Sink(sim, "r")
        sp = [d.add_port() for d in senders]
        fan_in(topo, switch, sp, receiver.add_port(), [1, 2, 3], 9)
        for i, port in enumerate(sp):
            port.send(Packet("DATA", i + 1, 9, 64))
        sim.run()
        assert len(receiver.received) == 3

    def test_n_cast_1_shape(self):
        sim = Simulator()
        topo, senders, receiver, sw_a, sw_b = n_cast_1(sim, 3)
        assert len(senders) == 3
        assert receiver.address not in [h.address for h in senders]
        # The A-side trunk must route the receiver's address.
        assert sw_a.route_for(receiver.address) is not None

    def test_dumbbell_cross_routes(self):
        sim = Simulator()
        topo, left, right, sw_a, sw_b = dumbbell(sim, 2, 2)
        for host in right:
            assert sw_a.route_for(host.address) is not None
        for host in left:
            assert sw_b.route_for(host.address) is not None

    def test_n_cast_1_end_to_end_delivery(self):
        sim = Simulator()
        topo, senders, receiver, _, _ = n_cast_1(sim, 2, delay_ps=100)
        got = []

        class Agent:
            def on_receive(self, packet):
                got.append(packet)

        receiver.attach(Agent())
        senders[0].send(Packet("DATA", senders[0].address, receiver.address, 200))
        sim.run()
        assert len(got) == 1


class TestHost:
    def test_agent_receives(self):
        sim = Simulator()
        a = Host(sim, 1)
        b = Host(sim, 2)
        Link(a.port, b.port, delay_ps=0)
        got = []

        class Agent:
            def on_receive(self, packet):
                got.append(packet)

        b.attach(Agent())
        a.send(Packet("DATA", 1, 2, 64))
        sim.run()
        assert len(got) == 1

    def test_no_agent_is_silent(self):
        sim = Simulator()
        a = Host(sim, 1)
        b = Host(sim, 2)
        Link(a.port, b.port)
        a.send(Packet("DATA", 1, 2, 64))
        sim.run()  # should not raise
