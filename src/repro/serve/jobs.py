"""The daemon's job queue: one warm pool, many queued campaigns.

Execution model: a single dispatcher thread drains a FIFO of validated
:class:`~repro.serve.spec.CampaignSpec` jobs onto ONE persistent
:class:`~repro.parallel.CampaignRunner` — the runner's process pool is
the parallelism; serializing campaigns onto it keeps worker memory
bounded and campaign results deterministic.  The pool is started warm
(:meth:`CampaignRunner.start`) before the first job, which is the whole
point of the daemon: pool construction is paid once per process
lifetime instead of once per ``repro sweep`` invocation.

Dedup happens at submit time, twice:

* **result cache** — a spec whose canonical config hash has a stored
  result completes instantly (``cached=True``, no workers touched);
* **in-flight coalescing** — a spec identical to a queued/running job
  attaches to that job instead of queuing a duplicate run.

All job state transitions go through one :class:`threading.Condition`,
so HTTP long-polls and SSE streams can wait on "something changed about
job N" without busy-looping.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import ReproError
from repro.obs.heartbeat import Heartbeat
from repro.serve.cache import ResultCache
from repro.serve.spec import CampaignSpec

#: Job lifecycle states, in order.
STATES = ("queued", "running", "done", "failed")


def _beat_row(beat: Heartbeat) -> dict[str, Any]:
    """One heartbeat as the JSON-safe row the API streams (the same
    vocabulary as the campaign journal, plus derived progress)."""
    return {
        "task_id": beat.task_id,
        "pid": beat.pid,
        "recv_unix": time.time(),
        "sim_now_ps": beat.sim_now_ps,
        "sim_until_ps": beat.sim_until_ps,
        "events_executed": beat.events_executed,
        "wall_s": beat.wall_s,
        "progress": beat.progress,
        "final": beat.final,
    }


@dataclass
class Job:
    """One submitted campaign and everything observable about it."""

    id: str
    spec: CampaignSpec
    config_hash: str
    state: str = "queued"
    cached: bool = False
    submitted_unix: float = field(default_factory=time.time)
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    result: Optional[dict[str, Any]] = None
    error: Optional[str] = None
    #: Heartbeat rows in arrival order; the SSE stream's backing log.
    beats: list[dict[str, Any]] = field(default_factory=list)
    #: Task ids that have reported a final heartbeat.
    _tasks_done: set[int] = field(default_factory=set)

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    def progress(self) -> float:
        """Fraction of the campaign's tasks completed, refined by the
        live progress of the in-flight ones (heartbeat-derived)."""
        if self.finished:
            return 1.0
        if self.state == "queued" or self.spec.n_tasks == 0:
            return 0.0
        live: dict[int, float] = {}
        for row in self.beats:
            live[row["task_id"]] = row["progress"]
        done = len(self._tasks_done)
        inflight = sum(
            fraction for task, fraction in live.items()
            if task not in self._tasks_done
        )
        return min((done + inflight) / self.spec.n_tasks, 1.0)

    def summary(self) -> dict[str, Any]:
        """The API's job-status document (sans result payload)."""
        return {
            "job_id": self.id,
            "kind": self.spec.kind,
            "description": self.spec.describe(),
            "config_hash": self.config_hash,
            "state": self.state,
            "cached": self.cached,
            "progress": self.progress(),
            "tasks": self.spec.n_tasks,
            "tasks_done": len(self._tasks_done),
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "error": self.error,
        }


class JobQueue:
    """FIFO of campaign jobs drained by one dispatcher thread."""

    def __init__(
        self,
        runner: Any,
        cache: ResultCache,
        *,
        max_queued: int = 64,
        on_event: Optional[Callable[[str, Job], None]] = None,
    ) -> None:
        self.runner = runner
        self.cache = cache
        self.max_queued = max_queued
        #: Optional observer for metrics: called with ("accepted" |
        #: "started" | "finished" | "cache_hit" | "coalesced", job).
        self.on_event = on_event
        self.jobs: dict[str, Job] = {}
        self._order: list[str] = []  # submission order, for listings
        self._pending: list[str] = []
        self._active_by_hash: dict[str, str] = {}
        self._cond = threading.Condition()
        self._counter = 0
        self._closed = False
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "JobQueue":
        """Warm the pool and start dispatching."""
        self.runner.start()
        self._thread.start()
        return self

    def close(self, *, timeout_s: float = 10.0) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=timeout_s)
        self.runner.close()

    # -- submission ------------------------------------------------------------

    def submit(self, spec: CampaignSpec) -> Job:
        """Queue one campaign (or satisfy it from cache / coalesce it
        onto an identical in-flight job).  Raises :class:`ReproError`
        when the queue is full."""
        key = spec.config_hash
        with self._cond:
            if self._closed:
                raise ReproError("job queue is shutting down")
            # Identical spec already queued or running: share that job.
            active_id = self._active_by_hash.get(key)
            if active_id is not None:
                job = self.jobs[active_id]
                self._notify("coalesced", job)
                return job
            entry = self.cache.get(key)
            self._counter += 1
            job = Job(id=f"job-{self._counter:06d}", spec=spec, config_hash=key)
            self.jobs[job.id] = job
            self._order.append(job.id)
            if entry is not None:
                job.cached = True
                job.state = "done"
                job.started_unix = job.finished_unix = time.time()
                job.result = entry["result"]
                self._notify("cache_hit", job)
                self._cond.notify_all()
                return job
            if len(self._pending) >= self.max_queued:
                # Roll the bookkeeping back; the request was rejected.
                del self.jobs[job.id]
                self._order.pop()
                raise ReproError(
                    f"job queue is full ({self.max_queued} campaign(s) queued)"
                )
            self._pending.append(job.id)
            self._active_by_hash[key] = job.id
            self._notify("accepted", job)
            self._cond.notify_all()
            return job

    # -- observation -----------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._cond:
            return self.jobs.get(job_id)

    def list_jobs(self) -> list[dict[str, Any]]:
        with self._cond:
            return [self.jobs[job_id].summary() for job_id in self._order]

    def queue_depth(self) -> int:
        with self._cond:
            return len(self._pending)

    def running_count(self) -> int:
        with self._cond:
            return sum(1 for job in self.jobs.values() if job.state == "running")

    def wait(
        self,
        job_id: str,
        *,
        beat_cursor: int = 0,
        timeout_s: float = 30.0,
    ) -> tuple[Optional[Job], int]:
        """Block until job ``job_id`` changes past ``beat_cursor`` (new
        heartbeats) or finishes, or the timeout lapses.  Returns the job
        and the new cursor — the long-poll/SSE primitive."""
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while True:
                job = self.jobs.get(job_id)
                if job is None:
                    return None, beat_cursor
                if job.finished or len(job.beats) > beat_cursor:
                    return job, len(job.beats)
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    return job, beat_cursor
                self._cond.wait(timeout=min(remaining, 1.0))

    # -- dispatch --------------------------------------------------------------

    def _notify(self, event: str, job: Job) -> None:
        if self.on_event is not None:
            try:
                self.on_event(event, job)
            except Exception:  # pragma: no cover - observer must not kill us
                pass

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait(timeout=1.0)
                if self._closed:
                    return
                job = self.jobs[self._pending.pop(0)]
                job.state = "running"
                job.started_unix = time.time()
                self._notify("started", job)
                self._cond.notify_all()
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        def on_heartbeat(beat: Heartbeat) -> None:
            row = _beat_row(beat)
            with self._cond:
                job.beats.append(row)
                if beat.final and beat.task_id >= 0:
                    job._tasks_done.add(beat.task_id)
                self._cond.notify_all()

        try:
            result = job.spec.run(self.runner, on_heartbeat=on_heartbeat)
        except Exception as exc:
            message = "".join(
                traceback.format_exception_only(exc)
            ).strip()
            with self._cond:
                job.state = "failed"
                job.error = message
                job.finished_unix = time.time()
                self._active_by_hash.pop(job.config_hash, None)
                self._notify("finished", job)
                self._cond.notify_all()
            return
        # Cache outside the lock (disk write), then publish.
        self.cache.put(
            job.config_hash,
            job.spec.config,
            result,
            seed=job.spec.config.get("seed"),
        )
        with self._cond:
            job.state = "done"
            job.result = result
            job.finished_unix = time.time()
            self._active_by_hash.pop(job.config_hash, None)
            self._notify("finished", job)
            self._cond.notify_all()
