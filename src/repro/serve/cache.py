"""The config-hash result cache behind ``repro serve``.

A results-directory store (one JSON document per campaign point, the
sdn-loadbalance MetricsCollector layout): entry ``<hash>`` lives at
``<cache_dir>/<hash[:2]>/<hash>.json`` and holds the campaign's result
payload wrapped in a run manifest, so a cache hit returns exactly what
the original run returned — provenance included.  Writes are atomic
(temp file + ``os.replace``) so a crashed daemon never leaves a torn
entry, and reads treat unparseable files as misses (the entry is simply
recomputed).

Keys come from :func:`repro.obs.manifest.config_hash` version 2 — the
strict canonicalizer — which is what makes "same campaign, any client,
any key order" dedup sound.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Optional, Union

from repro.obs.manifest import CONFIG_HASH_VERSION, build_manifest

#: Cache entry schema version; bump on incompatible payload changes so a
#: newer daemon never serves an older daemon's entries as fresh.
ENTRY_SCHEMA = 1


class ResultCache:
    """Directory-backed result store keyed by canonical config hash.

    Unbounded by default (the historical behaviour).  ``max_entries``
    caps the entry count: after each write the least-recently-used
    entries — by file mtime, which :meth:`get` refreshes on every hit —
    are pruned until the cap holds.  ``ttl_s`` expires entries by age:
    a hit on an entry stored longer ago than the TTL deletes it and
    reports a miss, so the campaign is recomputed fresh.  Every removal
    either way increments :attr:`evictions`.
    """

    def __init__(
        self,
        cache_dir: Union[str, Path],
        *,
        max_entries: Optional[int] = None,
        ttl_s: Optional[float] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s}")
        self.cache_dir = Path(cache_dir)
        self.max_entries = max_entries
        self.ttl_s = ttl_s
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.json"

    def _evict(self, path: Path) -> None:
        """Remove one entry file, tolerating concurrent removal."""
        try:
            path.unlink()
        except OSError:
            return
        with self._lock:
            self.evictions += 1

    def get(self, key: str) -> Optional[dict[str, Any]]:
        """The cached entry for ``key``, or ``None``.  Counts hit/miss."""
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            with self._lock:
                self.misses += 1
            return None
        if entry.get("schema") != ENTRY_SCHEMA or entry.get("config_hash") != key:
            with self._lock:
                self.misses += 1
            return None
        if self.ttl_s is not None:
            stored = entry.get("stored_unix")
            if not isinstance(stored, (int, float)) or (
                time.time() - stored > self.ttl_s
            ):
                self._evict(path)
                with self._lock:
                    self.misses += 1
                return None
        # LRU touch: pruning orders by mtime, so a hit must refresh it.
        # Explicit times — the default takes the kernel's coarse clock,
        # whose ~10 ms granularity ties back-to-back hits.
        now = time.time()
        try:
            os.utime(path, times=(now, now))
        except OSError:
            pass
        with self._lock:
            self.hits += 1
        return entry

    def _prune(self) -> None:
        """Drop least-recently-used entries until ``max_entries`` holds."""
        if self.max_entries is None:
            return
        entries = []
        for path in self.cache_dir.glob("*/*.json"):
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue  # concurrently removed
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        entries.sort()
        for _, path in entries[:excess]:
            self._evict(path)

    def put(
        self,
        key: str,
        config: dict[str, Any],
        result: dict[str, Any],
        *,
        seed: Optional[int] = None,
    ) -> Path:
        """Store ``result`` under ``key``, wrapped in a run manifest.

        Atomic: the entry appears complete or not at all.
        """
        manifest = build_manifest(config, seed=seed, extra={"result": result})
        entry = {
            "schema": ENTRY_SCHEMA,
            "config_hash": key,
            "config_hash_version": CONFIG_HASH_VERSION,
            "stored_unix": time.time(),
            "manifest": manifest,
            "result": result,
        }
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, indent=1, default=str)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._prune()
        return path

    def __len__(self) -> int:
        if not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self),
            }
