"""A small stdlib client for the ``repro serve`` API.

``repro submit`` is built on this; scripts can use it directly:

    from repro.serve import ServeClient

    client = ServeClient("127.0.0.1", 8723)
    job = client.submit({"kind": "sweep", "algorithm": "dcqcn",
                         "grid": [{"rate_ai_bps": 1e9}]})
    final = client.wait(job["job_id"], on_heartbeat=print)
    print(final["result"]["points"])

One :class:`http.client.HTTPConnection` per request (the server closes
connections after each response), so the client is trivially
thread-safe per instance-per-thread.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Optional

from repro.errors import ReproError


class ServeError(ReproError):
    """The daemon rejected a request (carries the HTTP status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Synchronous JSON client for one ``repro serve`` endpoint."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8723, *, timeout_s: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- plumbing --------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[dict[str, Any]] = None
    ) -> Any:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            if response.status != 200:
                try:
                    message = json.loads(raw).get("error", raw.decode("utf-8", "replace"))
                except (json.JSONDecodeError, AttributeError):
                    message = raw.decode("utf-8", "replace")
                raise ServeError(response.status, message)
            content_type = response.getheader("Content-Type", "")
            if content_type.startswith("application/json"):
                return json.loads(raw)
            return raw.decode("utf-8")
        finally:
            connection.close()

    # -- API -------------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The daemon's Prometheus text exposition."""
        return self._request("GET", "/metrics")

    def submit(self, spec: dict[str, Any]) -> dict[str, Any]:
        """Submit a campaign spec; returns the job document (with the
        full result inline when it was a cache hit)."""
        return self._request("POST", "/jobs", payload=spec)

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        *,
        timeout_s: Optional[float] = None,
        poll_timeout_s: float = 30.0,
        on_heartbeat: Optional[Callable[[dict[str, Any]], None]] = None,
    ) -> dict[str, Any]:
        """Long-poll until the job finishes; returns the final document.

        ``on_heartbeat`` receives each heartbeat row exactly once, in
        order — the ``repro submit --wait`` progress stream.  Raises
        :class:`ServeError` on timeout or if the job fails server-side
        (the failed document is attached for inspection).
        """
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        cursor = 0
        while True:
            step = poll_timeout_s
            if deadline is not None:
                step = min(step, max(deadline - time.monotonic(), 0.1))
            document = self._request(
                "GET",
                f"/jobs/{job_id}?wait=1&timeout_s={step:.1f}&cursor={cursor}",
            )
            if on_heartbeat is not None:
                for row in document.get("heartbeats", []):
                    on_heartbeat(row)
            cursor = document.get("cursor", cursor)
            if document["state"] in ("done", "failed"):
                if document["state"] == "failed":
                    error = ServeError(500, document.get("error") or "job failed")
                    error.document = document  # type: ignore[attr-defined]
                    raise error
                return document
            if deadline is not None and time.monotonic() >= deadline:
                raise ServeError(
                    408, f"job {job_id} still {document['state']} after {timeout_s} s"
                )
