"""Campaign-as-a-service: the ``repro serve`` daemon and its client.

The ROADMAP's architecture step toward many concurrent clients: a
long-running asyncio HTTP/JSON service that validates campaign specs
(:mod:`repro.serve.spec`), dedups them through a config-hash result
cache (:mod:`repro.serve.cache`), queues them onto one persistent warm
:class:`~repro.parallel.CampaignRunner` pool (:mod:`repro.serve.jobs` —
amortizing pool startup, the fix for the ``parallel_speedup < 1``
regime on small runners), and streams heartbeat progress over long-poll
or SSE (:mod:`repro.serve.app`).  :mod:`repro.serve.client` is the
stdlib client behind ``repro submit``.
"""

from repro.serve.app import ReproServer
from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import Job, JobQueue
from repro.serve.spec import CampaignSpec, parse_spec

__all__ = [
    "ReproServer",
    "ResultCache",
    "ServeClient",
    "ServeError",
    "Job",
    "JobQueue",
    "CampaignSpec",
    "parse_spec",
]
