"""Campaign specs: the JSON vocabulary ``repro serve`` accepts.

A *spec* is the wire-format description of one campaign — a CC
parameter sweep or a fluid FCT grid — with every knob spelled out.
Parsing normalizes it (defaults applied, types checked, unknown keys
rejected) into a frozen :class:`CampaignSpec`, whose canonical config
dict feeds :func:`repro.obs.manifest.config_hash`; two requests that
mean the same campaign therefore hash — and cache — identically,
regardless of key order or which defaults the client spelled out.

Spec kinds:

``sweep``
    ``{"kind": "sweep", "algorithm": "dcqcn", "grid": [{...}, ...],
    "n_senders": 3, "duration_ms": 6.0, "ecn_threshold_bytes": 84000,
    "seeds": null, "seed": 0, "sim_backend": "auto"}``

``fluid``
    ``{"kind": "fluid", "algorithms": ["dctcp"], "workload":
    "websearch", "flows_per_port_levels": [8], "flows_total": 50000,
    "n_ports": 12, "backend": "closed_form", "seed": 0}``

Everything except ``kind`` (and ``algorithm``/``algorithms``) is
optional and defaulted server-side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ConfigError
from repro.obs.manifest import config_hash
from repro.units import MS

#: Fluid profiles the serve layer can instantiate by name.
FLUID_PROFILES = ("dctcp", "dcqcn", "ideal")

_SWEEP_DEFAULTS: dict[str, Any] = {
    "grid": [{}],
    "n_senders": 3,
    "duration_ms": 6.0,
    "ecn_threshold_bytes": 84_000,
    "seeds": None,
    "seed": 0,
    # Run-loop backend per task.  Normalized into the hashed config:
    # spelling out "auto" and omitting the field cache identically, but
    # forcing "python"/"compiled" is a distinct (separately cached)
    # campaign even though backends are bit-identical — the stats block
    # in the cached payload records wall-clock facts of that backend.
    "sim_backend": "auto",
}

_FLUID_DEFAULTS: dict[str, Any] = {
    "workload": "websearch",
    "flows_per_port_levels": [8],
    "flows_total": 50_000,
    "n_ports": 12,
    "backend": "closed_form",
    "seed": 0,
}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _as_int(value: Any, field: str, *, minimum: Optional[int] = None) -> int:
    # bool is an int subclass — a spec saying `"seed": true` is a mistake.
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"spec field {field!r} must be an integer, got {value!r}",
    )
    if minimum is not None:
        _require(value >= minimum, f"spec field {field!r} must be >= {minimum}")
    return int(value)


def _as_number(value: Any, field: str) -> float:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"spec field {field!r} must be a number, got {value!r}",
    )
    return float(value)


@dataclass(frozen=True)
class CampaignSpec:
    """One validated, normalized campaign request.

    ``config`` is the canonical parameterization (defaults applied,
    JSON-safe); ``config_hash`` keys the daemon's result cache and the
    run manifest.  ``n_tasks`` sizes progress reporting.
    """

    kind: str
    config: dict[str, Any]
    n_tasks: int

    @property
    def config_hash(self) -> str:
        return config_hash(self.config)

    def describe(self) -> str:
        if self.kind == "sweep":
            return (
                f"sweep {self.config['algorithm']} x{len(self.config['grid'])} "
                f"point(s), {self.config['duration_ms']} ms"
            )
        return (
            f"fluid {','.join(self.config['algorithms'])} "
            f"x{len(self.config['flows_per_port_levels'])} level(s), "
            f"{self.config['flows_total']} flows ({self.config['backend']})"
        )

    # -- execution -------------------------------------------------------------

    def run(self, runner: Any, on_heartbeat: Optional[Callable] = None) -> dict[str, Any]:
        """Execute this campaign on ``runner`` (a started
        :class:`~repro.parallel.CampaignRunner`) and return the
        JSON-safe result payload the daemon caches and serves."""
        import dataclasses

        if self.kind == "sweep":
            from repro.core.sweep import sweep_campaign

            c = self.config
            points, campaign = sweep_campaign(
                c["algorithm"],
                [dict(params) for params in c["grid"]],
                n_senders=c["n_senders"],
                duration_ps=int(c["duration_ms"] * MS),
                ecn_threshold_bytes=c["ecn_threshold_bytes"],
                seeds=c["seeds"],
                seed=c["seed"],
                sim_backend=None if c["sim_backend"] == "auto" else c["sim_backend"],
                runner=runner,
                on_heartbeat=on_heartbeat,
            )
        else:
            from repro.fluid import (
                dcqcn_profile,
                dctcp_profile,
                fluid_fct_campaign,
                ideal_profile,
            )
            from repro.workload import hadoop, websearch

            factories = {
                "dctcp": dctcp_profile,
                "dcqcn": dcqcn_profile,
                "ideal": ideal_profile,
            }
            c = self.config
            distribution = websearch() if c["workload"] == "websearch" else hadoop()
            points, campaign = fluid_fct_campaign(
                [factories[name]() for name in c["algorithms"]],
                distribution,
                workload=c["workload"],
                flows_per_port_levels=c["flows_per_port_levels"],
                flows_total=c["flows_total"],
                n_ports=c["n_ports"],
                seed=c["seed"],
                backend=c["backend"],
                runner=runner,
                on_heartbeat=on_heartbeat,
            )
        return {
            "kind": self.kind,
            "points": [dataclasses.asdict(point) for point in points],
            "stats": campaign.stats(),
        }


def _parse_sweep(payload: dict[str, Any]) -> CampaignSpec:
    config: dict[str, Any] = {"kind": "sweep"}
    _require("algorithm" in payload, "sweep spec requires 'algorithm'")
    algorithm = payload["algorithm"]
    _require(
        isinstance(algorithm, str) and bool(algorithm),
        f"'algorithm' must be a non-empty string, got {algorithm!r}",
    )
    config["algorithm"] = algorithm

    merged = {**_SWEEP_DEFAULTS, **{k: v for k, v in payload.items()
                                    if k not in ("kind", "algorithm")}}
    grid = merged["grid"]
    _require(
        isinstance(grid, list) and len(grid) >= 1,
        "'grid' must be a non-empty list of parameter dicts",
    )
    for entry in grid:
        _require(isinstance(entry, dict), f"grid entries must be dicts, got {entry!r}")
        for key, value in entry.items():
            _require(isinstance(key, str), f"grid parameter names must be strings")
            _require(
                isinstance(value, (int, float, str)) and not isinstance(value, bool),
                f"grid parameter {key!r} must be int/float/str, got {value!r}",
            )
    config["grid"] = [dict(sorted(entry.items())) for entry in grid]
    config["n_senders"] = _as_int(merged["n_senders"], "n_senders", minimum=2)
    duration_ms = _as_number(merged["duration_ms"], "duration_ms")
    _require(duration_ms > 0, "'duration_ms' must be positive")
    config["duration_ms"] = duration_ms
    config["ecn_threshold_bytes"] = _as_int(
        merged["ecn_threshold_bytes"], "ecn_threshold_bytes", minimum=1
    )
    seeds = merged["seeds"]
    if seeds is not None:
        seeds = _as_int(seeds, "seeds", minimum=1)
    config["seeds"] = seeds
    config["seed"] = _as_int(merged["seed"], "seed", minimum=0)
    sim_backend = merged["sim_backend"]
    if sim_backend is None:
        sim_backend = "auto"
    from repro.sim.backend import backend_names

    _require(
        sim_backend in backend_names(),
        f"'sim_backend' must be one of {list(backend_names())}, "
        f"got {sim_backend!r}",
    )
    config["sim_backend"] = sim_backend
    n_tasks = len(grid) * (seeds or 1)
    return CampaignSpec(kind="sweep", config=config, n_tasks=n_tasks)


def _parse_fluid(payload: dict[str, Any]) -> CampaignSpec:
    config: dict[str, Any] = {"kind": "fluid"}
    _require("algorithms" in payload, "fluid spec requires 'algorithms'")
    algorithms = payload["algorithms"]
    if isinstance(algorithms, str):
        algorithms = [name.strip() for name in algorithms.split(",") if name.strip()]
    _require(
        isinstance(algorithms, list) and len(algorithms) >= 1,
        "'algorithms' must be a non-empty list of fluid profile names",
    )
    unknown = sorted(set(algorithms) - set(FLUID_PROFILES))
    _require(not unknown, f"unknown fluid profile(s) {unknown}; "
                          f"choose from {sorted(FLUID_PROFILES)}")
    config["algorithms"] = list(algorithms)

    merged = {**_FLUID_DEFAULTS, **{k: v for k, v in payload.items()
                                    if k not in ("kind", "algorithms")}}
    _require(
        merged["workload"] in ("websearch", "hadoop"),
        f"'workload' must be websearch or hadoop, got {merged['workload']!r}",
    )
    config["workload"] = merged["workload"]
    levels = merged["flows_per_port_levels"]
    _require(
        isinstance(levels, list) and len(levels) >= 1,
        "'flows_per_port_levels' must be a non-empty list of ints",
    )
    config["flows_per_port_levels"] = [
        _as_int(level, "flows_per_port_levels", minimum=1) for level in levels
    ]
    config["flows_total"] = _as_int(merged["flows_total"], "flows_total", minimum=1)
    config["n_ports"] = _as_int(merged["n_ports"], "n_ports", minimum=1)
    _require(
        merged["backend"] in ("closed_form", "columnar"),
        f"'backend' must be closed_form or columnar, got {merged['backend']!r}",
    )
    config["backend"] = merged["backend"]
    config["seed"] = _as_int(merged["seed"], "seed", minimum=0)
    n_tasks = len(algorithms) * len(levels)
    return CampaignSpec(kind="fluid", config=config, n_tasks=n_tasks)


_PARSERS = {"sweep": _parse_sweep, "fluid": _parse_fluid}

_KNOWN_FIELDS = {
    "sweep": {"kind", "algorithm"} | set(_SWEEP_DEFAULTS),
    "fluid": {"kind", "algorithms"} | set(_FLUID_DEFAULTS),
}


def parse_spec(payload: Any) -> CampaignSpec:
    """Validate and normalize one JSON campaign spec.

    Raises :class:`~repro.errors.ConfigError` with an actionable message
    on any shape problem — the daemon maps these onto HTTP 400s, so the
    message *is* the API's error surface.
    """
    _require(isinstance(payload, dict), "campaign spec must be a JSON object")
    kind = payload.get("kind")
    _require(
        kind in _PARSERS,
        f"spec 'kind' must be one of {sorted(_PARSERS)}, got {kind!r}",
    )
    unknown = sorted(set(payload) - _KNOWN_FIELDS[kind])
    _require(not unknown, f"unknown spec field(s) {unknown} for kind {kind!r}")
    return _PARSERS[kind](payload)
