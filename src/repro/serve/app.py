"""``repro serve`` — the persistent campaign daemon.

A small hand-rolled HTTP/1.1 JSON service on stdlib ``asyncio`` streams
(no ``http.server``, no third-party framework): requests parse in the
event loop, campaign execution happens on the :class:`JobQueue`
dispatcher thread over ONE warm :class:`~repro.parallel.CampaignRunner`
pool, and the two sides meet through thread-safe waits bridged with
``asyncio.to_thread``.

API (all JSON unless noted):

===========================  ==================================================
``POST /jobs``               submit a campaign spec; 200 with the job document
                             (``"cached": true`` + full result on a cache hit),
                             400 on a malformed spec, 503 when the queue is full
``GET /jobs``                all jobs, submission order
``GET /jobs/<id>``           one job; ``?wait=1[&timeout_s=N][&cursor=N]``
                             long-polls until new heartbeats or completion
``GET /jobs/<id>/events``    Server-Sent Events: one ``heartbeat`` event per
                             campaign heartbeat, a final ``done`` event with
                             the job document
``GET /metrics``             Prometheus text: ``repro_serve_*`` counters/gauges
``GET /healthz``             liveness + pool/cache facts
===========================  ==================================================
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from pathlib import Path
from typing import Any, Optional, Union
from urllib.parse import parse_qs, urlsplit

from repro.errors import ConfigError, ReproError
from repro.obs.export import to_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.parallel import CampaignRunner
from repro.serve.cache import ResultCache
from repro.serve.jobs import Job, JobQueue
from repro.serve.spec import parse_spec

#: Reject request bodies past this size: campaign specs are small; a
#: huge body is a mistake or abuse, not a campaign.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Hard cap on one long-poll / SSE wait step, so a vanished client can
#: hold a connection open for at most this long.
MAX_WAIT_S = 120.0


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response_bytes(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


def _json_bytes(payload: Any) -> bytes:
    return (json.dumps(payload, indent=1, default=str) + "\n").encode("utf-8")


class ReproServer:
    """The daemon: one warm campaign pool, a job queue, a result cache,
    and the HTTP surface that exposes them.

    ``port=0`` binds an ephemeral port (tests); the bound port is in
    :attr:`port` once the server is running.  Use either
    :meth:`serve_forever` (blocking, the CLI path) or
    :meth:`start_background` / :meth:`close` (embedding and tests).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8723,
        *,
        workers: Optional[int] = None,
        cache_dir: Union[str, Path] = ".repro-cache",
        cache_max_entries: Optional[int] = None,
        cache_ttl_s: Optional[float] = None,
        results_dir: Optional[Union[str, Path]] = None,
        max_queued: int = 64,
        task_timeout_s: Optional[float] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.started_unix = time.time()
        self.registry = MetricsRegistry()
        self.cache = ResultCache(
            cache_dir, max_entries=cache_max_entries, ttl_s=cache_ttl_s
        )
        runner = CampaignRunner(
            workers=workers,
            results_dir=results_dir,
            task_timeout_s=task_timeout_s,
        )
        self.queue = JobQueue(
            runner, self.cache, max_queued=max_queued, on_event=self._on_job_event
        )
        self._install_metrics()
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._closed = False

    # -- metrics ---------------------------------------------------------------

    def _install_metrics(self) -> None:
        registry = self.registry
        self._jobs_accepted = registry.counter("repro_serve_jobs_accepted_total")
        self._jobs_completed = registry.counter("repro_serve_jobs_completed_total")
        self._jobs_failed = registry.counter("repro_serve_jobs_failed_total")
        self._cache_hits = registry.counter("repro_serve_cache_hits_total")
        self._cache_misses = registry.counter("repro_serve_cache_misses_total")
        self._jobs_coalesced = registry.counter("repro_serve_jobs_coalesced_total")
        self._requests = registry.counter("repro_serve_http_requests_total")
        registry.bind(
            "repro_serve_queue_depth", self.queue.queue_depth, kind="gauge"
        )
        registry.bind(
            "repro_serve_jobs_running", self.queue.running_count, kind="gauge"
        )
        registry.bind(
            "repro_serve_uptime_seconds",
            lambda: time.time() - self.started_unix,
            kind="gauge",
        )
        registry.bind(
            "repro_serve_cache_entries", lambda: len(self.cache), kind="gauge"
        )
        registry.bind(
            "repro_serve_cache_evictions_total", lambda: self.cache.evictions
        )

    def _on_job_event(self, event: str, job: Job) -> None:
        if event == "accepted":
            self._jobs_accepted.inc()
            self._cache_misses.inc()
        elif event == "cache_hit":
            self._jobs_accepted.inc()
            self._cache_hits.inc()
        elif event == "coalesced":
            self._jobs_coalesced.inc()
        elif event == "finished":
            if job.state == "failed":
                self._jobs_failed.inc()
            else:
                self._jobs_completed.inc()

    # -- lifecycle -------------------------------------------------------------

    async def _start_async(self) -> None:
        self.queue.start()
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._ready.set()

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``repro serve`` foreground path)."""
        await self._start_async()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def start_background(self) -> tuple[str, int]:
        """Run the server on a daemon thread; returns ``(host, port)``
        once the socket is bound."""

        def runner() -> None:
            asyncio.run(self._run_until_closed())

        self._thread = threading.Thread(
            target=runner, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ReproError("repro serve failed to bind within 30 s")
        return self.host, self.port

    async def _run_until_closed(self) -> None:
        await self._start_async()
        assert self._server is not None
        async with self._server:
            while not self._closed:
                await asyncio.sleep(0.05)

    def close(self) -> None:
        """Stop accepting connections and shut the pool down."""
        self._closed = True
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.queue.close()

    # -- HTTP plumbing ---------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            response = await self._handle_request(reader, writer)
            if response is not None:
                writer.write(response)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # the daemon must survive any request
            try:
                writer.write(
                    _response_bytes(500, _json_bytes({"error": str(exc)}))
                )
                await writer.drain()
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[bytes]:
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return _response_bytes(400, _json_bytes({"error": "malformed request"}))
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            return _response_bytes(413, _json_bytes({"error": "body too large"}))
        if length:
            body = await reader.readexactly(length)
        self._requests.inc()
        url = urlsplit(target)
        query = {
            key: values[-1] for key, values in parse_qs(url.query).items()
        }
        try:
            return await self._route(method, url.path, query, body, writer)
        except _HttpError as exc:
            return _response_bytes(
                exc.status, _json_bytes({"error": str(exc)})
            )

    # -- routing ---------------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        query: dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> Optional[bytes]:
        if path == "/healthz" and method == "GET":
            return _response_bytes(200, _json_bytes(self._health()))
        if path == "/metrics" and method == "GET":
            return _response_bytes(
                200,
                to_prometheus(self.registry).encode("utf-8"),
                content_type="text/plain; version=0.0.4",
            )
        if path == "/jobs" and method == "POST":
            return self._submit(body)
        if path == "/jobs" and method == "GET":
            return _response_bytes(200, _json_bytes({"jobs": self.queue.list_jobs()}))
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if rest.endswith("/events"):
                job_id = rest[: -len("/events")]
                if method != "GET":
                    raise _HttpError(405, "events endpoint is GET-only")
                await self._stream_events(job_id, writer)
                return None
            if method != "GET":
                raise _HttpError(405, f"{method} not supported on job resources")
            return await self._job_status(rest, query)
        raise _HttpError(404, f"no route for {method} {path}")

    def _health(self) -> dict[str, Any]:
        return {
            "ok": True,
            "uptime_s": time.time() - self.started_unix,
            "workers": self.queue.runner.workers,
            "pool_started": self.queue.runner.started,
            "queue_depth": self.queue.queue_depth(),
            "jobs": len(self.queue.jobs),
            "cache": self.cache.stats(),
        }

    def _submit(self, body: bytes) -> bytes:
        try:
            payload = json.loads(body or b"null")
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}")
        try:
            spec = parse_spec(payload)
        except ConfigError as exc:
            raise _HttpError(400, str(exc))
        try:
            job = self.queue.submit(spec)
        except ReproError as exc:
            raise _HttpError(503, str(exc))
        return _response_bytes(200, _json_bytes(self._job_document(job)))

    def _job_document(self, job: Job) -> dict[str, Any]:
        document = job.summary()
        if job.state == "done":
            document["result"] = job.result
        return document

    async def _job_status(self, job_id: str, query: dict[str, str]) -> bytes:
        job = self.queue.get(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        if query.get("wait") in ("1", "true", "yes"):
            timeout_s = min(float(query.get("timeout_s", "30")), MAX_WAIT_S)
            requested = int(query.get("cursor", "0"))
            job, cursor = await asyncio.to_thread(
                self.queue.wait, job_id, beat_cursor=requested, timeout_s=timeout_s
            )
            if job is None:  # pragma: no cover - job vanished mid-wait
                raise _HttpError(404, f"unknown job {job_id!r}")
            document = self._job_document(job)
            document["cursor"] = cursor
            # Only beats the client has not seen, capped so a long-idle
            # client cannot request an unbounded payload.
            document["heartbeats"] = job.beats[max(requested, cursor - 32):cursor]
            return _response_bytes(200, _json_bytes(document))
        return _response_bytes(200, _json_bytes(self._job_document(job)))

    async def _stream_events(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        """Server-Sent Events: live ``[hb]`` heartbeats, then ``done``."""
        job = self.queue.get(job_id)
        if job is None:
            writer.write(
                _response_bytes(404, _json_bytes({"error": f"unknown job {job_id!r}"}))
            )
            await writer.drain()
            return
        writer.write(
            "\r\n".join(
                [
                    "HTTP/1.1 200 OK",
                    "Content-Type: text/event-stream",
                    "Cache-Control: no-cache",
                    "Connection: close",
                ]
            ).encode("ascii")
            + b"\r\n\r\n"
        )
        await writer.drain()
        cursor = 0
        while True:
            job, new_cursor = await asyncio.to_thread(
                self.queue.wait, job_id, beat_cursor=cursor, timeout_s=15.0
            )
            if job is None:
                return
            for row in job.beats[cursor:new_cursor]:
                writer.write(
                    b"event: heartbeat\ndata: "
                    + json.dumps(row, default=str).encode("utf-8")
                    + b"\n\n"
                )
            cursor = new_cursor
            if job.finished:
                writer.write(
                    b"event: done\ndata: "
                    + json.dumps(self._job_document(job), default=str).encode("utf-8")
                    + b"\n\n"
                )
                await writer.drain()
                return
            await writer.drain()
