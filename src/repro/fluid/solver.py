"""Time-stepped columnar fluid solver: 10^5-10^6 concurrent flows per process.

The closed-form :class:`~repro.fluid.model.FluidSimulator` integrates
each flow's rate profile in isolation — exact, but static: the flow
population, the fair share, and the marking behaviour are inputs, not
outcomes.  This module is the dynamic counterpart: a discretized fluid
model in the style of the DCTCP/DCQCN fluid analyses, where congestion
feedback *emerges* from per-bottleneck queues and every per-flow
quantity lives in a NumPy column so one process sweeps a million
concurrent flows.

State layout (structure of arrays, one row per flow):

====================  =======  ==================================================
column                dtype    meaning
====================  =======  ==================================================
``rate_bps``          f8       current sending rate (0 for inactive rows)
``window_bits``       f8       congestion window (window kernels)
``alpha``             f8       EWMA congestion estimate (DCTCP / DCQCN)
``remaining_bits``    f8       bits left to deliver
``size_bits``         f8       original flow size
``start_ps``          f8       arrival time (fractional: completion-interpolated)
``bottleneck``        i4       index into the per-bottleneck arrays
``kernel``            i1       update-kernel code (:mod:`repro.cc.kernels`)
``active``            bool     row liveness mask
``flow_id``           i8       stable id (survives compaction)
====================  =======  ==================================================

Each :meth:`ColumnarFluidSolver.step` does three group-by passes and a
handful of elementwise kernels, all O(flows) NumPy:

1. **aggregate** — per-bottleneck offered load and active-flow counts
   via ``np.bincount`` over the flow->bottleneck index column;
2. **mark** — per-bottleneck queue integration (``q += (offered-C)*dt``)
   and DCTCP-style step marking (``mark = q > K``), broadcast back to
   flows by fancy indexing;
3. **update** — vectorized per-CC kernels (ideal constant share,
   slow-start doubling / AIMD, DCTCP alpha filter + proportional window
   cut, DCQCN line-rate decay/recovery) applied to cached per-kernel row
   index arrays.

Flows arrive (:meth:`~ColumnarFluidSolver.add_flows`) and depart
(completion) dynamically; completed rows are recycled in closed-loop
mode or left dead and periodically compacted away in open-loop mode, so
long campaigns stay O(live flows) in memory.  Everything is driven by
one ``numpy.random.Generator`` — the same seed replays bit-identical
state trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.cc.kernels import (
    KERNEL_DCQCN,
    KERNEL_DCTCP,
    KERNEL_IDEAL,
    KERNEL_SLOW_START,
    fluid_kernel,
)
from repro.errors import ConfigError
from repro.units import BITS_PER_BYTE, MICROSECOND, RATE_100G, SECOND, US
from repro.workload.distributions import SizeDistribution

__all__ = [
    "SolverConfig",
    "ColumnarFluidSolver",
    "SolverRunResult",
    "SolverTelemetry",
    "kernel_for_profile",
]


def kernel_for_profile(profile) -> int:
    """Kernel code for a :class:`~repro.fluid.model.FluidCcProfile`.

    Maps on the profile's *startup* shape (the property the closed-form
    model distinguishes algorithms by), falling back to the algorithm
    name for registered CC algorithms.
    """
    startup = getattr(profile, "startup", None)
    if startup == "constant":
        return KERNEL_IDEAL
    if startup == "line_rate_decay":
        return KERNEL_DCQCN
    if startup == "slow_start":
        return fluid_kernel(profile.name) if profile.name == "dctcp" else KERNEL_DCTCP
    return fluid_kernel(profile.name)


@dataclass(frozen=True)
class SolverConfig:
    """Discretization and CC constants of the columnar solver."""

    #: Step size.  Must resolve the fastest dynamics of interest (the
    #: effective RTT); FCTs are completion-interpolated, so the *ideal*
    #: kernel is exact at any dt.
    dt_ps: int = 5 * US
    #: Propagation RTT added to the queueing delay at the bottleneck.
    base_rtt_ps: int = 6 * US
    mss_bytes: int = 1000
    #: DCTCP marking threshold K per bottleneck (bytes of standing queue).
    ecn_threshold_bytes: int = 84_000
    #: DCTCP alpha gain g (per RTT).
    dctcp_gain: float = 0.0625
    #: DCQCN alpha-timer gain and period (the 55 us alpha update).
    dcqcn_alpha_gain: float = 0.0625
    dcqcn_alpha_period_ps: int = 55 * US
    #: DCQCN rate-cut reaction period (CNP interval).
    dcqcn_cut_period_ps: int = 50 * US
    #: Time constant of DCQCN's recovery toward line rate.
    dcqcn_recovery_tau_ps: int = 120 * US
    #: Rate floor so rate-mode flows can always finish.
    min_rate_bps: float = 10e6
    #: Window cap in bottleneck BDPs (keeps slow start from overflowing
    #: float range while the queue-inflated RTT catches up).
    max_window_bdp: float = 8.0
    #: Compaction policy: compact when rows exceed ``compact_slack``
    #: times the active population (and at least ``compact_min_rows``).
    compact_min_rows: int = 4096
    compact_slack: float = 2.0

    def validate(self) -> None:
        if self.dt_ps <= 0:
            raise ConfigError(f"dt_ps must be positive, got {self.dt_ps}")
        if self.base_rtt_ps <= 0:
            raise ConfigError(f"base_rtt_ps must be positive, got {self.base_rtt_ps}")
        if self.mss_bytes <= 0:
            raise ConfigError(f"mss_bytes must be positive, got {self.mss_bytes}")
        if self.ecn_threshold_bytes <= 0:
            raise ConfigError("ecn_threshold_bytes must be positive")
        if not 0.0 < self.dctcp_gain <= 1.0:
            raise ConfigError(f"dctcp_gain must be in (0, 1], got {self.dctcp_gain}")
        if self.min_rate_bps <= 0:
            raise ConfigError("min_rate_bps must be positive")
        if self.compact_slack <= 1.0:
            raise ConfigError("compact_slack must exceed 1.0")


@dataclass(frozen=True)
class SolverRunResult:
    """Completion log of a solver run (columnar, completion-ordered)."""

    fcts_us: np.ndarray
    sizes_bytes: np.ndarray
    flow_ids: np.ndarray
    sim_time_ps: float
    steps: int
    flow_steps: int


class SolverTelemetry:
    """Vectorized per-step timeseries of per-bottleneck aggregates.

    Opt-in via :meth:`ColumnarFluidSolver.enable_telemetry`.  Each
    sampled step appends one row of per-bottleneck values — standing
    queue (bytes), offered load (bps), step-marking indicator, active
    flow counts — plus the step's completion count, into preallocated
    NumPy arrays grown by doubling, so sampling a million-flow run adds
    a handful of O(n_bottlenecks) copies per step and never touches the
    per-flow columns.  ``sample_every=k`` keeps every k-th step.
    """

    def __init__(
        self, n_bottlenecks: int, *, sample_every: int = 1, capacity_hint: int = 1024
    ) -> None:
        if sample_every < 1:
            raise ConfigError(f"sample_every must be >= 1, got {sample_every}")
        self.n_bottlenecks = n_bottlenecks
        self.sample_every = sample_every
        self._step_counter = 0
        self._len = 0
        cap = max(16, int(capacity_hint))
        self._time_ps = np.zeros(cap, dtype=np.float64)
        self._queue_bytes = np.zeros((cap, n_bottlenecks), dtype=np.float64)
        self._offered_bps = np.zeros((cap, n_bottlenecks), dtype=np.float64)
        self._mark = np.zeros((cap, n_bottlenecks), dtype=np.float64)
        self._active_flows = np.zeros((cap, n_bottlenecks), dtype=np.float64)
        self._completions = np.zeros(cap, dtype=np.int64)

    def __len__(self) -> int:
        return self._len

    def _grow(self) -> None:
        for name in (
            "_time_ps", "_queue_bytes", "_offered_bps",
            "_mark", "_active_flows", "_completions",
        ):
            old = getattr(self, name)
            new = np.zeros((old.shape[0] * 2,) + old.shape[1:], dtype=old.dtype)
            new[: self._len] = old[: self._len]
            setattr(self, name, new)

    def sample(self, time_ps, queue_bits, offered_bps, mark, counts, completed) -> None:
        """Record one step (honouring ``sample_every``); driven by the solver."""
        due = self._step_counter % self.sample_every == 0
        self._step_counter += 1
        if not due:
            return
        if self._len == self._time_ps.shape[0]:
            self._grow()
        i = self._len
        self._time_ps[i] = time_ps
        self._queue_bytes[i] = queue_bits
        self._queue_bytes[i] /= BITS_PER_BYTE
        self._offered_bps[i] = offered_bps
        self._mark[i] = mark
        self._active_flows[i] = counts
        self._completions[i] = completed
        self._len = i + 1

    def arrays(self) -> dict[str, np.ndarray]:
        """Trimmed views of the sampled series (no copies)."""
        n = self._len
        return {
            "time_ps": self._time_ps[:n],
            "queue_bytes": self._queue_bytes[:n],
            "offered_bps": self._offered_bps[:n],
            "mark": self._mark[:n],
            "active_flows": self._active_flows[:n],
            "completions": self._completions[:n],
        }

    def save(self, path) -> None:
        """Write the series as a compressed ``.npz`` archive."""
        np.savez_compressed(path, **self.arrays())


class ColumnarFluidSolver:
    """Dynamic many-flow fluid model over shared bottlenecks.

    ``capacity_bps`` is a scalar (uniform ports) or one value per
    bottleneck.  Flows are added with :meth:`add_flows` and advanced
    with :meth:`step`; :meth:`run_closed_loop` keeps the population
    constant (a completion immediately respawns a new flow in the same
    slot with a freshly sampled size) until enough FCTs are collected —
    the regime of the paper's Figure 10 comprehensive test.
    """

    def __init__(
        self,
        *,
        n_bottlenecks: int = 1,
        capacity_bps: Union[float, Sequence[float]] = RATE_100G,
        config: Optional[SolverConfig] = None,
        seed: int = 0,
        capacity_hint: int = 1024,
    ) -> None:
        if n_bottlenecks <= 0:
            raise ConfigError(f"n_bottlenecks must be positive, got {n_bottlenecks}")
        self.config = config if config is not None else SolverConfig()
        self.config.validate()
        capacity = np.asarray(capacity_bps, dtype=np.float64)
        if capacity.ndim == 0:
            capacity = np.full(n_bottlenecks, float(capacity), dtype=np.float64)
        if capacity.shape != (n_bottlenecks,):
            raise ConfigError(
                f"capacity_bps must be scalar or length {n_bottlenecks}, "
                f"got shape {capacity.shape}"
            )
        if np.any(capacity <= 0):
            raise ConfigError("every bottleneck capacity must be positive")
        self.n_bottlenecks = n_bottlenecks
        self.capacity_bps = capacity
        self.queue_bits = np.zeros(n_bottlenecks, dtype=np.float64)
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.now_ps: float = 0.0
        self.steps_run = 0
        #: Sum over steps of the live-flow count — the bench unit.
        self.flow_steps = 0
        self.flows_added = 0
        self.flows_completed = 0
        #: Times :meth:`compact` actually freed rows.
        self.compactions = 0
        #: Opt-in per-step telemetry (see :meth:`enable_telemetry`);
        #: None keeps the step loop free of sampling entirely.
        self._telemetry: Optional[SolverTelemetry] = None
        #: Opt-in :class:`repro.obs.flight.FlightRecorder` (rare events
        #: only: compactions).
        self._flight = None

        rows = max(16, int(capacity_hint))
        self._n = 0  # rows in use (live region: [0, _n))
        self._alloc(rows)
        self._n_active = 0
        self._next_flow_id = 0
        #: Kernel code -> row selector (index array, or a slice covering
        #: every row for single-kernel populations).
        self._kernel_rows: Optional[dict[int, object]] = None
        #: Closed-loop respawn source (None = open loop: flows depart).
        self._respawn: Optional[SizeDistribution] = None
        # Completion log: per-step arrays, concatenated on demand.
        self._done_fct_ps: list[np.ndarray] = []
        self._done_bytes: list[np.ndarray] = []
        self._done_ids: list[np.ndarray] = []

    # -- storage ---------------------------------------------------------------

    def _alloc(self, rows: int) -> None:
        self._cap = rows
        self.rate_bps = np.zeros(rows, dtype=np.float64)
        self.window_bits = np.zeros(rows, dtype=np.float64)
        self.alpha = np.zeros(rows, dtype=np.float64)
        self.remaining_bits = np.zeros(rows, dtype=np.float64)
        self.size_bits = np.zeros(rows, dtype=np.float64)
        self.start_ps = np.zeros(rows, dtype=np.float64)
        self.bottleneck = np.zeros(rows, dtype=np.int32)
        self.kernel = np.zeros(rows, dtype=np.int8)
        self.active = np.zeros(rows, dtype=bool)
        self.flow_id = np.zeros(rows, dtype=np.int64)

    _COLUMNS = (
        "rate_bps", "window_bits", "alpha", "remaining_bits", "size_bits",
        "start_ps", "bottleneck", "kernel", "active", "flow_id",
    )

    def _grow(self, need: int) -> None:
        rows = self._cap
        while rows < need:
            rows *= 2
        old = {name: getattr(self, name) for name in self._COLUMNS}
        n = self._n
        self._alloc(rows)
        for name, column in old.items():
            getattr(self, name)[:n] = column[:n]

    @property
    def n_rows(self) -> int:
        """Rows in use, live or dead (dead rows await compaction)."""
        return self._n

    @property
    def n_active(self) -> int:
        """Currently live flows."""
        return self._n_active

    # -- population ------------------------------------------------------------

    def add_flows(
        self,
        sizes_bytes: Union[Sequence[int], np.ndarray],
        *,
        bottleneck: Union[int, Sequence[int], np.ndarray] = 0,
        kernel: Union[int, str] = "dctcp",
        start_ps: Optional[float] = None,
    ) -> np.ndarray:
        """Append a batch of flows; returns their stable flow ids.

        ``bottleneck`` is a scalar or one index per flow; ``kernel`` is a
        code from :mod:`repro.cc.kernels` or an algorithm name.
        """
        sizes = np.asarray(sizes_bytes, dtype=np.float64)
        if sizes.ndim != 1 or sizes.size == 0:
            raise ConfigError("add_flows needs a non-empty 1-D size batch")
        if np.any(sizes <= 0):
            raise ConfigError("every flow size must be positive")
        code = fluid_kernel(kernel) if isinstance(kernel, str) else int(kernel)
        if not 0 <= code <= KERNEL_DCQCN:
            raise ConfigError(f"unknown fluid kernel code {code}")
        bot = np.asarray(bottleneck, dtype=np.int32)
        if bot.ndim == 0:
            bot = np.full(sizes.size, int(bot), dtype=np.int32)
        if bot.shape != sizes.shape:
            raise ConfigError("bottleneck must be scalar or one index per flow")
        if np.any(bot < 0) or np.any(bot >= self.n_bottlenecks):
            raise ConfigError(
                f"bottleneck indices must be in [0, {self.n_bottlenecks})"
            )
        k = sizes.size
        if self._n + k > self._cap:
            self._grow(self._n + k)
        rows = slice(self._n, self._n + k)
        mss_bits = self.config.mss_bytes * BITS_PER_BYTE
        self.size_bits[rows] = sizes * BITS_PER_BYTE
        self.remaining_bits[rows] = self.size_bits[rows]
        self.start_ps[rows] = self.now_ps if start_ps is None else float(start_ps)
        self.bottleneck[rows] = bot
        self.kernel[rows] = code
        self.active[rows] = True
        self.alpha[rows] = 0.0
        self.window_bits[rows] = mss_bits
        # Rate kernels start at line rate (DCQCN's defining behaviour);
        # window/ideal kernels derive their rate inside the next step.
        if code == KERNEL_DCQCN:
            self.rate_bps[rows] = self.capacity_bps[bot]
        else:
            self.rate_bps[rows] = 0.0
        ids = np.arange(self._next_flow_id, self._next_flow_id + k, dtype=np.int64)
        self.flow_id[rows] = ids
        self._next_flow_id += k
        self._n += k
        self._n_active += k
        self.flows_added += k
        self._kernel_rows = None
        return ids

    def _kernel_index(self) -> dict[int, np.ndarray]:
        """Row indices per kernel code, cached until the layout changes.

        Flows never change kernel, so these index arrays stay valid
        across steps; completion only flips ``active``, which every
        kernel update respects via the mask column.
        """
        if self._kernel_rows is None:
            codes = self.kernel[: self._n]
            rows = {
                code: np.flatnonzero(codes == code)
                for code in (
                    KERNEL_IDEAL, KERNEL_SLOW_START, KERNEL_DCTCP, KERNEL_DCQCN
                )
                if np.any(codes == code)
            }
            if len(rows) == 1:
                # Single-kernel population (the usual campaign case):
                # a slice makes every gather below a view, not a copy.
                rows = {code: slice(0, self._n) for code in rows}
            self._kernel_rows = rows
        return self._kernel_rows

    def compact(self) -> int:
        """Drop dead rows, preserving live-row order; returns rows freed.

        Stable ids, completion logs, and all live per-flow state are
        unaffected — only the physical row numbering changes.
        """
        n = self._n
        live = np.flatnonzero(self.active[:n])
        freed = n - live.size
        if freed == 0:
            return 0
        for name in self._COLUMNS:
            column = getattr(self, name)
            column[: live.size] = column[live]
        self._n = live.size
        self._kernel_rows = None
        self.compactions += 1
        if self._flight is not None:
            self._flight.record(
                int(self.now_ps), "solver", "compact",
                freed=int(freed), live=int(live.size),
            )
        return freed

    def _maybe_compact(self) -> None:
        if (
            self._respawn is None
            and self._n >= self.config.compact_min_rows
            and self._n > self.config.compact_slack * max(self._n_active, 1)
        ):
            self.compact()

    # -- the step loop ---------------------------------------------------------

    def step(self, n_steps: int = 1) -> None:
        """Advance the model ``n_steps`` ticks of ``config.dt_ps``."""
        for _ in range(n_steps):
            self._step_once()

    def enable_telemetry(
        self, *, sample_every: int = 1, capacity_hint: int = 1024
    ) -> SolverTelemetry:
        """Attach per-step aggregate sampling (opt-in; see
        :class:`SolverTelemetry`).  Sampling only *reads* model state, so
        a telemetered run stays bit-identical to an untelemetered one."""
        self._telemetry = SolverTelemetry(
            self.n_bottlenecks,
            sample_every=sample_every,
            capacity_hint=capacity_hint,
        )
        return self._telemetry

    def disable_telemetry(self) -> None:
        self._telemetry = None

    @property
    def telemetry(self) -> Optional[SolverTelemetry]:
        return self._telemetry

    def _step_once(self) -> None:
        cfg = self.config
        n = self._n
        if n == 0:
            if self._telemetry is not None:
                zeros = np.zeros(self.n_bottlenecks)
                self._telemetry.sample(
                    self.now_ps, self.queue_bits, zeros, zeros, zeros, 0
                )
            self.now_ps += cfg.dt_ps
            self.steps_run += 1
            return
        dt_s = cfg.dt_ps / SECOND
        capacity = self.capacity_bps
        active = self.active[:n]
        bot = self.bottleneck[:n]
        rate = self.rate_bps[:n]
        window = self.window_bits[:n]
        alpha = self.alpha[:n]
        remaining = self.remaining_bits[:n]

        # (1) per-bottleneck aggregation: active-flow counts and, for the
        # window/ideal kernels, the RTT including the standing queue.
        counts = np.bincount(
            bot, weights=active, minlength=self.n_bottlenecks
        )
        rtt_b = cfg.base_rtt_ps / SECOND + self.queue_bits / capacity
        inv_rtt_b = 1.0 / rtt_b
        safe_counts = np.maximum(counts, 1.0)
        # Everything that depends only on the bottleneck — RTT fractions,
        # the slow-start growth factor, the window cap — is computed per
        # bottleneck (a handful of values) and gathered per flow, keeping
        # transcendentals off the million-row columns.
        r_b = dt_s * inv_rtt_b  # step as a fraction of each RTT
        exp2_r_b = np.exp2(r_b)
        window_cap_b = cfg.max_window_bdp * capacity * rtt_b

        kernel_rows = self._kernel_index()
        idx_ideal = kernel_rows.get(KERNEL_IDEAL)
        if idx_ideal is not None:
            b = bot[idx_ideal]
            rate[idx_ideal] = capacity[b] / safe_counts[b] * active[idx_ideal]
        for idx in (
            kernel_rows.get(KERNEL_SLOW_START), kernel_rows.get(KERNEL_DCTCP)
        ):
            if idx is not None:
                rate[idx] = (
                    window[idx] * inv_rtt_b[bot[idx]] * active[idx]
                )

        # (2) offered load, service share, and queue/marking update.
        offered = np.bincount(bot, weights=rate, minlength=self.n_bottlenecks)
        share = np.minimum(1.0, capacity / np.maximum(offered, 1e-9))
        delivered = rate * (share[bot] * dt_s)
        np.subtract(remaining, delivered, out=remaining)
        self.queue_bits += (offered - capacity) * dt_s
        np.maximum(self.queue_bits, 0.0, out=self.queue_bits)
        k_bits = cfg.ecn_threshold_bytes * BITS_PER_BYTE
        mark_b = (self.queue_bits > k_bits).astype(np.float64)

        # (3) per-CC update kernels (masked fancy indexing).
        mss_bits = cfg.mss_bytes * BITS_PER_BYTE
        for code in (KERNEL_SLOW_START, KERNEL_DCTCP):
            idx = kernel_rows.get(code)
            if idx is None:
                continue
            b = bot[idx]
            mark_f = mark_b[b]
            r = r_b[b]  # step fraction of this flow's RTT
            w = window[idx]
            if code == KERNEL_DCTCP:
                a = alpha[idx]
                a += cfg.dctcp_gain * (mark_f - a) * r
                alpha[idx] = a
                cut = 1.0 - 0.5 * a * mark_f * r
            else:
                # The generic window kernel reuses the alpha column as an
                # ever-marked latch: one mark ends slow start for good.
                alpha[idx] = np.maximum(alpha[idx], mark_f)
                cut = 1.0 - 0.5 * mark_f * r
            # Slow-start doubling while the path has never pushed back
            # (alpha ~ 0 and unmarked); congestion-avoidance AI after.
            in_ss = (mark_f == 0.0) & (alpha[idx] < 1e-3)
            w = np.where(in_ss, w * exp2_r_b[b], w * cut + mss_bits * r)
            np.clip(w, mss_bits, window_cap_b[b], out=w)
            window[idx] = w
        idx = kernel_rows.get(KERNEL_DCQCN)
        if idx is not None:
            b = bot[idx]
            mark_f = mark_b[b]
            a = alpha[idx]
            a += cfg.dcqcn_alpha_gain * (mark_f - a) * (
                cfg.dt_ps / cfg.dcqcn_alpha_period_ps
            )
            alpha[idx] = a
            rr = rate[idx]
            decay = 1.0 - 0.5 * a * mark_f * (cfg.dt_ps / cfg.dcqcn_cut_period_ps)
            recover = (capacity[b] - rr) * (
                (1.0 - mark_f) * cfg.dt_ps / cfg.dcqcn_recovery_tau_ps
            )
            rr = rr * decay + recover
            np.clip(rr, cfg.min_rate_bps, capacity[b], out=rr)
            rate[idx] = rr * active[idx]

        # (4) completions: interpolate within the step for exact FCTs,
        # then recycle (closed loop) or retire (open loop) the rows.
        done = np.flatnonzero(active & (remaining <= 0.0))
        if done.size:
            overshoot = -remaining[done] / np.maximum(delivered[done], 1e-30)
            finish_ps = self.now_ps + cfg.dt_ps * (1.0 - np.minimum(overshoot, 1.0))
            self._done_fct_ps.append(finish_ps - self.start_ps[:n][done])
            self._done_bytes.append(self.size_bits[:n][done] / BITS_PER_BYTE)
            self._done_ids.append(self.flow_id[:n][done].copy())
            self.flows_completed += done.size
            if self._respawn is not None:
                sizes = self._respawn_sizes(done.size)
                self.size_bits[:n][done] = sizes * BITS_PER_BYTE
                remaining[done] = sizes * BITS_PER_BYTE
                self.start_ps[:n][done] = finish_ps
                # A respawn is a new logical flow: fresh stable id.
                self.flow_id[:n][done] = np.arange(
                    self._next_flow_id,
                    self._next_flow_id + done.size,
                    dtype=np.int64,
                )
                self._next_flow_id += done.size
                self.flows_added += done.size
                alpha[done] = 0.0
                window[done] = mss_bits
                is_dcqcn = self.kernel[:n][done] == KERNEL_DCQCN
                rate[done] = np.where(
                    is_dcqcn, capacity[bot[done]], 0.0
                )
            else:
                active[done] = False
                rate[done] = 0.0
                remaining[done] = 0.0
                self._n_active -= done.size

        if self._telemetry is not None:
            # Post-update aggregates: the state the *next* step will see,
            # except counts/offered which are this step's aggregation
            # pass (pre-completion) — documented in docs/OBSERVABILITY.md.
            self._telemetry.sample(
                self.now_ps, self.queue_bits, offered, mark_b, counts,
                int(done.size),
            )

        self.now_ps += cfg.dt_ps
        self.steps_run += 1
        self.flow_steps += self._n_active
        self._maybe_compact()

    def _respawn_sizes(self, k: int) -> np.ndarray:
        source = self._respawn
        if hasattr(source, "sample_many"):
            return source.sample_many(self.rng, k).astype(np.float64)
        return np.array(
            [source.sample_bytes(self.rng) for _ in range(k)], dtype=np.float64
        )

    # -- results ---------------------------------------------------------------

    def completions(self) -> SolverRunResult:
        """Everything completed so far, in completion order."""
        if self._done_fct_ps:
            fct_ps = np.concatenate(self._done_fct_ps)
            sizes = np.concatenate(self._done_bytes)
            ids = np.concatenate(self._done_ids)
        else:
            fct_ps = np.empty(0)
            sizes = np.empty(0)
            ids = np.empty(0, dtype=np.int64)
        return SolverRunResult(
            fcts_us=fct_ps / MICROSECOND,
            sizes_bytes=sizes,
            flow_ids=ids,
            sim_time_ps=self.now_ps,
            steps=self.steps_run,
            flow_steps=self.flow_steps,
        )

    def run_closed_loop(
        self,
        distribution: SizeDistribution,
        *,
        flows_total: int,
        max_steps: Optional[int] = None,
    ) -> SolverRunResult:
        """Step under closed-loop replacement until ``flows_total`` FCTs.

        Every completion immediately respawns a new flow in the same
        slot (constant per-bottleneck population — the closed-loop
        invariant of the paper's comprehensive test), with its size
        drawn from ``distribution`` under the solver's seeded RNG.
        """
        if flows_total <= 0:
            raise ConfigError(f"flows_total must be positive, got {flows_total}")
        if self._n_active == 0:
            raise ConfigError("seed the population with add_flows first")
        self._respawn = distribution
        try:
            steps = 0
            while self.flows_completed < flows_total:
                self._step_once()
                steps += 1
                if max_steps is not None and steps >= max_steps:
                    break
        finally:
            self._respawn = None
        result = self.completions()
        return SolverRunResult(
            fcts_us=result.fcts_us[:flows_total],
            sizes_bytes=result.sizes_bytes[:flows_total],
            flow_ids=result.flow_ids[:flows_total],
            sim_time_ps=result.sim_time_ps,
            steps=result.steps,
            flow_steps=result.flow_steps,
        )
