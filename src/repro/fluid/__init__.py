"""Flow-level (fluid) simulation for the 65,536-flow comprehensive test.

A packet-level Python simulation of 1.2 Tbps for the durations Figure 10
needs would require ~10^9 packet events; the fluid layer replaces it with
per-flow rate profiles (startup ramp + converged fair share) under the
closed-loop invariant that the per-port flow count is constant.  The
fluid model is cross-validated against the packet simulator at small
scale in the integration tests.
"""

from repro.fluid.campaign import (
    FluidCampaignPoint,
    fluid_fct_campaign,
    run_fluid_point,
)
from repro.fluid.ideal import ideal_fct_ps, ideal_fct_series_us
from repro.fluid.model import (
    FluidCcProfile,
    FluidResult,
    FluidSimulator,
    dcqcn_profile,
    dctcp_profile,
    ideal_profile,
)

__all__ = [
    "FluidCampaignPoint",
    "fluid_fct_campaign",
    "run_fluid_point",
    "ideal_fct_ps",
    "ideal_fct_series_us",
    "FluidCcProfile",
    "FluidResult",
    "FluidSimulator",
    "dcqcn_profile",
    "dctcp_profile",
    "ideal_profile",
]
