"""Flow-level (fluid) simulation for the 65,536-flow comprehensive test.

A packet-level Python simulation of 1.2 Tbps for the durations Figure 10
needs would require ~10^9 packet events; the fluid layer replaces it with
per-flow rate profiles (startup ramp + converged fair share) under the
closed-loop invariant that the per-port flow count is constant.  The
fluid model is cross-validated against the packet simulator at small
scale in the integration tests.
"""

from repro.fluid.campaign import (
    FLUID_BACKENDS,
    FluidCampaignPoint,
    fluid_fct_campaign,
    run_fluid_point,
    run_fluid_result,
)
from repro.fluid.ideal import ideal_fct_ps, ideal_fct_series_us
from repro.fluid.model import (
    FluidCcProfile,
    FluidResult,
    FluidSimulator,
    dcqcn_profile,
    dctcp_profile,
    ideal_profile,
)
from repro.fluid.solver import (
    ColumnarFluidSolver,
    SolverConfig,
    SolverRunResult,
    kernel_for_profile,
)

__all__ = [
    "FLUID_BACKENDS",
    "FluidCampaignPoint",
    "fluid_fct_campaign",
    "run_fluid_point",
    "run_fluid_result",
    "ColumnarFluidSolver",
    "SolverConfig",
    "SolverRunResult",
    "kernel_for_profile",
    "ideal_fct_ps",
    "ideal_fct_series_us",
    "FluidCcProfile",
    "FluidResult",
    "FluidSimulator",
    "dcqcn_profile",
    "dctcp_profile",
    "ideal_profile",
]
