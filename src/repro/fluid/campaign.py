"""Fluid-model FCT campaigns sharded across a process pool.

The Figure 10 comprehensive test is a grid — CC algorithm × per-port
flow count — of *independent* fluid runs, each sampling 10⁴–10⁵ flows.
:func:`fluid_fct_campaign` maps that grid onto a
:class:`~repro.parallel.CampaignRunner`, returning compact per-cell
summaries (workers return summaries rather than raw FCT arrays so a
large campaign does not ship megabytes of samples through the pipe).

Per-cell seeds are spawned deterministically from the campaign seed and
the cell's grid position, so campaign results are bit-identical at any
worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigError
from repro.fluid.model import FluidCcProfile, FluidResult, FluidSimulator
from repro.fluid.solver import ColumnarFluidSolver, SolverConfig, kernel_for_profile
from repro.obs import flight
from repro.parallel import CampaignResult, CampaignRunner, derive_task_seed, report_events
from repro.units import RATE_100G
from repro.workload.distributions import EmpiricalCdf

#: Fluid execution backends: the closed-form per-flow FCT kernel (exact,
#: static populations) and the time-stepped columnar solver (dynamic
#: feedback, 10^5-10^6 concurrent flows per process).
FLUID_BACKENDS = ("closed_form", "columnar")


@dataclass(frozen=True)
class FluidCampaignPoint:
    """Summary of one (profile, flows-per-port) campaign cell."""

    algorithm: str
    workload: str
    flows_per_port: int
    flows_total: int
    mean_fct_us: float
    p50_fct_us: float
    p99_fct_us: float
    throughput_bps: float


def _run_columnar(
    profile: FluidCcProfile,
    distribution: EmpiricalCdf,
    *,
    flows_per_port: int,
    flows_total: int,
    n_ports: int,
    port_capacity_bps: float,
    seed: int,
    dt_ps: Optional[int],
    timeseries_dir: Optional[Union[str, Path]] = None,
    timeseries_sample_every: int = 1,
) -> FluidResult:
    """One closed-loop columnar run shaped like a closed-form one.

    With ``timeseries_dir`` set, per-step bottleneck aggregates are
    sampled (see :class:`~repro.fluid.solver.SolverTelemetry`) and saved
    as ``timeseries-<alg>-fpp<N>.npz`` in that directory.  Sampling only
    reads solver state, so the run stays bit-identical.
    """
    config = SolverConfig() if dt_ps is None else SolverConfig(dt_ps=dt_ps)
    solver = ColumnarFluidSolver(
        n_bottlenecks=n_ports,
        capacity_bps=port_capacity_bps,
        config=config,
        seed=seed,
        capacity_hint=n_ports * flows_per_port,
    )
    if timeseries_dir is not None:
        solver.enable_telemetry(sample_every=timeseries_sample_every)
    flight.attach(solver=solver)
    bottleneck = np.repeat(
        np.arange(n_ports, dtype=np.int32), flows_per_port
    )
    sizes = distribution.sample_many(solver.rng, bottleneck.size)
    solver.add_flows(
        sizes, bottleneck=bottleneck, kernel=kernel_for_profile(profile)
    )
    run = solver.run_closed_loop(distribution, flows_total=flows_total)
    report_events(run.flow_steps)
    if timeseries_dir is not None and solver.telemetry is not None:
        out_dir = Path(timeseries_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        solver.telemetry.save(
            out_dir / f"timeseries-{profile.name}-fpp{flows_per_port}.npz"
        )
    return FluidResult(
        algorithm=profile.name,
        fcts_us=run.fcts_us,
        sizes_bytes=run.sizes_bytes,
        n_flows_per_port=flows_per_port,
        n_ports=n_ports,
        capacity_bps=port_capacity_bps,
    )


def run_fluid_result(
    profile: FluidCcProfile,
    distribution: EmpiricalCdf,
    *,
    flows_per_port: int,
    flows_total: int,
    n_ports: int = 12,
    port_capacity_bps: float = RATE_100G,
    seed: int = 0,
    backend: str = "closed_form",
    dt_ps: Optional[int] = None,
    timeseries_dir: Optional[Union[str, Path]] = None,
    timeseries_sample_every: int = 1,
) -> FluidResult:
    """One full fluid run on the selected backend, raw FCT arrays and all.

    ``backend="closed_form"`` integrates each flow's rate profile
    exactly; ``backend="columnar"`` runs the time-stepped columnar
    solver (dynamic queue/marking feedback, million-flow scale).
    ``timeseries_dir`` (columnar only) saves per-step bottleneck
    aggregates as an ``.npz`` timeseries.
    """
    if backend not in FLUID_BACKENDS:
        raise ConfigError(
            f"unknown fluid backend {backend!r}; choose from {FLUID_BACKENDS}"
        )
    if timeseries_dir is not None and backend != "columnar":
        raise ConfigError(
            "timeseries output is a columnar-solver feature; "
            f"backend {backend!r} does not step per-bottleneck state"
        )
    if backend == "columnar":
        return _run_columnar(
            profile,
            distribution,
            flows_per_port=flows_per_port,
            flows_total=flows_total,
            n_ports=n_ports,
            port_capacity_bps=port_capacity_bps,
            seed=seed,
            dt_ps=dt_ps,
            timeseries_dir=timeseries_dir,
            timeseries_sample_every=timeseries_sample_every,
        )
    fluid = FluidSimulator(
        n_ports=n_ports,
        flows_per_port=flows_per_port,
        port_capacity_bps=port_capacity_bps,
        seed=seed,
    )
    result = fluid.run(profile, distribution, flows_total=flows_total)
    report_events(result.total_flows)
    return result


def run_fluid_point(
    profile: FluidCcProfile,
    distribution: EmpiricalCdf,
    *,
    workload: str = "custom",
    flows_per_port: int,
    flows_total: int,
    n_ports: int = 12,
    port_capacity_bps: float = RATE_100G,
    seed: int = 0,
    backend: str = "closed_form",
    dt_ps: Optional[int] = None,
    timeseries_dir: Optional[Union[str, Path]] = None,
    timeseries_sample_every: int = 1,
) -> FluidCampaignPoint:
    """One campaign cell: a full fluid run reduced to its FCT summary.

    Top level and closure-free so it pickles into pool workers; see
    :func:`run_fluid_result` for the backend semantics (including
    ``timeseries_dir``, which works pooled because each cell writes its
    own distinctly named ``.npz``).
    """
    result = run_fluid_result(
        profile,
        distribution,
        flows_per_port=flows_per_port,
        flows_total=flows_total,
        n_ports=n_ports,
        port_capacity_bps=port_capacity_bps,
        seed=seed,
        backend=backend,
        dt_ps=dt_ps,
        timeseries_dir=timeseries_dir,
        timeseries_sample_every=timeseries_sample_every,
    )
    fcts = result.fcts_us
    return FluidCampaignPoint(
        algorithm=profile.name,
        workload=workload,
        flows_per_port=flows_per_port,
        flows_total=result.total_flows,
        mean_fct_us=float(np.mean(fcts)) if fcts.size else 0.0,
        p50_fct_us=float(np.percentile(fcts, 50)) if fcts.size else 0.0,
        p99_fct_us=float(np.percentile(fcts, 99)) if fcts.size else 0.0,
        throughput_bps=result.throughput_bps(),
    )


def fluid_fct_campaign(
    profiles: Sequence[FluidCcProfile],
    distribution: EmpiricalCdf,
    *,
    workload: str = "custom",
    flows_per_port_levels: Sequence[int] = (8,),
    flows_total: int = 50_000,
    n_ports: int = 12,
    port_capacity_bps: float = RATE_100G,
    workers: int = 1,
    seed: int = 0,
    backend: str = "closed_form",
    dt_ps: Optional[int] = None,
    runner: Optional[CampaignRunner] = None,
    timeseries_dir: Optional[Union[str, Path]] = None,
    timeseries_sample_every: int = 1,
    on_heartbeat: Optional[Any] = None,
) -> tuple[list[FluidCampaignPoint], CampaignResult]:
    """Run the profile × load grid, sharded across ``workers`` processes.

    Cells come back in grid order (profiles major, load levels minor)
    with the campaign's wall-clock/event statistics alongside.
    ``backend`` selects the per-cell fluid engine (see
    :func:`run_fluid_point`).
    """
    if not profiles:
        raise ConfigError("fluid campaign needs at least one CC profile")
    if not flows_per_port_levels:
        raise ConfigError("fluid campaign needs at least one load level")
    if backend not in FLUID_BACKENDS:
        raise ConfigError(
            f"unknown fluid backend {backend!r}; choose from {FLUID_BACKENDS}"
        )
    tasks = []
    for profile_index, profile in enumerate(profiles):
        for level_index, flows_per_port in enumerate(flows_per_port_levels):
            tasks.append(
                {
                    "profile": profile,
                    "distribution": distribution,
                    "workload": workload,
                    "flows_per_port": flows_per_port,
                    "flows_total": flows_total,
                    "n_ports": n_ports,
                    "port_capacity_bps": port_capacity_bps,
                    "backend": backend,
                    "dt_ps": dt_ps,
                    "seed": derive_task_seed(seed, profile_index, level_index),
                    "timeseries_dir": (
                        str(timeseries_dir) if timeseries_dir is not None else None
                    ),
                    "timeseries_sample_every": timeseries_sample_every,
                }
            )
    own_runner = runner is None
    active = runner if runner is not None else CampaignRunner(workers=workers)
    try:
        campaign = active.run(run_fluid_point, tasks, on_heartbeat=on_heartbeat)
    finally:
        if own_runner:
            active.close()
    return campaign.values(), campaign
