"""Flow-level CC model for the comprehensive test (Figure 10).

Under closed-loop load the per-port flow population is constant at ``n``,
so the long-run fair share of every flow is ``rho * C / n`` where ``rho``
is the algorithm's bottleneck utilization.  What distinguishes
algorithms at the short-flow end is the *startup rate profile*:

* **DCTCP** starts at one packet per RTT and doubles each RTT (slow
  start) until it reaches the fair share — a 10 kB flow completes in a
  handful of RTTs, far *faster* than its equal-share time but slower
  than a line-rate burst;
* **DCQCN** starts at line rate and is cut toward the fair share by CNPs
  with an exponential time constant — short flows complete in roughly a
  serialization time plus an RTT, the "significant improvement ... when
  sending short flows" the paper observes;
* the **ideal** reference sends at exactly ``C / n`` from the first byte.

For each flow the model integrates its rate profile until the flow's
bytes are exhausted, giving a closed-form FCT; closed-loop sequencing
(arrival == previous completion) strings flows through per-slot
timelines.  An optional lognormal jitter models queueing/scheduling
noise; it is deterministic under the experiment seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.units import BITS_PER_BYTE, MICROSECOND, RATE_100G, SECOND
from repro.workload.distributions import EmpiricalCdf


@dataclass(frozen=True)
class FluidCcProfile:
    """Startup/steady-state rate profile of one CC algorithm."""

    name: str
    #: Bottleneck utilization at convergence (fraction of C shared).
    utilization: float
    #: "slow_start": rate doubles each RTT from one MSS/RTT.
    #: "line_rate_decay": rate starts at C and decays exp. to fair share.
    #: "constant": rate is the fair share from t=0 (the ideal).
    startup: str
    #: Time constant of the line-rate decay (ps), for DCQCN-style ramps.
    decay_tau_ps: float = 0.0
    #: Lognormal FCT jitter sigma (0 disables).
    jitter_sigma: float = 0.0

    def validate(self) -> None:
        if not 0.0 < self.utilization <= 1.0:
            raise ConfigError(f"utilization must be in (0, 1], got {self.utilization}")
        if self.startup not in ("slow_start", "line_rate_decay", "constant"):
            raise ConfigError(f"unknown startup profile {self.startup!r}")
        if self.startup == "line_rate_decay" and self.decay_tau_ps <= 0:
            raise ConfigError("line_rate_decay needs a positive decay_tau_ps")


def dctcp_profile(*, jitter_sigma: float = 0.35) -> FluidCcProfile:
    """DCTCP: slow-start ramp, high utilization, visible oscillation."""
    return FluidCcProfile(
        name="dctcp",
        utilization=0.94,
        startup="slow_start",
        jitter_sigma=jitter_sigma,
    )


def dcqcn_profile(
    *, decay_tau_us: float = 120.0, jitter_sigma: float = 0.25
) -> FluidCcProfile:
    """DCQCN: line-rate start decaying to fair share over ~CNP timescales."""
    return FluidCcProfile(
        name="dcqcn",
        utilization=0.96,
        startup="line_rate_decay",
        decay_tau_ps=decay_tau_us * MICROSECOND,
        jitter_sigma=jitter_sigma,
    )


def ideal_profile() -> FluidCcProfile:
    return FluidCcProfile(name="ideal", utilization=1.0, startup="constant")


@dataclass
class FluidResult:
    """Outcome of one fluid run."""

    algorithm: str
    fcts_us: np.ndarray
    sizes_bytes: np.ndarray
    n_flows_per_port: int
    n_ports: int
    capacity_bps: float

    @property
    def total_flows(self) -> int:
        return int(self.fcts_us.size)

    def throughput_bps(self) -> float:
        """Aggregate goodput implied by the closed-loop timelines."""
        # Each slot is always busy moving its flow's bytes; aggregate rate
        # is total bytes / per-slot elapsed time summed over slots.
        total_bits = float(np.sum(self.sizes_bytes)) * BITS_PER_BYTE
        slot_time_us = float(np.sum(self.fcts_us)) / (
            self.n_flows_per_port * self.n_ports
        )
        if slot_time_us <= 0:
            return 0.0
        per_slot_bits = total_bits / (self.n_flows_per_port * self.n_ports)
        return per_slot_bits / (slot_time_us * 1e-6)


class FluidSimulator:
    """Closed-loop fluid FCT simulator for one tester."""

    def __init__(
        self,
        *,
        n_ports: int = 12,
        flows_per_port: int,
        port_capacity_bps: float = RATE_100G,
        base_rtt_ps: int = 6 * MICROSECOND,
        mss_bytes: int = 1000,
        ecn_threshold_bytes: int = 84_000,
        cnp_reaction_ps: int = 50 * MICROSECOND,
        seed: int = 0,
    ) -> None:
        if flows_per_port <= 0:
            raise ConfigError(f"flows_per_port must be positive, got {flows_per_port}")
        if n_ports <= 0:
            raise ConfigError(f"n_ports must be positive, got {n_ports}")
        self.n_ports = n_ports
        self.flows_per_port = flows_per_port
        self.port_capacity_bps = port_capacity_bps
        self.base_rtt_ps = base_rtt_ps
        self.mss_bytes = mss_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.cnp_reaction_ps = cnp_reaction_ps
        #: Transient overshoot a ramping flow sustains before congestion
        #: feedback pins it to the fair share (slow-start windows double
        #: for ~log2(overshoot) rounds past the fair rate).
        self.ramp_overshoot = 8.0
        self.seed = seed

    def effective_rtt_ps(self) -> float:
        """RTT including the ECN-managed standing queue, inflated when the
        per-flow fair share falls below one window-floor packet per RTT.

        Window algorithms cannot send less than one packet per RTT, so
        with ``n`` flows whose floor demand exceeds capacity the queue
        (and hence the RTT) grows until ``n * mss / rtt == C``.
        """
        ecn_delay = self.ecn_threshold_bytes * 8 * SECOND / self.port_capacity_bps
        base = self.base_rtt_ps + ecn_delay
        mss_bits = self.mss_bytes * BITS_PER_BYTE
        floor_rtt = (
            self.flows_per_port * mss_bits * SECOND / self.port_capacity_bps
        )
        return max(base, floor_rtt)

    # -- closed-form per-flow FCT --------------------------------------------------

    def flow_fct_ps(self, size_bytes: float, profile: FluidCcProfile) -> float:
        """Integrate the rate profile until ``size_bytes`` are delivered."""
        profile.validate()
        capacity = self.port_capacity_bps
        fair_bps = profile.utilization * capacity / self.flows_per_port
        bits = size_bytes * BITS_PER_BYTE
        if profile.startup == "constant":
            return bits / fair_bps * SECOND
        if profile.startup == "slow_start":
            return self._slow_start_fct_ps(bits, fair_bps)
        return self._decay_fct_ps(bits, fair_bps, profile.decay_tau_ps / SECOND)

    def _slow_start_fct_ps(self, bits: float, fair_bps: float) -> float:
        """Slow start doubling per effective RTT, then the fair share.

        A new flow's first windows outrun the long-run fair share — the
        transient unfairness that lets short flows beat equal-share FCT
        (the Figure 10 inset).  The ramp exits once the flow's rate
        reaches ``ramp_overshoot`` times the fair share (ECN marks take a
        few RTTs to tame the doubling) or a quarter of port capacity,
        whichever is lower; after that, feedback pins it to the fair
        share.
        """
        rtt_s = self.effective_rtt_ps() / SECOND
        mss_bits = self.mss_bytes * BITS_PER_BYTE
        ramp_exit_bps = min(
            self.port_capacity_bps / 4.0, self.ramp_overshoot * fair_bps
        )
        sent = 0.0
        round_bits = mss_bits
        elapsed_s = 0.0
        while round_bits / rtt_s < ramp_exit_bps:
            if sent + round_bits >= bits:
                # Finishes inside this round; a partial round still costs
                # (at least) the RTT to get the acknowledgements back.
                return (elapsed_s + rtt_s) * SECOND
            sent += round_bits
            elapsed_s += rtt_s
            round_bits *= 2.0
        # Converged: remaining bits at the fair share.
        remaining = max(bits - sent, 0.0)
        return (elapsed_s + remaining / fair_bps + rtt_s) * SECOND

    def _decay_fct_ps(self, bits: float, fair_bps: float, tau_s: float) -> float:
        """Rate C*e^(-t/tau) + fair*(1 - e^(-t/tau)), integrated exactly.

        Cumulative bits by time t: fair*t + extra(t), where the exponential
        head-start term extra(t) = (C - fair)*tau*(1 - e^(-t/tau)) is capped
        at the burst a flow can inject before CNPs throttle it — about
        C * (base RTT + CNP reaction time) of port time, shared with the
        other ramping flows (scaled down by sqrt(n), the typical number of
        concurrently bursting newcomers).  Monotone in t, solved by
        bisection; plus one *effective* RTT — the first packets must drain
        through the standing queue before their acknowledgements return.
        """
        capacity = self.port_capacity_bps
        rtt_s = self.effective_rtt_ps() / SECOND
        burst_cap_bits = (
            capacity
            * (self.base_rtt_ps + self.cnp_reaction_ps)
            / SECOND
            / math.sqrt(self.flows_per_port)
        )

        def delivered(t: float) -> float:
            extra = (capacity - fair_bps) * tau_s * (1.0 - math.exp(-t / tau_s))
            return fair_bps * t + min(extra, burst_cap_bits)

        low, high = 0.0, bits / fair_bps + 10.0 * tau_s
        for _ in range(80):
            mid = (low + high) / 2.0
            if delivered(mid) < bits:
                low = mid
            else:
                high = mid
        t_s = max(high, bits / capacity)
        return (t_s + rtt_s) * SECOND

    # -- batch simulation -----------------------------------------------------------

    def run(
        self,
        profile: FluidCcProfile,
        distribution: EmpiricalCdf,
        *,
        flows_total: int,
        duration_limit_us: Optional[float] = None,
    ) -> FluidResult:
        """Simulate ``flows_total`` closed-loop flows and collect FCTs.

        Vectorized over flows (the 65,536-flow Figure 10 runs sample
        100k+ flows); equivalence with the scalar :meth:`flow_fct_ps` is
        a test-suite invariant.
        """
        rng = np.random.default_rng(self.seed)
        sizes = distribution.sample_many(rng, flows_total)
        fcts_ps = self._fct_batch_ps(sizes.astype(float), profile)
        fcts_us = fcts_ps / MICROSECOND
        if profile.jitter_sigma > 0:
            jitter = rng.lognormal(0.0, profile.jitter_sigma, flows_total)
            fcts_us = fcts_us * jitter
        if duration_limit_us is not None:
            mask = fcts_us <= duration_limit_us
            fcts_us = fcts_us[mask]
            sizes = sizes[mask]
        return FluidResult(
            algorithm=profile.name,
            fcts_us=fcts_us,
            sizes_bytes=sizes,
            n_flows_per_port=self.flows_per_port,
            n_ports=self.n_ports,
            capacity_bps=self.port_capacity_bps,
        )

    # -- vectorized kernels -------------------------------------------------------

    def _fct_batch_ps(
        self, sizes_bytes: np.ndarray, profile: FluidCcProfile
    ) -> np.ndarray:
        profile.validate()
        fair_bps = profile.utilization * self.port_capacity_bps / self.flows_per_port
        bits = sizes_bytes * BITS_PER_BYTE
        if profile.startup == "constant":
            return bits / fair_bps * SECOND
        if profile.startup == "slow_start":
            return self._slow_start_batch_ps(bits, fair_bps)
        return self._decay_batch_ps(bits, fair_bps, profile.decay_tau_ps / SECOND)

    def _slow_start_batch_ps(self, bits: np.ndarray, fair_bps: float) -> np.ndarray:
        """Vectorized mirror of :meth:`_slow_start_fct_ps`.

        The ramp has a fixed number of rounds K (independent of flow
        size): round k delivers ``mss * 2^k`` bits.  A flow finishing in
        round k costs (k rounds + 1) RTTs; a flow outliving the ramp pays
        K RTTs plus its remainder at the fair share plus one RTT.
        """
        rtt_s = self.effective_rtt_ps() / SECOND
        mss_bits = float(self.mss_bytes * BITS_PER_BYTE)
        ramp_exit_bps = min(
            self.port_capacity_bps / 4.0, self.ramp_overshoot * fair_bps
        )
        # Cumulative bits through each ramp round, until the exit rate.
        ends = []
        round_bits = mss_bits
        total = 0.0
        while round_bits / rtt_s < ramp_exit_bps:
            total += round_bits
            ends.append(total)  # bits delivered through round k
            round_bits *= 2.0
        ramp_rounds = len(ends)
        sent_in_ramp = total

        fct_s = np.empty_like(bits)
        if ramp_rounds > 0:
            ends_arr = np.asarray(ends)
            # A flow finishes in the first round k with ends[k] >= bits,
            # costing k full round-trips (matching the scalar loop).
            finish_round = np.searchsorted(ends_arr, bits, side="left")
            in_ramp = bits <= sent_in_ramp
            fct_s[in_ramp] = finish_round[in_ramp] * rtt_s
        else:
            in_ramp = np.zeros(bits.shape, dtype=bool)
        beyond = ~in_ramp
        fct_s[beyond] = ramp_rounds * rtt_s + (bits[beyond] - sent_in_ramp) / fair_bps
        return (fct_s + rtt_s) * SECOND

    def _decay_batch_ps(
        self, bits: np.ndarray, fair_bps: float, tau_s: float
    ) -> np.ndarray:
        """Vectorized mirror of :meth:`_decay_fct_ps` (batched bisection)."""
        capacity = self.port_capacity_bps
        rtt_s = self.effective_rtt_ps() / SECOND
        burst_cap_bits = (
            capacity
            * (self.base_rtt_ps + self.cnp_reaction_ps)
            / SECOND
            / math.sqrt(self.flows_per_port)
        )

        def delivered(t: np.ndarray) -> np.ndarray:
            extra = (capacity - fair_bps) * tau_s * (1.0 - np.exp(-t / tau_s))
            return fair_bps * t + np.minimum(extra, burst_cap_bits)

        low = np.zeros_like(bits)
        high = bits / fair_bps + 10.0 * tau_s
        for _ in range(80):
            mid = (low + high) / 2.0
            under = delivered(mid) < bits
            low = np.where(under, mid, low)
            high = np.where(under, high, mid)
        t_s = np.maximum(high, bits / capacity)
        return (t_s + rtt_s) * SECOND
