"""The ideal FCT reference (paper Section 7.5, Figure 10).

"As a reference, we calculated the ideal FCT under this scheduling,
where each flow evenly shares the bandwidth at all times."

Under closed-loop generation the number of concurrent flows per port is
constant (a completing flow is immediately replaced), so the ideal
processor-sharing rate of every flow is exactly ``capacity / n`` at all
times and the ideal FCT is ``size * n / capacity`` — the size
distribution transformed by a constant factor.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.units import BITS_PER_BYTE, MICROSECOND, SECOND


def ideal_fct_ps(size_bytes: int, n_flows_sharing: int, capacity_bps: float) -> int:
    """Ideal (equal-share) completion time for one flow, picoseconds."""
    if size_bytes <= 0:
        raise ValueError(f"size must be positive, got {size_bytes}")
    if n_flows_sharing <= 0:
        raise ValueError(f"flow count must be positive, got {n_flows_sharing}")
    if capacity_bps <= 0:
        raise ValueError(f"capacity must be positive, got {capacity_bps}")
    bits = size_bytes * BITS_PER_BYTE
    return int(bits * n_flows_sharing * SECOND / capacity_bps)


def ideal_fct_series_us(
    sizes_bytes: Sequence[int] | np.ndarray,
    n_flows_sharing: int,
    capacity_bps: float,
) -> np.ndarray:
    """Vectorized ideal FCTs in microseconds for a batch of flow sizes."""
    sizes = np.asarray(sizes_bytes, dtype=float)
    if np.any(sizes <= 0):
        raise ValueError("all sizes must be positive")
    fct_seconds = sizes * BITS_PER_BYTE * n_flows_sharing / capacity_bps
    return fct_seconds * (SECOND / MICROSECOND)
