"""Fairness metrics for the scheduling and congestion tests."""

from __future__ import annotations

from typing import Sequence


def jain_index(rates: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 means perfectly equal shares.

    For ``n`` flows the index is ``(sum r)^2 / (n * sum r^2)``, ranging
    from ``1/n`` (one flow hogs everything) to ``1`` (equal rates).
    """
    if not rates:
        raise ValueError("jain_index requires at least one rate")
    if any(rate < 0 for rate in rates):
        raise ValueError("rates must be non-negative")
    total = sum(rates)
    if total == 0:
        return 1.0
    square_sum = sum(rate * rate for rate in rates)
    return (total * total) / (len(rates) * square_sum)
