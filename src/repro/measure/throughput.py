"""Windowed throughput measurement.

:class:`RateMeter` accumulates bytes and converts to bits per second over
closed windows; :class:`ThroughputSampler` samples a set of meters
periodically (the control plane polling hardware rate registers) and
yields the per-flow/per-port timeseries behind Figures 6-8.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer
from repro.units import BITS_PER_BYTE, SECOND


class RateMeter:
    """Byte accumulator with windowed rate readout."""

    def __init__(self, name: str = "meter") -> None:
        self.name = name
        self.total_bytes = 0
        self.total_packets = 0
        self._window_bytes = 0

    def count(self, n_bytes: int) -> None:
        self.total_bytes += n_bytes
        self.total_packets += 1
        self._window_bytes += n_bytes

    def take_window_bps(self, window_ps: int) -> float:
        """Rate over the window just ended; resets the window accumulator."""
        if window_ps <= 0:
            raise ValueError(f"window must be positive, got {window_ps}")
        bits = self._window_bytes * BITS_PER_BYTE
        self._window_bytes = 0
        return bits * SECOND / window_ps


@dataclass
class ThroughputSample:
    time_ps: int
    rates_bps: dict[str, float]


class ThroughputSampler:
    """Samples a family of rate meters on a fixed period."""

    def __init__(self, sim: Simulator, period_ps: int) -> None:
        self.sim = sim
        self.period_ps = period_ps
        self.meters: dict[str, RateMeter] = {}
        self.samples: list[ThroughputSample] = []
        self._timer = PeriodicTimer(sim, period_ps, self._sample)

    def meter(self, name: str) -> RateMeter:
        meter = self.meters.get(name)
        if meter is None:
            meter = RateMeter(name)
            self.meters[name] = meter
        return meter

    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        self._timer.cancel()

    def _sample(self) -> None:
        self.samples.append(
            ThroughputSample(
                time_ps=self.sim.now,
                rates_bps={
                    name: meter.take_window_bps(self.period_ps)
                    for name, meter in self.meters.items()
                },
            )
        )

    def series(self, name: str) -> tuple[list[int], list[float]]:
        """``(times_ps, rates_bps)`` for one meter across all samples."""
        times: list[int] = []
        rates: list[float] = []
        for sample in self.samples:
            if name in sample.rates_bps:
                times.append(sample.time_ps)
                rates.append(sample.rates_bps[name])
        return times, rates

    def total_series(self) -> tuple[list[int], list[float]]:
        """``(times_ps, sum_of_all_meters_bps)`` per sample."""
        times = [sample.time_ps for sample in self.samples]
        totals = [sum(sample.rates_bps.values()) for sample in self.samples]
        return times, totals
