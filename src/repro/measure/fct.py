"""Flow-completion-time collection and CDF statistics (Figures 9-10)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.units import MICROSECOND


@dataclass(frozen=True)
class FctRecord:
    flow_id: int
    size_packets: int
    size_bytes: int
    start_ps: int
    finish_ps: int

    @property
    def fct_ps(self) -> int:
        return self.finish_ps - self.start_ps

    @property
    def fct_us(self) -> float:
        return self.fct_ps / MICROSECOND


@dataclass(frozen=True)
class FctStats:
    count: int
    mean_us: float
    p50_us: float
    p95_us: float
    p99_us: float
    max_us: float


class FctCollector:
    """Accumulates per-flow completion records."""

    def __init__(self) -> None:
        self.records: list[FctRecord] = []

    def add(
        self,
        flow_id: int,
        size_packets: int,
        size_bytes: int,
        start_ps: int,
        finish_ps: int,
    ) -> None:
        if finish_ps < start_ps:
            raise ValueError(
                f"flow {flow_id}: finish {finish_ps} before start {start_ps}"
            )
        self.records.append(
            FctRecord(flow_id, size_packets, size_bytes, start_ps, finish_ps)
        )

    def __len__(self) -> int:
        return len(self.records)

    def fcts_us(self) -> np.ndarray:
        return np.array([record.fct_us for record in self.records], dtype=float)

    def stats(self) -> FctStats:
        if not self.records:
            raise ValueError("no FCT records collected")
        fcts = self.fcts_us()
        return FctStats(
            count=len(fcts),
            mean_us=float(np.mean(fcts)),
            p50_us=float(np.percentile(fcts, 50)),
            p95_us=float(np.percentile(fcts, 95)),
            p99_us=float(np.percentile(fcts, 99)),
            max_us=float(np.max(fcts)),
        )

    def short_flow_stats(self, cutoff_bytes: int) -> FctStats:
        """Stats restricted to flows at or below ``cutoff_bytes`` (the
        short-flow comparison in Figure 10)."""
        subset = FctCollector()
        subset.records = [r for r in self.records if r.size_bytes <= cutoff_bytes]
        return subset.stats()


def cdf_points(values_us: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: sorted values and cumulative probabilities."""
    values = np.sort(np.asarray(values_us, dtype=float))
    if values.size == 0:
        raise ValueError("cannot build a CDF from no values")
    probabilities = np.arange(1, values.size + 1) / values.size
    return values, probabilities
