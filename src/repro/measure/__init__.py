"""Measurement: throughput timeseries, FCT statistics, fairness.

The paper's control plane reads hardware registers for port/flow rates
and packet loss (Section 3.2); these helpers are the analysis layer on
top of those counters and the FPGA's FCT reports.
"""

from repro.measure.throughput import RateMeter, ThroughputSampler
from repro.measure.fct import FctCollector, FctStats, cdf_points
from repro.measure.fairness import jain_index
from repro.measure.export import (
    counters_to_json,
    fct_to_csv,
    throughput_to_csv,
    trace_to_json,
)
from repro.measure.convergence import convergence_time_ps, fairness_series

__all__ = [
    "RateMeter",
    "ThroughputSampler",
    "FctCollector",
    "FctStats",
    "cdf_points",
    "jain_index",
    "counters_to_json",
    "fct_to_csv",
    "throughput_to_csv",
    "trace_to_json",
    "convergence_time_ps",
    "fairness_series",
]
