"""Export measurement artifacts to CSV and JSON.

The control plane "retrieves data ... to evaluate the network
performance" (Section 3.2); downstream users then want those artifacts
in tool-friendly formats.  Everything here writes plain stdlib CSV/JSON
— no extra dependencies — and every writer returns the path it wrote.

Empty collectors still produce valid artifacts: the CSV writers emit
their header row and the JSON writers an empty object, so downstream
tooling (and the round-trip tests in ``tests/test_measure_export.py``)
never special-case a run that recorded nothing.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.measure.fct import FctCollector
from repro.measure.throughput import ThroughputSampler
from repro.sim.trace import TraceRecorder
from repro.units import MICROSECOND

PathLike = Union[str, Path]


def fct_to_csv(collector: FctCollector, path: PathLike) -> Path:
    """One row per completed flow: id, size, start/finish, FCT (us)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["flow_id", "size_packets", "size_bytes", "start_ps", "finish_ps", "fct_us"]
        )
        for record in collector.records:
            writer.writerow(
                [
                    record.flow_id,
                    record.size_packets,
                    record.size_bytes,
                    record.start_ps,
                    record.finish_ps,
                    f"{record.fct_us:.3f}",
                ]
            )
    return path


def throughput_to_csv(sampler: ThroughputSampler, path: PathLike) -> Path:
    """One row per sample period, one column per meter (bps)."""
    path = Path(path)
    meters = sorted(sampler.meters)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_us"] + meters)
        for sample in sampler.samples:
            writer.writerow(
                [f"{sample.time_ps / MICROSECOND:.3f}"]
                + [f"{sample.rates_bps.get(name, 0.0):.0f}" for name in meters]
            )
    return path


def _json_default(value: object) -> Union[float, str]:
    """Coerce non-JSON values: numerics (numpy scalars) to float,
    anything else to its string form rather than crashing the export."""
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return str(value)


def trace_to_json(trace: TraceRecorder, path: PathLike) -> Path:
    """All channels of a trace (e.g. the QDMA log) as one JSON object."""
    path = Path(path)
    payload = {
        channel: [
            {"time_ps": record.time_ps, **record.fields}
            for record in trace.channel(channel)
        ]
        for channel in trace.channels()
    }
    path.write_text(json.dumps(payload, indent=1, default=_json_default) + "\n")
    return path


def counters_to_json(counters: dict[str, int], path: PathLike) -> Path:
    """The merged hardware-register snapshot."""
    path = Path(path)
    path.write_text(
        json.dumps(counters, indent=1, sort_keys=True, default=_json_default) + "\n"
    )
    return path
