"""Convergence-time analysis for throughput timeseries.

The Figure 8 congestion test is really a statement about *convergence*:
after a flow arrives at (or departs from) a bottleneck, how long until
the survivors share fairly again?  These helpers extract that number
from a :class:`~repro.measure.throughput.ThroughputSampler` timeline.
"""

from __future__ import annotations

from typing import Optional

from repro.measure.fairness import jain_index
from repro.measure.throughput import ThroughputSampler


def fairness_series(
    sampler: ThroughputSampler,
    *,
    prefix: str = "flow",
    min_rate_bps: float = 1e9,
) -> tuple[list[int], list[float]]:
    """Jain index over time, across meters with ``prefix`` whose rate in
    a sample exceeds ``min_rate_bps`` (inactive flows are excluded)."""
    times: list[int] = []
    values: list[float] = []
    for sample in sampler.samples:
        rates = [
            rate
            for name, rate in sample.rates_bps.items()
            if name.startswith(prefix) and rate >= min_rate_bps
        ]
        if rates:
            times.append(sample.time_ps)
            values.append(jain_index(rates))
    return times, values


def convergence_time_ps(
    sampler: ThroughputSampler,
    event_ps: int,
    *,
    threshold: float = 0.95,
    hold_samples: int = 3,
    prefix: str = "flow",
    min_rate_bps: float = 1e9,
) -> Optional[int]:
    """Time from ``event_ps`` until fairness first reaches ``threshold``
    and holds it for ``hold_samples`` consecutive samples.

    Returns None if fairness never converges within the timeline.
    """
    if hold_samples < 1:
        raise ValueError(f"hold_samples must be >= 1, got {hold_samples}")
    times, values = fairness_series(
        sampler, prefix=prefix, min_rate_bps=min_rate_bps
    )
    run = 0
    for time_ps, fairness in zip(times, values):
        if time_ps < event_ps:
            continue
        if fairness >= threshold:
            run += 1
            if run >= hold_samples:
                return time_ps - event_ps
        else:
            run = 0
    return None
