"""Sharded campaign execution (the ROADMAP's scale-out layer).

Marlin's operator story is running *many* configurations at high
throughput to find the optimal one.  A single simulation is bound to one
core, but campaign tasks — sweep grid points, seed replicates, fluid
campaigns, scaling rows — are independent by construction, so the
:class:`CampaignRunner` shards them across a process pool:

* **chunked batching** — tasks are submitted in chunks so per-task IPC
  overhead amortizes over a chunk;
* **warm workers** — a pool initializer imports the heavy modules once
  per worker, so every task after the first finds them hot;
* **deterministic seeding** — per-task seeds are spawned from the
  campaign seed and the task *index* (never from worker identity or
  completion order), so results are bit-identical at any worker count;
* **bounded failure** — per-task timeouts, straggler/crash retries with
  exponential backoff, and structured per-task errors instead of a hung
  pool or a lost campaign;
* **ordered aggregation** — results come back in submission (grid)
  order with per-task wall-clock and simulated-event statistics.
"""

from repro.parallel.runner import (
    CampaignError,
    CampaignResult,
    CampaignRunner,
    TaskError,
    TaskResult,
    derive_task_seed,
    report_events,
)

__all__ = [
    "CampaignError",
    "CampaignResult",
    "CampaignRunner",
    "TaskError",
    "TaskResult",
    "derive_task_seed",
    "report_events",
]
