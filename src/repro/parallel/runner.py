"""The process-pool campaign runner.

Execution model
---------------

A *campaign* is an ordered list of independent tasks — one picklable
top-level function applied to per-task arguments.  The runner submits
tasks to a :class:`concurrent.futures.ProcessPoolExecutor` in chunks
(amortizing IPC), tracks one deadline per chunk, and drives everything
from a single wait loop that can never block forever:

* a task raising inside the worker is an *application* error — it is
  reported as a structured :class:`TaskError` immediately (re-running a
  deterministic failure cannot help) without disturbing chunk-mates;
* a worker process dying (segfault, OOM-kill, ``os._exit``) breaks the
  pool — the pool is rebuilt and the affected tasks are retried, each
  as its own single-task chunk, with exponential backoff;
* a chunk overrunning its deadline is *abandoned* (its eventual result,
  if any, is discarded) and its tasks are retried the same way; workers
  still running abandoned work are terminated at teardown so a hung
  simulation cannot hang the interpreter.

Retries are bounded by ``max_retries``; a task that exhausts them gets
a final structured error and the rest of the campaign completes anyway.

Determinism
-----------

Per-task seeds are spawned from the campaign seed and the task *index*
via :func:`numpy.random.SeedSequence` spawn keys, so a campaign's
results are a pure function of ``(seed, task list)`` — never of worker
count, chunking, or completion order.  ``workers<=1`` executes inline
in the calling process (no pool, no pickling) and produces the same
values.
"""

from __future__ import annotations

import heapq
import importlib
import itertools
import json
import multiprocessing
import os
import queue as queue_module
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from traceback import format_exception_only
from typing import Any, Callable, Optional, Sequence, Union

import numpy as np

from repro.errors import CampaignError
from repro.obs import flight as _flight
from repro.obs import heartbeat as _heartbeat
from repro.obs.heartbeat import Heartbeat

#: Modules a pool initializer imports so every worker is warm before its
#: first task (on ``spawn`` platforms this is the bulk of task latency;
#: under ``fork`` the parent's imports are inherited and this is free).
DEFAULT_PRELOAD = (
    "numpy",
    "repro.core.control_plane",
    "repro.core.tester",
    "repro.baselines.pswitch_tester",
    "repro.fluid.model",
    "repro.fluid.solver",
    "repro.workload",
)


def derive_task_seed(campaign_seed: int, *spawn_key: int) -> int:
    """Deterministic 63-bit seed for one task of a campaign.

    Spawned from ``(campaign_seed, spawn_key)`` via ``SeedSequence`` so
    distinct tasks get statistically independent streams and the value
    depends only on the campaign seed and the task's position in the
    grid — never on scheduling.
    """
    sequence = np.random.SeedSequence(entropy=campaign_seed, spawn_key=spawn_key)
    return int(sequence.generate_state(1, np.uint64)[0] >> 1)


# -- worker side ---------------------------------------------------------------

#: Simulated-event count reported by the currently executing task (see
#: :func:`report_events`); module-level because each worker process (and
#: the inline path) runs one task at a time.
_TASK_EVENTS = 0


def report_events(n_events: int) -> None:
    """Called by a task function to attach a simulated-event count to its
    :class:`TaskResult` stats (e.g. ``report_events(sim.events_executed)``)."""
    global _TASK_EVENTS
    _TASK_EVENTS = int(n_events)


def _warm_worker(
    preload: tuple[str, ...],
    heartbeat_sink: Any = None,
    autodump: Optional[dict[str, Any]] = None,
) -> None:
    """Pool initializer: import the heavy modules once per worker,
    install the campaign's heartbeat sink (a manager-queue proxy), and
    arm per-task flight-recorder post-mortems when the campaign has a
    results directory."""
    for name in preload:
        try:
            importlib.import_module(name)
        except ImportError:  # pragma: no cover - optional deps stay optional
            pass
    _heartbeat.configure(heartbeat_sink)
    if autodump is not None:
        _flight.configure_autodump(autodump.pop("dir"), **autodump)
    else:
        _flight.configure_autodump(None)


@dataclass(frozen=True)
class _TaskSpec:
    """One task, fully materialized (args include any derived seed)."""

    index: int
    args: tuple
    kwargs: dict[str, Any]


@dataclass(frozen=True)
class _RawOutcome:
    """What one task execution produced, worker-side."""

    index: int
    ok: bool
    value: Any
    error: Optional[str]
    wall_s: float
    events: int
    pid: int
    start_unix: float


def _execute_one(fn: Callable[..., Any], spec: _TaskSpec) -> _RawOutcome:
    """Run one task, catching application errors; shared by the worker
    chunk loop and the inline (``workers<=1``) path.

    When flight-recorder autodump is armed for this process (campaigns
    with a results directory), the task runs bracketed by a per-task
    recorder: a raising task finalizes its dump with the error, a
    successful one removes its spool file, and a task that kills the
    process outright leaves the last spooled snapshot as its post-mortem.
    """
    global _TASK_EVENTS
    _TASK_EVENTS = 0
    _heartbeat.set_task(spec.index)
    recorder = _flight.begin_task(spec.index)
    start_unix = time.time()
    start = time.perf_counter()
    try:
        value = fn(*spec.args, **spec.kwargs)
    except Exception as exc:
        message = "".join(format_exception_only(exc)).strip()
        _flight.end_task(recorder, ok=False, error=message)
        return _RawOutcome(
            spec.index, False, None, message,
            time.perf_counter() - start, _TASK_EVENTS, os.getpid(), start_unix,
        )
    finally:
        _heartbeat.set_task(None)
    _flight.end_task(recorder, ok=True)
    return _RawOutcome(
        spec.index, True, value, None,
        time.perf_counter() - start, _TASK_EVENTS, os.getpid(), start_unix,
    )


def _run_chunk(fn: Callable[..., Any], specs: list[_TaskSpec]) -> list[_RawOutcome]:
    """Worker entry point: execute a chunk of tasks back to back."""
    return [_execute_one(fn, spec) for spec in specs]


def _hold_worker(delay_s: float) -> int:
    """Warm-up task for :meth:`CampaignRunner.start`: occupy one worker
    slot briefly so the executor spawns (and preloads) every process
    before the first real campaign arrives."""
    time.sleep(delay_s)
    return os.getpid()


# -- result model --------------------------------------------------------------


@dataclass(frozen=True)
class TaskError:
    """Structured failure record for one task."""

    #: ``"exception"`` (task raised), ``"crash"`` (worker process died),
    #: or ``"timeout"`` (task exceeded its deadline).
    kind: str
    message: str
    attempts: int

    def __str__(self) -> str:
        return f"[{self.kind} after {self.attempts} attempt(s)] {self.message}"


@dataclass(frozen=True)
class TaskResult:
    """One task's outcome, in campaign (grid) order."""

    index: int
    value: Any
    error: Optional[TaskError]
    wall_s: float
    events: int
    worker_pid: int
    attempts: int
    #: Wall-clock start of the (final) execution; 0.0 when the task never
    #: reported back (terminal crash/timeout).
    start_unix: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class CampaignResult:
    """Ordered task results plus campaign-level statistics."""

    results: list[TaskResult]
    n_workers: int
    chunk_size: int
    wall_s: float
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def errors(self) -> list[TaskResult]:
        return [result for result in self.results if not result.ok]

    def values(self, *, strict: bool = True) -> list[Any]:
        """Task return values in grid order.

        With ``strict`` (the default) a failed task raises
        :class:`CampaignError` naming every failure; otherwise failed
        slots hold ``None``.
        """
        if strict and not self.ok:
            lines = [
                f"  task {result.index}: {result.error}" for result in self.errors
            ]
            raise CampaignError(
                f"{len(self.errors)}/{len(self.results)} campaign task(s) "
                "failed:\n" + "\n".join(lines)
            )
        return [result.value for result in self.results]

    def stats(self) -> dict[str, Any]:
        """Aggregate wall-clock / event statistics for reports."""
        walls = [result.wall_s for result in self.results]
        total_wall = sum(walls)
        error_kinds = [result.error.kind for result in self.errors]
        return {
            "tasks": len(self.results),
            "failed": len(self.errors),
            "retries_total": sum(
                max(result.attempts - 1, 0) for result in self.results
            ),
            "timeouts": error_kinds.count("timeout"),
            "crashes": error_kinds.count("crash"),
            "task_exceptions": error_kinds.count("exception"),
            "workers": self.n_workers,
            "chunk_size": self.chunk_size,
            "campaign_wall_s": self.wall_s,
            "task_wall_s_total": total_wall,
            "task_wall_s_max": max(walls, default=0.0),
            "task_wall_s_mean": total_wall / len(walls) if walls else 0.0,
            "events_total": sum(result.events for result in self.results),
            "distinct_workers": len(
                {result.worker_pid for result in self.results if result.ok}
            ),
            "tasks_per_sec": len(self.results) / self.wall_s if self.wall_s > 0 else 0.0,
        }


# -- the runner ----------------------------------------------------------------


class CampaignRunner:
    """Shards independent tasks across a warm process pool.

    ``workers=None`` uses every CPU; ``workers<=1`` runs inline (no
    subprocesses, timeouts not enforced).  The executor is created
    lazily and reused across :meth:`run` calls so workers stay warm for
    multi-campaign sessions; call :meth:`close` (or use the runner as a
    context manager) to release it.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        chunk_size: Optional[int] = None,
        task_timeout_s: Optional[float] = None,
        max_retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        preload: tuple[str, ...] = DEFAULT_PRELOAD,
        mp_context: Optional[Any] = None,
        results_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if workers is not None and workers < 0:
            raise CampaignError(f"workers must be >= 0, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise CampaignError(f"chunk_size must be >= 1, got {chunk_size}")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise CampaignError(f"task_timeout_s must be positive, got {task_timeout_s}")
        if max_retries < 0:
            raise CampaignError(f"max_retries must be >= 0, got {max_retries}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.task_timeout_s = task_timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.preload = tuple(preload)
        self.mp_context = mp_context
        #: Campaign artifact directory.  When set, every task records a
        #: flight-recorder ring spooled to ``<dir>/flight-task*.json``
        #: (kept on failure, removed on success) and :meth:`run` writes a
        #: ``campaign.json`` journal — the inputs of ``repro trace``.
        #: Created on first use, never at construction: merely building a
        #: runner (e.g. a daemon validating a request) must not litter
        #: directories.
        self.results_dir = Path(results_dir) if results_dir is not None else None
        self._executor: Optional[ProcessPoolExecutor] = None
        self._stragglers = False
        #: Heartbeat transport: a manager-queue proxy handed to workers
        #: (created lazily on the first run() with on_heartbeat set).
        self._manager: Optional[Any] = None
        self._hb_queue: Optional[Any] = None
        #: The queue the live executor's workers were initialized with;
        #: a mismatch forces a pool rebuild.
        self._executor_hb_queue: Optional[Any] = None

    # -- executor lifecycle ----------------------------------------------------

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def started(self) -> bool:
        """Whether a live worker pool is currently attached."""
        return self._executor is not None

    def start(self, *, warm: bool = True, timeout_s: float = 60.0) -> "CampaignRunner":
        """Bring the worker pool (and heartbeat transport) up *now*.

        A cold :meth:`run` pays pool construction, worker spawn, and the
        preload imports on its own wall clock — the diagnosed
        ``parallel_speedup < 1`` regime on small runners.  A long-lived
        service (``repro serve``) calls ``start()`` once instead, so
        every subsequent campaign lands on hot workers.  With ``warm``
        (the default) one brief hold task per worker slot forces every
        process to exist and finish its preload imports before this
        returns.  The heartbeat transport is provisioned here too, so a
        later ``run(on_heartbeat=...)`` never has to rebuild the pool.

        Idempotent; a no-op for ``workers <= 1`` (the inline path has
        nothing to warm).
        """
        if self.workers <= 1:
            return self
        self._ensure_heartbeat_queue()
        executor = self._get_executor()
        if warm:
            holds = [
                executor.submit(_hold_worker, 0.02) for _ in range(self.workers)
            ]
            wait(holds, timeout=timeout_s)
        return self

    def close(self) -> None:
        """Shut the pool down (terminating any abandoned stragglers)."""
        self._teardown_executor(force=self._stragglers)
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None
            self._hb_queue = None

    def _ensure_results_dir(self) -> None:
        """Create the artifact directory lazily, at the first point
        something will actually be written into it."""
        if self.results_dir is not None:
            self.results_dir.mkdir(parents=True, exist_ok=True)

    def _autodump_config(self) -> Optional[dict[str, Any]]:
        if self.results_dir is None:
            return None
        self._ensure_results_dir()  # workers spool flight rings into it
        return {"dir": str(self.results_dir)}

    def _get_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self.mp_context,
                initializer=_warm_worker,
                initargs=(self.preload, self._hb_queue, self._autodump_config()),
            )
            self._executor_hb_queue = self._hb_queue
        return self._executor

    def _ensure_heartbeat_queue(self) -> None:
        """Provision the worker-side heartbeat transport.

        A ``multiprocessing.Manager`` queue proxy is picklable, so it
        passes through the executor's initializer under both fork and
        spawn.  Workers warmed without the queue can't stream, so a
        stale pool is rebuilt once.
        """
        if self._hb_queue is None:
            self._manager = multiprocessing.Manager()
            self._hb_queue = self._manager.Queue()
        if self._executor is not None and self._executor_hb_queue is not self._hb_queue:
            self._teardown_executor(force=False)

    def _drain_heartbeats(self, on_heartbeat: Callable[[Heartbeat], None]) -> None:
        """Forward every queued heartbeat to the campaign's callback."""
        hb_queue = self._hb_queue
        if hb_queue is None:
            return
        while True:
            try:
                beat = hb_queue.get_nowait()
            except queue_module.Empty:
                return
            except (OSError, EOFError, BrokenPipeError):  # manager died
                return
            on_heartbeat(beat)

    def _teardown_executor(self, *, force: bool) -> None:
        executor, self._executor = self._executor, None
        if executor is None:
            return
        executor.shutdown(wait=not force, cancel_futures=True)
        if force:
            # Stragglers past their deadline (or a broken pool) must not
            # keep the interpreter alive: kill what's left.
            processes = list((getattr(executor, "_processes", None) or {}).values())
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join(timeout=1.0)
        self._stragglers = False

    # -- task normalization ----------------------------------------------------

    @staticmethod
    def _normalize(
        tasks: Sequence[Any],
        seed: Optional[int],
        seed_kwarg: str,
    ) -> list[_TaskSpec]:
        specs = []
        for index, task in enumerate(tasks):
            if isinstance(task, dict):
                args, kwargs = (), dict(task)
            elif isinstance(task, tuple):
                args, kwargs = task, {}
            else:
                args, kwargs = (task,), {}
            if seed is not None:
                kwargs[seed_kwarg] = derive_task_seed(seed, index)
            specs.append(_TaskSpec(index, args, kwargs))
        return specs

    def _effective_chunk_size(self, n_tasks: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        # Aim for ~4 chunks per worker so stragglers rebalance, with at
        # least one task per chunk.
        return max(1, -(-n_tasks // (self.workers * 4)))

    # -- execution -------------------------------------------------------------

    def run(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Any],
        *,
        seed: Optional[int] = None,
        seed_kwarg: str = "seed",
        on_heartbeat: Optional[Callable[[Heartbeat], None]] = None,
    ) -> CampaignResult:
        """Apply ``fn`` to every task, sharded across the pool.

        ``fn`` must be a picklable top-level function.  Each element of
        ``tasks`` is a tuple (positional args), a dict (keyword args),
        or any other object (a single positional arg).  When ``seed`` is
        given, each task also receives ``seed_kwarg=<derived seed>``
        where the derived value depends only on ``(seed, task index)``.

        ``on_heartbeat`` receives :class:`~repro.obs.heartbeat.Heartbeat`
        snapshots streamed by tasks that call
        :func:`repro.obs.heartbeat.run_with_heartbeats` — live on the
        pooled path (drained between waits), synchronously inline.
        Heartbeats only slice wall-clock execution, never the simulated
        timeline, so results are identical with or without a listener.
        """
        if not tasks:
            raise CampaignError("a campaign needs at least one task")
        specs = self._normalize(tasks, seed, seed_kwarg)
        self._ensure_results_dir()  # journal + flight spools land here
        created_unix = time.time()
        beats_log: list[dict[str, Any]] = []
        if self.results_dir is not None:
            # Journal every heartbeat (receive-stamped) for the campaign
            # trace, forwarding to the caller's listener when present.
            user_cb = on_heartbeat

            def on_heartbeat(beat: Heartbeat) -> None:
                beats_log.append(_journal_beat(beat))
                if user_cb is not None:
                    user_cb(beat)

        start = time.perf_counter()
        if self.workers <= 1 or len(specs) == 1:
            _heartbeat.configure(on_heartbeat)
            if self.results_dir is not None:
                _flight.configure_autodump(self.results_dir)
            try:
                results = [
                    self._finalize(_execute_one(fn, spec), attempts=1)
                    for spec in specs
                ]
            finally:
                _heartbeat.configure(None)
                if self.results_dir is not None:
                    _flight.configure_autodump(None)
            result = CampaignResult(
                results=results,
                n_workers=1,
                chunk_size=len(specs),
                wall_s=time.perf_counter() - start,
            )
            self._write_journal(result, beats_log, created_unix)
            return result
        if on_heartbeat is not None:
            self._ensure_heartbeat_queue()
        chunk_size = self._effective_chunk_size(len(specs))
        results_by_index = self._run_pooled(
            fn, specs, chunk_size, on_heartbeat=on_heartbeat
        )
        if on_heartbeat is not None:
            self._drain_heartbeats(on_heartbeat)
        result = CampaignResult(
            results=[results_by_index[index] for index in range(len(specs))],
            n_workers=self.workers,
            chunk_size=chunk_size,
            wall_s=time.perf_counter() - start,
        )
        self._write_journal(result, beats_log, created_unix)
        return result

    @staticmethod
    def _finalize(outcome: _RawOutcome, attempts: int) -> TaskResult:
        error = None
        if not outcome.ok:
            error = TaskError("exception", outcome.error or "", attempts)
        return TaskResult(
            index=outcome.index,
            value=outcome.value,
            error=error,
            wall_s=outcome.wall_s,
            events=outcome.events,
            worker_pid=outcome.pid,
            attempts=attempts,
            start_unix=outcome.start_unix,
        )

    def _preserve_flight_dump(self, task_index: int, kind: str, attempt: int) -> None:
        """Rename a dead worker's spooled ring so a retry of the same task
        (which spools to the canonical name) cannot overwrite the
        evidence.  Only crash/timeout need this: an exception's dump is
        finalized worker-side and exceptions are never retried."""
        if self.results_dir is None:
            return
        spool = _flight.task_dump_path(self.results_dir, task_index)
        if not spool.exists():
            return
        preserved = spool.with_name(
            f"flight-task{task_index:05d}-a{attempt}-{kind}.json"
        )
        try:
            spool.replace(preserved)
        except OSError:  # pragma: no cover - artifact dir raced away
            pass

    def _write_journal(
        self,
        result: CampaignResult,
        beats_log: list[dict[str, Any]],
        created_unix: float,
    ) -> None:
        """Persist the campaign journal ``repro trace`` merges."""
        if self.results_dir is None:
            return
        payload = {
            "schema": 1,
            "kind": "campaign_journal",
            "created_unix": created_unix,
            "wall_s": result.wall_s,
            "workers": result.n_workers,
            "chunk_size": result.chunk_size,
            "stats": result.stats(),
            "tasks": [
                {
                    "index": task.index,
                    "ok": task.ok,
                    "start_unix": task.start_unix or None,
                    "wall_s": task.wall_s,
                    "pid": task.worker_pid,
                    "events": task.events,
                    "attempts": task.attempts,
                    "error": str(task.error) if task.error else None,
                    "error_kind": task.error.kind if task.error else None,
                }
                for task in result.results
            ],
            "heartbeats": beats_log,
        }
        (self.results_dir / "campaign.json").write_text(
            json.dumps(payload, indent=1, default=str) + "\n"
        )

    def _run_pooled(
        self,
        fn: Callable[..., Any],
        specs: list[_TaskSpec],
        chunk_size: int,
        on_heartbeat: Optional[Callable[[Heartbeat], None]] = None,
    ) -> dict[int, TaskResult]:
        final: dict[int, TaskResult] = {}
        attempts: dict[int, int] = {spec.index: 0 for spec in specs}
        inflight: dict[Future, list[_TaskSpec]] = {}
        deadlines: dict[Future, float] = {}
        # Backoff queue of (due_monotonic, tiebreak, spec) awaiting resubmit.
        retry_queue: list[tuple[float, int, _TaskSpec]] = []
        tiebreak = itertools.count()
        # Futures carrying a crash/timeout retry. Retries are serialized
        # against each other: a task that kills its worker on every attempt
        # must not take an innocent task's *retry* down with it (collateral
        # BrokenProcessPool burns an attempt, and retries are the last ones).
        retry_futures: set[Future] = set()

        def submit(chunk: list[_TaskSpec]) -> Future:
            for spec in chunk:
                attempts[spec.index] += 1
            try:
                future = self._get_executor().submit(_run_chunk, fn, chunk)
            except (BrokenProcessPool, RuntimeError):
                # Pool died between our wait and this submit: rebuild once.
                self._teardown_executor(force=True)
                future = self._get_executor().submit(_run_chunk, fn, chunk)
            inflight[future] = chunk
            if self.task_timeout_s is not None:
                deadlines[future] = (
                    time.monotonic() + self.task_timeout_s * len(chunk)
                )
            return future

        def fail(spec: _TaskSpec, kind: str, message: str) -> None:
            """Retry an infra failure with backoff, or record it finally."""
            used = attempts[spec.index]
            if kind != "exception":
                # The worker died or was abandoned mid-run: its spooled
                # flight ring is the post-mortem — keep it out of a
                # retry's way.
                self._preserve_flight_dump(spec.index, kind, used)
            if kind != "exception" and used <= self.max_retries:
                delay = min(
                    self.backoff_base_s * (2.0 ** (used - 1)), self.backoff_cap_s
                )
                heapq.heappush(
                    retry_queue, (time.monotonic() + delay, next(tiebreak), spec)
                )
                return
            final[spec.index] = TaskResult(
                index=spec.index,
                value=None,
                error=TaskError(kind, message, used),
                wall_s=0.0,
                events=0,
                worker_pid=0,
                attempts=used,
            )

        try:
            for position in range(0, len(specs), chunk_size):
                submit(specs[position : position + chunk_size])

            while len(final) < len(specs):
                now = time.monotonic()
                while retry_queue and retry_queue[0][0] <= now:
                    if any(f in retry_futures for f in inflight):
                        break  # one retry at a time: no cross-retry fallout
                    _, _, spec = heapq.heappop(retry_queue)
                    # Retries run solo: no chunk-mates at risk.
                    retry_futures.add(submit([spec]))

                wakeups = [deadline for deadline in deadlines.values()]
                if retry_queue:
                    wakeups.append(retry_queue[0][0])
                poll = 0.25
                if wakeups:
                    poll = min(poll, max(min(wakeups) - now, 0.005))
                if not inflight:
                    if retry_queue:
                        # Bugfix: beats queued by just-failed workers must
                        # not sit undelivered (freezing `repro serve`
                        # progress) for the whole retry-backoff window.
                        if on_heartbeat is not None:
                            self._drain_heartbeats(on_heartbeat)
                        time.sleep(poll)
                        continue
                    raise CampaignError(
                        "internal: campaign stalled with no inflight work"
                    )  # pragma: no cover - loop invariant

                done, _ = wait(
                    list(inflight), timeout=poll, return_when=FIRST_COMPLETED
                )
                if on_heartbeat is not None:
                    self._drain_heartbeats(on_heartbeat)
                pool_broken = False
                for future in done:
                    chunk = inflight.pop(future)
                    deadlines.pop(future, None)
                    try:
                        outcomes = future.result()
                    except BrokenProcessPool as exc:
                        pool_broken = True
                        message = (
                            "".join(format_exception_only(exc)).strip()
                            or "worker process died"
                        )
                        for spec in chunk:
                            fail(spec, "crash", message)
                    except Exception as exc:
                        # Chunk-level application failure (e.g. the task's
                        # return value failed to pickle): not retryable.
                        for spec in chunk:
                            fail(
                                spec,
                                "exception",
                                "".join(format_exception_only(exc)).strip(),
                            )
                    else:
                        for outcome in outcomes:
                            if outcome.index in final:
                                continue  # duplicate from an abandoned chunk
                            if outcome.ok:
                                final[outcome.index] = self._finalize(
                                    outcome, attempts[outcome.index]
                                )
                            else:
                                fail(
                                    _spec_by_index(chunk, outcome.index),
                                    "exception",
                                    outcome.error or "",
                                )

                if self.task_timeout_s is not None:
                    now = time.monotonic()
                    for future, deadline in list(deadlines.items()):
                        if now <= deadline or future not in inflight:
                            continue
                        chunk = inflight.pop(future)
                        deadlines.pop(future, None)
                        future.cancel()  # only helps if still queued
                        self._stragglers = True
                        for spec in chunk:
                            fail(
                                spec,
                                "timeout",
                                f"task exceeded {self.task_timeout_s:.3f}s deadline",
                            )

                if pool_broken:
                    # Remaining inflight chunks are doomed too: requeue them
                    # on a fresh pool.
                    doomed = list(inflight.items())
                    inflight.clear()
                    deadlines.clear()
                    self._teardown_executor(force=True)
                    for _, chunk in doomed:
                        for spec in chunk:
                            if spec.index not in final:
                                fail(spec, "crash", "worker pool broke mid-chunk")
        finally:
            if self._stragglers:
                # Hung workers would survive a graceful shutdown.
                self._teardown_executor(force=True)
        return final


def _journal_beat(beat: Heartbeat) -> dict[str, Any]:
    """A heartbeat as a JSON-safe journal row, stamped at receive time."""
    return {
        "task_id": beat.task_id,
        "pid": beat.pid,
        "recv_unix": time.time(),
        "sim_now_ps": beat.sim_now_ps,
        "sim_until_ps": beat.sim_until_ps,
        "events_executed": beat.events_executed,
        "wall_s": beat.wall_s,
        "final": beat.final,
    }


def _spec_by_index(chunk: list[_TaskSpec], index: int) -> _TaskSpec:
    for spec in chunk:
        if spec.index == index:
            return spec
    raise CampaignError(f"internal: outcome for unknown task {index}")
