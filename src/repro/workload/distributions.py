"""Flow-size distributions.

The paper's fidelity and comprehensive tests (Sections 7.4-7.5) use the
WebSearch traffic model from the DCTCP paper: a heavy-tailed empirical
flow-size CDF where a small fraction of flows carries most bytes.  The
points below are the widely used published WebSearch CDF (sizes in
bytes); sampling inverts the CDF with linear interpolation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

#: (size_bytes, cumulative_probability) for the DCTCP WebSearch workload.
WEBSEARCH_CDF_POINTS: tuple[tuple[int, float], ...] = (
    (0, 0.0),
    (10_000, 0.15),
    (20_000, 0.20),
    (30_000, 0.30),
    (50_000, 0.40),
    (80_000, 0.53),
    (200_000, 0.60),
    (1_000_000, 0.70),
    (2_000_000, 0.80),
    (5_000_000, 0.90),
    (10_000_000, 0.97),
    (30_000_000, 1.00),
)


class SizeDistribution(ABC):
    """A sampler of flow sizes in bytes."""

    @abstractmethod
    def sample_bytes(self, rng: np.random.Generator) -> int:
        """Draw one flow size (>= 1 byte)."""

    @abstractmethod
    def mean_bytes(self) -> float:
        """Expected flow size."""

    def sample_packets(
        self, rng: np.random.Generator, payload_bytes: int
    ) -> int:
        """Draw a size and convert to whole packets (>= 1)."""
        if payload_bytes <= 0:
            raise ValueError(f"payload must be positive, got {payload_bytes}")
        size = self.sample_bytes(rng)
        return max(1, -(-size // payload_bytes))


class FixedSize(SizeDistribution):
    """Degenerate distribution (every flow the same size)."""

    def __init__(self, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise ValueError(f"size must be positive, got {size_bytes}")
        self.size_bytes = size_bytes

    def sample_bytes(self, rng: np.random.Generator) -> int:
        return self.size_bytes

    def mean_bytes(self) -> float:
        return float(self.size_bytes)


class EmpiricalCdf(SizeDistribution):
    """Inverse-transform sampling from a piecewise-linear CDF."""

    def __init__(self, points: Sequence[tuple[int, float]]) -> None:
        if len(points) < 2:
            raise ValueError("an empirical CDF needs at least two points")
        sizes = np.array([p[0] for p in points], dtype=float)
        probs = np.array([p[1] for p in points], dtype=float)
        if not np.all(np.diff(sizes) > 0):
            raise ValueError("CDF sizes must be strictly increasing")
        if not np.all(np.diff(probs) >= 0):
            raise ValueError("CDF probabilities must be non-decreasing")
        if probs[0] != 0.0 or probs[-1] != 1.0:
            raise ValueError("CDF must start at probability 0 and end at 1")
        self.sizes = sizes
        self.probs = probs

    def sample_bytes(self, rng: np.random.Generator) -> int:
        u = rng.random()
        size = float(np.interp(u, self.probs, self.sizes))
        return max(1, int(round(size)))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Vectorized sampling (used by the fluid simulator)."""
        u = rng.random(n)
        sizes = np.interp(u, self.probs, self.sizes)
        return np.maximum(1, np.round(sizes)).astype(np.int64)

    def mean_bytes(self) -> float:
        # Piecewise-linear CDF => uniform density within each segment.
        seg_prob = np.diff(self.probs)
        seg_mean = (self.sizes[:-1] + self.sizes[1:]) / 2.0
        return float(np.sum(seg_prob * seg_mean))

    def quantile(self, p: float) -> float:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"quantile probability must be in [0, 1], got {p}")
        return float(np.interp(p, self.probs, self.sizes))


#: (size_bytes, cumulative_probability) for the widely used Facebook
#: Hadoop workload approximation: dominated by sub-kB RPCs with a thin
#: multi-MB tail — the opposite regime from WebSearch, useful for
#: stressing short-flow handling.
HADOOP_CDF_POINTS: tuple[tuple[int, float], ...] = (
    (0, 0.0),
    (250, 0.20),
    (500, 0.45),
    (1_000, 0.60),
    (2_000, 0.70),
    (10_000, 0.80),
    (100_000, 0.90),
    (1_000_000, 0.96),
    (10_000_000, 1.00),
)


def websearch() -> EmpiricalCdf:
    """The DCTCP-paper WebSearch flow-size distribution."""
    return EmpiricalCdf(WEBSEARCH_CDF_POINTS)


def hadoop() -> EmpiricalCdf:
    """The (approximate) Facebook Hadoop flow-size distribution."""
    return EmpiricalCdf(HADOOP_CDF_POINTS)
