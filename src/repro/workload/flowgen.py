"""Closed-loop flow generation (paper Sections 7.4-7.5).

"To maintain the number of concurrent flows and maximize the throughput
of the tester, a new flow will be created based on the chosen traffic
model after each flow completes.  Therefore the arrival time of the flow
is determined by the completion time of the previous one, rather than
following a Poisson distribution."

A :class:`FlowSlot` is one (source port, destination) lane that always
holds exactly one in-flight flow; the generator keeps every slot busy
until a stop condition is reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.tester import MarlinTester
from repro.errors import ConfigError
from repro.fpga.flow import FlowState
from repro.workload.distributions import SizeDistribution


@dataclass(frozen=True)
class FlowSlot:
    """One always-busy lane of the closed loop."""

    src_port: int
    dst_port: int


class ClosedLoopGenerator:
    """Keeps ``len(slots)`` flows concurrently in flight on a tester."""

    def __init__(
        self,
        tester: MarlinTester,
        distribution: SizeDistribution,
        slots: list[FlowSlot],
        *,
        rng: Optional[np.random.Generator] = None,
        stop_after_flows: Optional[int] = None,
        stop_at_ps: Optional[int] = None,
    ) -> None:
        if not slots:
            raise ConfigError("closed-loop generator needs at least one slot")
        self.tester = tester
        self.distribution = distribution
        self.slots = slots
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stop_after_flows = stop_after_flows
        self.stop_at_ps = stop_at_ps
        self.payload_bytes = tester.config.template_bytes
        self.flows_started = 0
        self.flows_completed = 0
        self._slot_of_flow: dict[int, FlowSlot] = {}
        self._stopped = False
        tester.nic.on_complete(self._on_complete)

    def start(self) -> None:
        """Launch the first flow in every slot."""
        for slot in self.slots:
            self._launch(slot)

    def stop(self) -> None:
        """Stop relaunching; in-flight flows run to completion."""
        self._stopped = True

    def _should_stop(self) -> bool:
        if self._stopped:
            return True
        if (
            self.stop_after_flows is not None
            and self.flows_started >= self.stop_after_flows
        ):
            return True
        if self.stop_at_ps is not None and self.tester.sim.now >= self.stop_at_ps:
            return True
        return False

    def _launch(self, slot: FlowSlot) -> None:
        size_packets = self.distribution.sample_packets(self.rng, self.payload_bytes)
        flow = self.tester.start_flow(
            port_index=slot.src_port,
            dst_port_index=slot.dst_port,
            size_packets=size_packets,
        )
        self._slot_of_flow[flow.flow_id] = slot
        self.flows_started += 1

    def _on_complete(self, flow: FlowState) -> None:
        slot = self._slot_of_flow.pop(flow.flow_id, None)
        if slot is None:
            return  # not one of ours
        self.flows_completed += 1
        if not self._should_stop():
            self._launch(slot)
