"""Workloads: flow-size distributions and closed-loop flow generation."""

from repro.workload.distributions import (
    EmpiricalCdf,
    FixedSize,
    HADOOP_CDF_POINTS,
    SizeDistribution,
    WEBSEARCH_CDF_POINTS,
    hadoop,
    websearch,
)
from repro.workload.flowgen import ClosedLoopGenerator, FlowSlot

__all__ = [
    "EmpiricalCdf",
    "FixedSize",
    "HADOOP_CDF_POINTS",
    "SizeDistribution",
    "WEBSEARCH_CDF_POINTS",
    "hadoop",
    "websearch",
    "ClosedLoopGenerator",
    "FlowSlot",
]
