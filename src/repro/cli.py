"""Command-line interface: ``python -m repro <command>``.

Gives operators the control-plane workflow without writing Python:

* ``repro run``            — deploy a tester, run a traffic pattern,
  print measurements, optionally export CSV/JSON artifacts;
* ``repro sweep``          — CC parameter sweep over a grid, sharded
  across a process pool (``--workers N``) with live per-task heartbeat
  lines, ``--metrics-out`` (Prometheus/JSON), and ``--manifest``;
* ``repro fluid``          — fluid FCT campaign over a CC x load grid
  (Figure 10), on the exact closed-form backend or the columnar
  million-flow solver (``--backend columnar``);
* ``repro report``         — run a demo congestion scenario with the
  sim-time profiler and full metrics instrumentation enabled, then
  print the per-component wall-clock profile and key counters
  (``--backend columnar`` profiles the columnar fluid solver instead);
* ``repro trace``          — merge a campaign results directory
  (``campaign.json`` journal + flight-recorder dumps) into one
  Chrome/Perfetto trace-event JSON timeline;
* ``repro serve``          — the persistent campaign daemon: an
  HTTP/JSON job queue over one warm worker pool with a config-hash
  result cache and a Prometheus ``/metrics`` endpoint;
* ``repro submit``         — send a campaign spec (JSON file) to a
  running ``repro serve``, optionally waiting with live ``[hb]`` lines;
* ``repro amplification``  — the Section 3.3 arithmetic for an MTU;
* ``repro capabilities``   — the Table 1 / Table 2 matrices;
* ``repro resources``      — Table 4 estimates for a CC algorithm;
* ``repro algorithms``     — registered CC algorithms.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

import repro.cc as cc
from repro.core import (
    ControlPlane,
    TestConfig,
    amplification_report,
    device_characteristics_table,
    tester_requirements_table,
)
from repro.fpga.hls import algorithm_cycles
from repro.fpga.resources import estimate_resources
from repro.fpga.timers import FrequencyControl
from repro.measure.export import counters_to_json, fct_to_csv, throughput_to_csv
from repro.obs import (
    build_manifest,
    instrument_control_plane,
    sanitize_metric_name,
    write_manifest,
    write_metrics,
)
from repro.obs.heartbeat import Heartbeat
from repro.obs.metrics import MetricsRegistry
from repro.sim.backend import backend_names
from repro.units import MS, US, format_rate


def _yesno(flag: bool) -> str:
    return "yes" if flag else "no"


def cmd_algorithms(args: argparse.Namespace) -> int:
    print("registered CC algorithms:")
    for name in cc.available():
        algorithm = cc.create(name)
        cycles = algorithm_cycles(algorithm)
        print(f"  {name:10s} mode={algorithm.mode.value:7s} fast path={cycles} cycles")
    return 0


def cmd_amplification(args: argparse.Namespace) -> int:
    report = amplification_report(args.mtu)
    print(f"MTU {report.mtu_bytes} B on {format_rate(report.port_rate_bps)} ports:")
    print(f"  SCHE rate            : {report.sche_pps / 1e6:.1f} Mpps")
    print(f"  DATA rate per port   : {report.data_pps_per_port / 1e6:.3f} Mpps")
    print(f"  amplification factor : {report.amplification_factor}")
    print(f"  ideal generated rate : {format_rate(report.ideal_rate_bps)}")
    print(f"  one-pipeline rate    : {format_rate(report.pipeline_rate_bps)} "
          f"({report.test_ports_in_pipeline} test ports)")
    return 0


def cmd_capabilities(args: argparse.Namespace) -> int:
    print("Table 1 — tester classes vs requirements (R1 CC / R2 custom / R3 Tbps):")
    for row in tester_requirements_table():
        print(f"  {row.tester:22s} {_yesno(row.r1_cc_traffic):3s} "
              f"{_yesno(row.r2_custom_cc):3s} {_yesno(row.r3_tbps):3s}  {row.note}")
    print("\nTable 2 — devices (programmability / frequency / throughput):")
    for row in device_characteristics_table():
        print(f"  {row.device:22s} {_yesno(row.programmability):3s} "
              f"{_yesno(row.frequency):3s} {_yesno(row.throughput):3s}  {row.note}")
    return 0


def cmd_resources(args: argparse.Namespace) -> int:
    algorithm = cc.create(args.algorithm)
    report = estimate_resources(algorithm, n_flows=args.flows)
    control = FrequencyControl(args.mtu, 12)
    problems = control.validate(report.cycles)
    print(f"{args.algorithm} at {args.flows} flows, MTU {args.mtu}:")
    print(f"  fast path        : {report.cycles} cycles "
          f"(budget {control.max_rmw_cycles})")
    print(f"  per-flow state   : {report.state_bytes_per_flow} B")
    print(f"  BRAM             : {report.bram_pct:.1f}%")
    print(f"  CC module LUT/FF : {report.cc_lut_pct:.1f}% / {report.cc_ff_pct:.1f}%")
    print(f"  frequency check  : {'; '.join(problems) if problems else 'safe'}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.config is not None:
        import json

        payload = json.loads(Path(args.config).read_text())
        config = TestConfig.from_dict(payload)
    else:
        config = TestConfig(
            cc_algorithm=args.algorithm,
            n_test_ports=args.ports,
            flows_per_port=args.flows_per_port,
            template_bytes=args.mtu,
            int_enabled=args.int_enabled,
            trace_cc=args.trace,
        )
    cp = ControlPlane(sim_backend=args.sim_backend)
    tester = cp.deploy(config)
    cp.wire_loopback_fabric()
    registry = instrument_control_plane(cp) if args.metrics_out else None
    sampler = tester.enable_rate_sampling(period_ps=500 * US)
    if args.workload == "fixed":
        cp.start_flows(size_packets=args.size_packets, pattern=args.pattern)
    else:
        _start_closed_loop(args, tester)
    cp.run(duration_ps=int(args.duration_ms * MS))

    counters = cp.read_measurements()
    print(f"ran {args.algorithm} for {args.duration_ms} ms "
          f"({args.pattern}, {tester.n_test_ports} ports)")
    print(f"  flows completed : {counters['fpga.flows_completed']}")
    print(f"  DATA generated  : {counters['switch.data_generated']}")
    print(f"  false losses    : {counters['switch.sche_dropped']}")
    print(f"  RMW conflicts   : {counters['fpga.rmw_conflicts']}")
    if len(tester.fct):
        stats = tester.fct.stats()
        print(f"  FCT mean/p99    : {stats.mean_us:.1f} / {stats.p99_us:.1f} us")
    last = sampler.samples[-1].rates_bps if sampler.samples else {}
    flow_rates = [v for k, v in last.items() if k.startswith("flow")]
    if flow_rates:
        print(f"  last-window rate: {format_rate(sum(flow_rates))} over "
              f"{len(flow_rates)} active flows")

    if args.export_dir is not None:
        out = Path(args.export_dir)
        out.mkdir(parents=True, exist_ok=True)
        print("exported:")
        print(f"  {fct_to_csv(tester.fct, out / 'fct.csv')}")
        print(f"  {throughput_to_csv(sampler, out / 'throughput.csv')}")
        print(f"  {counters_to_json(counters, out / 'counters.json')}")
    if registry is not None:
        print(f"wrote {write_metrics(registry, args.metrics_out)}")
    return 0


def _parse_grid_axes(specs: Sequence[str]) -> list[dict]:
    """``name=v1,v2`` axes -> cartesian-product grid (values parsed as
    int, then float, then kept as strings)."""
    import itertools

    def parse(token: str):
        for cast in (int, float):
            try:
                return cast(token)
            except ValueError:
                continue
        return token

    axes: list[tuple[str, list]] = []
    for spec in specs:
        name, _, values = spec.partition("=")
        if not name or not values:
            raise SystemExit(f"--param must look like name=v1,v2 (got {spec!r})")
        axes.append((name, [parse(token) for token in values.split(",")]))
    if not axes:
        return [{}]
    names = [name for name, _ in axes]
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(values for _, values in axes))
    ]


def _render_heartbeat(beat: Heartbeat) -> None:
    """One live progress line per heartbeat (the ``[hb]`` stream)."""
    state = "done" if beat.final else f"{beat.progress * 100:3.0f}%"
    print(
        f"[hb] task {beat.task_id} {state}  "
        f"sim {beat.sim_now_ps / MS:.2f}/{beat.sim_until_ps / MS:.2f} ms  "
        f"{beat.events_executed:,} events  pid {beat.pid}",
        flush=True,
    )


def _campaign_metrics_registry(
    final_beats: dict[int, Heartbeat], stats: dict
) -> MetricsRegistry:
    """Fold a campaign's final heartbeat counters plus its wall-clock
    statistics into one exportable registry."""
    registry = MetricsRegistry()
    registry.counter("repro_campaign_tasks_total").value = stats["tasks"]
    registry.counter("repro_campaign_tasks_failed_total").value = stats["failed"]
    registry.counter("repro_campaign_events_total").value = stats["events_total"]
    registry.counter("repro_campaign_retries_total").value = stats["retries_total"]
    registry.counter("repro_campaign_timeouts_total").value = stats["timeouts"]
    registry.counter("repro_campaign_crashes_total").value = stats["crashes"]
    registry.counter("repro_campaign_task_exceptions_total").value = (
        stats["task_exceptions"]
    )
    registry.gauge("repro_campaign_workers").value = stats["workers"]
    registry.gauge("repro_campaign_wall_seconds").value = stats["campaign_wall_s"]
    registry.gauge("repro_campaign_tasks_per_second").value = stats["tasks_per_sec"]
    totals: dict[str, float] = {}
    for beat in final_beats.values():
        for key, value in beat.counters.items():
            if isinstance(value, (int, float)):
                totals[key] = totals.get(key, 0) + value
    for key in sorted(totals):
        name = sanitize_metric_name(f"repro_sweep_{key}_total")
        registry.counter(name).value = totals[key]
    return registry


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.sweep import sweep_campaign
    from repro.parallel import CampaignRunner

    grid = _parse_grid_axes(args.param)
    final_beats: dict[int, Heartbeat] = {}

    def on_heartbeat(beat: Heartbeat) -> None:
        if beat.final:
            final_beats[beat.task_id] = beat
        if not args.no_progress:
            _render_heartbeat(beat)

    # --results-dir arms the campaign journal + per-task flight
    # recorders (post-mortem dumps, `repro trace` input).
    runner = None
    if args.results_dir is not None:
        runner = CampaignRunner(workers=args.workers, results_dir=args.results_dir)
    try:
        points, campaign = sweep_campaign(
            args.algorithm,
            grid,
            n_senders=args.senders,
            duration_ps=int(args.duration_ms * MS),
            ecn_threshold_bytes=args.ecn_threshold,
            workers=args.workers,
            seeds=args.seeds,
            seed=args.seed,
            sim_backend=args.sim_backend,
            runner=runner,
            on_heartbeat=on_heartbeat,
        )
    finally:
        if runner is not None:
            runner.close()
    stats = campaign.stats()
    print(
        f"swept {len(points)} {args.algorithm} configuration(s) "
        f"({stats['tasks']} simulation(s), {stats['workers']} worker(s), "
        f"{stats['campaign_wall_s']:.1f} s wall, "
        f"{stats['tasks_per_sec']:.2f} sims/s, "
        f"{stats['events_total']:,} events)"
    )
    if args.results_dir is not None:
        print(f"campaign journal in {args.results_dir} "
              f"(render with: repro trace {args.results_dir})")
    print(f"{'params':40s} {'throughput':>12s} {'fairness':>9s} "
          f"{'peak queue':>11s} {'flows':>6s}")
    for point in points:
        label = ", ".join(f"{k}={v}" for k, v in point.params.items()) or "(defaults)"
        print(f"{label:40s} {format_rate(point.throughput_bps):>12s} "
              f"{point.fairness:>9.3f} {point.peak_queue_bytes // 1000:>9d}kB "
              f"{point.flows_completed:>6d}")
    if args.json is not None:
        import dataclasses
        import json

        payload = {
            "algorithm": args.algorithm,
            "stats": stats,
            "points": [dataclasses.asdict(point) for point in points],
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.metrics_out is not None or args.manifest is not None:
        registry = _campaign_metrics_registry(final_beats, stats)
        if args.metrics_out is not None:
            print(f"wrote {write_metrics(registry, args.metrics_out)}")
        if args.manifest is not None:
            config = {
                "algorithm": args.algorithm,
                "grid": grid,
                "senders": args.senders,
                "duration_ms": args.duration_ms,
                "ecn_threshold": args.ecn_threshold,
                "workers": args.workers,
                "seeds": args.seeds,
                "sim_backend": args.sim_backend or "auto",
            }
            manifest = build_manifest(
                config,
                seed=args.seed,
                metrics=registry.snapshot(),
                extra={"campaign": stats},
            )
            print(f"wrote {write_manifest(manifest, args.manifest)}")
    return 0


def cmd_fluid(args: argparse.Namespace) -> int:
    """Fluid FCT campaign (Figure 10 grid) on either fluid backend."""
    from repro.fluid import (
        dcqcn_profile,
        dctcp_profile,
        fluid_fct_campaign,
        ideal_profile,
    )
    from repro.workload import hadoop, websearch

    factories = {
        "dctcp": dctcp_profile,
        "dcqcn": dcqcn_profile,
        "ideal": ideal_profile,
    }
    names = [name.strip() for name in args.algorithms.split(",") if name.strip()]
    unknown = sorted(set(names) - set(factories))
    if unknown:
        raise SystemExit(
            f"unknown fluid profile(s) {unknown}; choose from {sorted(factories)}"
        )
    try:
        levels = [int(token) for token in args.flows_per_port.split(",")]
    except ValueError:
        raise SystemExit("--flows-per-port must be a comma-separated int list")
    if args.timeseries_out is not None and args.backend != "columnar":
        raise SystemExit("--timeseries-out requires --backend columnar")
    distribution = websearch() if args.workload == "websearch" else hadoop()
    from repro.parallel import CampaignRunner

    runner = None
    if args.results_dir is not None:
        runner = CampaignRunner(workers=args.workers, results_dir=args.results_dir)
    try:
        points, campaign = fluid_fct_campaign(
            [factories[name]() for name in names],
            distribution,
            workload=args.workload,
            flows_per_port_levels=levels,
            flows_total=args.flows_total,
            n_ports=args.ports,
            workers=args.workers,
            seed=args.seed,
            backend=args.backend,
            runner=runner,
            timeseries_dir=args.timeseries_out,
            timeseries_sample_every=args.timeseries_every,
        )
    finally:
        if runner is not None:
            runner.close()
    stats = campaign.stats()
    print(
        f"fluid campaign ({args.backend} backend): {len(points)} cell(s), "
        f"{stats['workers']} worker(s), {stats['campaign_wall_s']:.1f} s wall, "
        f"{stats['events_total']:,} flow(-step)s"
    )
    if args.timeseries_out is not None:
        print(f"per-bottleneck timeseries (.npz per cell) in {args.timeseries_out}")
    if args.results_dir is not None:
        print(f"campaign journal in {args.results_dir} "
              f"(render with: repro trace {args.results_dir})")
    print(f"{'algorithm':10s} {'flows/port':>10s} {'mean':>10s} {'p50':>10s} "
          f"{'p99':>10s} {'per-slot':>12s} {'aggregate':>12s}")
    for point in points:
        aggregate = point.throughput_bps * point.flows_per_port * args.ports
        print(f"{point.algorithm:10s} {point.flows_per_port:>10d} "
              f"{point.mean_fct_us:>8.1f}us {point.p50_fct_us:>8.1f}us "
              f"{point.p99_fct_us:>8.1f}us "
              f"{format_rate(point.throughput_bps):>12s} "
              f"{format_rate(aggregate):>12s}")
    if args.json is not None:
        import dataclasses
        import json

        payload = {
            "backend": args.backend,
            "workload": args.workload,
            "stats": stats,
            "points": [dataclasses.asdict(point) for point in points],
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


def _report_columnar(args: argparse.Namespace) -> int:
    """Solver-telemetry report for one closed-loop columnar fluid run."""
    import time

    import numpy as np

    from repro.fluid import dcqcn_profile, dctcp_profile, ideal_profile
    from repro.fluid.solver import ColumnarFluidSolver, kernel_for_profile
    from repro.obs import instrument_fluid_solver
    from repro.workload import hadoop, websearch

    factories = {
        "dctcp": dctcp_profile,
        "dcqcn": dcqcn_profile,
        "ideal": ideal_profile,
    }
    if args.algorithm not in factories:
        raise SystemExit(
            f"columnar report supports fluid profiles {sorted(factories)}, "
            f"got {args.algorithm!r}"
        )
    profile = factories[args.algorithm]()
    distribution = websearch() if args.workload == "websearch" else hadoop()
    n_ports = args.senders
    solver = ColumnarFluidSolver(
        n_bottlenecks=n_ports,
        seed=args.seed,
        capacity_hint=n_ports * args.flows_per_port,
    )
    solver.enable_telemetry()
    registry = MetricsRegistry()
    instrument_fluid_solver(solver, registry)
    bottleneck = np.repeat(np.arange(n_ports, dtype=np.int32), args.flows_per_port)
    sizes = distribution.sample_many(solver.rng, bottleneck.size)
    solver.add_flows(sizes, bottleneck=bottleneck, kernel=kernel_for_profile(profile))
    start = time.perf_counter()
    run = solver.run_closed_loop(distribution, flows_total=args.flows_total)
    wall = time.perf_counter() - start

    series = solver.telemetry.arrays()
    rate = run.flow_steps / wall if wall > 0 else 0.0
    print(
        f"profiled {args.algorithm} columnar closed loop "
        f"({n_ports} bottlenecks x {args.flows_per_port} flows): "
        f"{run.steps:,} steps, {run.flow_steps:,} flow-steps in {wall:.3f} s "
        f"({rate / 1e6:.2f} M flow-steps/s)"
    )
    print()
    print(f"{'bottleneck':>10s} {'mean queue':>11s} {'peak queue':>11s} "
          f"{'mark frac':>10s} {'mean rate':>12s} {'mean flows':>10s}")
    for port in range(n_ports):
        print(f"{port:>10d} {series['queue_bytes'][:, port].mean() / 1000:>9.1f}kB "
              f"{series['queue_bytes'][:, port].max() / 1000:>9.1f}kB "
              f"{series['mark'][:, port].mean():>10.3f} "
              f"{format_rate(series['offered_bps'][:, port].mean()):>12s} "
              f"{series['active_flows'][:, port].mean():>10.1f}")
    print()
    fcts = run.fcts_us
    print(f"FCT mean/p50/p99: {np.mean(fcts):.1f} / "
          f"{np.percentile(fcts, 50):.1f} / {np.percentile(fcts, 99):.1f} us "
          f"({fcts.size:,} completions)")
    print("solver counters:")
    for name in ("repro_fluid_steps_total", "repro_fluid_flow_steps_total",
                 "repro_fluid_flows_completed_total",
                 "repro_fluid_compactions_total"):
        value = sum(s.value for s in registry.collect() if s.name == name)
        print(f"  {name:38s}: {value:,.0f}")
    if args.metrics_out is not None:
        print(f"wrote {write_metrics(registry, args.metrics_out)}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Profile-and-counters report for one demo congestion scenario."""
    if args.backend == "columnar":
        return _report_columnar(args)
    cp = ControlPlane()
    cp.deploy(
        TestConfig(
            cc_algorithm=args.algorithm,
            n_test_ports=args.senders + 1,
            seed=args.seed,
        )
    )
    cp.wire_loopback_fabric(ecn_threshold_bytes=args.ecn_threshold)
    registry = instrument_control_plane(cp)
    cp.sim.enable_profiling()
    cp.start_flows(size_packets=args.size_packets, pattern="fan_in")
    cp.run(duration_ps=int(args.duration_ms * MS))
    profile = cp.sim.profile()

    def family(name: str) -> float:
        return sum(s.value for s in registry.collect() if s.name == name)

    print(
        f"profiled {args.algorithm} fan-in ({args.senders} senders, "
        f"{args.duration_ms} ms): {cp.sim.events_executed:,} events, "
        f"{profile.total_seconds:.3f} s in callbacks"
    )
    print()
    print(profile.table(top_n=args.top))
    print()
    print("fabric queues (all ports):")
    print(f"  enqueued  : {family('repro_queue_enqueued_packets_total'):,.0f} packets "
          f"/ {family('repro_queue_enqueued_bytes_total'):,.0f} B")
    print(f"  dropped   : {family('repro_queue_dropped_packets_total'):,.0f} packets "
          f"/ {family('repro_queue_dropped_bytes_total'):,.0f} B")
    print(f"  ECN marks : {family('repro_queue_ecn_marked_packets_total'):,.0f}")
    print("amplification path:")
    print(f"  SCHE accepted/dropped : "
          f"{family('repro_pswitch_sche_accepted_total'):,.0f} / "
          f"{family('repro_pswitch_sche_dropped_total'):,.0f}")
    print(f"  DATA generated        : "
          f"{family('repro_pswitch_data_generated_total'):,.0f}")
    print(f"  ACKs compressed       : "
          f"{family('repro_pswitch_acks_compressed_total'):,.0f} -> "
          f"{family('repro_pswitch_infos_generated_total'):,.0f} INFOs")
    print("engine:")
    print(f"  events executed/cancelled : "
          f"{family('repro_sim_events_executed_total'):,.0f} / "
          f"{family('repro_sim_events_cancelled_total'):,.0f}")
    if args.metrics_out is not None:
        print(f"wrote {write_metrics(registry, args.metrics_out)}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Merge a campaign results dir into one Chrome trace-event file."""
    from repro.obs.trace import campaign_trace_events, write_chrome_trace

    try:
        events = campaign_trace_events(args.campaign_dir)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc))
    out = args.output
    if out is None:
        out = str(Path(args.campaign_dir) / "trace.json")
    path = write_chrome_trace(
        out, events, metadata={"campaign_dir": str(args.campaign_dir)}
    )
    spans = sum(1 for e in events if e["ph"] == "X")
    instants = sum(1 for e in events if e["ph"] == "i")
    counters = sum(1 for e in events if e["ph"] == "C")
    print(f"wrote {path} ({len(events)} events: {spans} spans, "
          f"{instants} instants, {counters} counter samples)")
    print("open it in https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the persistent campaign daemon until interrupted."""
    import asyncio
    import signal

    from repro.serve import ReproServer

    server = ReproServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        cache_max_entries=args.cache_max_entries,
        cache_ttl_s=args.cache_ttl,
        results_dir=args.results_dir,
        max_queued=args.max_queued,
        task_timeout_s=args.task_timeout,
    )

    async def run() -> None:
        start = asyncio.ensure_future(server.serve_forever())
        # Graceful stop on SIGTERM too (and SIGINT even when a parent
        # shell started us with it ignored, as CI background jobs do).
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, start.cancel)
            except (NotImplementedError, RuntimeError):
                pass  # platforms without POSIX signal support
        # serve_forever binds before blocking; give the banner real facts.
        while server._server is None and not start.done():
            await asyncio.sleep(0.01)
        print(
            f"repro serve on http://{server.host}:{server.port} "
            f"({server.queue.runner.workers} warm worker(s), "
            f"cache {args.cache_dir})",
            flush=True,
        )
        print("endpoints: POST /jobs, GET /jobs[/<id>[/events]], "
              "/metrics, /healthz  (Ctrl-C to stop)", flush=True)
        try:
            await start
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    print("shutting down (draining worker pool) ...", flush=True)
    server.queue.close()
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Send one campaign spec to a running daemon."""
    import json

    from repro.serve import ServeClient, ServeError

    spec = json.loads(Path(args.spec).read_text())
    client = ServeClient(args.host, args.port)

    def render(row: dict) -> None:
        state = "done" if row["final"] else f"{row['progress'] * 100:3.0f}%"
        print(
            f"[hb] task {row['task_id']} {state}  "
            f"sim {row['sim_now_ps'] / MS:.2f}/{row['sim_until_ps'] / MS:.2f} ms  "
            f"{row['events_executed']:,} events  pid {row['pid']}",
            flush=True,
        )

    try:
        job = client.submit(spec)
    except ServeError as exc:
        raise SystemExit(f"submit failed: {exc}")
    cached = " (cached)" if job.get("cached") else ""
    print(f"{job['job_id']} {job['state']}{cached}: {job['description']}")
    if not args.wait or job["state"] in ("done", "failed"):
        document = job
    else:
        try:
            document = client.wait(
                job["job_id"],
                timeout_s=args.timeout,
                on_heartbeat=None if args.no_progress else render,
            )
        except ServeError as exc:
            raise SystemExit(f"job failed: {exc}")
    if document["state"] == "done":
        result = document.get("result") or {}
        stats = result.get("stats", {})
        print(
            f"{document['job_id']} done: {len(result.get('points', []))} point(s), "
            f"{stats.get('campaign_wall_s', 0.0):.2f} s wall, "
            f"{stats.get('events_total', 0):,} events"
            + (" [served from cache]" if document.get("cached") else "")
        )
        if args.json is not None:
            Path(args.json).write_text(json.dumps(document, indent=2) + "\n")
            print(f"wrote {args.json}")
    return 0


def _start_closed_loop(args: argparse.Namespace, tester) -> None:
    """Closed-loop generation from a named traffic model (Section 7.5)."""
    import numpy as np

    from repro.workload import ClosedLoopGenerator, FlowSlot, hadoop, websearch
    from repro.workload.distributions import EmpiricalCdf

    base = websearch() if args.workload == "websearch" else hadoop()
    if args.size_scale != 1:
        base = EmpiricalCdf(
            tuple(
                (max(int(size) // args.size_scale, 1), prob)
                for size, prob in zip(base.sizes, base.probs)
            )
        )
    n = tester.n_test_ports
    if n % 2 != 0:
        raise SystemExit("closed-loop workloads need an even port count")
    slots = [
        FlowSlot(src, src + n // 2)
        for src in range(n // 2)
        for _ in range(args.flows_per_port)
    ]
    generator = ClosedLoopGenerator(
        tester, base, slots, rng=np.random.default_rng(0)
    )
    generator.start()
    # Keep a reference alive for the duration of the run.
    tester._cli_generator = generator


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Marlin-reproduction control plane CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("algorithms", help="list registered CC algorithms")

    p_amp = sub.add_parser("amplification", help="Section 3.3 arithmetic")
    p_amp.add_argument("--mtu", type=int, default=1024)

    sub.add_parser("capabilities", help="Tables 1 and 2")

    p_res = sub.add_parser("resources", help="Table 4 estimates")
    p_res.add_argument("--algorithm", default="dctcp")
    p_res.add_argument("--flows", type=int, default=65_536)
    p_res.add_argument("--mtu", type=int, default=1024)

    p_run = sub.add_parser("run", help="deploy and run a test")
    p_run.add_argument("--algorithm", default="dctcp")
    p_run.add_argument("--ports", type=int, default=2)
    p_run.add_argument("--flows-per-port", type=int, default=1)
    p_run.add_argument("--mtu", type=int, default=1024)
    p_run.add_argument("--pattern", choices=("pairs", "fan_in"), default="pairs")
    p_run.add_argument(
        "--workload",
        choices=("fixed", "websearch", "hadoop"),
        default="fixed",
        help="fixed sizes, or a closed-loop traffic model (pairs pattern)",
    )
    p_run.add_argument(
        "--size-scale",
        type=int,
        default=1,
        help="divide workload flow sizes by this factor (scaled runs)",
    )
    p_run.add_argument("--size-packets", type=int, default=5000)
    p_run.add_argument("--duration-ms", type=float, default=5.0)
    p_run.add_argument("--int-enabled", action="store_true")
    p_run.add_argument(
        "--trace",
        action="store_true",
        help="log every per-flow CC decision (cwnd/rate updates, slow-path "
             "alpha) to the in-model QDMA logger (tester.nic.logger); "
             "grows with decision count, so off by default",
    )
    p_run.add_argument("--export-dir", default=None)
    p_run.add_argument(
        "--metrics-out",
        default=None,
        help="write a final metrics snapshot (.prom/.txt Prometheus, else JSON)",
    )
    p_run.add_argument(
        "--config",
        default=None,
        help="JSON TestConfig file (overrides the individual options)",
    )
    p_run.add_argument(
        "--sim-backend",
        choices=backend_names(),
        default=None,
        help="run-loop backend (default: $REPRO_SIM_BACKEND, else auto); "
             "backends are bit-identical, this only changes speed",
    )

    p_sweep = sub.add_parser(
        "sweep", help="CC parameter sweep, sharded across a process pool"
    )
    p_sweep.add_argument("--algorithm", default="dctcp")
    p_sweep.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=V1,V2",
        help="one grid axis of CC parameter values; repeat for a "
             "cartesian product (omit to sweep the single default point)",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=1,
        help="process-pool width (1 = serial; results are identical)",
    )
    p_sweep.add_argument(
        "--seeds", type=int, default=None,
        help="seed replicates per grid point (aggregated into each row)",
    )
    p_sweep.add_argument("--seed", type=int, default=0, help="campaign seed")
    p_sweep.add_argument("--senders", type=int, default=3)
    p_sweep.add_argument("--duration-ms", type=float, default=6.0)
    p_sweep.add_argument("--ecn-threshold", type=int, default=84_000)
    p_sweep.add_argument("--json", default=None, help="write results as JSON")
    p_sweep.add_argument(
        "--metrics-out",
        default=None,
        help="write campaign metrics (.prom/.txt Prometheus, else JSON)",
    )
    p_sweep.add_argument(
        "--manifest",
        default=None,
        help="write a run manifest (config hash, seed, git sha, metrics)",
    )
    p_sweep.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress live [hb] heartbeat lines",
    )
    p_sweep.add_argument(
        "--results-dir",
        default=None,
        help="write a campaign journal + per-task flight-recorder "
             "post-mortems here (input for `repro trace`)",
    )
    p_sweep.add_argument(
        "--sim-backend",
        choices=backend_names(),
        default=None,
        help="run-loop backend for every task (default: $REPRO_SIM_BACKEND, "
             "else auto); backends are bit-identical, this only changes speed",
    )

    p_fluid = sub.add_parser(
        "fluid",
        help="fluid FCT campaign (Figure 10 grid), closed-form or columnar",
    )
    p_fluid.add_argument(
        "--algorithms", default="dctcp,dcqcn,ideal",
        help="comma-separated fluid profiles (dctcp, dcqcn, ideal)",
    )
    p_fluid.add_argument(
        "--backend", choices=("closed_form", "columnar"), default="closed_form",
        help="closed_form: exact per-flow kernel; columnar: time-stepped "
             "NumPy solver (dynamic feedback, scales to 10^6 flows)",
    )
    p_fluid.add_argument(
        "--flows-per-port", default="8",
        help="comma-separated per-port concurrency levels (grid axis)",
    )
    p_fluid.add_argument("--flows-total", type=int, default=50_000,
                         help="FCT samples per cell")
    p_fluid.add_argument("--ports", type=int, default=12)
    p_fluid.add_argument(
        "--workload", choices=("websearch", "hadoop"), default="websearch"
    )
    p_fluid.add_argument("--workers", type=int, default=1)
    p_fluid.add_argument("--seed", type=int, default=0)
    p_fluid.add_argument("--json", default=None, help="write results as JSON")
    p_fluid.add_argument(
        "--results-dir",
        default=None,
        help="write a campaign journal + per-task flight-recorder "
             "post-mortems here (input for `repro trace`)",
    )
    p_fluid.add_argument(
        "--timeseries-out",
        default=None,
        help="(columnar only) save per-step per-bottleneck aggregates as "
             "one .npz per grid cell into this directory",
    )
    p_fluid.add_argument(
        "--timeseries-every",
        type=int,
        default=1,
        help="sample every k-th solver step into the timeseries (default 1)",
    )

    p_report = sub.add_parser(
        "report", help="profile a demo scenario and print metrics"
    )
    p_report.add_argument("--algorithm", default="dctcp")
    p_report.add_argument(
        "--backend", choices=("packet", "columnar"), default="packet",
        help="packet: event-driven demo scenario with the sim profiler; "
             "columnar: closed-loop fluid-solver run with step telemetry",
    )
    p_report.add_argument("--senders", type=int, default=3,
                          help="sender ports (columnar: bottleneck count)")
    p_report.add_argument("--size-packets", type=int, default=10**9)
    p_report.add_argument("--duration-ms", type=float, default=2.0)
    p_report.add_argument("--ecn-threshold", type=int, default=84_000)
    p_report.add_argument("--seed", type=int, default=0)
    p_report.add_argument("--top", type=int, default=12,
                          help="profile rows to print")
    p_report.add_argument(
        "--workload", choices=("websearch", "hadoop"), default="websearch",
        help="(columnar) flow-size distribution",
    )
    p_report.add_argument("--flows-per-port", type=int, default=64,
                          help="(columnar) concurrent flows per bottleneck")
    p_report.add_argument("--flows-total", type=int, default=20_000,
                          help="(columnar) FCT samples to collect")
    p_report.add_argument(
        "--metrics-out",
        default=None,
        help="also write the full metrics snapshot (.prom/.txt/JSON)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="persistent campaign daemon: HTTP job queue over a warm pool "
             "with a config-hash result cache",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8723)
    p_serve.add_argument(
        "--workers", type=int, default=None,
        help="warm worker-pool width (default: all CPUs)",
    )
    p_serve.add_argument(
        "--cache-dir", default=".repro-cache",
        help="result-cache directory keyed by canonical config hash",
    )
    p_serve.add_argument(
        "--cache-max-entries", type=int, default=None,
        help="cap on cached campaigns; least-recently-used entries are "
             "evicted past it (default: unbounded)",
    )
    p_serve.add_argument(
        "--cache-ttl", type=float, default=None, metavar="SECONDS",
        help="expire cached campaigns older than this (default: never)",
    )
    p_serve.add_argument(
        "--results-dir", default=None,
        help="arm campaign journals + flight-recorder post-mortems here",
    )
    p_serve.add_argument(
        "--max-queued", type=int, default=64,
        help="campaigns allowed to wait in the queue before 503 (default 64)",
    )
    p_serve.add_argument(
        "--task-timeout", type=float, default=None,
        help="per-task deadline in seconds (default: none)",
    )

    p_submit = sub.add_parser(
        "submit", help="send a campaign spec to a running `repro serve`"
    )
    p_submit.add_argument("spec", help="campaign spec JSON file (see docs/SERVING.md)")
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=8723)
    p_submit.add_argument(
        "--wait", action="store_true",
        help="long-poll until the job finishes, rendering [hb] progress lines",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=None,
        help="give up waiting after this many seconds (default: forever)",
    )
    p_submit.add_argument(
        "--no-progress", action="store_true",
        help="suppress live [hb] heartbeat lines while waiting",
    )
    p_submit.add_argument(
        "--json", default=None, help="write the final job document here"
    )

    p_trace = sub.add_parser(
        "trace",
        help="render a campaign results dir as Chrome/Perfetto trace JSON",
    )
    p_trace.add_argument(
        "campaign_dir",
        help="campaign results directory (campaign.json journal and/or "
             "flight-task*.json post-mortem dumps)",
    )
    p_trace.add_argument(
        "-o", "--output", default=None,
        help="output file (default: <campaign_dir>/trace.json)",
    )
    return parser


HANDLERS = {
    "algorithms": cmd_algorithms,
    "amplification": cmd_amplification,
    "capabilities": cmd_capabilities,
    "resources": cmd_resources,
    "run": cmd_run,
    "sweep": cmd_sweep,
    "fluid": cmd_fluid,
    "report": cmd_report,
    "trace": cmd_trace,
    "serve": cmd_serve,
    "submit": cmd_submit,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
