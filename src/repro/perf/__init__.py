"""Performance-regression suite (see ``docs/PERFORMANCE.md``)."""

from repro.perf.suite import (
    check_provenance,
    check_regression,
    load_bench_report,
    main,
    normalize_report,
    run_suite,
)

__all__ = [
    "check_provenance",
    "check_regression",
    "load_bench_report",
    "main",
    "normalize_report",
    "run_suite",
]
