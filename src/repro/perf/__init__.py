"""Performance-regression suite (see ``docs/PERFORMANCE.md``)."""

from repro.perf.suite import run_suite, main

__all__ = ["run_suite", "main"]
