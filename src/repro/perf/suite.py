"""The perf-regression suite behind ``make bench`` / ``repro-bench``.

Times the three hot paths the engine overhaul targets — the raw event
loop, the full SCHE->DATA->ACK->INFO datapath, and the fluid-model
batch kernel — the two supporting paths (timer churn, trace logging),
and the campaign layer (``parallel_speedup``: an identical sweep grid
run serially and through the ``repro.parallel`` process pool, recording
both throughputs and their ratio), plus ``obs_overhead`` (the same
event chain metrics-off vs metrics-on, guarding the observability
layer's <= 5% budget).  Results are stamped with the execution
environment and written as JSON (``BENCH_PR3.json`` by default),
optionally compared against a
checked-in baseline: any guarded rate falling more than ``--tolerance``
(default 20%) below its baseline is a regression and the run exits
non-zero.

Rates are the best of ``--repeats`` rounds: wall-clock minimums are the
standard way to suppress scheduler noise on shared machines.
Allocation figures come from :mod:`tracemalloc` (peak traced bytes and
the block count surviving the round), which the free-list pool and the
tuple heap are expected to keep flat.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path
from typing import Any, Callable

from repro.units import US

#: Rates guarded by --check, as (bench, field) paths into the report.
GUARDED_RATES = (
    ("engine_event_rate", "events_per_sec"),
    ("datapath_rate", "packets_per_sec"),
    ("fluid_rate", "flows_per_sec"),
    ("parallel_speedup", "points_per_sec"),
)


def _best_of(fn: Callable[[], tuple[int, float]], repeats: int) -> tuple[float, int]:
    """Run ``fn`` ``repeats`` times; it returns ``(work_items, seconds)``.
    Returns ``(best_rate, work_items)``."""
    best = 0.0
    work = 0
    for _ in range(repeats):
        items, seconds = fn()
        work = items
        if seconds > 0:
            best = max(best, items / seconds)
    return best, work


def _traced(fn: Callable[[], Any]) -> dict[str, int]:
    """Peak traced bytes and surviving allocation blocks for one run."""
    tracemalloc.start()
    try:
        fn()
        current, peak = tracemalloc.get_traced_memory()
        blocks = sum(
            stat.count for stat in tracemalloc.take_snapshot().statistics("filename")
        )
    finally:
        tracemalloc.stop()
    return {
        "alloc_peak_bytes": peak,
        "alloc_current_bytes": current,
        "alloc_blocks": blocks,
    }


# -- benches ------------------------------------------------------------------


def bench_engine(n_events: int = 20_000, repeats: int = 5) -> dict[str, Any]:
    """The tight self-rescheduling chain: pure event-loop overhead."""
    from repro.sim import Simulator

    horizon = n_events * 1000

    def round_() -> tuple[int, float]:
        sim = Simulator()

        def tick() -> None:
            if sim.now < horizon:
                sim.after(1000, tick)

        sim.at(0, tick)
        t0 = time.perf_counter()
        executed = sim.run()
        return executed, time.perf_counter() - t0

    rate, executed = _best_of(round_, repeats)
    result = {"events_per_sec": rate, "events": executed, "repeats": repeats}
    result.update(_traced(round_))
    return result


def bench_timer_churn(n_restarts: int = 20_000, repeats: int = 3) -> dict[str, Any]:
    """Per-ACK RTO restarts — the re-arm path that used to cancel+repush."""
    from repro.sim import Simulator, Timeout

    pending_after = 0

    def round_() -> tuple[int, float]:
        nonlocal pending_after
        sim = Simulator()
        timeout = Timeout(sim, 1_000_000_000, lambda: None)
        t0 = time.perf_counter()
        timeout.restart()
        for _ in range(n_restarts):
            timeout.restart()
        seconds = time.perf_counter() - t0
        pending_after = sim.pending_events
        return n_restarts, seconds

    rate, _ = _best_of(round_, repeats)
    return {
        "restarts_per_sec": rate,
        "pending_entries_after": pending_after,
        "repeats": repeats,
    }


def bench_datapath(duration_us: int = 200, repeats: int = 3) -> dict[str, Any]:
    """End-to-end DATA packets through SCHE->DATA->ACK->INFO->CC."""
    from repro import ControlPlane, TestConfig
    from repro.pswitch.packets import PACKET_POOL

    pool_stats: dict[str, int] = {}

    def round_() -> tuple[int, float]:
        nonlocal pool_stats
        cp = ControlPlane()
        cp.deploy(TestConfig(cc_algorithm="dcqcn", n_test_ports=2))
        cp.wire_loopback_fabric()
        cp.start_flows(size_packets=10**9, pattern="pairs")
        before = PACKET_POOL.stats()
        t0 = time.perf_counter()
        cp.run(duration_ps=duration_us * US)
        seconds = time.perf_counter() - t0
        after = PACKET_POOL.stats()
        pool_stats = {k: after[k] - before[k] for k in ("created", "reused", "released")}
        return cp.read_measurements()["switch.data_generated"], seconds

    rate, packets = _best_of(round_, repeats)
    result = {
        "packets_per_sec": rate,
        "packets": packets,
        "sim_duration_us": duration_us,
        "pool": pool_stats,
        "repeats": repeats,
    }
    result.update(_traced(round_))
    return result


def bench_fluid(flows_total: int = 50_000, repeats: int = 3) -> dict[str, Any]:
    """The vectorized fluid-model FCT kernel (Figure 10 scale path)."""
    from repro.fluid import FluidSimulator, dcqcn_profile
    from repro.workload import websearch

    def round_() -> tuple[int, float]:
        fluid = FluidSimulator(flows_per_port=8, seed=1)
        t0 = time.perf_counter()
        result = fluid.run(dcqcn_profile(), websearch(), flows_total=flows_total)
        return len(result.fcts_us), time.perf_counter() - t0

    rate, flows = _best_of(round_, repeats)
    return {"flows_per_sec": rate, "flows": flows, "repeats": repeats}


def bench_parallel_speedup(
    n_points: int = 8,
    duration_us: int = 600,
    workers: int | None = None,
) -> dict[str, Any]:
    """Serial vs sharded throughput for one sweep campaign.

    The same ``n_points`` DCQCN grid runs once with ``workers=1`` and
    once through the process pool; both are real end-to-end campaigns
    (warm-up, wiring, simulation, aggregation).  ``speedup`` approaches
    the worker count on an otherwise idle multi-core box and ~1.0 on a
    single core (pool overhead is a few percent); ``points_per_sec`` —
    the pooled campaign's throughput — is the guarded rate.
    """
    import os

    from repro.core.sweep import sweep_campaign
    from repro.units import GBPS

    if workers is None:
        workers = max(2, min(4, os.cpu_count() or 1))
    grid = [{"rate_ai_bps": (index + 1) * GBPS} for index in range(n_points)]
    common = dict(n_senders=2, duration_ps=duration_us * US)

    serial_points, serial_campaign = sweep_campaign(
        "dcqcn", grid, workers=1, **common
    )
    parallel_points, parallel_campaign = sweep_campaign(
        "dcqcn", grid, workers=workers, **common
    )
    if serial_points != parallel_points:  # determinism is part of the contract
        raise AssertionError("parallel sweep diverged from the serial run")

    serial_s = serial_campaign.wall_s
    parallel_s = parallel_campaign.wall_s
    return {
        "points_per_sec": n_points / parallel_s if parallel_s > 0 else 0.0,
        "points_per_sec_serial": n_points / serial_s if serial_s > 0 else 0.0,
        "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "points": n_points,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "events_total": parallel_campaign.stats()["events_total"],
    }


def bench_obs_overhead(n_events: int = 20_000, repeats: int = 5) -> dict[str, Any]:
    """Metrics-on vs metrics-off cost of the instrumented event loop.

    Three variants of the same self-rescheduling tick chain, rounds
    interleaved so machine drift hits all variants equally:

    * ``off``  — the plain engine, nothing bound;
    * ``on``   — the obs design point: a registry of lazy bindings over
      engine state, collected once at the end (exactly what
      ``--metrics-out`` does).  The guarded ``overhead_frac`` compares
      this against ``off`` — lazy bindings must not slow the loop
      (baseline budget ``max_overhead_frac``, ISSUE acceptance <= 5%);
    * ``live`` — additionally increments one ``Counter`` inside the
      callback.  Reported unguarded as ``live_counter_overhead_frac``:
      it prices a single attribute store against a *degenerate* empty
      callback, the worst case a warm-path counter can ever hit.
    """
    from repro.obs.instrument import instrument_engine
    from repro.obs.metrics import MetricsRegistry
    from repro.sim import Simulator

    horizon = n_events * 1000

    def chain(sim: Any, extra: Callable[[], None] | None = None) -> None:
        if extra is None:
            def tick() -> None:
                if sim.now < horizon:
                    sim.after(1000, tick)
        else:
            def tick() -> None:
                extra()
                if sim.now < horizon:
                    sim.after(1000, tick)
        sim.at(0, tick)

    def round_off() -> tuple[int, float]:
        sim = Simulator()
        chain(sim)
        t0 = time.perf_counter()
        executed = sim.run()
        return executed, time.perf_counter() - t0

    def round_on() -> tuple[int, float]:
        sim = Simulator()
        registry = MetricsRegistry()
        instrument_engine(sim, registry)
        chain(sim)
        t0 = time.perf_counter()
        executed = sim.run()
        seconds = time.perf_counter() - t0
        list(registry.collect())  # one end-of-run scrape, like --metrics-out
        return executed, seconds

    def round_live() -> tuple[int, float]:
        sim = Simulator()
        registry = MetricsRegistry()
        instrument_engine(sim, registry)
        ticks = registry.counter("bench_ticks_total")

        def bump() -> None:
            ticks.value += 1

        chain(sim, bump)
        t0 = time.perf_counter()
        executed = sim.run()
        seconds = time.perf_counter() - t0
        list(registry.collect())
        return executed, seconds

    best = {"off": 0.0, "on": 0.0, "live": 0.0}
    executed = 0
    for _ in range(repeats):  # interleaved: drift cannot bias one variant
        for key, round_ in (("off", round_off), ("on", round_on), ("live", round_live)):
            items, seconds = round_()
            executed = items
            if seconds > 0:
                best[key] = max(best[key], items / seconds)

    def overhead(rate: float) -> float:
        if best["off"] <= 0:
            return 0.0
        # Clamp at 0 so a faster instrumented round never goes negative.
        return max((best["off"] - rate) / best["off"], 0.0)

    return {
        "events_per_sec_off": best["off"],
        "events_per_sec_on": best["on"],
        "events_per_sec_live": best["live"],
        "overhead_frac": overhead(best["on"]),  # guarded
        "live_counter_overhead_frac": overhead(best["live"]),
        "events": executed,
        "repeats": repeats,
    }


def bench_trace(n_records: int = 100_000, repeats: int = 3) -> dict[str, Any]:
    """Columnar trace append + series read-back."""
    from repro.sim import TraceRecorder

    def round_() -> tuple[int, float]:
        trace = TraceRecorder()
        log = trace.log
        t0 = time.perf_counter()
        for i in range(n_records):
            log(i, "cc", cwnd=i, rate=i * 2)
        trace.series("cc", "cwnd")
        return n_records, time.perf_counter() - t0

    rate, _ = _best_of(round_, repeats)
    return {"logs_per_sec": rate, "repeats": repeats}


# -- suite --------------------------------------------------------------------


def run_suite(*, quick: bool = False, repeats: int = 5) -> dict[str, Any]:
    """Run every bench; returns the report dict (also what gets written)."""
    scale = 4 if quick else 1
    benches = {
        "engine_event_rate": lambda: bench_engine(20_000 // scale, repeats),
        "timer_churn": lambda: bench_timer_churn(20_000 // scale, min(repeats, 3)),
        "datapath_rate": lambda: bench_datapath(200 // scale, min(repeats, 3)),
        "fluid_rate": lambda: bench_fluid(50_000 // scale, min(repeats, 3)),
        "trace_log_rate": lambda: bench_trace(100_000 // scale, min(repeats, 3)),
        "obs_overhead": lambda: bench_obs_overhead(20_000 // scale, repeats),
        "parallel_speedup": lambda: bench_parallel_speedup(
            8 // (2 if quick else 1), 600 // scale
        ),
    }
    from repro.obs.manifest import environment

    report: dict[str, Any] = {
        "schema": 2,
        "quick": quick,
        # Environment stamp: lets rate trajectories across BENCH_*.json
        # files be attributed to the machine/interpreter that produced
        # them (git sha, python version, platform, cpu count).
        "env": environment(),
        "benches": {},
    }
    for name, bench in benches.items():
        print(f"[bench] {name} ...", flush=True)
        report["benches"][name] = bench()
    return report


def check_regression(
    report: dict[str, Any], baseline: dict[str, Any], tolerance: float
) -> list[str]:
    """Guarded rates that fell more than ``tolerance`` below baseline."""
    failures = []
    for bench, field in GUARDED_RATES:
        base = baseline.get("benches", {}).get(bench, {}).get(field)
        if base is None:
            continue
        measured = report["benches"].get(bench, {}).get(field, 0.0)
        floor = base * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"{bench}.{field}: {measured:,.0f}/s is below the regression "
                f"floor {floor:,.0f}/s (baseline {base:,.0f}/s - {tolerance:.0%})"
            )
    # The obs layer is additionally held to an absolute budget: metrics-on
    # must stay within the baseline's max_overhead_frac of metrics-off.
    budget = baseline.get("benches", {}).get("obs_overhead", {}).get(
        "max_overhead_frac"
    )
    if budget is not None:
        measured = (
            report["benches"].get("obs_overhead", {}).get("overhead_frac", 0.0)
        )
        if measured > budget:
            failures.append(
                f"obs_overhead.overhead_frac: {measured:.1%} exceeds the "
                f"metrics-on budget of {budget:.0%}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench", description="Run the perf-regression suite."
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_PR3.json"),
        help="where to write the JSON report (default: BENCH_PR3.json)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline JSON to compare guarded rates against",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero if a guarded rate regresses past --tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional drop below baseline (default 0.20)",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--quick", action="store_true", help="quarter-size workloads (CI smoke)"
    )
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline is not None:
        # Read up front: a bad path should not cost a full suite run.
        try:
            baseline = json.loads(args.baseline.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            parser.error(f"cannot read baseline {args.baseline}: {exc}")

    report = run_suite(quick=args.quick, repeats=args.repeats)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench] report written to {args.output}")
    for name, result in report["benches"].items():
        if name == "obs_overhead":
            print(f"  {name:20s} {result['overhead_frac']:>13.1%} overhead "
                  f"(on {result['events_per_sec_on']:,.0f}/s, "
                  f"off {result['events_per_sec_off']:,.0f}/s)")
            continue
        rate_key = next(k for k in result if k.endswith("_per_sec"))
        print(f"  {name:20s} {result[rate_key]:>14,.0f} {rate_key.removesuffix('_per_sec')}/s")

    if baseline is not None:
        failures = check_regression(report, baseline, args.tolerance)
        if args.check and failures:
            for failure in failures:
                print(f"[bench] REGRESSION: {failure}", file=sys.stderr)
            return 1
        for failure in failures:
            print(f"[bench] warning: {failure}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
