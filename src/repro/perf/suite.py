"""The perf-regression suite behind ``make bench`` / ``repro-bench``.

Times the hot paths the engine overhaul targets — the raw event loop,
the full SCHE->DATA->ACK->INFO datapath, the fluid-model batch kernel,
and the columnar fluid solver at million-flow scale
(``fluid_rate_1m``) — the two supporting paths (timer churn, trace
logging), and the campaign layer (``parallel_speedup``: an identical
sweep grid run serially and through the ``repro.parallel`` process
pool, recording both throughputs and their ratio), plus
``obs_overhead`` (the same event chain metrics-off vs metrics-on,
guarding the observability layer's <= 5% budget).  Results are stamped
with the execution environment and written as JSON (``BENCH_PR10.json``
by default), optionally compared against a checked-in baseline: any
guarded rate falling more than its tolerance below baseline (the
``--tolerance`` default, or a per-bench ``tolerance`` recorded in the
baseline entry) is a regression and the run exits non-zero.  When the
baseline's recorded environment fingerprint differs from this run's, a
loud provenance warning is printed first — cross-machine comparisons
are advisory, not regressions (the lesson of the BENCH_PR1->PR3
drift).  ``--trajectory BENCH_*.json`` prints guarded rates across
report files of any schema vintage.

Rates are the best of ``--repeats`` rounds: wall-clock minimums are the
standard way to suppress scheduler noise on shared machines.
Allocation figures come from :mod:`tracemalloc` (peak traced bytes and
the block count surviving the round), which the free-list pool and the
tuple heap are expected to keep flat.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.units import US

#: Rates guarded by --check, as (bench, field) paths into the report.
GUARDED_RATES = (
    ("engine_event_rate", "events_per_sec"),
    ("datapath_rate", "packets_per_sec"),
    ("fluid_rate", "flows_per_sec"),
    ("fluid_rate_1m", "flow_steps_per_sec"),
    ("parallel_speedup", "points_per_sec"),
    ("parallel_speedup", "points_per_sec_warm"),
)

#: Environment-fingerprint fields compared by the provenance check: a
#: baseline recorded on different hardware or interpreter cannot vouch
#: for this machine's rates, so a mismatch is warned about loudly.
PROVENANCE_FIELDS = ("platform", "python_version", "implementation", "cpu_count")


def normalize_report(report: dict[str, Any]) -> dict[str, Any]:
    """Upgrade any BENCH_*.json schema to the current shape, in place.

    Schema 1 (BENCH_PR1/PR2) lacked the ``env`` environment stamp;
    schema 2 added it.  Trajectory tooling and the baseline comparison
    read every report through this normalizer so all vintages parse
    uniformly: missing blocks become empty dicts, and the original
    schema number is preserved under ``schema_original``.
    """
    report.setdefault("schema_original", report.get("schema", 1))
    report["schema"] = 2
    report.setdefault("env", {})
    report.setdefault("benches", {})
    return report


def load_bench_report(path: Path) -> dict[str, Any]:
    """Read and normalize one bench report (or baseline) file."""
    return normalize_report(json.loads(Path(path).read_text()))


def _best_of(fn: Callable[[], tuple[int, float]], repeats: int) -> tuple[float, int]:
    """Run ``fn`` ``repeats`` times; it returns ``(work_items, seconds)``.
    Returns ``(best_rate, work_items)``."""
    best = 0.0
    work = 0
    for _ in range(repeats):
        items, seconds = fn()
        work = items
        if seconds > 0:
            best = max(best, items / seconds)
    return best, work


def _traced(fn: Callable[[], Any]) -> dict[str, int]:
    """Peak traced bytes and surviving allocation blocks for one run."""
    tracemalloc.start()
    try:
        fn()
        current, peak = tracemalloc.get_traced_memory()
        blocks = sum(
            stat.count for stat in tracemalloc.take_snapshot().statistics("filename")
        )
    finally:
        tracemalloc.stop()
    return {
        "alloc_peak_bytes": peak,
        "alloc_current_bytes": current,
        "alloc_blocks": blocks,
    }


# -- benches ------------------------------------------------------------------


def bench_engine(n_events: int = 20_000, repeats: int = 5) -> dict[str, Any]:
    """The tight self-rescheduling chain: pure event-loop overhead."""
    from repro.sim import Simulator

    horizon = n_events * 1000

    def round_() -> tuple[int, float]:
        sim = Simulator()

        def tick() -> None:
            if sim.now < horizon:
                sim.after(1000, tick)

        sim.at(0, tick)
        t0 = time.perf_counter()
        executed = sim.run()
        return executed, time.perf_counter() - t0

    rate, executed = _best_of(round_, repeats)
    result = {"events_per_sec": rate, "events": executed, "repeats": repeats}
    result.update(_traced(round_))
    return result


def bench_timer_churn(n_restarts: int = 20_000, repeats: int = 3) -> dict[str, Any]:
    """Per-ACK RTO restarts — the re-arm path that used to cancel+repush."""
    from repro.sim import Simulator, Timeout

    pending_after = 0

    def round_() -> tuple[int, float]:
        nonlocal pending_after
        sim = Simulator()
        timeout = Timeout(sim, 1_000_000_000, lambda: None)
        t0 = time.perf_counter()
        timeout.restart()
        for _ in range(n_restarts):
            timeout.restart()
        seconds = time.perf_counter() - t0
        pending_after = sim.pending_events
        return n_restarts, seconds

    rate, _ = _best_of(round_, repeats)
    return {
        "restarts_per_sec": rate,
        "pending_entries_after": pending_after,
        "repeats": repeats,
    }


def bench_datapath(duration_us: int = 200, repeats: int = 3) -> dict[str, Any]:
    """End-to-end DATA packets through SCHE->DATA->ACK->INFO->CC."""
    from repro import ControlPlane, TestConfig
    from repro.pswitch.packets import PACKET_POOL

    pool_stats: dict[str, int] = {}

    def round_() -> tuple[int, float]:
        nonlocal pool_stats
        cp = ControlPlane()
        cp.deploy(TestConfig(cc_algorithm="dcqcn", n_test_ports=2))
        cp.wire_loopback_fabric()
        cp.start_flows(size_packets=10**9, pattern="pairs")
        before = PACKET_POOL.stats()
        t0 = time.perf_counter()
        cp.run(duration_ps=duration_us * US)
        seconds = time.perf_counter() - t0
        after = PACKET_POOL.stats()
        pool_stats = {k: after[k] - before[k] for k in ("created", "reused", "released")}
        return cp.read_measurements()["switch.data_generated"], seconds

    rate, packets = _best_of(round_, repeats)
    result = {
        "packets_per_sec": rate,
        "packets": packets,
        "sim_duration_us": duration_us,
        "pool": pool_stats,
        "repeats": repeats,
    }
    result.update(_traced(round_))
    return result


def bench_fluid(flows_total: int = 50_000, repeats: int = 3) -> dict[str, Any]:
    """The vectorized fluid-model FCT kernel (Figure 10 scale path)."""
    from repro.fluid import FluidSimulator, dcqcn_profile
    from repro.workload import websearch

    def round_() -> tuple[int, float]:
        fluid = FluidSimulator(flows_per_port=8, seed=1)
        t0 = time.perf_counter()
        result = fluid.run(dcqcn_profile(), websearch(), flows_total=flows_total)
        return len(result.fcts_us), time.perf_counter() - t0

    rate, flows = _best_of(round_, repeats)
    return {"flows_per_sec": rate, "flows": flows, "repeats": repeats}


def bench_fluid_1m(
    n_flows: int = 1_048_576, n_steps: int = 10, repeats: int = 2
) -> dict[str, Any]:
    """The columnar solver stepping ~10^6 concurrent flows in one process.

    A mixed DCTCP/DCQCN population across 16 bottlenecks — both the
    group-by aggregation and the masked per-CC kernels at the scale the
    ROADMAP names as the fluid layer's target.  The guarded rate is
    flow-steps per second (live flows x steps / wall time).
    """
    import numpy as np

    from repro.fluid.solver import ColumnarFluidSolver

    n_bottlenecks = 16
    bottleneck = (np.arange(n_flows) % n_bottlenecks).astype(np.int32)
    half = n_flows // 2

    def round_() -> tuple[int, float]:
        solver = ColumnarFluidSolver(
            n_bottlenecks=n_bottlenecks, seed=1, capacity_hint=n_flows
        )
        solver.add_flows(
            np.full(half, 10_000_000), bottleneck=bottleneck[:half], kernel="dctcp"
        )
        solver.add_flows(
            np.full(n_flows - half, 10_000_000),
            bottleneck=bottleneck[half:],
            kernel="dcqcn",
        )
        solver.step(1)  # populate caches outside the timed window
        solver.flow_steps = 0
        t0 = time.perf_counter()
        solver.step(n_steps)
        return solver.flow_steps, time.perf_counter() - t0

    rate, flow_steps = _best_of(round_, repeats)
    return {
        "flow_steps_per_sec": rate,
        "flows": n_flows,
        "steps": n_steps,
        "flow_steps": flow_steps,
        "repeats": repeats,
    }


def bench_parallel_speedup(
    n_points: int = 8,
    duration_us: int = 600,
    workers: int | None = None,
) -> dict[str, Any]:
    """Serial vs sharded throughput for one sweep campaign.

    The same ``n_points`` DCQCN grid runs three ways: ``workers=1``
    (serial reference), through a cold process pool (what one-shot
    ``repro sweep`` pays — pool spawn and preload imports on the
    campaign's own clock), and through a pre-``start()``-ed warm pool
    (what every campaign after the first costs inside ``repro serve``).
    All are real end-to-end campaigns (wiring, simulation, aggregation).
    ``speedup`` approaches the worker count on an otherwise idle
    multi-core box and ~1.0 on a single core; ``points_per_sec`` (cold
    pooled) and ``points_per_sec_warm`` are the guarded rates — the gap
    between them is exactly the startup cost the daemon amortizes.
    """
    import os

    from repro.core.sweep import sweep_campaign
    from repro.parallel import CampaignRunner
    from repro.units import GBPS

    if workers is None:
        workers = max(2, min(4, os.cpu_count() or 1))
    grid = [{"rate_ai_bps": (index + 1) * GBPS} for index in range(n_points)]
    common = dict(n_senders=2, duration_ps=duration_us * US)

    serial_points, serial_campaign = sweep_campaign(
        "dcqcn", grid, workers=1, **common
    )
    parallel_points, parallel_campaign = sweep_campaign(
        "dcqcn", grid, workers=workers, **common
    )
    if serial_points != parallel_points:  # determinism is part of the contract
        raise AssertionError("parallel sweep diverged from the serial run")

    with CampaignRunner(workers=workers).start() as warm_runner:
        warm_points, warm_campaign = sweep_campaign(
            "dcqcn", grid, runner=warm_runner, **common
        )
    if warm_points != serial_points:
        raise AssertionError("warm-pool sweep diverged from the serial run")

    serial_s = serial_campaign.wall_s
    parallel_s = parallel_campaign.wall_s
    warm_s = warm_campaign.wall_s
    return {
        "points_per_sec": n_points / parallel_s if parallel_s > 0 else 0.0,
        "points_per_sec_serial": n_points / serial_s if serial_s > 0 else 0.0,
        "points_per_sec_warm": n_points / warm_s if warm_s > 0 else 0.0,
        "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
        "speedup_warm": serial_s / warm_s if warm_s > 0 else 0.0,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "points": n_points,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "warm_s": warm_s,
        "events_total": parallel_campaign.stats()["events_total"],
    }


def bench_obs_overhead(n_events: int = 20_000, repeats: int = 5) -> dict[str, Any]:
    """Metrics-on vs metrics-off cost of the instrumented event loop.

    Three variants of the same self-rescheduling tick chain, rounds
    interleaved so machine drift hits all variants equally:

    * ``off``  — the plain engine, nothing bound;
    * ``on``   — the obs design point: a registry of lazy bindings over
      engine state, collected once at the end (exactly what
      ``--metrics-out`` does).  The guarded ``overhead_frac`` compares
      this against ``off`` — lazy bindings must not slow the loop
      (baseline budget ``max_overhead_frac``, ISSUE acceptance <= 5%);
    * ``live`` — additionally increments one ``Counter`` inside the
      callback.  Reported unguarded as ``live_counter_overhead_frac``:
      it prices a single attribute store against a *degenerate* empty
      callback, the worst case a warm-path counter can ever hit;
    * ``flight`` — the plain chain with a
      :class:`~repro.obs.flight.FlightRecorder` attached.  The recorder
      only hooks rare branches (cancel/rearm/compact/drop/mark), none of
      which this chain takes, so ``flight_overhead_frac`` (unguarded)
      demonstrates the zero-cost-when-armed design point for the hot
      event loop.
    """
    from repro.obs import flight as flight_mod
    from repro.obs.instrument import instrument_engine
    from repro.obs.metrics import MetricsRegistry
    from repro.sim import Simulator

    horizon = n_events * 1000

    def chain(sim: Any, extra: Callable[[], None] | None = None) -> None:
        if extra is None:
            def tick() -> None:
                if sim.now < horizon:
                    sim.after(1000, tick)
        else:
            def tick() -> None:
                extra()
                if sim.now < horizon:
                    sim.after(1000, tick)
        sim.at(0, tick)

    def round_off() -> tuple[int, float]:
        sim = Simulator()
        chain(sim)
        t0 = time.perf_counter()
        executed = sim.run()
        return executed, time.perf_counter() - t0

    def round_on() -> tuple[int, float]:
        sim = Simulator()
        registry = MetricsRegistry()
        instrument_engine(sim, registry)
        chain(sim)
        t0 = time.perf_counter()
        executed = sim.run()
        seconds = time.perf_counter() - t0
        list(registry.collect())  # one end-of-run scrape, like --metrics-out
        return executed, seconds

    def round_live() -> tuple[int, float]:
        sim = Simulator()
        registry = MetricsRegistry()
        instrument_engine(sim, registry)
        ticks = registry.counter("bench_ticks_total")

        def bump() -> None:
            ticks.value += 1

        chain(sim, bump)
        t0 = time.perf_counter()
        executed = sim.run()
        seconds = time.perf_counter() - t0
        list(registry.collect())
        return executed, seconds

    def round_flight() -> tuple[int, float]:
        sim = Simulator()
        recorder = flight_mod.FlightRecorder(capacity=1024)
        flight_mod.attach(sim=sim, recorder=recorder)
        chain(sim)
        t0 = time.perf_counter()
        executed = sim.run()
        return executed, time.perf_counter() - t0

    best = {"off": 0.0, "on": 0.0, "live": 0.0, "flight": 0.0}
    executed = 0
    rounds = (
        ("off", round_off),
        ("on", round_on),
        ("live", round_live),
        ("flight", round_flight),
    )
    for _ in range(repeats):  # interleaved: drift cannot bias one variant
        for key, round_ in rounds:
            items, seconds = round_()
            executed = items
            if seconds > 0:
                best[key] = max(best[key], items / seconds)

    def overhead(rate: float) -> float:
        if best["off"] <= 0:
            return 0.0
        # Clamp at 0 so a faster instrumented round never goes negative.
        return max((best["off"] - rate) / best["off"], 0.0)

    return {
        "events_per_sec_off": best["off"],
        "events_per_sec_on": best["on"],
        "events_per_sec_live": best["live"],
        "events_per_sec_flight": best["flight"],
        "overhead_frac": overhead(best["on"]),  # guarded
        "live_counter_overhead_frac": overhead(best["live"]),
        "flight_overhead_frac": overhead(best["flight"]),
        "events": executed,
        "repeats": repeats,
    }


def bench_trace(n_records: int = 100_000, repeats: int = 3) -> dict[str, Any]:
    """Columnar trace append + series read-back."""
    from repro.sim import TraceRecorder

    def round_() -> tuple[int, float]:
        trace = TraceRecorder()
        log = trace.log
        t0 = time.perf_counter()
        for i in range(n_records):
            log(i, "cc", cwnd=i, rate=i * 2)
        trace.series("cc", "cwnd")
        return n_records, time.perf_counter() - t0

    rate, _ = _best_of(round_, repeats)
    return {"logs_per_sec": rate, "repeats": repeats}


# -- suite --------------------------------------------------------------------


def run_suite(
    *,
    quick: bool = False,
    repeats: int = 5,
    only: Optional[Sequence[str]] = None,
) -> dict[str, Any]:
    """Run every bench; returns the report dict (also what gets written).

    ``only`` restricts the run to the named benches (CI uses this to
    emit a standalone fluid_rate_1m artifact).
    """
    scale = 4 if quick else 1
    benches: dict[str, Callable[[], dict[str, Any]]] = {
        "engine_event_rate": lambda: bench_engine(20_000 // scale, repeats),
        "timer_churn": lambda: bench_timer_churn(20_000 // scale, min(repeats, 3)),
        "datapath_rate": lambda: bench_datapath(200 // scale, min(repeats, 3)),
        "fluid_rate": lambda: bench_fluid(50_000 // scale, min(repeats, 3)),
        "fluid_rate_1m": lambda: bench_fluid_1m(
            1_048_576 // scale, repeats=min(repeats, 2)
        ),
        "trace_log_rate": lambda: bench_trace(100_000 // scale, min(repeats, 3)),
        "obs_overhead": lambda: bench_obs_overhead(20_000 // scale, repeats),
        "parallel_speedup": lambda: bench_parallel_speedup(
            8 // (2 if quick else 1), 600 // scale
        ),
    }
    if only:
        # Short aliases for the two gated hot-path benches.
        aliases = {"engine": "engine_event_rate", "datapath": "datapath_rate"}
        wanted = {aliases.get(name, name) for name in only}
        unknown = sorted(wanted - set(benches))
        if unknown:
            raise SystemExit(
                f"unknown bench(es) {unknown}; available: {sorted(benches)} "
                f"(aliases: {sorted(aliases)})"
            )
        benches = {name: benches[name] for name in benches if name in wanted}
    from repro.obs.manifest import environment

    report: dict[str, Any] = {
        "schema": 2,
        "quick": quick,
        # Environment stamp: lets rate trajectories across BENCH_*.json
        # files be attributed to the machine/interpreter that produced
        # them (git sha, python version, platform, cpu count).
        "env": environment(),
        "benches": {},
    }
    for name, bench in benches.items():
        print(f"[bench] {name} ...", flush=True)
        report["benches"][name] = bench()
    return report


def check_provenance(
    report: dict[str, Any], baseline: dict[str, Any]
) -> list[str]:
    """Environment-fingerprint mismatches between a report and its baseline.

    The BENCH_PR1->PR3 rate "drift" turned out to be partly cross-machine
    noise (different kernels/hosts behind the same 1-core runner), so a
    baseline now records where it was measured and ``--check`` warns —
    loudly, but without failing — when this run's host or interpreter
    differs: rate comparisons across environments are advisory only.
    """
    base_env = baseline.get("env") or {}
    run_env = report.get("env") or {}
    if not base_env:
        return [
            "baseline has no environment fingerprint (schema 1?); "
            "re-baseline to enable provenance checking"
        ]
    mismatches = []
    for field in PROVENANCE_FIELDS:
        base_value, run_value = base_env.get(field), run_env.get(field)
        if base_value is not None and base_value != run_value:
            mismatches.append(f"{field}: baseline {base_value!r} vs run {run_value!r}")
    return mismatches


def check_regression(
    report: dict[str, Any], baseline: dict[str, Any], tolerance: float
) -> list[str]:
    """Guarded rates that fell more than their tolerance below baseline.

    ``tolerance`` is the default gate; a baseline bench entry may carry
    its own ``tolerance`` field to tighten (or loosen) just that rate —
    the engine/datapath floors run at 10% while noisier benches keep
    the default.
    """
    failures = []
    for bench, field in GUARDED_RATES:
        entry = baseline.get("benches", {}).get(bench, {})
        base = entry.get(field)
        if base is None:
            continue
        gate = entry.get("tolerance", tolerance)
        if bench not in report.get("benches", {}):
            continue  # partial runs (--only) only guard what they measured
        measured = report["benches"].get(bench, {}).get(field, 0.0)
        floor = base * (1.0 - gate)
        if measured < floor:
            failures.append(
                f"{bench}.{field}: {measured:,.0f}/s is below the regression "
                f"floor {floor:,.0f}/s (baseline {base:,.0f}/s - {gate:.0%})"
            )
    # The obs layer is additionally held to an absolute budget: metrics-on
    # must stay within the baseline's max_overhead_frac of metrics-off.
    budget = baseline.get("benches", {}).get("obs_overhead", {}).get(
        "max_overhead_frac"
    )
    if budget is not None:
        measured = (
            report["benches"].get("obs_overhead", {}).get("overhead_frac", 0.0)
        )
        if measured > budget:
            failures.append(
                f"obs_overhead.overhead_frac: {measured:.1%} exceeds the "
                f"metrics-on budget of {budget:.0%}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench", description="Run the perf-regression suite."
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_PR10.json"),
        help="where to write the JSON report (default: BENCH_PR10.json)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline JSON to compare guarded rates against",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero if a guarded rate regresses past --tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional drop below baseline (default 0.20)",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--quick", action="store_true", help="quarter-size workloads (CI smoke)"
    )
    parser.add_argument(
        "--only", action="extend", nargs="+", default=None, metavar="BENCH",
        help="run only the named benches (repeatable; accepts several "
             "names, plus the aliases engine/datapath)",
    )
    parser.add_argument(
        "--trajectory", nargs="+", type=Path, default=None, metavar="REPORT",
        help="print guarded rates across BENCH_*.json files (any schema) "
             "instead of running the suite",
    )
    args = parser.parse_args(argv)

    if args.trajectory is not None:
        return print_trajectory(args.trajectory)

    baseline = None
    if args.baseline is not None:
        # Read up front: a bad path should not cost a full suite run.
        try:
            baseline = load_bench_report(args.baseline)
        except (OSError, json.JSONDecodeError) as exc:
            parser.error(f"cannot read baseline {args.baseline}: {exc}")

    report = run_suite(quick=args.quick, repeats=args.repeats, only=args.only)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench] report written to {args.output}")
    for name, result in report["benches"].items():
        if name == "obs_overhead":
            print(f"  {name:20s} {result['overhead_frac']:>13.1%} overhead "
                  f"(on {result['events_per_sec_on']:,.0f}/s, "
                  f"off {result['events_per_sec_off']:,.0f}/s, "
                  f"flight {result['flight_overhead_frac']:.1%})")
            continue
        rate_key = next(k for k in result if k.endswith("_per_sec"))
        print(f"  {name:20s} {result[rate_key]:>14,.0f} {rate_key.removesuffix('_per_sec')}/s")

    if baseline is not None:
        mismatches = check_provenance(report, baseline)
        if mismatches:
            print(
                "[bench] " + "=" * 66 + "\n"
                "[bench] WARNING: baseline provenance mismatch — this run's "
                "environment\n[bench] differs from where the baseline was "
                "recorded; rate comparisons\n[bench] below are advisory, not "
                "evidence of a code regression:",
                file=sys.stderr,
            )
            for mismatch in mismatches:
                print(f"[bench]   {mismatch}", file=sys.stderr)
            print("[bench] " + "=" * 66, file=sys.stderr)
        failures = check_regression(report, baseline, args.tolerance)
        if args.check and failures:
            for failure in failures:
                print(f"[bench] REGRESSION: {failure}", file=sys.stderr)
            return 1
        for failure in failures:
            print(f"[bench] warning: {failure}")
    return 0


def print_trajectory(paths: Sequence[Path]) -> int:
    """Guarded-rate table across bench reports of any schema vintage."""
    reports = []
    for path in paths:
        try:
            reports.append((path, load_bench_report(path)))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"[bench] cannot read {path}: {exc}", file=sys.stderr)
            return 1
    names = [f"{bench}.{field}" for bench, field in GUARDED_RATES]
    width = max(len(name) for name in names) + 2
    header = "".rjust(width) + "".join(
        str(path.name)[:20].rjust(22) for path, _ in reports
    )
    print(header)
    for (bench, field), name in zip(GUARDED_RATES, names):
        row = name.ljust(width)
        for _, report in reports:
            value = report["benches"].get(bench, {}).get(field)
            row += (f"{value:,.0f}" if value is not None else "-").rjust(22)
        print(row)
    envs = "".rjust(width) + "".join(
        str((report.get("env") or {}).get("platform", "schema 1"))[-20:].rjust(22)
        for _, report in reports
    )
    print(envs)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
