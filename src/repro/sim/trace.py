"""Structured trace recording.

This is the software analogue of Marlin's fine-grained logging path
(Section 5.1): components append timestamped records to a named channel,
and analysis code reads them back as columns.

Storage is columnar (see ``docs/PERFORMANCE.md``): each channel keeps one
``times`` list plus, per field key, a pair of parallel lists
``(record_indices, values)``.  The hot-path :meth:`TraceRecorder.log`
therefore allocates no per-record object and no per-record dict, and
:meth:`TraceRecorder.series` — the read pattern behind every figure —
is a direct column read.  Row-shaped views (:meth:`channel`, iteration,
``records``) materialize :class:`TraceRecord` objects on demand.

Channels can be disabled individually (:meth:`set_channel_enabled`) or
wholesale (``enabled``); a ``log()`` call on a disabled channel costs one
dict lookup and returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped observation on a channel (row view)."""

    time_ps: int
    channel: str
    fields: dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class _ChannelStore:
    """Columnar storage for one channel."""

    __slots__ = ("times", "columns")

    def __init__(self) -> None:
        self.times: list[int] = []
        #: key -> (record indices, values), parallel lists.
        self.columns: dict[str, tuple[list[int], list[Any]]] = {}


class TraceRecorder:
    """Append-only per-channel columnar store with a row-view read API."""

    __slots__ = ("_stores", "_muted", "enabled")

    def __init__(self) -> None:
        self._stores: dict[str, _ChannelStore] = {}
        #: Disabled channels; value keeps any data logged before disabling
        #: (None when the channel was never logged).
        self._muted: dict[str, Optional[_ChannelStore]] = {}
        #: Master gate: when False, log() is a no-op for new channels too.
        self.enabled = True

    # -- hot path ------------------------------------------------------------

    def log(self, time_ps: int, channel: str, **fields: Any) -> None:
        """Append a record to ``channel`` (no-op when gated off)."""
        if not self.enabled:
            return
        store = self._stores.get(channel)
        if store is None:
            if channel in self._muted:
                return
            store = self._stores[channel] = _ChannelStore()
        times = store.times
        index = len(times)
        times.append(time_ps)
        if fields:
            columns = store.columns
            for key, value in fields.items():
                column = columns.get(key)
                if column is None:
                    column = columns[key] = ([], [])
                column[0].append(index)
                column[1].append(value)

    # -- gates ---------------------------------------------------------------

    def set_channel_enabled(self, channel: str, enabled: bool = True) -> None:
        """Enable or disable one channel.  Disabling keeps already-logged
        data readable; further ``log()`` calls on the channel are dropped."""
        if enabled:
            store = self._muted.pop(channel, None)
            if store is not None:
                self._stores[channel] = store
        elif channel not in self._muted:
            self._muted[channel] = self._stores.pop(channel, None)

    def channel_enabled(self, channel: str) -> bool:
        return channel not in self._muted

    # -- read API ------------------------------------------------------------

    def _store(self, channel: str) -> Optional[_ChannelStore]:
        store = self._stores.get(channel)
        if store is None:
            store = self._muted.get(channel)
        return store

    def channel(self, channel: str) -> list[TraceRecord]:
        """All records logged on ``channel`` in time order (row view)."""
        store = self._store(channel)
        if store is None:
            return []
        fields_per_record: list[dict[str, Any]] = [{} for _ in store.times]
        for key, (indices, values) in store.columns.items():
            for index, value in zip(indices, values):
                fields_per_record[index][key] = value
        return [
            TraceRecord(time_ps=t, channel=channel, fields=f)
            for t, f in zip(store.times, fields_per_record)
        ]

    def channels(self) -> list[str]:
        names = list(self._stores)
        names.extend(c for c, s in self._muted.items() if s is not None)
        return sorted(names)

    def series(self, channel: str, key: str) -> tuple[list[int], list[Any]]:
        """``(times_ps, values)`` for field ``key`` on ``channel``."""
        store = self._store(channel)
        if store is None:
            return [], []
        column = store.columns.get(key)
        if column is None:
            return [], []
        times = store.times
        return [times[i] for i in column[0]], list(column[1])

    @property
    def records(self) -> dict[str, list[TraceRecord]]:
        """Row view of everything, grouped by channel (compat shim for the
        seed's dict-of-records storage)."""
        return {channel: self.channel(channel) for channel in self.channels()}

    def __iter__(self) -> Iterator[TraceRecord]:
        for channel in self.channels():
            yield from self.channel(channel)

    def __len__(self) -> int:
        total = sum(len(store.times) for store in self._stores.values())
        total += sum(len(s.times) for s in self._muted.values() if s is not None)
        return total
