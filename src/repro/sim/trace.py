"""Structured trace recording.

This is the software analogue of Marlin's fine-grained logging path
(Section 5.1): components append timestamped records to a named channel,
and analysis code reads them back as columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped observation on a channel."""

    time_ps: int
    channel: str
    fields: dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


@dataclass
class TraceRecorder:
    """Append-only store of :class:`TraceRecord` grouped by channel."""

    records: dict[str, list[TraceRecord]] = field(default_factory=dict)

    def log(self, time_ps: int, channel: str, **fields: Any) -> None:
        """Append a record to ``channel``."""
        self.records.setdefault(channel, []).append(
            TraceRecord(time_ps=time_ps, channel=channel, fields=fields)
        )

    def channel(self, channel: str) -> list[TraceRecord]:
        """All records logged on ``channel`` in time order."""
        return self.records.get(channel, [])

    def channels(self) -> list[str]:
        return sorted(self.records)

    def series(self, channel: str, key: str) -> tuple[list[int], list[Any]]:
        """``(times_ps, values)`` for field ``key`` on ``channel``."""
        times: list[int] = []
        values: list[Any] = []
        for record in self.channel(channel):
            if key in record.fields:
                times.append(record.time_ps)
                values.append(record.fields[key])
        return times, values

    def __iter__(self) -> Iterator[TraceRecord]:
        for channel in self.channels():
            yield from self.records[channel]

    def __len__(self) -> int:
        return sum(len(records) for records in self.records.values())
