"""Swappable run-loop backends for :class:`repro.sim.engine.Simulator`.

The engine is split into two halves:

* **The scheduling/handle API** (``Simulator.schedule`` / ``at`` /
  ``after`` / ``call_now`` / ``schedule_handle`` / ``rearm`` / ``step``)
  — stable, always available, and the only way model code talks to the
  event loop.  All authoritative state lives in plain attributes on the
  ``Simulator`` instance (``_heap``, ``_seq``, ``_dead``, ``now``,
  ``_stopped``), so every backend reads and writes the *same* storage.
* **The run loop** — how pending entries are drained.  A backend is a
  :class:`Backend` record whose ``run_loop(sim, until_ps, max_events,
  dispatch)`` executes events until the queue drains, the horizon is
  reached, the budget is spent, or :meth:`Simulator.stop` is called.
  ``dispatch`` is ``None`` for the inline fast path, or a callable
  ``dispatch(fn, args)`` (the profiler hook) — one loop serves both, so
  profiled and unprofiled runs cannot diverge.

Two backends ship:

``python``
    The reference pure-Python loop, with batched same-timestamp
    dispatch: once an event at time *t* has run, further entries at *t*
    are popped and dispatched without re-storing the clock or
    re-checking the horizon.

``compiled``
    A C-extension loop (:mod:`repro.sim._cengine`) plus C fast-path
    scheduling methods rebound onto the instance.  Auto-detected: build
    it with ``make compiled``.  When *requested explicitly* but
    missing, resolution falls back to ``python`` with a loud
    once-per-process warning (never an exception) and the reason is
    recorded so run manifests can stamp it.

Selection precedence: ``Simulator(backend=...)`` argument, then the
``REPRO_SIM_BACKEND`` environment variable, then ``auto`` (compiled if
importable, else python — silently).

Both backends are required to produce bit-identical event streams: same
pop order, same seq assignment, same clock stores.  The cross-backend
suite in ``tests/test_backend.py`` pins this.
"""

from __future__ import annotations

import heapq
import os
import warnings
from typing import Any, Callable, Optional

from repro.errors import ConfigError

__all__ = [
    "Backend",
    "BackendFallbackWarning",
    "available_backends",
    "backend_names",
    "compiled_available",
    "resolve",
    "stamp",
    "ENV_VAR",
]

#: Environment variable consulted when no explicit backend is passed.
ENV_VAR = "REPRO_SIM_BACKEND"

_heappush = heapq.heappush
_heappop = heapq.heappop


class BackendFallbackWarning(UserWarning):
    """Emitted (once per process) when ``compiled`` is requested but the
    extension is unavailable and the run proceeds on ``python``."""


class Backend:
    """A resolved run-loop backend.

    ``name`` is the effective backend ("python" or "compiled");
    ``requested`` is what the caller asked for ("auto", "python",
    "compiled").  ``fallback_reason`` is non-None when the request could
    not be honoured and resolution degraded to the reference loop.
    ``attach(sim)``, when present, is called once from
    ``Simulator.__init__`` to install per-instance accelerations (the
    compiled backend rebinds ``schedule``/``at``/``after``/``call_now``
    to C implementations that share the instance's state).
    """

    __slots__ = ("name", "requested", "run_loop", "attach", "fallback_reason")

    def __init__(
        self,
        name: str,
        run_loop: Callable[..., int],
        *,
        requested: str,
        attach: Optional[Callable[[Any], None]] = None,
        fallback_reason: Optional[str] = None,
    ) -> None:
        self.name = name
        self.requested = requested
        self.run_loop = run_loop
        self.attach = attach
        self.fallback_reason = fallback_reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" fallback={self.fallback_reason!r}" if self.fallback_reason else ""
        return f"<Backend {self.name} (requested {self.requested}){extra}>"


# -- the reference python loop ---------------------------------------------


def _python_run_loop(
    sim: Any,
    until_ps: Optional[int],
    max_events: Optional[int],
    dispatch: Optional[Callable[[Callable, tuple], None]],
) -> int:
    """Drain ``sim``'s heap: the merged drain/bounded/profiled loop.

    Entry shapes and lazy-cancel/re-arm semantics are documented in
    :mod:`repro.sim.engine`.  Batched same-timestamp dispatch: the inner
    loop keeps popping while the heap root carries the current
    timestamp, skipping the clock store and horizon compare that the
    outer loop pays once per distinct time.  Partial event counts are
    folded into ``sim._events_executed`` even when a callback raises,
    matching the historical ``run()`` contract.
    """
    executed = 0
    heap = sim._heap
    pop = _heappop
    push = _heappush
    marker = _ENGINE_HANDLE
    inline = dispatch is None
    until = (1 << 62) if until_ps is None else until_ps
    limit = -1 if max_events is None else max_events
    # ``_stopped`` and ``executed`` only change as a result of
    # dispatching an event, and ``run()`` clears ``_stopped`` (and
    # rejects ``max_events <= 0``) before entering: the post-event check
    # inside the batch loop is sufficient, so the outer loop only has to
    # test the heap.
    try:
        while heap:
            entry = pop(heap)
            time_ps = entry[0]
            if time_ps > until:
                # Past the horizon: put the entry back (same seq, so
                # ordering is untouched) and stop.
                push(heap, entry)
                break
            sim.now = time_ps
            while True:
                args = entry[3]
                if args is not marker:
                    fn = entry[2]
                    if inline:
                        fn(*args)
                    else:
                        dispatch(fn, args)
                    executed += 1
                else:
                    handle = entry[2]
                    if handle.seq != entry[1]:
                        # Lazily cancelled/superseded: skip silently.
                        sim._dead -= 1
                    elif handle.target_ps > time_ps:
                        # Lazy re-arm: push the reused entry at its new
                        # time.
                        seq = sim._seq
                        sim._seq = seq + 1
                        handle.seq = seq
                        handle.time_ps = handle.target_ps
                        push(heap, (handle.target_ps, seq, handle, marker))
                    else:
                        handle.seq = -1
                        fn = handle.fn
                        hargs = handle.args
                        if inline:
                            fn(*hargs)
                        else:
                            dispatch(fn, hargs)
                        executed += 1
                if sim._stopped or executed == limit:
                    return executed
                # Same-timestamp batch: keep dispatching equal-time
                # entries (including ones the callback just scheduled —
                # they carry higher seqs, so pop order is unchanged)
                # without re-storing the clock or re-checking the
                # horizon.
                if not heap or heap[0][0] != time_ps:
                    break
                entry = pop(heap)
    finally:
        sim._events_executed += executed
    return executed


# Resolved lazily to avoid a circular import with repro.sim.engine.
_ENGINE_HANDLE: Any = None


def _init_marker() -> None:
    global _ENGINE_HANDLE
    if _ENGINE_HANDLE is None:
        from repro.sim import engine

        _ENGINE_HANDLE = engine._HANDLE


# -- compiled backend detection ---------------------------------------------

_CENGINE: Any = None
_CENGINE_ERROR: Optional[str] = None
_PROBED = False
_WARNED_FALLBACK = False


def _probe_cengine() -> Any:
    """Import the C extension once; remember the failure reason."""
    global _CENGINE, _CENGINE_ERROR, _PROBED
    if not _PROBED:
        _PROBED = True
        try:
            from repro.sim import _cengine  # type: ignore[attr-defined]

            _CENGINE = _cengine
        except ImportError as exc:
            _CENGINE_ERROR = (
                f"compiled engine extension not importable ({exc}); "
                "build it with `make compiled`"
            )
    return _CENGINE


def compiled_available() -> bool:
    """True when the ``repro.sim._cengine`` extension imports."""
    return _probe_cengine() is not None


def _compiled_run_loop(sim, until_ps, max_events, dispatch):
    cengine = _probe_cengine()
    until = (1 << 62) if until_ps is None else until_ps
    limit = -1 if max_events is None else max_events
    return cengine.run_loop(sim, until, limit, dispatch)


def _compiled_attach(sim: Any) -> None:
    """Rebind the fast-path scheduling methods to C implementations.

    The C methods operate directly on the instance's ``__dict__`` and
    heap list, so the Python handle API (``schedule_handle``,
    ``rearm``) and the C fast paths interleave without divergence.
    """
    cengine = _probe_cengine()
    ref = cengine.SimRef(sim)
    sim._cref = ref
    sim.schedule = ref.schedule
    sim.at = ref.at
    sim.after = ref.after
    sim.call_now = ref.call_now
    # stop() maintains a C-side flag so the compiled loop checks a
    # plain int per event instead of a dict lookup (it writes the
    # ``_stopped`` dict entry too, keeping Python readers correct).
    sim.stop = ref.stop


# -- resolution --------------------------------------------------------------

_VALID = ("auto", "python", "compiled")


def backend_names() -> tuple:
    """Accepted values for ``Simulator(backend=...)`` / ``--sim-backend``."""
    return _VALID


def available_backends() -> dict:
    """Map of backend name to availability (``auto`` is always true)."""
    return {
        "auto": True,
        "python": True,
        "compiled": compiled_available(),
    }


def _python_backend(requested: str, fallback_reason: Optional[str] = None) -> Backend:
    _init_marker()
    return Backend(
        "python",
        _python_run_loop,
        requested=requested,
        fallback_reason=fallback_reason,
    )


def _compiled_backend(requested: str) -> Backend:
    _init_marker()
    return Backend(
        "compiled",
        _compiled_run_loop,
        requested=requested,
        attach=_compiled_attach,
    )


def resolve(name: Optional[str] = None) -> Backend:
    """Resolve a backend request to a concrete :class:`Backend`.

    ``name=None`` consults ``REPRO_SIM_BACKEND``, defaulting to
    ``auto``.  ``auto`` silently prefers the compiled loop when built.
    An explicit ``compiled`` request that cannot be honoured warns
    loudly once per process and returns the python backend with
    ``fallback_reason`` set (recorded in run manifests) — it never
    raises, so campaign specs stay portable across machines.
    """
    global _WARNED_FALLBACK
    requested = name if name is not None else os.environ.get(ENV_VAR) or "auto"
    if requested not in _VALID:
        raise ConfigError(
            f"unknown sim backend {requested!r}; expected one of {', '.join(_VALID)}"
        )
    if requested == "python":
        return _python_backend(requested)
    if compiled_available():
        return _compiled_backend(requested)
    if requested == "auto":
        return _python_backend(requested)
    # Explicit "compiled" without the extension: loud, once, non-fatal.
    reason = _CENGINE_ERROR or "compiled engine extension unavailable"
    if not _WARNED_FALLBACK:
        _WARNED_FALLBACK = True
        warnings.warn(
            f"sim backend 'compiled' requested but unavailable — falling back "
            f"to 'python': {reason}",
            BackendFallbackWarning,
            stacklevel=2,
        )
    return _python_backend(requested, fallback_reason=reason)


def stamp(name: Optional[str] = None) -> dict:
    """Provenance for manifests: what a ``Simulator(backend=name)``
    constructed *now* would run on, without emitting fallback warnings."""
    requested = name if name is not None else os.environ.get(ENV_VAR) or "auto"
    if requested not in _VALID:
        # Stamping must never raise inside manifest building.
        return {"requested": requested, "name": "python",
                "fallback_reason": f"unknown backend {requested!r}"}
    if requested != "python" and compiled_available():
        effective, reason = "compiled", None
    else:
        effective = "python"
        reason = None if requested in ("python", "auto") else (
            _CENGINE_ERROR or "compiled engine extension unavailable"
        )
    return {"requested": requested, "name": effective, "fallback_reason": reason}
