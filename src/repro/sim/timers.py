"""Timer utilities built on the event engine.

:class:`PeriodicTimer` backs the FPGA's RX/TX frequency-control timers and
the TEMP-packet loopback; :class:`Timeout` backs retransmission timers.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator


class PeriodicTimer:
    """Fires a callback every ``period_ps`` picoseconds until stopped.

    The next firing is scheduled *before* the callback runs, so a callback
    may stop or re-period the timer and the change takes effect immediately.
    """

    def __init__(
        self,
        sim: Simulator,
        period_ps: int,
        fn: Callable[[], None],
        *,
        start: bool = False,
        phase_ps: int = 0,
    ) -> None:
        if period_ps <= 0:
            raise SimulationError(f"timer period must be positive, got {period_ps}")
        self.sim = sim
        self.period_ps = period_ps
        self.fn = fn
        self.phase_ps = phase_ps
        self._event: Optional[Event] = None
        self.fire_count = 0
        if start:
            self.start()

    @property
    def running(self) -> bool:
        return self._event is not None

    def start(self) -> None:
        """Start (or restart) the timer; first firing after one period plus
        the configured phase offset."""
        self.cancel()
        self._event = self.sim.after(self.period_ps + self.phase_ps, self._fire)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def set_period(self, period_ps: int) -> None:
        """Change the period; takes effect from the next scheduling."""
        if period_ps <= 0:
            raise SimulationError(f"timer period must be positive, got {period_ps}")
        self.period_ps = period_ps

    def _fire(self) -> None:
        self._event = self.sim.after(self.period_ps, self._fire)
        self.fire_count += 1
        self.fn()


class Timeout:
    """A restartable one-shot timer (retransmission-timeout style).

    ``restart()`` pushes the deadline out by the full duration; ``cancel()``
    disarms it.  The callback only fires if the deadline passes untouched.
    """

    def __init__(self, sim: Simulator, duration_ps: int, fn: Callable[[], None]) -> None:
        if duration_ps <= 0:
            raise SimulationError(f"timeout duration must be positive, got {duration_ps}")
        self.sim = sim
        self.duration_ps = duration_ps
        self.fn = fn
        self._event: Optional[Event] = None
        self.expirations = 0

    @property
    def armed(self) -> bool:
        return self._event is not None

    def restart(self, duration_ps: Optional[int] = None) -> None:
        """(Re)arm the timer for ``duration_ps`` (or the configured default)."""
        if duration_ps is not None:
            if duration_ps <= 0:
                raise SimulationError(
                    f"timeout duration must be positive, got {duration_ps}"
                )
            self.duration_ps = duration_ps
        self.cancel()
        self._event = self.sim.after(self.duration_ps, self._expire)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _expire(self) -> None:
        self._event = None
        self.expirations += 1
        self.fn()
