"""Timer utilities built on the event engine.

:class:`PeriodicTimer` backs the FPGA's RX/TX frequency-control timers and
the TEMP-packet loopback; :class:`Timeout` backs retransmission timers.

Both are restart-heavy in real workloads (every ACK restarts an RTO), so
both re-arm their pending :class:`~repro.sim.engine.EventHandle` through
:meth:`Simulator.rearm` instead of cancel-and-repush.  Extending a
deadline leaves the heap entry in place, and the handle object itself is
reused across firings — a long-running timer keeps exactly one live heap
entry and allocates nothing per restart.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.engine import EventHandle, Simulator


class PeriodicTimer:
    """Fires a callback every ``period_ps`` picoseconds until stopped.

    The next firing is scheduled *before* the callback runs, so a callback
    may stop or re-period the timer and the change takes effect immediately.
    """

    def __init__(
        self,
        sim: Simulator,
        period_ps: int,
        fn: Callable[[], None],
        *,
        start: bool = False,
        phase_ps: int = 0,
    ) -> None:
        if period_ps <= 0:
            raise SimulationError(f"timer period must be positive, got {period_ps}")
        self.sim = sim
        self.period_ps = period_ps
        self.fn = fn
        self.phase_ps = phase_ps
        self._event: Optional[EventHandle] = None
        self.fire_count = 0
        if start:
            self.start()

    @property
    def running(self) -> bool:
        return self._event is not None and self._event.pending

    def start(self) -> None:
        """Start (or restart) the timer; first firing after one period plus
        the configured phase offset."""
        when = self.sim.now + self.period_ps + self.phase_ps
        if self._event is None:
            self._event = self.sim.schedule_handle(when, self._fire)
        else:
            self.sim.rearm(self._event, when)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()

    def set_period(self, period_ps: int) -> None:
        """Change the period; takes effect from the next scheduling."""
        if period_ps <= 0:
            raise SimulationError(f"timer period must be positive, got {period_ps}")
        self.period_ps = period_ps

    def _fire(self) -> None:
        # The handle just fired (it is no longer pending); revive it for
        # the next period before running the callback.
        assert self._event is not None
        self.sim.rearm(self._event, self.sim.now + self.period_ps)
        self.fire_count += 1
        self.fn()


class Timeout:
    """A restartable one-shot timer (retransmission-timeout style).

    ``restart()`` pushes the deadline out by the full duration; ``cancel()``
    disarms it.  The callback only fires if the deadline passes untouched.
    """

    def __init__(self, sim: Simulator, duration_ps: int, fn: Callable[[], None]) -> None:
        if duration_ps <= 0:
            raise SimulationError(f"timeout duration must be positive, got {duration_ps}")
        self.sim = sim
        self.duration_ps = duration_ps
        self.fn = fn
        self._event: Optional[EventHandle] = None
        self.expirations = 0

    @property
    def armed(self) -> bool:
        return self._event is not None and self._event.pending

    def restart(self, duration_ps: Optional[int] = None) -> None:
        """(Re)arm the timer for ``duration_ps`` (or the configured default)."""
        if duration_ps is not None:
            if duration_ps <= 0:
                raise SimulationError(
                    f"timeout duration must be positive, got {duration_ps}"
                )
            self.duration_ps = duration_ps
        when = self.sim.now + self.duration_ps
        if self._event is None:
            self._event = self.sim.schedule_handle(when, self._expire)
        else:
            self.sim.rearm(self._event, when)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()

    def _expire(self) -> None:
        self.expirations += 1
        self.fn()
