/* Compiled run-loop backend for repro.sim.engine.Simulator.
 *
 * Design contract (see repro/sim/backend.py): ALL authoritative
 * simulator state lives in plain attributes on the Simulator instance —
 * the heap list (`_heap`), the sequence counter (`_seq`), the clock
 * (`now`), the stop flag (`_stopped`), the dead-entry count (`_dead`)
 * and the lifetime event count (`_events_executed`).  This module never
 * keeps shadow copies: it reads and writes the instance __dict__ with
 * interned keys, so the pure-Python handle API (schedule_handle, rearm,
 * step, compaction) interleaves freely with the C fast paths and both
 * backends stay bit-identical.
 *
 * Four things are provided:
 *
 *   run_loop(sim, until, limit, dispatch) -> int
 *       The drain loop, semantically identical to
 *       backend._python_run_loop: batched same-timestamp dispatch,
 *       horizon push-back, lazy cancel/re-arm handling, partial event
 *       counts folded into _events_executed even on callback exceptions.
 *
 *   SimRef(sim)
 *       Per-instance accelerator whose bound methods replace the
 *       fast-path scheduling methods (schedule/at/after/call_now).
 *       They validate like the Python versions (SimulationError on
 *       scheduling into the past / negative delay) and push entries
 *       with C heap sifts.
 *
 *   CQueue(capacity_bytes)
 *       The per-packet queue arithmetic of net.queue.DropTailQueue in
 *       C: a ring buffer plus the byte/packet counters, ECN threshold
 *       compare, and the rare-path hooks (flight recorder,
 *       on_backlog_change) with identical semantics.  net.queue
 *       subclasses it into DropTailQueue/EcnQueue when the extension
 *       imports, and keeps the pure-Python classes as the fallback.
 *
 *   CPort(device, index, rate_bps, queue, sim, receive, ser_table,
 *         ser_fallback, simref)
 *       The transmit/receive chain of net.device.Port in C: send ->
 *       enqueue -> serialize (precomputed per-size table) -> inline
 *       link carry -> deliver, scheduling follow-ups by pushing heap
 *       entries directly through the SimRef push.  Event entries,
 *       counter updates, and PFC pause/park semantics are
 *       bit-identical to the Python Port (same push order, same seq
 *       consumption), so simulations agree packet-for-packet whether
 *       or not the extension is present.  CPort calls the C queue
 *       implementation directly — Python-level overrides of
 *       enqueue/dequeue on a CQueue subclass are not consulted.
 *
 * Heap entries are 4-tuples ordered by (time_ps, seq); both are Python
 * ints that fit in long long for any realistic simulation (2^63 ps is
 * over 100 days of sim time).  Comparisons extract the two leading
 * slots as long long; on overflow they fall back to tuple rich
 * comparison, which is exactly what heapq would have done.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

/* ---- module state (single-phase init; simple C globals) -------------- */

static PyObject *g_handle_marker;   /* repro.sim.engine._HANDLE */
static PyObject *g_sim_error;       /* repro.errors.SimulationError */
static PyObject *g_config_error;    /* repro.errors.ConfigError */

/* ECN constants from repro.net.packet, loaded lazily on the first
 * threshold crossing (by which point the packet module is necessarily
 * imported — a Packet instance is in hand — so no import cycles). */
static PyObject *g_ce_obj;          /* packet.CE as a Python int */
static PyObject *g_packet_type;     /* the Packet class */
static long long g_ect_ll;

static PyObject *k_heap, *k_seq_ctr, *k_now, *k_stopped, *k_dead,
    *k_events_executed, *k_cref;    /* interned dict keys on sim.__dict__ */
static PyObject *a_seq, *a_target_ps, *a_time_ps, *a_fn, *a_args;
                                    /* interned EventHandle attr names */

/* ---- heap primitives -------------------------------------------------- */

/* -1 error, 0 false, 1 true for a < b over (time, seq). */
static int
entry_lt(PyObject *a, PyObject *b)
{
    long long at, bt;
    at = PyLong_AsLongLong(PyTuple_GET_ITEM(a, 0));
    if (at == -1 && PyErr_Occurred())
        goto fallback;
    bt = PyLong_AsLongLong(PyTuple_GET_ITEM(b, 0));
    if (bt == -1 && PyErr_Occurred())
        goto fallback;
    if (at != bt)
        return at < bt;
    at = PyLong_AsLongLong(PyTuple_GET_ITEM(a, 1));
    if (at == -1 && PyErr_Occurred())
        goto fallback;
    bt = PyLong_AsLongLong(PyTuple_GET_ITEM(b, 1));
    if (bt == -1 && PyErr_Occurred())
        goto fallback;
    return at < bt;
fallback:
    if (!PyErr_ExceptionMatches(PyExc_OverflowError) &&
        !PyErr_ExceptionMatches(PyExc_TypeError))
        return -1;
    PyErr_Clear();
    return PyObject_RichCompareBool(a, b, Py_LT);
}

/* heapq.heappush equivalent.  0 on success, -1 on error. */
static int
heap_push(PyObject *heap, PyObject *item)
{
    Py_ssize_t pos, parent;
    PyObject **ob_item;
    if (PyList_Append(heap, item) < 0)
        return -1;
    pos = PyList_GET_SIZE(heap) - 1;
    ob_item = ((PyListObject *)heap)->ob_item;
    while (pos > 0) {
        int lt;
        parent = (pos - 1) >> 1;
        lt = entry_lt(ob_item[pos], ob_item[parent]);
        if (lt < 0)
            return -1;
        if (!lt)
            break;
        PyObject *tmp = ob_item[pos];
        ob_item[pos] = ob_item[parent];
        ob_item[parent] = tmp;
        pos = parent;
    }
    return 0;
}

/* heapq.heappop equivalent.  New reference, or NULL on error/empty
 * (empty sets IndexError only if raise_empty). */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject **ob_item = ((PyListObject *)heap)->ob_item;
    PyObject *last, *result;

    if (n == 0) {
        PyErr_SetString(PyExc_IndexError, "pop from empty heap");
        return NULL;
    }
    /* Detach the final element by shrinking the size in place (the
     * allocation is retained — the heap regrows constantly, and the
     * list object's identity must be preserved anyway).  We steal the
     * reference the list held. */
    last = ob_item[n - 1];
    Py_SET_SIZE(heap, n - 1);
    n -= 1;
    if (n == 0)
        return last;

    result = ob_item[0];          /* steal root out, sift `last` down   */
    Py_INCREF(result);
    Py_DECREF(ob_item[0]);
    ob_item[0] = last;            /* heap owns `last`'s earlier INCREF  */

    /* _siftup(heap, 0): walk smaller child up, then place `last`. */
    {
        Py_ssize_t pos = 0, child;
        while ((child = 2 * pos + 1) < n) {
            Py_ssize_t right = child + 1;
            int lt;
            if (right < n) {
                lt = entry_lt(ob_item[right], ob_item[child]);
                if (lt < 0)
                    goto error;
                if (lt)
                    child = right;
            }
            lt = entry_lt(ob_item[child], ob_item[pos]);
            if (lt < 0)
                goto error;
            if (!lt)
                break;
            PyObject *tmp = ob_item[pos];
            ob_item[pos] = ob_item[child];
            ob_item[child] = tmp;
            pos = child;
        }
    }
    return result;
error:
    Py_DECREF(result);
    return NULL;
}

/* ---- small dict helpers ----------------------------------------------- */

static int
dict_get_ll(PyObject *dict, PyObject *key, long long *out)
{
    PyObject *v = PyDict_GetItemWithError(dict, key);   /* borrowed */
    if (v == NULL) {
        if (!PyErr_Occurred())
            PyErr_Format(PyExc_AttributeError,
                         "simulator state missing %U", key);
        return -1;
    }
    *out = PyLong_AsLongLong(v);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

static int
dict_set_ll(PyObject *dict, PyObject *key, long long value)
{
    PyObject *v = PyLong_FromLongLong(value);
    int rc;
    if (v == NULL)
        return -1;
    rc = PyDict_SetItem(dict, key, v);
    Py_DECREF(v);
    return rc;
}

static int
dict_add_ll(PyObject *dict, PyObject *key, long long delta)
{
    long long v;
    if (dict_get_ll(dict, key, &v) < 0)
        return -1;
    return dict_set_ll(dict, key, v + delta);
}

/* ---- SimRef struct (methods further down) ------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *dict;    /* the Simulator instance __dict__ */
    PyObject *heap;    /* the Simulator's _heap list      */
    /* Clock cache, valid only while run_loop is live on this simulator:
     * the loop publishes each distinct timestamp here so the scheduling
     * fast paths skip the `now` dict lookup and int conversion.  The
     * dict stays authoritative for everything outside the loop. */
    int now_valid;
    long long now_ll;
    PyObject *now_obj; /* owned; the int object matching now_ll */
    /* Mirror of `_stopped`, maintained by the rebound ``stop()`` so the
     * run loop checks a plain int per event instead of a dict lookup.
     * The dict copy is always written too; this flag is just a fast
     * read path, reset at every run_loop entry (run() clears the dict
     * copy right before). */
    int stop_flag;
} SimRefObject;

static PyTypeObject SimRefType;

/* ---- the run loop ------------------------------------------------------ */

/* Mirrors backend._python_run_loop; see that function for the
 * semantics discussion.  Returns events executed this call. */
static PyObject *
cengine_run_loop(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *sim, *dispatch, *dict = NULL, *heap = NULL, *entry = NULL;
    SimRefObject *cref = NULL;
    long long until, limit, executed = 0;
    int failed = 0;

    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "run_loop(sim, until, limit, dispatch)");
        return NULL;
    }
    sim = args[0];
    until = PyLong_AsLongLong(args[1]);
    if (until == -1 && PyErr_Occurred())
        return NULL;
    limit = PyLong_AsLongLong(args[2]);
    if (limit == -1 && PyErr_Occurred())
        return NULL;
    dispatch = args[3];

    dict = PyObject_GetAttrString(sim, "__dict__");
    if (dict == NULL || !PyDict_Check(dict))
        goto fail;
    heap = PyDict_GetItemWithError(dict, k_heap);       /* borrowed */
    if (heap == NULL || !PyList_Check(heap)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_AttributeError, "simulator has no _heap");
        goto fail;
    }
    Py_INCREF(heap);

    /* Publish timestamps into the instance's SimRef (when the compiled
     * scheduling fast paths are attached) so schedule/after/call_now
     * skip the clock dict lookup while the loop is live. */
    {
        PyObject *cref_obj = PyDict_GetItemWithError(dict, k_cref);
        if (cref_obj == NULL) {
            if (PyErr_Occurred())
                goto fail;
        }
        else if (Py_TYPE(cref_obj) == &SimRefType) {
            cref = (SimRefObject *)cref_obj;
            Py_INCREF(cref);
            /* run() cleared sim._stopped just before entering. */
            cref->stop_flag = 0;
        }
    }

    while (PyList_GET_SIZE(heap) > 0) {
        long long time_ps;

        entry = heap_pop(heap);
        if (entry == NULL)
            goto fail;
        time_ps = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 0));
        if (time_ps == -1 && PyErr_Occurred())
            goto fail;
        if (time_ps > until) {
            /* Past the horizon: push the entry back (same seq) and stop. */
            if (heap_push(heap, entry) < 0)
                goto fail;
            Py_CLEAR(entry);
            break;
        }
        /* sim.now = time_ps (reuse the entry's int object). */
        if (PyDict_SetItem(dict, k_now, PyTuple_GET_ITEM(entry, 0)) < 0)
            goto fail;
        if (cref != NULL) {
            PyObject *tobj = PyTuple_GET_ITEM(entry, 0);
            Py_INCREF(tobj);
            Py_XSETREF(cref->now_obj, tobj);
            cref->now_ll = time_ps;
            cref->now_valid = 1;
        }

        for (;;) {
            PyObject *eargs = PyTuple_GET_ITEM(entry, 3);
            if (eargs != g_handle_marker) {
                PyObject *fn = PyTuple_GET_ITEM(entry, 2);
                PyObject *res;
                if (dispatch == Py_None)
                    res = PyTuple_GET_SIZE(eargs) == 0
                              ? PyObject_CallNoArgs(fn)
                              : PyObject_CallObject(fn, eargs);
                else
                    res = PyObject_CallFunctionObjArgs(dispatch, fn, eargs,
                                                       NULL);
                if (res == NULL)
                    goto fail;
                Py_DECREF(res);
                executed++;
            }
            else {
                PyObject *handle = PyTuple_GET_ITEM(entry, 2);
                PyObject *hseq_obj = PyObject_GetAttr(handle, a_seq);
                long long hseq, eseq;
                if (hseq_obj == NULL)
                    goto fail;
                hseq = PyLong_AsLongLong(hseq_obj);
                Py_DECREF(hseq_obj);
                if (hseq == -1 && PyErr_Occurred())
                    goto fail;
                eseq = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 1));
                if (eseq == -1 && PyErr_Occurred())
                    goto fail;
                if (hseq != eseq) {
                    /* Lazily cancelled/superseded: skip silently. */
                    if (dict_add_ll(dict, k_dead, -1) < 0)
                        goto fail;
                }
                else {
                    PyObject *target_obj =
                        PyObject_GetAttr(handle, a_target_ps);
                    long long target;
                    if (target_obj == NULL)
                        goto fail;
                    target = PyLong_AsLongLong(target_obj);
                    if (target == -1 && PyErr_Occurred()) {
                        Py_DECREF(target_obj);
                        goto fail;
                    }
                    if (target > time_ps) {
                        /* Lazy re-arm: push the reused entry at its new
                         * time with a fresh seq. */
                        long long seq;
                        PyObject *seq_obj, *rearm;
                        if (dict_get_ll(dict, k_seq_ctr, &seq) < 0 ||
                            dict_set_ll(dict, k_seq_ctr, seq + 1) < 0) {
                            Py_DECREF(target_obj);
                            goto fail;
                        }
                        seq_obj = PyLong_FromLongLong(seq);
                        if (seq_obj == NULL) {
                            Py_DECREF(target_obj);
                            goto fail;
                        }
                        if (PyObject_SetAttr(handle, a_seq, seq_obj) < 0 ||
                            PyObject_SetAttr(handle, a_time_ps,
                                             target_obj) < 0) {
                            Py_DECREF(seq_obj);
                            Py_DECREF(target_obj);
                            goto fail;
                        }
                        rearm = PyTuple_Pack(4, target_obj, seq_obj, handle,
                                             g_handle_marker);
                        Py_DECREF(seq_obj);
                        Py_DECREF(target_obj);
                        if (rearm == NULL)
                            goto fail;
                        if (heap_push(heap, rearm) < 0) {
                            Py_DECREF(rearm);
                            goto fail;
                        }
                        Py_DECREF(rearm);
                    }
                    else {
                        PyObject *fn, *hargs, *res, *neg;
                        Py_DECREF(target_obj);
                        neg = PyLong_FromLong(-1);
                        if (neg == NULL)
                            goto fail;
                        if (PyObject_SetAttr(handle, a_seq, neg) < 0) {
                            Py_DECREF(neg);
                            goto fail;
                        }
                        Py_DECREF(neg);
                        fn = PyObject_GetAttr(handle, a_fn);
                        if (fn == NULL)
                            goto fail;
                        hargs = PyObject_GetAttr(handle, a_args);
                        if (hargs == NULL) {
                            Py_DECREF(fn);
                            goto fail;
                        }
                        if (dispatch == Py_None)
                            res = PyTuple_GET_SIZE(hargs) == 0
                                      ? PyObject_CallNoArgs(fn)
                                      : PyObject_CallObject(fn, hargs);
                        else
                            res = PyObject_CallFunctionObjArgs(dispatch, fn,
                                                               hargs, NULL);
                        Py_DECREF(fn);
                        Py_DECREF(hargs);
                        if (res == NULL)
                            goto fail;
                        Py_DECREF(res);
                        executed++;
                    }
                }
            }

            /* Post-event checks: stop()/budget, then same-timestamp
             * batching without re-storing the clock. */
            {
                int st;
                if (cref != NULL)
                    st = cref->stop_flag;
                else {
                    PyObject *stopped =
                        PyDict_GetItemWithError(dict, k_stopped);
                    if (stopped == NULL) {
                        if (!PyErr_Occurred())
                            PyErr_SetString(PyExc_AttributeError,
                                            "simulator has no _stopped");
                        goto fail;
                    }
                    st = PyObject_IsTrue(stopped);
                    if (st < 0)
                        goto fail;
                }
                if (st || executed == limit)
                    goto done;
            }
            if (PyList_GET_SIZE(heap) == 0)
                break;
            {
                PyObject *root = PyList_GET_ITEM(heap, 0);
                long long root_time =
                    PyLong_AsLongLong(PyTuple_GET_ITEM(root, 0));
                if (root_time == -1 && PyErr_Occurred())
                    goto fail;
                if (root_time != time_ps)
                    break;
            }
            Py_CLEAR(entry);
            entry = heap_pop(heap);
            if (entry == NULL)
                goto fail;
        }
        Py_CLEAR(entry);
    }
    goto done;

fail:
    failed = 1;
done:
    Py_CLEAR(entry);
    if (cref != NULL) {
        /* The clock cache is only valid while this loop is live. */
        cref->now_valid = 0;
        Py_CLEAR(cref->now_obj);
        Py_DECREF(cref);
    }
    if (dict != NULL && executed != 0) {
        /* Fold partial counts in even on failure (historical run()
         * contract).  Preserve any pending exception across it. */
        PyObject *t, *v, *tb;
        PyErr_Fetch(&t, &v, &tb);
        if (dict_add_ll(dict, k_events_executed, executed) < 0) {
            if (t == NULL)
                PyErr_Fetch(&t, &v, &tb);   /* keep the fold error */
            else
                PyErr_Clear();
        }
        PyErr_Restore(t, v, tb);
        if (t != NULL)
            failed = 1;
    }
    Py_XDECREF(heap);
    Py_XDECREF(dict);
    if (failed)
        return NULL;
    return PyLong_FromLongLong(executed);
}

/* ---- SimRef: per-instance C scheduling fast paths ---------------------- */

static int
simref_traverse(SimRefObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->dict);
    Py_VISIT(self->heap);
    Py_VISIT(self->now_obj);
    return 0;
}

static int
simref_clear_slots(SimRefObject *self)
{
    Py_CLEAR(self->dict);
    Py_CLEAR(self->heap);
    Py_CLEAR(self->now_obj);
    return 0;
}

static void
simref_dealloc(SimRefObject *self)
{
    PyObject_GC_UnTrack(self);
    simref_clear_slots(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
simref_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *sim, *dict, *heap;
    SimRefObject *self;
    static char *kwlist[] = {"sim", NULL};

    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O", kwlist, &sim))
        return NULL;
    dict = PyObject_GetAttrString(sim, "__dict__");
    if (dict == NULL)
        return NULL;
    if (!PyDict_Check(dict)) {
        Py_DECREF(dict);
        PyErr_SetString(PyExc_TypeError, "sim.__dict__ is not a dict");
        return NULL;
    }
    heap = PyDict_GetItemWithError(dict, k_heap);       /* borrowed */
    if (heap == NULL || !PyList_Check(heap)) {
        Py_DECREF(dict);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "simulator has no _heap list");
        return NULL;
    }
    self = (SimRefObject *)type->tp_alloc(type, 0);
    if (self == NULL) {
        Py_DECREF(dict);
        return NULL;
    }
    self->dict = dict;                 /* already a new reference */
    Py_INCREF(heap);
    self->heap = heap;
    self->now_valid = 0;
    self->now_ll = 0;
    self->now_obj = NULL;
    self->stop_flag = 0;
    return (PyObject *)self;
}

/* Shared tail: push (time, seq, fn, args[first..]) and bump _seq.
 * `time_obj` is a borrowed reference. */
static PyObject *
simref_push(SimRefObject *self, PyObject *time_obj, PyObject *fn,
            PyObject *const *args, Py_ssize_t nargs, Py_ssize_t first)
{
    long long seq;
    PyObject *seq_obj, *fnargs, *entry;
    Py_ssize_t i, n = nargs - first;

    if (dict_get_ll(self->dict, k_seq_ctr, &seq) < 0)
        return NULL;
    seq_obj = PyLong_FromLongLong(seq);
    if (seq_obj == NULL)
        return NULL;
    fnargs = PyTuple_New(n);
    if (fnargs == NULL) {
        Py_DECREF(seq_obj);
        return NULL;
    }
    for (i = 0; i < n; i++) {
        PyObject *a = args[first + i];
        Py_INCREF(a);
        PyTuple_SET_ITEM(fnargs, i, a);
    }
    entry = PyTuple_New(4);
    if (entry == NULL) {
        Py_DECREF(seq_obj);
        Py_DECREF(fnargs);
        return NULL;
    }
    Py_INCREF(time_obj);
    PyTuple_SET_ITEM(entry, 0, time_obj);
    PyTuple_SET_ITEM(entry, 1, seq_obj);    /* stolen */
    Py_INCREF(fn);
    PyTuple_SET_ITEM(entry, 2, fn);
    PyTuple_SET_ITEM(entry, 3, fnargs);     /* stolen */
    if (heap_push(self->heap, entry) < 0) {
        Py_DECREF(entry);
        return NULL;
    }
    Py_DECREF(entry);
    /* _seq += 1: only bump after the push succeeded, mirroring the
     * Python fast paths. */
    if (dict_set_ll(self->dict, k_seq_ctr, seq + 1) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* schedule(time_ps, fn, *args) / at(...) */
static PyObject *
simref_schedule(SimRefObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    long long t, now;
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule(time_ps, fn, *args) takes at least 2 "
                        "arguments");
        return NULL;
    }
    t = PyLong_AsLongLong(args[0]);
    if (t == -1 && PyErr_Occurred())
        return NULL;
    if (self->now_valid)
        now = self->now_ll;
    else if (dict_get_ll(self->dict, k_now, &now) < 0)
        return NULL;
    if (t < now) {
        PyErr_Format(g_sim_error,
                     "cannot schedule event at %lld ps; current time is "
                     "%lld ps", t, now);
        return NULL;
    }
    return simref_push(self, args[0], args[1], args, nargs, 2);
}

/* after(delay_ps, fn, *args) */
static PyObject *
simref_after(SimRefObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    long long delay, now;
    PyObject *time_obj, *res;
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "after(delay_ps, fn, *args) takes at least 2 "
                        "arguments");
        return NULL;
    }
    delay = PyLong_AsLongLong(args[0]);
    if (delay == -1 && PyErr_Occurred())
        return NULL;
    if (delay < 0) {
        PyErr_Format(g_sim_error, "negative delay: %lld ps", delay);
        return NULL;
    }
    if (self->now_valid)
        now = self->now_ll;
    else if (dict_get_ll(self->dict, k_now, &now) < 0)
        return NULL;
    time_obj = PyLong_FromLongLong(now + delay);
    if (time_obj == NULL)
        return NULL;
    res = simref_push(self, time_obj, args[1], args, nargs, 2);
    Py_DECREF(time_obj);
    return res;
}

/* call_now(fn, *args) */
static PyObject *
simref_call_now(SimRefObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *now_obj;
    if (nargs < 1) {
        PyErr_SetString(PyExc_TypeError,
                        "call_now(fn, *args) takes at least 1 argument");
        return NULL;
    }
    if (self->now_valid)
        now_obj = self->now_obj;    /* borrowed; simref_push increfs */
    else {
        now_obj = PyDict_GetItemWithError(self->dict, k_now);   /* borrowed */
        if (now_obj == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_AttributeError, "simulator has no now");
            return NULL;
        }
    }
    return simref_push(self, now_obj, args[0], args, nargs, 1);
}

/* stop() — sets the C fast flag AND the dict copy (Python readers,
 * and the python backend should it ever run on this simulator). */
static PyObject *
simref_stop(SimRefObject *self, PyObject *Py_UNUSED(ignored))
{
    self->stop_flag = 1;
    if (PyDict_SetItem(self->dict, k_stopped, Py_True) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyMethodDef simref_methods[] = {
    {"stop", (PyCFunction)simref_stop,
     METH_NOARGS, "stop() — C fast path"},
    {"schedule", (PyCFunction)(void (*)(void))simref_schedule,
     METH_FASTCALL, "schedule(time_ps, fn, *args) — C fast path"},
    {"at", (PyCFunction)(void (*)(void))simref_schedule,
     METH_FASTCALL, "at(time_ps, fn, *args) — C fast path"},
    {"after", (PyCFunction)(void (*)(void))simref_after,
     METH_FASTCALL, "after(delay_ps, fn, *args) — C fast path"},
    {"call_now", (PyCFunction)(void (*)(void))simref_call_now,
     METH_FASTCALL, "call_now(fn, *args) — C fast path"},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject SimRefType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cengine.SimRef",
    .tp_basicsize = sizeof(SimRefObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Per-simulator C scheduling fast paths",
    .tp_new = simref_new,
    .tp_dealloc = (destructor)simref_dealloc,
    .tp_traverse = (traverseproc)simref_traverse,
    .tp_clear = (inquiry)simref_clear_slots,
    .tp_methods = simref_methods,
};

/* ---- CQueue: DropTailQueue arithmetic in C ----------------------------- */

#include <structmember.h>

typedef struct {
    PyObject_HEAD
    /* FIFO ring buffer of owned packet references. */
    PyObject **ring;
    Py_ssize_t ring_cap, head, count;
    long long capacity_bytes, backlog_bytes;
    long long enqueued_packets, enqueued_bytes;
    long long dequeued_packets, dequeued_bytes;
    long long dropped_packets, dropped_bytes;
    long long ecn_marked_packets, max_backlog_bytes;
    /* CE-mark threshold: the exposed object (None or int) plus the
     * unpacked fast-path pair kept in sync by the getset setter. */
    PyObject *ecn_obj;
    long long ecn_thr;
    int ecn_on;
    PyObject *on_backlog_change;    /* None or callable(backlog)       */
    PyObject *flight;               /* _flight: None or FlightRecorder */
    PyObject *flight_label;
    PyObject *stats;                /* set by the Python wrapper       */
} CQueueObject;

static PyTypeObject CQueueType;

static int
ensure_ecn_consts(void)
{
    PyObject *m, *ect, *ce, *ptype;
    if (g_ce_obj != NULL)
        return 0;
    m = PyImport_ImportModule("repro.net.packet");
    if (m == NULL)
        return -1;
    ect = PyObject_GetAttrString(m, "ECT");
    ce = PyObject_GetAttrString(m, "CE");
    ptype = PyObject_GetAttrString(m, "Packet");
    Py_DECREF(m);
    if (ect == NULL || ce == NULL || ptype == NULL) {
        Py_XDECREF(ect);
        Py_XDECREF(ce);
        Py_XDECREF(ptype);
        return -1;
    }
    g_ect_ll = PyLong_AsLongLong(ect);
    Py_DECREF(ect);
    if (g_ect_ll == -1 && PyErr_Occurred()) {
        Py_DECREF(ce);
        Py_DECREF(ptype);
        return -1;
    }
    g_packet_type = ptype;
    g_ce_obj = ce;                  /* publish last: the readiness flag */
    return 0;
}

static int
attr_as_ll(PyObject *obj, const char *name, long long *out)
{
    PyObject *v = PyObject_GetAttrString(obj, name);
    if (v == NULL)
        return -1;
    *out = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

/* flight.note("queue", event, queue=label, [size_bytes=...,]
 * backlog_bytes=..., flow=packet.flow_id) — the rare-path hook. */
static int
cq_flight_note(CQueueObject *q, const char *event, long long size_bytes,
               int have_size, long long backlog, PyObject *packet)
{
    PyObject *meth = NULL, *args = NULL, *kwargs = NULL, *v = NULL,
        *flow = NULL, *res = NULL;
    int rc = -1;

    meth = PyObject_GetAttrString(q->flight, "note");
    if (meth == NULL)
        goto done;
    args = Py_BuildValue("(ss)", "queue", event);
    kwargs = PyDict_New();
    if (args == NULL || kwargs == NULL)
        goto done;
    if (PyDict_SetItemString(kwargs, "queue", q->flight_label) < 0)
        goto done;
    if (have_size) {
        v = PyLong_FromLongLong(size_bytes);
        if (v == NULL || PyDict_SetItemString(kwargs, "size_bytes", v) < 0)
            goto done;
        Py_CLEAR(v);
    }
    v = PyLong_FromLongLong(backlog);
    if (v == NULL || PyDict_SetItemString(kwargs, "backlog_bytes", v) < 0)
        goto done;
    Py_CLEAR(v);
    flow = PyObject_GetAttrString(packet, "flow_id");
    if (flow == NULL || PyDict_SetItemString(kwargs, "flow", flow) < 0)
        goto done;
    res = PyObject_Call(meth, args, kwargs);
    if (res == NULL)
        goto done;
    rc = 0;
done:
    Py_XDECREF(meth);
    Py_XDECREF(args);
    Py_XDECREF(kwargs);
    Py_XDECREF(v);
    Py_XDECREF(flow);
    Py_XDECREF(res);
    return rc;
}

static int
cq_ring_grow(CQueueObject *q)
{
    Py_ssize_t new_cap = q->ring_cap ? q->ring_cap * 2 : 8;
    PyObject **fresh = PyMem_New(PyObject *, new_cap);
    Py_ssize_t i;
    if (fresh == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    for (i = 0; i < q->count; i++)
        fresh[i] = q->ring[(q->head + i) % q->ring_cap];
    PyMem_Free(q->ring);
    q->ring = fresh;
    q->ring_cap = new_cap;
    q->head = 0;
    return 0;
}

/* Core enqueue: -1 error, 0 dropped, 1 accepted.  Mirrors
 * DropTailQueue.enqueue statement for statement. */
static int
cq_enqueue_impl(CQueueObject *q, PyObject *packet)
{
    long long size, backlog;

    if (attr_as_ll(packet, "size_bytes", &size) < 0)
        return -1;
    backlog = q->backlog_bytes + size;
    if (backlog > q->capacity_bytes) {
        q->dropped_packets += 1;
        q->dropped_bytes += size;
        if (q->flight != Py_None && q->flight != NULL) {
            if (cq_flight_note(q, "drop", size, 1, q->backlog_bytes,
                               packet) < 0)
                return -1;
        }
        return 0;
    }
    if (q->count == q->ring_cap && cq_ring_grow(q) < 0)
        return -1;
    Py_INCREF(packet);
    q->ring[(q->head + q->count) % q->ring_cap] = packet;
    q->count += 1;
    q->backlog_bytes = backlog;
    if (q->flight != Py_None && q->flight != NULL) {
        PyObject *en = PyObject_GetAttrString(q->flight, "enqueues");
        int truth;
        if (en == NULL)
            return -1;
        truth = PyObject_IsTrue(en);
        Py_DECREF(en);
        if (truth < 0)
            return -1;
        if (truth &&
            cq_flight_note(q, "enqueue", size, 1, backlog, packet) < 0)
            return -1;
    }
    if (q->ecn_on && backlog >= q->ecn_thr) {
        if (ensure_ecn_consts() < 0)
            return -1;
        if (Py_TYPE(packet) == (PyTypeObject *)g_packet_type) {
            /* Inline mark_ce: only ECT -> CE transitions count. */
            long long ecn;
            if (attr_as_ll(packet, "ecn", &ecn) < 0)
                return -1;
            if (ecn == g_ect_ll) {
                if (PyObject_SetAttrString(packet, "ecn", g_ce_obj) < 0)
                    return -1;
                q->ecn_marked_packets += 1;
                if (q->flight != Py_None && q->flight != NULL &&
                    cq_flight_note(q, "ecn_mark", 0, 0, backlog, packet) < 0)
                    return -1;
            }
        }
        else {
            /* Packet subclass: defer to its methods like Python does. */
            PyObject *before = PyObject_GetAttrString(packet, "ce_marked");
            PyObject *after, *res;
            int b, a;
            if (before == NULL)
                return -1;
            b = PyObject_IsTrue(before);
            Py_DECREF(before);
            if (b < 0)
                return -1;
            res = PyObject_CallMethod(packet, "mark_ce", NULL);
            if (res == NULL)
                return -1;
            Py_DECREF(res);
            after = PyObject_GetAttrString(packet, "ce_marked");
            if (after == NULL)
                return -1;
            a = PyObject_IsTrue(after);
            Py_DECREF(after);
            if (a < 0)
                return -1;
            if (a && !b) {
                q->ecn_marked_packets += 1;
                if (q->flight != Py_None && q->flight != NULL &&
                    cq_flight_note(q, "ecn_mark", 0, 0, backlog, packet) < 0)
                    return -1;
            }
        }
    }
    q->enqueued_packets += 1;
    q->enqueued_bytes += size;
    if (backlog > q->max_backlog_bytes)
        q->max_backlog_bytes = backlog;
    if (q->on_backlog_change != Py_None && q->on_backlog_change != NULL) {
        PyObject *bl = PyLong_FromLongLong(backlog);
        PyObject *res;
        if (bl == NULL)
            return -1;
        res = PyObject_CallFunctionObjArgs(q->on_backlog_change, bl, NULL);
        Py_DECREF(bl);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
    }
    return 1;
}

/* Core dequeue: new reference (size written to *size_out), or NULL with
 * no exception set when empty, NULL with an exception on error. */
static PyObject *
cq_dequeue_impl(CQueueObject *q, long long *size_out)
{
    PyObject *packet;
    long long size, backlog;

    if (q->count == 0)
        return NULL;
    packet = q->ring[q->head];          /* take over the ring's ref */
    q->ring[q->head] = NULL;
    q->head = (q->head + 1) % q->ring_cap;
    q->count -= 1;
    if (attr_as_ll(packet, "size_bytes", &size) < 0) {
        Py_DECREF(packet);
        return NULL;
    }
    backlog = q->backlog_bytes - size;
    q->backlog_bytes = backlog;
    q->dequeued_packets += 1;
    q->dequeued_bytes += size;
    if (q->on_backlog_change != Py_None && q->on_backlog_change != NULL) {
        PyObject *bl = PyLong_FromLongLong(backlog);
        PyObject *res;
        if (bl == NULL) {
            Py_DECREF(packet);
            return NULL;
        }
        res = PyObject_CallFunctionObjArgs(q->on_backlog_change, bl, NULL);
        Py_DECREF(bl);
        if (res == NULL) {
            Py_DECREF(packet);
            return NULL;
        }
        Py_DECREF(res);
    }
    if (size_out != NULL)
        *size_out = size;
    return packet;
}

static PyObject *
cqueue_enqueue(CQueueObject *self, PyObject *packet)
{
    int rc = cq_enqueue_impl(self, packet);
    if (rc < 0)
        return NULL;
    return PyBool_FromLong(rc);
}

static PyObject *
cqueue_dequeue(CQueueObject *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *packet = cq_dequeue_impl(self, NULL);
    if (packet == NULL) {
        if (PyErr_Occurred())
            return NULL;
        Py_RETURN_NONE;
    }
    return packet;
}

static int
cqueue_init(CQueueObject *self, PyObject *args, PyObject *kwds)
{
    long long capacity;
    static char *kwlist[] = {"capacity_bytes", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "L", kwlist, &capacity))
        return -1;
    if (capacity <= 0) {
        PyErr_Format(PyExc_ValueError,
                     "capacity must be positive, got %lld", capacity);
        return -1;
    }
    self->capacity_bytes = capacity;
    Py_XSETREF(self->ecn_obj, Py_NewRef(Py_None));
    self->ecn_on = 0;
    Py_XSETREF(self->on_backlog_change, Py_NewRef(Py_None));
    Py_XSETREF(self->flight, Py_NewRef(Py_None));
    Py_XSETREF(self->flight_label, PyUnicode_FromString(""));
    if (self->flight_label == NULL)
        return -1;
    Py_XSETREF(self->stats, Py_NewRef(Py_None));
    return 0;
}

static Py_ssize_t
cqueue_len(CQueueObject *self)
{
    return self->count;
}

static PyObject *
cqueue_get_empty(CQueueObject *self, void *Py_UNUSED(closure))
{
    return PyBool_FromLong(self->count == 0);
}

static PyObject *
cqueue_get_ecn(CQueueObject *self, void *Py_UNUSED(closure))
{
    PyObject *v = self->ecn_obj ? self->ecn_obj : Py_None;
    return Py_NewRef(v);
}

static int
cqueue_set_ecn(CQueueObject *self, PyObject *value,
               void *Py_UNUSED(closure))
{
    if (value == NULL || value == Py_None) {
        Py_XSETREF(self->ecn_obj, Py_NewRef(Py_None));
        self->ecn_on = 0;
        return 0;
    }
    long long thr = PyLong_AsLongLong(value);
    if (thr == -1 && PyErr_Occurred())
        return -1;
    Py_INCREF(value);
    Py_XSETREF(self->ecn_obj, value);
    self->ecn_thr = thr;
    self->ecn_on = 1;
    return 0;
}

static int
cqueue_traverse(CQueueObject *self, visitproc visit, void *arg)
{
    Py_ssize_t i;
    for (i = 0; i < self->count; i++)
        Py_VISIT(self->ring[(self->head + i) % self->ring_cap]);
    Py_VISIT(self->ecn_obj);
    Py_VISIT(self->on_backlog_change);
    Py_VISIT(self->flight);
    Py_VISIT(self->flight_label);
    Py_VISIT(self->stats);
    return 0;
}

static int
cqueue_clear(CQueueObject *self)
{
    Py_ssize_t i;
    for (i = 0; i < self->count; i++)
        Py_CLEAR(self->ring[(self->head + i) % self->ring_cap]);
    self->count = 0;
    self->head = 0;
    Py_CLEAR(self->ecn_obj);
    Py_CLEAR(self->on_backlog_change);
    Py_CLEAR(self->flight);
    Py_CLEAR(self->flight_label);
    Py_CLEAR(self->stats);
    return 0;
}

static void
cqueue_dealloc(CQueueObject *self)
{
    PyObject_GC_UnTrack(self);
    cqueue_clear(self);
    PyMem_Free(self->ring);
    self->ring = NULL;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMemberDef cqueue_members[] = {
    {"capacity_bytes", T_LONGLONG, offsetof(CQueueObject, capacity_bytes),
     0, "byte capacity bound"},
    {"backlog_bytes", T_LONGLONG, offsetof(CQueueObject, backlog_bytes),
     0, "current queued bytes"},
    {"enqueued_packets", T_LONGLONG,
     offsetof(CQueueObject, enqueued_packets), 0, NULL},
    {"enqueued_bytes", T_LONGLONG,
     offsetof(CQueueObject, enqueued_bytes), 0, NULL},
    {"dequeued_packets", T_LONGLONG,
     offsetof(CQueueObject, dequeued_packets), 0, NULL},
    {"dequeued_bytes", T_LONGLONG,
     offsetof(CQueueObject, dequeued_bytes), 0, NULL},
    {"dropped_packets", T_LONGLONG,
     offsetof(CQueueObject, dropped_packets), 0, NULL},
    {"dropped_bytes", T_LONGLONG,
     offsetof(CQueueObject, dropped_bytes), 0, NULL},
    {"ecn_marked_packets", T_LONGLONG,
     offsetof(CQueueObject, ecn_marked_packets), 0, NULL},
    {"max_backlog_bytes", T_LONGLONG,
     offsetof(CQueueObject, max_backlog_bytes), 0, NULL},
    {"on_backlog_change", T_OBJECT,
     offsetof(CQueueObject, on_backlog_change), 0,
     "optional observer called with the new backlog"},
    {"_flight", T_OBJECT, offsetof(CQueueObject, flight), 0,
     "optional FlightRecorder"},
    {"flight_label", T_OBJECT, offsetof(CQueueObject, flight_label), 0, NULL},
    {"stats", T_OBJECT, offsetof(CQueueObject, stats), 0,
     "QueueStats view (set by the Python wrapper)"},
    {NULL, 0, 0, 0, NULL},
};

static PyGetSetDef cqueue_getset[] = {
    {"empty", (getter)cqueue_get_empty, NULL, "True when no packets queued",
     NULL},
    {"ecn_threshold_bytes", (getter)cqueue_get_ecn, (setter)cqueue_set_ecn,
     "CE-mark threshold; None disables marking", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PySequenceMethods cqueue_as_sequence = {
    .sq_length = (lenfunc)cqueue_len,
};

static PyMethodDef cqueue_methods[] = {
    {"enqueue", (PyCFunction)cqueue_enqueue, METH_O,
     "enqueue(packet) -> bool — False (and a drop count) when full"},
    {"dequeue", (PyCFunction)cqueue_dequeue, METH_NOARGS,
     "dequeue() -> Packet | None"},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject CQueueType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cengine.CQueue",
    .tp_basicsize = sizeof(CQueueObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                Py_TPFLAGS_BASETYPE,
    .tp_doc = "C drop-tail/ECN queue core (subclassed by net.queue)",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)cqueue_init,
    .tp_dealloc = (destructor)cqueue_dealloc,
    .tp_traverse = (traverseproc)cqueue_traverse,
    .tp_clear = (inquiry)cqueue_clear,
    .tp_methods = cqueue_methods,
    .tp_members = cqueue_members,
    .tp_getset = cqueue_getset,
    .tp_as_sequence = &cqueue_as_sequence,
};

/* ---- CPort: the Port transmit/receive chain in C ----------------------- */

typedef struct {
    PyObject_HEAD
    PyObject *device;
    Py_ssize_t index;
    long long rate_bps;
    PyObject *rate_obj;             /* rate_bps as a Python int        */
    PyObject *queue;                /* CQueue (or subclass) instance   */
    PyObject *link;                 /* None until a Link attaches      */
    PyObject *sim;
    PyObject *receive;              /* device.receive, bound at init   */
    PyObject *ser_table;            /* {size_bytes: serialization_ps}  */
    PyObject *ser_fallback;         /* serialization_time_ps           */
    PyObject *simref;               /* SimRef used for heap pushes     */
    PyObject *tx_cb;                /* bound self._transmit_next       */
    /* Inline-carry cache, built on first transmit (links attach once
     * and never re-attach — Link.__init__ enforces it). */
    PyObject *peer_deliver;
    long long link_delay_ps;
    char busy, paused;
    long long busy_until_ps;
    long long pause_events;
    long long tx_packets, tx_bytes, rx_packets, rx_bytes;
} CPortObject;

static PyTypeObject CPortType;

static int
cport_now(CPortObject *self, long long *now)
{
    SimRefObject *sr = (SimRefObject *)self->simref;
    if (sr->now_valid) {
        *now = sr->now_ll;
        return 0;
    }
    return dict_get_ll(sr->dict, k_now, now);
}

/* Push (time, seq, fn, args...) through the shared SimRef tail.  The
 * entries are identical to what sim.at/after would have pushed, so the
 * event stream matches the pure-Python Port bit for bit. */
static int
cport_push(CPortObject *self, long long time_ll, PyObject *fn,
           PyObject *arg /* may be NULL for no-arg events */)
{
    PyObject *time_obj = PyLong_FromLongLong(time_ll);
    PyObject *res;
    if (time_obj == NULL)
        return -1;
    if (arg == NULL)
        res = simref_push((SimRefObject *)self->simref, time_obj, fn,
                          NULL, 0, 0);
    else
        res = simref_push((SimRefObject *)self->simref, time_obj, fn,
                          &arg, 1, 0);
    Py_DECREF(time_obj);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

static int
cport_ensure_carry_cache(CPortObject *self)
{
    PyObject *a = NULL, *b = NULL, *peer = NULL;
    if (self->peer_deliver != NULL)
        return 0;
    a = PyObject_GetAttrString(self->link, "a");
    if (a == NULL)
        return -1;
    b = PyObject_GetAttrString(self->link, "b");
    if (b == NULL) {
        Py_DECREF(a);
        return -1;
    }
    if (a == (PyObject *)self)
        peer = b;
    else if (b == (PyObject *)self)
        peer = a;
    else {
        Py_DECREF(a);
        Py_DECREF(b);
        PyErr_SetString(g_config_error,
                        "port is not attached to its own link");
        return -1;
    }
    if (attr_as_ll(self->link, "delay_ps", &self->link_delay_ps) < 0) {
        Py_DECREF(a);
        Py_DECREF(b);
        return -1;
    }
    self->peer_deliver = PyObject_GetAttrString(peer, "deliver");
    Py_DECREF(a);
    Py_DECREF(b);
    return self->peer_deliver == NULL ? -1 : 0;
}

/* The Port._transmit_next body.  Mirrors the Python implementation
 * statement for statement, including the order the two heap pushes
 * consume sequence numbers (deliver first, then the chain wakeup). */
static int
cport_transmit_impl(CPortObject *self)
{
    CQueueObject *q;
    PyObject *packet, *size_obj = NULL, *tx_obj;
    long long size, tx_time, now, depart;

    if (self->paused) {
        self->busy = 0;
        return 0;
    }
    if (!PyObject_TypeCheck(self->queue, &CQueueType)) {
        PyErr_SetString(PyExc_TypeError, "CPort requires a CQueue queue");
        return -1;
    }
    q = (CQueueObject *)self->queue;
    packet = cq_dequeue_impl(q, &size);
    if (packet == NULL) {
        if (PyErr_Occurred())
            return -1;
        self->busy = 0;
        return 0;
    }
    size_obj = PyLong_FromLongLong(size);
    if (size_obj == NULL)
        goto fail;
    tx_obj = PyDict_GetItemWithError(self->ser_table, size_obj); /* borrowed */
    if (tx_obj == NULL) {
        if (PyErr_Occurred())
            goto fail;
        tx_obj = PyObject_CallFunctionObjArgs(self->ser_fallback, size_obj,
                                              self->rate_obj, NULL);
        if (tx_obj == NULL)
            goto fail;
        if (PyDict_SetItem(self->ser_table, size_obj, tx_obj) < 0) {
            Py_DECREF(tx_obj);
            goto fail;
        }
        Py_DECREF(tx_obj);   /* the table keeps it alive (borrowed now) */
    }
    tx_time = PyLong_AsLongLong(tx_obj);
    if (tx_time == -1 && PyErr_Occurred())
        goto fail;
    self->tx_packets += 1;
    self->tx_bytes += size;
    if (cport_now(self, &now) < 0)
        goto fail;
    depart = now + tx_time;
    /* Inline Link.carry: counters, then the deliver event at
     * depart + propagation. */
    if (cport_ensure_carry_cache(self) < 0)
        goto fail;
    {
        long long carried;
        if (attr_as_ll(self->link, "carried_packets", &carried) < 0)
            goto fail;
        PyObject *v = PyLong_FromLongLong(carried + 1);
        if (v == NULL ||
            PyObject_SetAttrString(self->link, "carried_packets", v) < 0) {
            Py_XDECREF(v);
            goto fail;
        }
        Py_DECREF(v);
        if (attr_as_ll(self->link, "carried_bytes", &carried) < 0)
            goto fail;
        v = PyLong_FromLongLong(carried + size);
        if (v == NULL ||
            PyObject_SetAttrString(self->link, "carried_bytes", v) < 0) {
            Py_XDECREF(v);
            goto fail;
        }
        Py_DECREF(v);
    }
    if (cport_push(self, depart + self->link_delay_ps, self->peer_deliver,
                   packet) < 0)
        goto fail;
    self->busy_until_ps = depart;
    if (q->count > 0) {
        self->busy = 1;
        if (cport_push(self, depart, self->tx_cb, NULL) < 0)
            goto fail;
    }
    else
        self->busy = 0;
    Py_DECREF(size_obj);
    Py_DECREF(packet);
    return 0;
fail:
    Py_XDECREF(size_obj);
    Py_DECREF(packet);
    return -1;
}

static PyObject *
cport_transmit_next(CPortObject *self, PyObject *Py_UNUSED(ignored))
{
    if (cport_transmit_impl(self) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* Restart a parked transmit chain no earlier than busy_until (shared by
 * send and resume). */
static int
cport_kick(CPortObject *self)
{
    long long now;
    if (cport_now(self, &now) < 0)
        return -1;
    if (now >= self->busy_until_ps)
        return cport_transmit_impl(self);
    self->busy = 1;
    return cport_push(self, self->busy_until_ps, self->tx_cb, NULL);
}

static PyObject *
cport_send(CPortObject *self, PyObject *packet)
{
    int accepted;
    if (self->link == Py_None || self->link == NULL) {
        PyObject *name = PyObject_GetAttrString((PyObject *)self, "name");
        if (name == NULL)
            return NULL;
        PyErr_Format(g_config_error, "port %U is not connected to a link",
                     name);
        Py_DECREF(name);
        return NULL;
    }
    if (!PyObject_TypeCheck(self->queue, &CQueueType)) {
        PyErr_SetString(PyExc_TypeError, "CPort requires a CQueue queue");
        return NULL;
    }
    accepted = cq_enqueue_impl((CQueueObject *)self->queue, packet);
    if (accepted < 0)
        return NULL;
    if (accepted && !self->busy && !self->paused) {
        if (cport_kick(self) < 0)
            return NULL;
    }
    return PyBool_FromLong(accepted);
}

static PyObject *
cport_pause(CPortObject *self, PyObject *Py_UNUSED(ignored))
{
    if (!self->paused) {
        self->paused = 1;
        self->pause_events += 1;
    }
    Py_RETURN_NONE;
}

static PyObject *
cport_resume(CPortObject *self, PyObject *Py_UNUSED(ignored))
{
    if (!self->paused)
        Py_RETURN_NONE;
    self->paused = 0;
    if (!self->busy && PyObject_TypeCheck(self->queue, &CQueueType) &&
        ((CQueueObject *)self->queue)->count > 0) {
        if (cport_kick(self) < 0)
            return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
cport_deliver(CPortObject *self, PyObject *packet)
{
    long long size;
    PyObject *res;
    if (attr_as_ll(packet, "size_bytes", &size) < 0)
        return NULL;
    self->rx_packets += 1;
    self->rx_bytes += size;
    res = PyObject_CallFunctionObjArgs(self->receive, packet,
                                       (PyObject *)self, NULL);
    if (res == NULL)
        return NULL;
    Py_DECREF(res);
    Py_RETURN_NONE;
}

static int
cport_init(CPortObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *device, *queue, *sim, *receive, *ser_table, *ser_fallback,
        *simref;
    Py_ssize_t index;
    long long rate_bps;
    static char *kwlist[] = {
        "device", "index", "rate_bps", "queue", "sim", "receive",
        "ser_table", "ser_fallback", "simref", NULL,
    };

    if (!PyArg_ParseTupleAndKeywords(
            args, kwds, "OnLOOOOOO", kwlist, &device, &index, &rate_bps,
            &queue, &sim, &receive, &ser_table, &ser_fallback, &simref))
        return -1;
    if (!PyObject_TypeCheck(queue, &CQueueType)) {
        PyErr_SetString(PyExc_TypeError,
                        "queue must be a CQueue (DropTailQueue) instance");
        return -1;
    }
    if (Py_TYPE(simref) != &SimRefType) {
        PyErr_SetString(PyExc_TypeError, "simref must be a SimRef");
        return -1;
    }
    if (!PyDict_Check(ser_table)) {
        PyErr_SetString(PyExc_TypeError, "ser_table must be a dict");
        return -1;
    }
    self->index = index;
    self->rate_bps = rate_bps;
    Py_XSETREF(self->rate_obj, PyLong_FromLongLong(rate_bps));
    if (self->rate_obj == NULL)
        return -1;
    Py_INCREF(device);
    Py_XSETREF(self->device, device);
    Py_INCREF(queue);
    Py_XSETREF(self->queue, queue);
    Py_XSETREF(self->link, Py_NewRef(Py_None));
    Py_INCREF(sim);
    Py_XSETREF(self->sim, sim);
    Py_INCREF(receive);
    Py_XSETREF(self->receive, receive);
    Py_INCREF(ser_table);
    Py_XSETREF(self->ser_table, ser_table);
    Py_INCREF(ser_fallback);
    Py_XSETREF(self->ser_fallback, ser_fallback);
    Py_INCREF(simref);
    Py_XSETREF(self->simref, simref);
    Py_XSETREF(self->tx_cb,
               PyObject_GetAttrString((PyObject *)self, "_transmit_next"));
    if (self->tx_cb == NULL)
        return -1;
    self->busy = 0;
    self->paused = 0;
    self->busy_until_ps = 0;
    return 0;
}

static int
cport_traverse(CPortObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->device);
    Py_VISIT(self->rate_obj);
    Py_VISIT(self->queue);
    Py_VISIT(self->link);
    Py_VISIT(self->sim);
    Py_VISIT(self->receive);
    Py_VISIT(self->ser_table);
    Py_VISIT(self->ser_fallback);
    Py_VISIT(self->simref);
    Py_VISIT(self->tx_cb);
    Py_VISIT(self->peer_deliver);
    return 0;
}

static int
cport_clear(CPortObject *self)
{
    Py_CLEAR(self->device);
    Py_CLEAR(self->rate_obj);
    Py_CLEAR(self->queue);
    Py_CLEAR(self->link);
    Py_CLEAR(self->sim);
    Py_CLEAR(self->receive);
    Py_CLEAR(self->ser_table);
    Py_CLEAR(self->ser_fallback);
    Py_CLEAR(self->simref);
    Py_CLEAR(self->tx_cb);
    Py_CLEAR(self->peer_deliver);
    return 0;
}

static void
cport_dealloc(CPortObject *self)
{
    PyObject_GC_UnTrack(self);
    cport_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMemberDef cport_members[] = {
    {"device", T_OBJECT, offsetof(CPortObject, device), 0, NULL},
    {"index", T_PYSSIZET, offsetof(CPortObject, index), 0, NULL},
    {"rate_bps", T_LONGLONG, offsetof(CPortObject, rate_bps), READONLY,
     NULL},
    {"queue", T_OBJECT, offsetof(CPortObject, queue), 0, NULL},
    {"link", T_OBJECT, offsetof(CPortObject, link), 0,
     "the attached Link, or None"},
    {"sim", T_OBJECT, offsetof(CPortObject, sim), 0, NULL},
    {"_receive", T_OBJECT, offsetof(CPortObject, receive), 0, NULL},
    {"_ser_ps", T_OBJECT, offsetof(CPortObject, ser_table), 0, NULL},
    {"_busy", T_BOOL, offsetof(CPortObject, busy), 0, NULL},
    {"_busy_until_ps", T_LONGLONG, offsetof(CPortObject, busy_until_ps),
     0, NULL},
    {"paused", T_BOOL, offsetof(CPortObject, paused), 0, NULL},
    {"pause_events", T_LONGLONG, offsetof(CPortObject, pause_events), 0,
     NULL},
    {"tx_packets", T_LONGLONG, offsetof(CPortObject, tx_packets), 0, NULL},
    {"tx_bytes", T_LONGLONG, offsetof(CPortObject, tx_bytes), 0, NULL},
    {"rx_packets", T_LONGLONG, offsetof(CPortObject, rx_packets), 0, NULL},
    {"rx_bytes", T_LONGLONG, offsetof(CPortObject, rx_bytes), 0, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyMethodDef cport_methods[] = {
    {"send", (PyCFunction)cport_send, METH_O,
     "send(packet) -> bool — enqueue for transmission"},
    {"pause", (PyCFunction)cport_pause, METH_NOARGS, "PFC XOFF"},
    {"resume", (PyCFunction)cport_resume, METH_NOARGS, "PFC XON"},
    {"deliver", (PyCFunction)cport_deliver, METH_O,
     "link-side delivery of an arriving packet"},
    {"_transmit_next", (PyCFunction)cport_transmit_next, METH_NOARGS,
     "dequeue and serialize the next frame"},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject CPortType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cengine.CPort",
    .tp_basicsize = sizeof(CPortObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                Py_TPFLAGS_BASETYPE,
    .tp_doc = "C port transmit/receive chain (subclassed by net.device)",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)cport_init,
    .tp_dealloc = (destructor)cport_dealloc,
    .tp_traverse = (traverseproc)cport_traverse,
    .tp_clear = (inquiry)cport_clear,
    .tp_methods = cport_methods,
    .tp_members = cport_members,
};

/* ---- module ------------------------------------------------------------ */

static PyMethodDef cengine_methods[] = {
    {"run_loop", (PyCFunction)(void (*)(void))cengine_run_loop,
     METH_FASTCALL,
     "run_loop(sim, until, limit, dispatch) -> events executed"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef cengine_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._cengine",
    .m_doc = "C run loop and scheduling fast paths for repro.sim",
    .m_size = -1,
    .m_methods = cengine_methods,
};

static PyObject *
intern_or_null(const char *s)
{
    return PyUnicode_InternFromString(s);
}

PyMODINIT_FUNC
PyInit__cengine(void)
{
    PyObject *m = NULL, *engine = NULL, *errors = NULL;

    k_heap = intern_or_null("_heap");
    k_seq_ctr = intern_or_null("_seq");
    k_now = intern_or_null("now");
    k_stopped = intern_or_null("_stopped");
    k_dead = intern_or_null("_dead");
    k_events_executed = intern_or_null("_events_executed");
    k_cref = intern_or_null("_cref");
    a_seq = intern_or_null("seq");
    a_target_ps = intern_or_null("target_ps");
    a_time_ps = intern_or_null("time_ps");
    a_fn = intern_or_null("fn");
    a_args = intern_or_null("args");
    if (!k_heap || !k_seq_ctr || !k_now || !k_stopped || !k_dead ||
        !k_events_executed || !k_cref || !a_seq || !a_target_ps ||
        !a_time_ps || !a_fn || !a_args)
        return NULL;

    /* The marker and exception live in pure-Python modules; importing
     * them here is safe because _cengine itself is only imported
     * lazily, after repro.sim.engine has finished loading. */
    engine = PyImport_ImportModule("repro.sim.engine");
    if (engine == NULL)
        goto fail;
    g_handle_marker = PyObject_GetAttrString(engine, "_HANDLE");
    if (g_handle_marker == NULL)
        goto fail;
    errors = PyImport_ImportModule("repro.errors");
    if (errors == NULL)
        goto fail;
    g_sim_error = PyObject_GetAttrString(errors, "SimulationError");
    if (g_sim_error == NULL)
        goto fail;
    g_config_error = PyObject_GetAttrString(errors, "ConfigError");
    if (g_config_error == NULL)
        goto fail;

    if (PyType_Ready(&SimRefType) < 0 || PyType_Ready(&CQueueType) < 0 ||
        PyType_Ready(&CPortType) < 0)
        goto fail;

    m = PyModule_Create(&cengine_module);
    if (m == NULL)
        goto fail;
    Py_INCREF(&SimRefType);
    if (PyModule_AddObject(m, "SimRef", (PyObject *)&SimRefType) < 0) {
        Py_DECREF(&SimRefType);
        goto fail;
    }
    Py_INCREF(&CQueueType);
    if (PyModule_AddObject(m, "CQueue", (PyObject *)&CQueueType) < 0) {
        Py_DECREF(&CQueueType);
        goto fail;
    }
    Py_INCREF(&CPortType);
    if (PyModule_AddObject(m, "CPort", (PyObject *)&CPortType) < 0) {
        Py_DECREF(&CPortType);
        goto fail;
    }
    Py_XDECREF(engine);
    Py_XDECREF(errors);
    return m;

fail:
    Py_XDECREF(engine);
    Py_XDECREF(errors);
    Py_XDECREF(m);
    return NULL;
}
