"""Heap-based discrete-event simulator with deterministic tie-breaking.

Hot-path design (see ``docs/PERFORMANCE.md``):

* The common case — an event that is scheduled once and always fires —
  is stored on the heap as a plain tuple ``(time_ps, seq, fn, args)``.
  Tuples compare in C (the monotonically increasing ``seq`` guarantees
  the comparison never reaches ``fn``), so ``heappush``/``heappop``
  never call back into Python, and no per-event object is allocated.
* Events that may be cancelled or re-armed (timers, timeouts) get a
  lightweight :class:`EventHandle` and are stored as ``(time_ps, seq,
  handle, _HANDLE)``.  Cancellation is lazy — the entry is skipped when
  popped — and re-arming to a *later* deadline reuses the pending entry
  instead of pushing a new one, so restart-heavy timers keep O(1) live
  entries.
* Lazily-cancelled entries are counted, and when they outnumber half the
  heap the heap is compacted in place, bounding memory under timer
  churn at O(live events).

The two entry shapes are distinguished by an identity test on slot 3
(a fast event's args tuple vs. the ``_HANDLE`` marker), which is cheaper
than a ``len()`` call on the pop path.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim import backend as _backend

#: Compaction triggers when at least this many dead entries exist *and*
#: they make up at least half the heap.
COMPACT_MIN_DEAD = 64

#: Marker in slot 3 of a handle entry ``(time_ps, seq, handle, _HANDLE)``.
#: Fast entries carry their args tuple there, which is never this object,
#: so ``entry[3] is _HANDLE`` discriminates without a len() call.
_HANDLE = object()

_heappush = heapq.heappush
_heappop = heapq.heappop


class EventHandle:
    """A cancellable, re-armable scheduled callback.

    Created through :meth:`Simulator.schedule_handle` /
    :meth:`Simulator.after_handle`.  The handle is the old-style
    scheduling API (the seed's ``Event`` class is an alias); the
    fast-path :meth:`Simulator.schedule` family returns ``None`` and
    cannot be cancelled.

    ``time_ps`` is the time of the live heap entry; ``target_ps`` is the
    logical fire time.  When a handle is re-armed to a later deadline the
    heap entry stays put and ``target_ps`` moves — the engine re-pushes
    the entry when it pops early.  ``seq`` is the sequence number of the
    live heap entry, or ``-1`` when the handle is not pending.
    """

    __slots__ = ("_sim", "time_ps", "target_ps", "seq", "fn", "args", "cancelled")

    def __init__(
        self,
        sim: "Simulator",
        time_ps: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
    ) -> None:
        self._sim = sim
        self.time_ps = time_ps
        self.target_ps = time_ps
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    @property
    def pending(self) -> bool:
        """True while the callback is still going to fire."""
        return self.seq != -1

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.seq != -1:
            self.seq = -1
            sim = self._sim
            sim.events_cancelled += 1
            if sim._flight is not None:
                sim._flight.record(
                    sim.now, "timer", "cancel", target_ps=self.target_ps
                )
            sim._note_dead()
        self.cancelled = True

    def rearm(self, time_ps: int) -> None:
        """Move the fire time to ``time_ps``; see :meth:`Simulator.rearm`."""
        self._sim.rearm(self, time_ps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.cancelled:
            state = "cancelled"
        elif self.seq == -1:
            state = "fired"
        else:
            state = "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<EventHandle t={self.target_ps}ps seq={self.seq} {name} {state}>"


#: Back-compat alias for the seed's handle-returning API.
Event = EventHandle


class Simulator:
    """The event loop.

    All model components hold a reference to one :class:`Simulator` and talk
    to each other exclusively by scheduling callbacks on it.  Time is an
    integer number of picoseconds (see :mod:`repro.units`).

    ``backend`` selects the run-loop implementation (see
    :mod:`repro.sim.backend`): ``None`` consults ``REPRO_SIM_BACKEND``
    and defaults to ``auto`` (the compiled loop when built, else the
    reference python loop).  Every backend shares this instance's state
    and must produce bit-identical event streams.
    """

    def __init__(self, backend: Optional[str] = None) -> None:
        self.now: int = 0
        self._heap: list[tuple] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self._events_executed: int = 0
        #: Handles explicitly cancelled via :meth:`EventHandle.cancel`.
        self.events_cancelled: int = 0
        #: Lazily-cancelled (or superseded) entries still on the heap.
        self._dead: int = 0
        #: Times the heap was compacted to reclaim dead entries.
        self.compactions: int = 0
        #: Opt-in wall-clock profiler (see :meth:`enable_profiling`).
        #: ``None`` keeps the default run loop completely untouched.
        self._profiler = None
        #: Opt-in flight recorder (see :mod:`repro.obs.flight`).  Only
        #: consulted on the rare paths — cancel, re-arm-earlier,
        #: compaction — never in the run loops.
        self._flight = None
        resolved = _backend.resolve(backend)
        #: Effective backend name ("python" or "compiled").
        self.backend_name = resolved.name
        #: What was asked for ("auto", "python", "compiled").
        self.backend_requested = resolved.requested
        #: Why an explicit request degraded to python, or ``None``.
        self.backend_fallback_reason = resolved.fallback_reason
        self._run_loop = resolved.run_loop
        if resolved.attach is not None:
            # The compiled backend rebinds the fast-path scheduling
            # methods on the *instance* to C implementations sharing
            # this object's heap/seq/clock storage.
            resolved.attach(self)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, time_ps: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run at absolute time ``time_ps``.

        Fast path: no handle is returned and the event cannot be
        cancelled.  Use :meth:`schedule_handle` for cancellable events.
        """
        if time_ps < self.now:
            raise SimulationError(
                f"cannot schedule event at {time_ps} ps; current time is {self.now} ps"
            )
        _heappush(self._heap, (time_ps, self._seq, fn, args))
        self._seq += 1

    def at(self, time_ps: int, fn: Callable[..., None], *args: Any) -> None:
        """Alias of :meth:`schedule` reading naturally at call sites."""
        if time_ps < self.now:
            raise SimulationError(
                f"cannot schedule event at {time_ps} ps; current time is {self.now} ps"
            )
        _heappush(self._heap, (time_ps, self._seq, fn, args))
        self._seq += 1

    def after(self, delay_ps: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay_ps`` from now."""
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps} ps")
        _heappush(self._heap, (self.now + delay_ps, self._seq, fn, args))
        self._seq += 1

    def call_now(self, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at the current time, after pending events
        that were already scheduled for this instant."""
        _heappush(self._heap, (self.now, self._seq, fn, args))
        self._seq += 1

    def schedule_handle(
        self, time_ps: int, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at ``time_ps`` and return a cancellable
        :class:`EventHandle` (the old-style API)."""
        if time_ps < self.now:
            raise SimulationError(
                f"cannot schedule event at {time_ps} ps; current time is {self.now} ps"
            )
        handle = EventHandle(self, time_ps, self._seq, fn, args)
        _heappush(self._heap, (time_ps, self._seq, handle, _HANDLE))
        self._seq += 1
        return handle

    def after_handle(
        self, delay_ps: int, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """:meth:`schedule_handle` at ``delay_ps`` from now."""
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps} ps")
        return self.schedule_handle(self.now + delay_ps, fn, *args)

    def rearm(self, handle: EventHandle, time_ps: int) -> None:
        """Move ``handle``'s fire time to ``time_ps``.

        * Pending and ``time_ps`` at or after the live heap entry: the
          entry is reused — only ``target_ps`` moves (no allocation, no
          dead entry).
        * Pending and earlier: the old entry is abandoned and a fresh one
          is pushed.
        * Not pending (fired or cancelled): the handle is revived with a
          fresh entry.
        """
        if time_ps < self.now:
            raise SimulationError(
                f"cannot re-arm event at {time_ps} ps; current time is {self.now} ps"
            )
        handle.cancelled = False
        handle.target_ps = time_ps
        if handle.seq != -1:
            if time_ps >= handle.time_ps:
                return
            # Earlier than the pending entry: that entry becomes dead.
            handle.seq = -1
            if self._flight is not None:
                self._flight.record(
                    self.now, "timer", "rearm_earlier",
                    old_ps=handle.time_ps, new_ps=time_ps,
                )
            self._note_dead()
        handle.seq = self._seq
        handle.time_ps = time_ps
        _heappush(self._heap, (time_ps, self._seq, handle, _HANDLE))
        self._seq += 1

    # -- dead-entry accounting ----------------------------------------------

    def _note_dead(self) -> None:
        self._dead += 1
        if self._dead >= COMPACT_MIN_DEAD and self._dead * 2 >= len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop lazily-cancelled entries and restore the heap invariant.

        In-place (slice assignment) so a ``run()`` in progress, which
        binds the heap list in a local, keeps seeing the same object.
        """
        heap = self._heap
        before = len(heap)
        heap[:] = [e for e in heap if e[3] is not _HANDLE or e[2].seq == e[1]]
        heapq.heapify(heap)
        self._dead = 0
        self.compactions += 1
        if self._flight is not None:
            self._flight.record(
                self.now, "engine", "compact",
                dropped=before - len(heap), live=len(heap),
            )

    # -- execution ----------------------------------------------------------

    def _pop_runnable(self) -> Optional[tuple]:
        """Pop entries until one is live, handling stale skips and lazy
        re-arms.  Returns ``(time_ps, fn, args)`` or None when drained."""
        heap = self._heap
        while heap:
            entry = _heappop(heap)
            if entry[3] is not _HANDLE:
                return (entry[0], entry[2], entry[3])
            handle = entry[2]
            if handle.seq != entry[1]:
                self._dead -= 1
                continue
            if handle.target_ps > entry[0]:
                seq = self._seq
                self._seq = seq + 1
                handle.seq = seq
                handle.time_ps = handle.target_ps
                _heappush(heap, (handle.target_ps, seq, handle, _HANDLE))
                continue
            handle.seq = -1
            return (entry[0], handle.fn, handle.args)
        return None

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when none remain.

        Mirrors :meth:`run` semantics: reentrant use raises, and a
        leftover :meth:`stop` request from an earlier run is cleared.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant step())")
        self._stopped = False
        self._running = True
        try:
            item = self._pop_runnable()
            if item is None:
                return False
            self.now = item[0]
            item[1](*item[2])
            self._events_executed += 1
            return True
        finally:
            self._running = False

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until_ps`` is reached, or
        ``max_events`` events have executed.  Returns events executed.

        When ``until_ps`` is given, the clock is advanced to exactly
        ``until_ps`` on return, and events scheduled later stay queued.

        The loop itself lives in the selected backend (see
        :mod:`repro.sim.backend`); this method owns the reentrancy
        guard, the profiler dispatch hook, and the final clock advance.
        The backend folds partial event counts into
        ``_events_executed`` even when a callback raises.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        if max_events is not None and max_events <= 0:
            return 0
        dispatch = None
        if self._profiler is not None:
            profiler = self._profiler
            clock = profiler.clock
            record = profiler.record

            def dispatch(fn: Callable[..., None], args: tuple) -> None:
                t0 = clock()
                fn(*args)
                record(fn, clock() - t0)

        self._running = True
        self._stopped = False
        try:
            executed = self._run_loop(self, until_ps, max_events, dispatch)
        finally:
            self._running = False
        if until_ps is not None and not self._stopped and self.now < until_ps:
            self.now = until_ps
        return executed

    def stop(self) -> None:
        """Stop a ``run()`` in progress after the current event returns."""
        self._stopped = True

    # -- profiling ----------------------------------------------------------

    def enable_profiling(
        self, profiler: Optional[Any] = None, *, max_spans: int = 0
    ) -> Any:
        """Attach a wall-clock profiler to the run loop (opt-in).

        Subsequent :meth:`run` calls attribute each callback's wall time
        to its owner; read the result with :meth:`profile`.  Passing a
        :class:`~repro.obs.profile.SimProfiler` reuses it (tests inject
        fake clocks); otherwise a fresh one is created, retaining the
        last ``max_spans`` individual callback spans for timeline export
        (see :mod:`repro.obs.trace`).
        """
        if profiler is None:
            from repro.obs.profile import SimProfiler

            profiler = SimProfiler(max_spans=max_spans)
        self._profiler = profiler
        return profiler

    def disable_profiling(self) -> None:
        """Detach the profiler; the default run loop takes over again."""
        self._profiler = None

    def profile(self) -> Any:
        """A :class:`~repro.obs.profile.ProfileReport` of the wall time
        attributed so far.  Raises unless :meth:`enable_profiling` was
        called."""
        if self._profiler is None:
            raise SimulationError(
                "profiling is not enabled; call enable_profiling() first"
            )
        from repro.obs.profile import ProfileReport

        return ProfileReport(rows=tuple(self._profiler.rows()))

    # -- introspection ------------------------------------------------------

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including lazily-cancelled ones)."""
        return len(self._heap)

    @property
    def live_events(self) -> int:
        """Queued events that will actually fire."""
        return len(self._heap) - self._dead

    @property
    def dead_entries(self) -> int:
        """Lazily-cancelled entries awaiting compaction."""
        return self._dead

    @property
    def events_executed(self) -> int:
        """Total events executed over the simulator's lifetime."""
        return self._events_executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator now={self.now}ps pending={len(self._heap)} "
            f"dead={self._dead} executed={self._events_executed}>"
        )
