"""Heap-based discrete-event simulator with deterministic tie-breaking."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` (or the ``at`` /
    ``after`` conveniences) and may be cancelled.  Cancellation is lazy: the
    heap entry stays where it is and is skipped when popped.
    """

    __slots__ = ("time_ps", "seq", "fn", "args", "cancelled")

    def __init__(self, time_ps: int, seq: int, fn: Callable[..., None], args: tuple):
        self.time_ps = time_ps
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time_ps, self.seq) < (other.time_ps, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time_ps}ps seq={self.seq} {name} {state}>"


class Simulator:
    """The event loop.

    All model components hold a reference to one :class:`Simulator` and talk
    to each other exclusively by scheduling callbacks on it.  Time is an
    integer number of picoseconds (see :mod:`repro.units`).
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self._events_executed: int = 0

    # -- scheduling ---------------------------------------------------------

    def schedule(self, time_ps: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute time ``time_ps``."""
        if time_ps < self.now:
            raise SimulationError(
                f"cannot schedule event at {time_ps} ps; current time is {self.now} ps"
            )
        event = Event(time_ps, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def at(self, time_ps: int, fn: Callable[..., None], *args: Any) -> Event:
        """Alias of :meth:`schedule` reading naturally at call sites."""
        return self.schedule(time_ps, fn, *args)

    def after(self, delay_ps: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay_ps`` from now."""
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps} ps")
        return self.schedule(self.now + delay_ps, fn, *args)

    def call_now(self, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time, after pending events
        that were already scheduled for this instant."""
        return self.schedule(self.now, fn, *args)

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time_ps
            event.fn(*event.args)
            self._events_executed += 1
            return True
        return False

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until_ps`` is reached, or
        ``max_events`` events have executed.  Returns events executed.

        When ``until_ps`` is given, the clock is advanced to exactly
        ``until_ps`` on return, and events scheduled later stay queued.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._heap and not self._stopped:
                if max_events is not None and executed >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until_ps is not None and event.time_ps > until_ps:
                    break
                heapq.heappop(self._heap)
                self.now = event.time_ps
                event.fn(*event.args)
                self._events_executed += 1
                executed += 1
        finally:
            self._running = False
        if until_ps is not None and not self._stopped and self.now < until_ps:
            self.now = until_ps
        return executed

    def stop(self) -> None:
        """Stop a ``run()`` in progress after the current event returns."""
        self._stopped = True

    # -- introspection ------------------------------------------------------

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including lazily-cancelled ones)."""
        return len(self._heap)

    @property
    def events_executed(self) -> int:
        """Total events executed over the simulator's lifetime."""
        return self._events_executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator now={self.now}ps pending={len(self._heap)} "
            f"executed={self._events_executed}>"
        )
