"""Seeded random-number streams.

Each named consumer gets an independent ``numpy`` Generator derived from the
experiment seed, so adding a new random consumer never perturbs the draws
seen by existing ones — experiments stay reproducible as the library grows.
"""

from __future__ import annotations

import numpy as np


class RngStreams:
    """A family of independent, deterministic random generators."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream's seed is derived from ``(seed, name)`` via SeedSequence
        so distinct names are statistically independent.
        """
        generator = self._streams.get(name)
        if generator is None:
            entropy = [self.seed] + [ord(ch) for ch in name]
            generator = np.random.default_rng(np.random.SeedSequence(entropy))
            self._streams[name] = generator
        return generator

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngStreams seed={self.seed} streams={sorted(self._streams)}>"
