"""Discrete-event simulation engine.

The engine is deliberately small: a binary-heap event queue keyed by
``(time_ps, sequence)`` so that simultaneous events fire in the order they
were scheduled, which makes every simulation in the library deterministic.
"""

from repro.sim.engine import Event, EventHandle, Simulator
from repro.sim.timers import PeriodicTimer, Timeout
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceRecorder, TraceRecord

__all__ = [
    "Event",
    "EventHandle",
    "Simulator",
    "PeriodicTimer",
    "Timeout",
    "RngStreams",
    "TraceRecorder",
    "TraceRecord",
]
