"""Exception hierarchy for the Marlin reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly (e.g. scheduling in
    the past or running a finished simulation)."""


class ConfigError(ReproError):
    """An experiment or tester configuration is invalid."""


class ResourceExceededError(ReproError):
    """A hardware resource budget was exceeded (pipeline stages, SRAM,
    register-queue capacity, BRAM, port count)."""


class RegisterQueueOverflow(ResourceExceededError):
    """A programmable-switch register queue overflowed.

    The paper calls this a *false packet loss* (Section 4.2): a SCHE packet's
    metadata was dropped inside the tester, so a DATA packet that congestion
    control believed was sent never reached the wire.
    """


class RMWConflictError(ReproError):
    """A read-modify-write conflict on CC parameters was detected in the
    FPGA BRAM model (Section 5.3, Challenge 3)."""


class CCModuleError(ReproError):
    """A CC algorithm module violated the Table 3 programming contract."""


class PacketPoolError(ReproError):
    """A pooled packet was misused: released twice, or accessed after
    release while the pool's debug mode is on."""


class CampaignError(ReproError):
    """A sharded campaign (``repro.parallel``) was misconfigured, or one
    of its tasks failed after exhausting its retries."""


class PortAllocationError(ConfigError):
    """The requested port layout does not fit in a switch pipeline."""
