"""322 MHz clock-cycle accounting for the FPGA NIC.

All FPGA modules operate at the OpenNIC shell's 322 MHz (Section 6), so
one cycle is 3,105 ps.  The helpers here convert between cycles and the
global picosecond clock; the paper's frequency arguments (e.g. "RMW
operations are allowed to take a maximum of 40 clock cycles" at MTU 1518)
fall out of these conversions in :mod:`repro.fpga.timers`.
"""

from __future__ import annotations

from repro.units import FPGA_CYCLE_PS


def cycles_to_ps(cycles: int) -> int:
    """Duration of ``cycles`` FPGA clock cycles in picoseconds."""
    if cycles < 0:
        raise ValueError(f"cycles must be >= 0, got {cycles}")
    return cycles * FPGA_CYCLE_PS


def ps_to_cycles(duration_ps: int) -> int:
    """Whole FPGA clock cycles that fit in ``duration_ps`` (floor)."""
    if duration_ps < 0:
        raise ValueError(f"duration must be >= 0, got {duration_ps}")
    return duration_ps // FPGA_CYCLE_PS
