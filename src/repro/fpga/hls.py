"""HLS cost model: clock cycles from declared arithmetic (Table 4).

Vivado HLS pipelines straight-line C++ into the 322 MHz fabric; what
bounds a CC module's read-modify-write initiation interval is the longest
arithmetic dependency chain.  This model prices each operation class and
reproduces the paper's measured cycle counts:

===========  =====================================  ==============
algorithm    critical chain                          cycles (paper)
===========  =====================================  ==============
Reno         adds/compares/shifts only                2
DCTCP        one 16-bit div + two 32-bit muls        24
DCQCN        two 32-bit muls                          6
Cubic        LUT cube root (Section 8)              ~100
===========  =====================================  ==============

Costs: a 16-bit divider is 18 cycles, a 32-bit divider 26, a 32-bit
multiplier 2, the cube-root LUT (range reduction + BRAM lookup +
interpolation) 90; simple ALU ops (add/sub/compare/shift) fuse four per
cycle.
"""

from __future__ import annotations

import math

from repro.cc.base import CCAlgorithm, OpCounts

CYCLES_DIV16 = 18
CYCLES_DIV32 = 26
CYCLES_MUL32 = 2
CYCLES_CBRT_LUT = 90
#: Simple ALU operations fused per pipeline cycle.
SIMPLE_OPS_PER_CYCLE = 4


def estimate_cycles(ops: OpCounts) -> int:
    """Clock cycles for a fast-path invocation with the given op counts."""
    simple = ops.add_sub + ops.compare + ops.shift
    cycles = (
        ops.div16 * CYCLES_DIV16
        + ops.div32 * CYCLES_DIV32
        + ops.mul32 * CYCLES_MUL32
        + ops.cube_root_lut * CYCLES_CBRT_LUT
        + math.ceil(simple / SIMPLE_OPS_PER_CYCLE)
    )
    return max(cycles, 1)


def algorithm_cycles(algorithm: CCAlgorithm) -> int:
    """Cycle estimate for a CC algorithm's declared fast path."""
    return estimate_cycles(algorithm.ops)
