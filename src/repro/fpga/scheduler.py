"""Line-rate flow scheduling with rescheduling events (paper Section 5.2).

One :class:`PortScheduler` exists per switch test port (Section 5.3,
egress direction).  Each owns:

* a **scheduling FIFO** holding at most one event per flow — the
  uniqueness invariant: a flow in the FIFO is *active*; a flow without an
  event is reactivated by the CC module when its next INFO arrives;
* a **priority FIFO** for retransmissions and timeout-driven sends;
* a **TX timer**: at most one event is serviced per TX period, keeping
  the per-port SCHE rate at or below the switch's per-port DATA rate so
  the register queues never overflow.

Servicing an event re-evaluates eligibility against the congestion window
or pacing rate *in the scheduler* (not the CC module — the separation the
paper argues for at the end of Section 5.2), emits a SCHE packet when
eligible, and re-inserts a *rescheduling event* so active flows cycle
round-robin, which is what makes single-port bandwidth sharing fair
(Figure 6).

The service loop is event-driven: the TX timer only ticks while a FIFO is
non-empty (equivalent to the hardware's free-running timer, minus the
idle ticks that would swamp a discrete-event simulator).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cc.base import CCMode
from repro.fpga.fifos import Fifo
from repro.fpga.flow import FlowState
from repro.sim.engine import Simulator

#: The rescheduling loop latency (Section 5.2: "this entire loop only
#: takes six clock cycles").  Must be below the TX period; validated by
#: the NIC at construction.
RESCHEDULE_LOOP_CYCLES = 6


class PortScheduler:
    """Scheduler + scheduling FIFO + TX timer for one test port."""

    def __init__(
        self,
        sim: Simulator,
        port_index: int,
        tx_interval_ps: int,
        mode: CCMode,
        emit_sche: Callable[[FlowState, int, bool], None],
        *,
        on_bytes_sent: Optional[Callable[[FlowState], None]] = None,
        fifo_capacity: int = 1 << 16,
        phase_ps: int = 0,
        min_flow_spacing_ps: int = 0,
    ) -> None:
        if tx_interval_ps <= 0:
            raise ValueError(f"tx_interval must be positive, got {tx_interval_ps}")
        self.sim = sim
        self.port_index = port_index
        self.tx_interval_ps = tx_interval_ps
        self.mode = mode
        self.emit_sche = emit_sche
        self.on_bytes_sent = on_bytes_sent
        #: Section 8 PPS reduction: minimum spacing between packets of the
        #: SAME flow, for CC modules whose RMW latency exceeds the
        #: per-packet budget (0 disables; rate mode paces anyway).
        self.min_flow_spacing_ps = min_flow_spacing_ps
        self.sched_fifo: Fifo[FlowState] = Fifo(
            fifo_capacity, name=f"sched{port_index}"
        )
        self.prio_fifo: Fifo[tuple[FlowState, int]] = Fifo(
            fifo_capacity, name=f"prio{port_index}"
        )
        self._next_tick_ps = phase_ps
        self._tick_pending = False
        self.ticks = 0
        self.sche_emitted = 0
        self.rtx_emitted = 0
        self.skipped_pacing = 0
        self.descheduled = 0

    # -- event insertion -------------------------------------------------------

    def enqueue_flow(self, flow: FlowState) -> None:
        """Add a scheduling event for ``flow`` (idempotent: the FIFO keeps
        at most one event per flow)."""
        if flow.scheduled or flow.finished:
            return
        flow.scheduled = True
        self.sched_fifo.push(flow)
        self._kick()

    def enqueue_rtx(self, flow: FlowState, psn: int) -> None:
        """Add a high-priority retransmission event."""
        self.prio_fifo.push((flow, psn))
        self._kick()

    # -- service loop ------------------------------------------------------------

    def _kick(self) -> None:
        if self._tick_pending:
            return
        if self.sched_fifo.empty and self.prio_fifo.empty:
            return
        self._tick_pending = True
        self.sim.at(max(self.sim.now, self._next_tick_ps), self._tick)

    def _tick(self) -> None:
        self._tick_pending = False
        self._next_tick_ps = self.sim.now + self.tx_interval_ps
        self.ticks += 1

        rtx = self.prio_fifo.pop()
        if rtx is not None:
            flow, psn = rtx
            if not flow.finished:
                self.emit_sche(flow, psn, True)
                flow.rtx_sent += 1
                self.rtx_emitted += 1
            self._kick()
            return

        flow = self.sched_fifo.pop()
        if flow is None:
            return
        if self.mode is CCMode.WINDOW:
            self._service_window(flow)
        else:
            self._service_rate(flow)
        self._kick()

    def _service_window(self, flow: FlowState) -> None:
        if flow.finished or not flow.sendable_window():
            # Window closed or all data sent: the flow goes inactive; the
            # next INFO that opens the window re-adds its event.
            flow.scheduled = False
            self.descheduled += 1
            return
        if self.min_flow_spacing_ps > 0 and self.sim.now < flow.next_send_ps:
            # Per-flow PPS cap (Section 8): recycle without sending.
            self.skipped_pacing += 1
            self.sched_fifo.push(flow)
            return
        if self.min_flow_spacing_ps > 0:
            flow.next_send_ps = self.sim.now + self.min_flow_spacing_ps
        self._emit(flow)
        self.sched_fifo.push(flow)  # rescheduling event

    def _service_rate(self, flow: FlowState) -> None:
        if flow.finished or not flow.sendable_rate():
            flow.scheduled = False
            self.descheduled += 1
            return
        if self.sim.now < flow.next_send_ps:
            # Pacing gate not yet open: recycle the event without sending.
            self.skipped_pacing += 1
            self.sched_fifo.push(flow)
            return
        pacing_ps = int(flow.pace_num / flow.cwnd_or_rate)
        flow.next_send_ps = max(flow.next_send_ps, self.sim.now) + pacing_ps
        self._emit(flow)
        self.sched_fifo.push(flow)

    def _emit(self, flow: FlowState) -> None:
        psn = flow.nxt
        flow.nxt += 1
        flow.data_sent += 1
        self.sche_emitted += 1
        self.emit_sche(flow, psn, False)
        if self.on_bytes_sent is not None:
            flow.counter_bytes += flow.frame_bytes
            self.on_bytes_sent(flow)
