"""Per-flow sender state held in the FPGA's BRAMs.

One :class:`FlowState` aggregates the three ownership domains of
Section 5.1: intrinsic transport state (``una``/``nxt``, owned by the
framework/scheduler), the CC module's 64 B customized block (``cust``),
and the slow-path block (``slow``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.units import SECOND, wire_bits


@dataclass
class FlowState:
    """Sender-side state for one test flow."""

    flow_id: int
    #: Switch test port (and scheduler) this flow is pinned to.
    port_index: int
    src_addr: int
    dst_addr: int
    #: Flow length in packets; every DATA carries one PSN.
    size_packets: int
    frame_bytes: int
    #: Congestion window (packets) or rate (bps), per algorithm mode.
    cwnd_or_rate: float
    #: PSN of the next unacknowledged packet (Table 3 ``una``).
    una: int = 0
    #: PSN of the next packet to be sent (Table 3 ``nxt``).
    nxt: int = 0
    #: True while a scheduling event for this flow is in the scheduling
    #: FIFO (the Section 5.2 uniqueness invariant).
    scheduled: bool = False
    started: bool = False
    finished: bool = False
    start_ps: int = -1
    finish_ps: int = -1
    #: Rate-pacing: earliest time the next packet may be scheduled.
    next_send_ps: int = 0
    #: Bytes sent since the last BYTE_COUNTER event (DCQCN's B counter).
    counter_bytes: int = 0
    data_sent: int = 0
    rtx_sent: int = 0
    #: CC module customized variables (algorithm-defined dataclass).
    cust: Any = None
    #: Slow-path variables (algorithm-defined dataclass or None).
    slow: Any = None
    #: Precomputed pacing numerator: ``wire_bits(frame_bytes) * SECOND``,
    #: so the scheduler's per-emit gap is one division,
    #: ``pace_num / rate_bps`` (see repro.net.datapath for the scheme).
    pace_num: int = 0

    def __post_init__(self) -> None:
        self.pace_num = wire_bits(self.frame_bytes) * SECOND

    @property
    def fct_ps(self) -> int:
        """Flow completion time, or -1 while incomplete."""
        if self.finish_ps < 0 or self.start_ps < 0:
            return -1
        return self.finish_ps - self.start_ps

    @property
    def complete(self) -> bool:
        return self.una >= self.size_packets

    def sendable_window(self) -> bool:
        """Window-mode eligibility: data left and window open."""
        return self.nxt < self.size_packets and self.nxt < self.una + max(
            int(self.cwnd_or_rate), 1
        )

    def sendable_rate(self) -> bool:
        """Rate-mode eligibility ignoring pacing time (data left)."""
        return self.nxt < self.size_packets
