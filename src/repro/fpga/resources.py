"""FPGA resource estimation (paper Table 4 and the Scalability discussion).

The Alveo U280 exposes 72 Mb of BRAM (plus 276 Mb of URAM for scaling
further, Section 8).  Marlin stores per-flow CC state in BRAM:

* the 64 B customized variable block every algorithm gets (Table 3);
* window-mode algorithms additionally need retransmission/window tracking
  (modelled as 16 B);
* algorithms with a Slow Path keep slow-path variables in their own BRAM
  (modelled as 8 B).

With 65,536 flows this reproduces Table 4's BRAM column: DCQCN (rate
mode, no slow path) = 64 B/flow -> ~47%; Reno = 80 B -> ~58%; DCTCP =
88 B -> ~64%.  LUT/FF percentages are a linear fit over the declared op
counts — good for the ordering and rough magnitude, not gate-exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cc.base import CCAlgorithm, CCMode
from repro.errors import ResourceExceededError
from repro.fpga.hls import algorithm_cycles

#: Alveo U280 on-chip memory (Section 8).
BRAM_TOTAL_BITS = 72 * 1000 * 1000
URAM_TOTAL_BITS = 276 * 1000 * 1000

#: Per-flow state bytes.
CUST_STATE_BYTES = 64
WINDOW_EXTRA_BYTES = 16
SLOW_PATH_EXTRA_BYTES = 8

#: Maximum concurrency the paper's BRAM budget supports.
MAX_FLOWS = 65_536

#: Table 4, for side-by-side reporting (LoC, cycles, CC-module LUT/FF %,
#: total LUT/FF %, total BRAM %).
PAPER_TABLE4 = {
    "reno": {"loc": 156, "cycles": 2, "cc_lut": 1.1, "cc_ff": 0.7,
             "total_lut": 10, "total_ff": 11, "bram": 59},
    "dctcp": {"loc": 175, "cycles": 24, "cc_lut": 3.5, "cc_ff": 2.1,
              "total_lut": 13, "total_ff": 12, "bram": 63},
    "dcqcn": {"loc": 98, "cycles": 6, "cc_lut": 1.4, "cc_ff": 0.9,
              "total_lut": 12, "total_ff": 10, "bram": 46},
}

#: OpenNIC shell + Marlin framework baseline utilization (percent).
SHELL_LUT_PCT = 9.0
SHELL_FF_PCT = 10.0


@dataclass(frozen=True)
class ResourceReport:
    """Estimated utilization for one CC algorithm build."""

    algorithm: str
    n_flows: int
    cycles: int
    state_bytes_per_flow: int
    cc_lut_pct: float
    cc_ff_pct: float
    total_lut_pct: float
    total_ff_pct: float
    bram_pct: float

    def as_row(self) -> dict[str, float | int | str]:
        return {
            "algorithm": self.algorithm,
            "clk": self.cycles,
            "cc_lut": round(self.cc_lut_pct, 1),
            "cc_ff": round(self.cc_ff_pct, 1),
            "total_lut": round(self.total_lut_pct, 1),
            "total_ff": round(self.total_ff_pct, 1),
            "bram": round(self.bram_pct, 1),
        }


def flow_state_bytes(algorithm: CCAlgorithm) -> int:
    """Per-flow BRAM footprint of an algorithm."""
    size = CUST_STATE_BYTES
    if algorithm.mode is CCMode.WINDOW:
        size += WINDOW_EXTRA_BYTES
    if algorithm.initial_slow() is not None:
        size += SLOW_PATH_EXTRA_BYTES
    return size


def bram_bits(algorithm: CCAlgorithm, n_flows: int) -> int:
    return n_flows * flow_state_bytes(algorithm) * 8


def max_flows(algorithm: CCAlgorithm, *, use_uram: bool = False) -> int:
    """Flow count the on-chip memory supports for this algorithm."""
    budget = BRAM_TOTAL_BITS + (URAM_TOTAL_BITS if use_uram else 0)
    return budget // (flow_state_bytes(algorithm) * 8)


def estimate_resources(
    algorithm: CCAlgorithm, n_flows: int = MAX_FLOWS, *, strict: bool = False
) -> ResourceReport:
    """Estimate the Table 4 row for ``algorithm`` at ``n_flows`` flows."""
    per_flow = flow_state_bytes(algorithm)
    bram_pct = bram_bits(algorithm, n_flows) / BRAM_TOTAL_BITS * 100.0
    if bram_pct > 100.0:
        if strict:
            raise ResourceExceededError(
                f"{algorithm.name} at {n_flows} flows needs {bram_pct:.0f}% of "
                "BRAM; enable URAM or reduce flows"
            )
    ops = algorithm.ops
    simple = ops.add_sub + ops.compare + ops.shift
    cc_lut = (
        0.6
        + 0.06 * simple
        + 0.3 * ops.mul32
        + 1.6 * ops.div16
        + 2.4 * ops.div32
        + 2.5 * ops.cube_root_lut
    )
    cc_ff = 0.62 * cc_lut
    return ResourceReport(
        algorithm=algorithm.name,
        n_flows=n_flows,
        cycles=algorithm_cycles(algorithm),
        state_bytes_per_flow=per_flow,
        cc_lut_pct=cc_lut,
        cc_ff_pct=cc_ff,
        total_lut_pct=SHELL_LUT_PCT + cc_lut,
        total_ff_pct=SHELL_FF_PCT + cc_ff,
        bram_pct=bram_pct,
    )
