"""Fine-grained logging via QDMA (paper Section 5.1).

Each CC computation may log one 16-byte record plus a timestamp from the
322 MHz hardware clock.  Records are aggregated into 1,024-byte packets
before upload to the host, "with logging performance matching the host's
DPDK performance".

The model enforces the 16-byte record budget (values are encoded as
4-byte words, so at most four values per record), aggregates records into
upload batches, and mirrors everything into a
:class:`~repro.sim.trace.TraceRecorder` for analysis — this is what the
Figure 5 cwnd/alpha traces are read from.
"""

from __future__ import annotations

from typing import Any

from repro.errors import CCModuleError
from repro.obs.metrics import Histogram
from repro.sim.trace import TraceRecorder

#: Per-record payload budget (excluding the hardware timestamp).
RECORD_BYTES = 16
#: Each logged value occupies one 32-bit word.
VALUE_BYTES = 4
MAX_VALUES_PER_RECORD = RECORD_BYTES // VALUE_BYTES
#: Upload aggregation unit.
UPLOAD_PACKET_BYTES = 1024
RECORDS_PER_UPLOAD = UPLOAD_PACKET_BYTES // RECORD_BYTES


class QdmaLogger:
    """16 B record logger with 1,024 B upload aggregation.

    Upload accounting mirrors what the host's DPDK receive loop would
    see: ``uploads`` counts packets, ``upload_bytes`` counts payload
    bytes (full batches carry :data:`UPLOAD_PACKET_BYTES`; a flushed
    partial batch carries only its records), and ``batch_records`` is a
    log2 histogram of records per upload.  Partial-batch state is
    exposed via :attr:`pending_records` / :attr:`pending_bytes` (and the
    metrics registry through
    :func:`repro.obs.instrument.instrument_qdma`) rather than being a
    private bare int.  ``flush()`` on an empty logger uploads nothing.
    """

    def __init__(self, trace: TraceRecorder | None = None) -> None:
        self.trace = trace if trace is not None else TraceRecorder()
        self.records_logged = 0
        self.uploads = 0
        self.upload_bytes = 0
        self.batch_records = Histogram("repro_qdma_batch_records", {}, n_buckets=8)
        self._pending_records = 0

    @property
    def pending_records(self) -> int:
        """Records aggregated but not yet uploaded (the partial batch)."""
        return self._pending_records

    @property
    def pending_bytes(self) -> int:
        """Payload bytes sitting in the partial batch."""
        return self._pending_records * RECORD_BYTES

    def log(self, time_ps: int, channel: str, **values: Any) -> None:
        """Log one record; raises if it exceeds the 16-byte budget."""
        if len(values) > MAX_VALUES_PER_RECORD:
            raise CCModuleError(
                f"log record on {channel!r} has {len(values)} values; the "
                f"{RECORD_BYTES} B hardware record fits at most "
                f"{MAX_VALUES_PER_RECORD}"
            )
        self.trace.log(time_ps, channel, **values)
        self.records_logged += 1
        self._pending_records += 1
        if self._pending_records >= RECORDS_PER_UPLOAD:
            self._upload(self._pending_records)

    def flush(self) -> None:
        """Upload any partial batch (end of test); a no-op when empty."""
        if self._pending_records > 0:
            self._upload(self._pending_records)

    def _upload(self, n_records: int) -> None:
        self._pending_records = 0
        self.uploads += 1
        self.upload_bytes += n_records * RECORD_BYTES
        self.batch_records.observe(n_records)

    def series(self, channel: str, key: str) -> tuple[list[int], list[Any]]:
        """Convenience passthrough to the backing trace."""
        return self.trace.series(channel, key)
