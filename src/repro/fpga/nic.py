"""The assembled FPGA NIC (paper Section 5, Figure 4).

Datapath for one INFO packet (Step A of Figure 4):

1. the packet arrives on the 100 Gbps port and is parsed into a
   reception event;
2. the event joins the RX FIFO matching the switch test port it arrived
   on; an RX timer drains each FIFO at the per-port DATA rate
   (Section 5.3, ingress direction);
3. the framework advances ``una`` and detects flow completion;
4. the CC algorithm module runs under the Table 3 contract, charging its
   HLS cycle cost against the flow's BRAM RMW window;
5. outputs are applied: window/rate update (clamped), retransmissions to
   the priority FIFO, go-back-N rewinds, timer arms, slow-path events,
   log records;
6. if the flow has become sendable and lacks a scheduling event, one is
   enqueued — reactivating the flow (Section 5.2).

Per-port schedulers emit SCHE packets (Step B/C); the shared egress port
acts as the MUX and enforces the 64 B line rate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cc.base import (
    CCAlgorithm,
    CCMode,
    EventType,
    NO_FLAGS,
    IntrinsicInput,
    IntrinsicOutput,
)
from repro.errors import ConfigError
from repro.fpga.bram import FlowBram
from repro.fpga.cc_module import CCModuleRuntime
from repro.fpga.clock import cycles_to_ps
from repro.fpga.event_generator import EventGenerator
from repro.fpga.fifos import Fifo
from repro.fpga.flow import FlowState
from repro.fpga.logger import QdmaLogger
from repro.fpga.parser import InfoParser, ReceptionEvent
from repro.fpga.scheduler import PortScheduler, RESCHEDULE_LOOP_CYCLES
from repro.fpga.slow_path import SlowPathExecutor
from repro.fpga.timers import FrequencyControl
from repro.net.device import Device, Port
from repro.net.packet import Packet
from repro.pswitch.module_a import ReceiverLogic, ReceiverMode
from repro.pswitch.packets import PACKET_POOL, PTYPE_RDATA, make_sche
from repro.sim.engine import Simulator
from repro.units import RATE_100G, ROCE_MTU_BYTES


@dataclass
class FpgaNicConfig:
    """Static NIC configuration deployed by the control plane."""

    template_bytes: int = ROCE_MTU_BYTES
    n_test_ports: int = 12
    port_rate_bps: int = RATE_100G
    rx_fifo_capacity: int = 8192
    sched_fifo_capacity: int = 1 << 16
    #: Record every window/rate change to the QDMA logger.
    trace_cc: bool = False
    #: Raise on BRAM RMW conflicts instead of counting them.
    strict_bram: bool = False
    #: Verify the Table 3 contract on every invocation (slower; tests).
    check_contracts: bool = False
    #: Override the RX timer period (0: match TX; see FrequencyControl).
    rx_interval_override_ps: int = 0
    #: Ablation: bypass RX timers and process INFO on arrival, exposing
    #: the Section 5.3 read-write conflicts.
    disable_rx_timer: bool = False
    slow_path_cycles: int = 200
    #: Record probed RTT samples (bounded) for latency analysis.
    sample_rtt: bool = False
    #: Cap on retained RTT samples (oldest dropped beyond this).
    rtt_sample_capacity: int = 100_000
    #: Figure 2 dashed path: run receiver logic here, fed by truncated
    #: DATA (RDATA) over a dedicated second port.
    receiver_on_fpga: bool = False
    #: Receiver behaviour when hosted on the FPGA (None: TCP).
    fpga_receiver_mode: Optional["ReceiverMode"] = None
    cnp_interval_ps: int = 50_000_000


class FpgaNic(Device):
    """FPGA-NIC half of the tester."""

    #: Optional :class:`repro.obs.flight.FlightRecorder`; tested only on
    #: actual CC rate/window transitions.
    _flight = None

    def __init__(
        self,
        sim: Simulator,
        algorithm: CCAlgorithm,
        config: Optional[FpgaNicConfig] = None,
        *,
        name: str = "fpga-nic",
    ) -> None:
        super().__init__(sim, name)
        self.config = config if config is not None else FpgaNicConfig()
        cfg = self.config
        self.algorithm = algorithm
        self.port: Port = self.add_port(rate_bps=cfg.port_rate_bps)
        #: Second port + receiver logic for the Figure 2 dashed path.
        self.receiver_port: Optional[Port] = None
        self.fpga_receiver: Optional[ReceiverLogic] = None
        if cfg.receiver_on_fpga:
            self.receiver_port = self.add_port(rate_bps=cfg.port_rate_bps)
            mode = (
                cfg.fpga_receiver_mode
                if cfg.fpga_receiver_mode is not None
                else ReceiverMode.TCP
            )
            self.fpga_receiver = ReceiverLogic(
                mode, cnp_interval_ps=cfg.cnp_interval_ps
            )

        self.frequency = FrequencyControl(
            cfg.template_bytes,
            cfg.n_test_ports,
            cfg.port_rate_bps,
            rx_interval_override_ps=cfg.rx_interval_override_ps,
        )
        self.bram = FlowBram(strict=cfg.strict_bram)
        self.cc_runtime = CCModuleRuntime(
            algorithm, self.bram, check_contracts=cfg.check_contracts
        )
        #: Section 5.3 safety analysis for this algorithm/MTU combination.
        self.frequency_warnings = self.frequency.validate(self.cc_runtime.cycles)
        if cycles_to_ps(RESCHEDULE_LOOP_CYCLES) > self.frequency.tx_interval_ps:
            raise ConfigError(
                "rescheduling loop latency exceeds the TX period; the "
                "scheduling FIFO cannot sustain line rate"
            )

        self.parser = InfoParser()
        self.rx_fifos: list[Fifo[ReceptionEvent]] = [
            Fifo(cfg.rx_fifo_capacity, name=f"rx{i}") for i in range(cfg.n_test_ports)
        ]
        self._drain_pending = [False] * cfg.n_test_ports
        self._next_drain_ps = [0] * cfg.n_test_ports

        tx_interval = self.frequency.tx_interval_ps
        # Section 8: CC modules whose RMW latency exceeds the per-packet
        # budget get a per-flow PPS cap; multiple flows still fill the port.
        reduction = self.frequency.pps_reduction_factor(self.cc_runtime.cycles)
        min_spacing = reduction * tx_interval if reduction > 1 else 0
        self.per_flow_pps_reduction = reduction
        self.schedulers: list[PortScheduler] = [
            PortScheduler(
                sim,
                i,
                tx_interval,
                algorithm.mode,
                self._emit_sche,
                on_bytes_sent=self._on_bytes_sent,
                fifo_capacity=cfg.sched_fifo_capacity,
                phase_ps=i * tx_interval // max(cfg.n_test_ports, 1),
                min_flow_spacing_ps=min_spacing,
            )
            for i in range(cfg.n_test_ports)
        ]

        self.event_generator = EventGenerator(sim, self._on_timeout)
        self.logger = QdmaLogger()
        self.slow_path = SlowPathExecutor(
            sim, cycles=cfg.slow_path_cycles, on_rate_update=self._on_slow_rate_update
        )
        self._byte_threshold = algorithm.byte_counter_bytes()

        self.flows: dict[int, FlowState] = {}
        self.completed_flows: list[FlowState] = []
        self.completion_callbacks: list[Callable[[FlowState], None]] = []
        self._next_flow_id = 1

        self.infos_processed = 0
        self.infos_for_unknown_flows = 0
        self.rmw_stalls = 0
        self.rx_timer_bypassed = cfg.disable_rx_timer
        #: Hot-path aliases of per-packet config flags (the config is
        #: frozen after deploy; reading ``self.config.x`` per INFO costs
        #: two attribute lookups each).
        self._rx_bypass = cfg.disable_rx_timer
        self._sample_rtt = cfg.sample_rtt
        self._trace_cc = cfg.trace_cc
        self._rx_interval_ps = self.frequency.rx_interval_ps
        #: (flow_id, rtt_ps) samples when ``sample_rtt`` is enabled.
        self.rtt_samples: deque[tuple[int, int]] = deque(
            maxlen=cfg.rtt_sample_capacity
        )

    # -- flow management --------------------------------------------------------

    def start_flow(
        self,
        *,
        port_index: int,
        src_addr: int,
        dst_addr: int,
        size_packets: int,
        flow_id: Optional[int] = None,
        start_at_ps: Optional[int] = None,
    ) -> FlowState:
        """Create a flow and schedule its first transmission."""
        if not 0 <= port_index < self.config.n_test_ports:
            raise ConfigError(
                f"port_index {port_index} out of range "
                f"[0, {self.config.n_test_ports})"
            )
        if size_packets <= 0:
            raise ConfigError(f"flow size must be positive, got {size_packets}")
        if flow_id is None:
            flow_id = self._next_flow_id
        if flow_id in self.flows:
            raise ConfigError(f"flow id {flow_id} already exists")
        self._next_flow_id = max(self._next_flow_id, flow_id + 1)
        flow = FlowState(
            flow_id=flow_id,
            port_index=port_index,
            src_addr=src_addr,
            dst_addr=dst_addr,
            size_packets=size_packets,
            frame_bytes=self.config.template_bytes,
            cwnd_or_rate=self.algorithm.initial_cwnd_or_rate(self.config.port_rate_bps),
            cust=self.algorithm.initial_cust(),
            slow=self.algorithm.initial_slow(),
        )
        self.flows[flow_id] = flow
        self.bram.write(flow_id, flow)
        when = self.sim.now if start_at_ps is None else start_at_ps
        self.sim.at(when, self._activate_flow, flow)
        return flow

    def _activate_flow(self, flow: FlowState) -> None:
        if flow.started or flow.finished:
            return
        flow.started = True
        flow.start_ps = self.sim.now
        flow.next_send_ps = self.sim.now
        out = self.algorithm.on_flow_start(flow.cust, flow.slow, self.sim.now)
        self._apply_output(flow, out)
        self.schedulers[flow.port_index].enqueue_flow(flow)

    def stop_flow(self, flow_id: int) -> None:
        """Terminate a flow from the control plane (no FCT is recorded;
        the paper's congestion test terminates long-lived flows this way)."""
        flow = self.flows.get(flow_id)
        if flow is None or flow.finished:
            return
        flow.finished = True
        self.event_generator.forget_flow(flow_id)

    def on_complete(self, callback: Callable[[FlowState], None]) -> None:
        """Register a flow-completion callback (closed-loop workloads)."""
        self.completion_callbacks.append(callback)

    def flow(self, flow_id: int) -> FlowState:
        try:
            return self.flows[flow_id]
        except KeyError:
            raise ConfigError(f"unknown flow id {flow_id}") from None

    # -- INFO ingress ------------------------------------------------------------

    def receive(self, packet: Packet, port: Port) -> None:
        if packet.ptype == PTYPE_RDATA:
            self._receive_rdata(packet)
            return
        event = self.parser.parse(packet, self.sim.now)
        if event is None:
            return
        # The parser copied everything into the ReceptionEvent; the 64 B
        # INFO packet's life ends here.
        PACKET_POOL.release(packet)
        if self._rx_bypass:
            # Ablation: no frequency control on the ingress path.
            self._process_reception(event)
            return
        index = min(event.rx_port, len(self.rx_fifos) - 1)
        if self.rx_fifos[index].push(event):
            self._kick_drain(index)

    def _receive_rdata(self, rdata: Packet) -> None:
        """FPGA-hosted receiver logic (Figure 2 dashed path): process a
        truncated DATA packet, return responses via the receiver port."""
        if self.fpga_receiver is None or self.receiver_port is None:
            return
        rx_port = rdata.meta.get("rx_port", 0)
        for response in self.fpga_receiver.on_data(rdata, self.sim.now):
            # Tell the switch which test port the response leaves from.
            response.meta["egress_port"] = rx_port
            self.receiver_port.send(response)
        PACKET_POOL.release(rdata)

    def _kick_drain(self, index: int) -> None:
        if self._drain_pending[index] or self.rx_fifos[index].empty:
            return
        self._drain_pending[index] = True
        when = max(self.sim.now, self._next_drain_ps[index])
        self.sim.at(when, self._drain, index)

    def _drain(self, index: int) -> None:
        self._drain_pending[index] = False
        fifo = self.rx_fifos[index]
        now = self.sim.now
        head = fifo.peek()
        if head is not None:
            # Atomicity: if the head event's flow still has an RMW in
            # flight, the pipeline stalls until it completes (Section 5.3's
            # "packets will have to wait ... causing a drop in throughput";
            # frequency control exists to make this never happen).
            busy_until = self.bram.busy_until(head.flow_id)
            if busy_until > now:
                self.rmw_stalls += 1
                self._drain_pending[index] = True
                self.sim.at(busy_until, self._drain, index)
                return
        next_ps = now + self._rx_interval_ps
        self._next_drain_ps[index] = next_ps
        event = fifo.pop()
        if event is not None:
            self._process_reception(event)
        if fifo._queue:
            # Inlined ``_kick_drain``: the next slot is always in the
            # future here, so no ``max(now, ...)`` is needed.
            self._drain_pending[index] = True
            self.sim.at(next_ps, self._drain, index)

    # -- CC event processing --------------------------------------------------------

    def _process_reception(self, event: ReceptionEvent) -> None:
        flow = self.flows.get(event.flow_id)
        if flow is None or flow.finished or not flow.started:
            self.infos_for_unknown_flows += 1
            return
        self.infos_processed += 1
        if self._sample_rtt and event.prb_rtt_ps >= 0:
            self.rtt_samples.append((flow.flow_id, event.prb_rtt_ps))
        if event.flags.ack and event.psn > flow.una:
            flow.una = min(event.psn, flow.size_packets)
        if flow.complete:
            self._finish_flow(flow)
            return
        intr = IntrinsicInput(
            evt_type=EventType.RX,
            psn=event.psn,
            cwnd_or_rate=flow.cwnd_or_rate,
            una=flow.una,
            nxt=flow.nxt,
            flags=event.flags,
            prb_rtt=event.prb_rtt_ps,
            tstamp=self.sim.now,
            int_path=event.int_path,
        )
        out = self.cc_runtime.invoke(flow.flow_id, intr, flow.cust, flow.slow)
        self._apply_output(flow, out)
        self._maybe_activate(flow)

    def _on_timeout(self, flow_id: int, timer_id: int) -> None:
        flow = self.flows.get(flow_id)
        if flow is None or flow.finished or not flow.started:
            return
        intr = IntrinsicInput(
            evt_type=EventType.TIMEOUT,
            psn=-1,
            cwnd_or_rate=flow.cwnd_or_rate,
            una=flow.una,
            nxt=flow.nxt,
            flags=NO_FLAGS,
            prb_rtt=-1,
            tstamp=self.sim.now,
            timer_id=timer_id,
        )
        out = self.cc_runtime.invoke(flow.flow_id, intr, flow.cust, flow.slow)
        self._apply_output(flow, out)
        self._maybe_activate(flow)

    def _on_slow_rate_update(self, flow_id: int, value: float) -> None:
        flow = self.flows.get(flow_id)
        if flow is not None and not flow.finished:
            flow.cwnd_or_rate = self._clamp(value)

    def _on_bytes_sent(self, flow: FlowState) -> None:
        if self._byte_threshold is None or flow.counter_bytes < self._byte_threshold:
            return
        flow.counter_bytes -= self._byte_threshold
        intr = IntrinsicInput(
            evt_type=EventType.BYTE_COUNTER,
            psn=-1,
            cwnd_or_rate=flow.cwnd_or_rate,
            una=flow.una,
            nxt=flow.nxt,
            flags=NO_FLAGS,
            prb_rtt=-1,
            tstamp=self.sim.now,
        )
        out = self.cc_runtime.invoke(flow.flow_id, intr, flow.cust, flow.slow)
        self._apply_output(flow, out)

    def _apply_output(self, flow: FlowState, out: IntrinsicOutput) -> None:
        if out.cwnd_or_rate is not None:
            previous = flow.cwnd_or_rate
            flow.cwnd_or_rate = self._clamp(out.cwnd_or_rate)
            if self._flight is not None and flow.cwnd_or_rate != previous:
                self._flight.record(
                    self.sim.now, "cc", "rate_update",
                    flow=flow.flow_id,
                    cwnd_or_rate=flow.cwnd_or_rate,
                    previous=previous,
                )
            if self._trace_cc:
                self.logger.log(
                    self.sim.now,
                    f"flow{flow.flow_id}",
                    cwnd_or_rate=flow.cwnd_or_rate,
                )
        if out.rewind_to_una:
            flow.nxt = flow.una
        if out.rtx_psn >= 0:
            self.schedulers[flow.port_index].enqueue_rtx(flow, out.rtx_psn)
        for timer_id, duration_ps in out.rst_timers:
            self.event_generator.arm(flow.flow_id, timer_id, duration_ps)
        for timer_id in out.stop_timers:
            self.event_generator.cancel(flow.flow_id, timer_id)
        for slow_event in out.slow_path_events:
            self.slow_path.submit(
                self.algorithm, flow.flow_id, slow_event, flow.cust, flow.slow
            )
            if self._trace_cc and flow.slow is not None:
                self._trace_slow_later(flow)
        for record in out.log_content:
            self.logger.log(self.sim.now, f"flow{flow.flow_id}.user", **record)

    def _trace_slow_later(self, flow: FlowState) -> None:
        def log_slow() -> None:
            alpha = getattr(flow.slow, "alpha", None)
            if alpha is not None:
                self.logger.log(self.sim.now, f"flow{flow.flow_id}.slow", alpha=alpha)

        self.sim.after(self.slow_path.latency_ps, log_slow)

    def _clamp(self, value: float) -> float:
        if self.algorithm.mode is CCMode.WINDOW:
            return max(value, 1.0)
        floor = self.algorithm.min_rate_bps(self.config.port_rate_bps)
        return min(max(value, floor), float(self.config.port_rate_bps))

    def _maybe_activate(self, flow: FlowState) -> None:
        if flow.finished or flow.scheduled:
            return
        sendable = (
            flow.sendable_window()
            if self.algorithm.mode is CCMode.WINDOW
            else flow.sendable_rate()
        )
        if sendable:
            self.schedulers[flow.port_index].enqueue_flow(flow)

    def _finish_flow(self, flow: FlowState) -> None:
        flow.finished = True
        flow.finish_ps = self.sim.now
        self.event_generator.forget_flow(flow.flow_id)
        self.completed_flows.append(flow)
        for callback in self.completion_callbacks:
            callback(flow)

    # -- SCHE egress ----------------------------------------------------------------

    def _emit_sche(self, flow: FlowState, psn: int, is_rtx: bool) -> None:
        sche = make_sche(
            flow.flow_id,
            psn,
            flow.port_index,
            src_addr=flow.src_addr,
            dst_addr=flow.dst_addr,
            frame_bytes=flow.frame_bytes,
            is_rtx=is_rtx,
            created_ps=self.sim.now,
        )
        self.port.send(sche)

    # -- control-plane readable state -------------------------------------------------

    def read_counters(self) -> dict[str, int]:
        return {
            "infos_processed": self.infos_processed,
            "infos_unknown_flow": self.infos_for_unknown_flows,
            "rx_fifo_drops": sum(f.stats.dropped for f in self.rx_fifos),
            "rmw_conflicts": self.bram.conflicts,
            "rmw_stalls": self.rmw_stalls,
            "timeouts_fired": self.event_generator.timeouts_fired,
            "slow_path_events": self.slow_path.events_processed,
            "slow_path_overruns": self.slow_path.overruns,
            "sche_emitted": sum(s.sche_emitted for s in self.schedulers),
            "rtx_emitted": sum(s.rtx_emitted for s in self.schedulers),
            "flows_completed": len(self.completed_flows),
        }
