"""The INFO parser (paper Section 5.1, Figure 4 leftmost stage).

Parses an arriving INFO packet into a reception event: flow ID, PSN, CC
flags (ACK/ECN/NACK/CNP), the probed RTT (computed from the echoed DATA
transmit timestamp), and the switch test port the feedback arrived on
(which selects the RX FIFO, Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cc.base import Flags, flags_for
from repro.net.packet import Packet
from repro.pswitch.packets import PTYPE_INFO


@dataclass(slots=True)
class ReceptionEvent:
    """One parsed INFO packet."""

    flow_id: int
    psn: int
    flags: Flags
    #: Probed round-trip time (ps), -1 when the echo timestamp is absent.
    prb_rtt_ps: int
    #: Switch test port the underlying ACK arrived on -> RX FIFO index.
    rx_port: int
    arrival_ps: int
    #: Echoed INT records (empty unless the test enables INT).
    int_path: tuple = ()


class InfoParser:
    """INFO packet -> :class:`ReceptionEvent`."""

    def __init__(self) -> None:
        self.parsed = 0
        self.malformed = 0

    def parse(self, packet: Packet, now_ps: int) -> ReceptionEvent | None:
        if packet.ptype != PTYPE_INFO:
            self.malformed += 1
            return None
        meta = packet.meta
        echo = meta.get("echo_tstamp_ps", -1)
        prb_rtt = now_ps - echo if echo >= 0 else -1
        self.parsed += 1
        return ReceptionEvent(
            flow_id=packet.flow_id,
            psn=packet.psn,
            flags=flags_for(
                packet.psn >= 0,
                packet.ecn_echo,
                bool(meta.get("nack", False)),
                bool(meta.get("cnp", False)),
            ),
            prb_rtt_ps=prb_rtt,
            rx_port=int(meta.get("rx_port", 0)),
            arrival_ps=now_ps,
            int_path=tuple(meta.get("int_path", ())),
        )
