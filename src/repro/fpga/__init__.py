"""FPGA NIC model (paper Section 5).

Reproduces the Alveo-resident half of Marlin: the parser and RX FIFOs,
the CC algorithm module with the Table 3 contract, per-port schedulers
with rescheduling events (Section 5.2), RX/TX packet-frequency control
(Section 5.3), dual-port BRAM with read-modify-write conflict detection,
the Slow Path (Section 5.4), the timeout event generator, the QDMA
fine-grained logger, and the Table 4 resource/cycle cost models.
"""

from repro.fpga.clock import cycles_to_ps, ps_to_cycles
from repro.fpga.fifos import Fifo, FifoStats
from repro.fpga.bram import FlowBram
from repro.fpga.hls import estimate_cycles
from repro.fpga.timers import FrequencyControl
from repro.fpga.logger import QdmaLogger
from repro.fpga.resources import ResourceReport, estimate_resources
from repro.fpga.nic import FlowState, FpgaNic, FpgaNicConfig

__all__ = [
    "cycles_to_ps",
    "ps_to_cycles",
    "Fifo",
    "FifoStats",
    "FlowBram",
    "estimate_cycles",
    "FrequencyControl",
    "QdmaLogger",
    "ResourceReport",
    "estimate_resources",
    "FlowState",
    "FpgaNic",
    "FpgaNicConfig",
]
