"""The Slow Path (paper Section 5.4).

Time-consuming CC logic that only runs once per RTT (DCTCP's alpha
division, Timely's gradient bookkeeping) is moved off the fast path.  The
fast path emits slow-path events; this executor processes them with a
configurable latency budget of hundreds of clock cycles and applies the
results to the flow's slow-path variable block — which the fast path
reads but never writes (simple dual-port BRAM ownership).

The executor also audits the paper's premise: slow-path events for one
flow should arrive at most once per RTT.  If a new event for a flow
lands while its previous one is still executing, the overrun is counted.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.cc.base import CCAlgorithm
from repro.fpga.clock import cycles_to_ps
from repro.sim.engine import Simulator

#: Default slow-path execution budget: "hundreds of clock cycles" per
#: microsecond-scale RTT (Section 5.4).
DEFAULT_SLOW_PATH_CYCLES = 200


class SlowPathExecutor:
    """Deferred executor for per-RTT CC computation."""

    def __init__(
        self,
        sim: Simulator,
        *,
        cycles: int = DEFAULT_SLOW_PATH_CYCLES,
        on_rate_update: Optional[Callable[[int, float], None]] = None,
    ) -> None:
        self.sim = sim
        self.latency_ps = cycles_to_ps(cycles)
        #: Callback ``(flow_id, new_cwnd_or_rate)`` when a slow-path run
        #: returns a window/rate update.
        self.on_rate_update = on_rate_update
        self.events_processed = 0
        self.overruns = 0
        self._busy_until: dict[int, int] = {}

    def submit(
        self,
        algorithm: CCAlgorithm,
        flow_id: int,
        event: Any,
        cust: Any,
        slow: Any,
    ) -> None:
        """Queue one slow-path event for ``flow_id``."""
        now = self.sim.now
        busy_until = self._busy_until.get(flow_id, -1)
        if now < busy_until:
            self.overruns += 1
        start = max(now, busy_until)
        finish = start + self.latency_ps
        self._busy_until[flow_id] = finish
        self.sim.at(finish, self._execute, algorithm, flow_id, event, cust, slow)

    def _execute(
        self,
        algorithm: CCAlgorithm,
        flow_id: int,
        event: Any,
        cust: Any,
        slow: Any,
    ) -> None:
        result = algorithm.slow_path(event, cust, slow)
        self.events_processed += 1
        if result is not None and self.on_rate_update is not None:
            self.on_rate_update(flow_id, result)
