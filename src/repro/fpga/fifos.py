"""Hardware FIFOs: RX FIFOs, scheduling FIFOs, and the priority FIFO.

All are bounded; pushing into a full FIFO drops the entry and counts it.
For RX FIFOs an overflow means lost CC feedback ("incorrect execution of
the CC algorithm", Section 5.3); for scheduling FIFOs the uniqueness
invariant of Section 5.2 (at most one event per flow) guarantees overflow
cannot happen when capacity >= flows per port — a property the tests
check.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Generic, Optional, TypeVar

T = TypeVar("T")


@dataclass
class FifoStats:
    pushed: int = 0
    popped: int = 0
    dropped: int = 0
    max_depth: int = 0


class Fifo(Generic[T]):
    """A bounded FIFO with drop-on-full semantics and counters."""

    def __init__(self, capacity: int, *, name: str = "fifo") -> None:
        if capacity <= 0:
            raise ValueError(f"fifo capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._queue: deque[T] = deque()
        self.stats = FifoStats()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    def push(self, item: T) -> bool:
        """Append ``item``; returns False (counting a drop) when full."""
        if len(self._queue) >= self.capacity:
            self.stats.dropped += 1
            return False
        self._queue.append(item)
        self.stats.pushed += 1
        if len(self._queue) > self.stats.max_depth:
            self.stats.max_depth = len(self._queue)
        return True

    def pop(self) -> Optional[T]:
        if not self._queue:
            return None
        self.stats.popped += 1
        return self._queue.popleft()

    def peek(self) -> Optional[T]:
        """The head entry without removing it."""
        return self._queue[0] if self._queue else None
