"""Hardware FIFOs: RX FIFOs, scheduling FIFOs, and the priority FIFO.

All are bounded; pushing into a full FIFO drops the entry and counts it.
For RX FIFOs an overflow means lost CC feedback ("incorrect execution of
the CC algorithm", Section 5.3); for scheduling FIFOs the uniqueness
invariant of Section 5.2 (at most one event per flow) guarantees overflow
cannot happen when capacity >= flows per port — a property the tests
check.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, Optional, TypeVar

T = TypeVar("T")


class FifoStats:
    """Live view of a FIFO's counters (stored flat on the FIFO — the
    push/pop hot path touches one attribute, not two)."""

    __slots__ = ("_f",)

    def __init__(self, fifo: "Fifo") -> None:
        self._f = fifo

    pushed = property(lambda s: s._f.pushed)
    popped = property(lambda s: s._f.popped)
    dropped = property(lambda s: s._f.dropped)
    max_depth = property(lambda s: s._f.max_depth)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FifoStats(pushed={self.pushed}, popped={self.popped}, "
            f"dropped={self.dropped}, max_depth={self.max_depth})"
        )


class Fifo(Generic[T]):
    """A bounded FIFO with drop-on-full semantics and counters."""

    __slots__ = (
        "capacity", "name", "_queue",
        "pushed", "popped", "dropped", "max_depth", "stats",
    )

    def __init__(self, capacity: int, *, name: str = "fifo") -> None:
        if capacity <= 0:
            raise ValueError(f"fifo capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._queue: deque[T] = deque()
        self.pushed = 0
        self.popped = 0
        self.dropped = 0
        self.max_depth = 0
        self.stats = FifoStats(self)

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    def push(self, item: T) -> bool:
        """Append ``item``; returns False (counting a drop) when full."""
        queue = self._queue
        if len(queue) >= self.capacity:
            self.dropped += 1
            return False
        queue.append(item)
        self.pushed += 1
        if len(queue) > self.max_depth:
            self.max_depth = len(queue)
        return True

    def pop(self) -> Optional[T]:
        if not self._queue:
            return None
        self.popped += 1
        return self._queue.popleft()

    def peek(self) -> Optional[T]:
        """The head entry without removing it."""
        return self._queue[0] if self._queue else None
