"""The timeout event generator (paper Figure 4).

Maintains per-flow, per-timer-ID one-shot timers and feeds TIMEOUT events
into the CC algorithm module.  Timer 0 is the retransmission timeout;
algorithms may define more (DCQCN arms an alpha timer and a rate timer).
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Simulator
from repro.sim.timers import Timeout


class EventGenerator:
    """Per-(flow, timer) timeout management."""

    def __init__(
        self, sim: Simulator, on_timeout: Callable[[int, int], None]
    ) -> None:
        self.sim = sim
        self.on_timeout = on_timeout
        self._timers: dict[tuple[int, int], Timeout] = {}
        self.timeouts_fired = 0

    def arm(self, flow_id: int, timer_id: int, duration_ps: int) -> None:
        """(Re)arm a timer; restarting an armed timer extends its deadline."""
        key = (flow_id, timer_id)
        timer = self._timers.get(key)
        if timer is None:
            timer = Timeout(self.sim, duration_ps, self._make_callback(flow_id, timer_id))
            self._timers[key] = timer
        timer.restart(duration_ps)

    def cancel(self, flow_id: int, timer_id: int) -> None:
        timer = self._timers.get((flow_id, timer_id))
        if timer is not None:
            timer.cancel()

    def cancel_all(self, flow_id: int) -> None:
        for (fid, _), timer in self._timers.items():
            if fid == flow_id:
                timer.cancel()

    def armed(self, flow_id: int, timer_id: int) -> bool:
        timer = self._timers.get((flow_id, timer_id))
        return timer is not None and timer.armed

    def forget_flow(self, flow_id: int) -> None:
        """Cancel and release all timers of a finished flow."""
        for key in [key for key in self._timers if key[0] == flow_id]:
            self._timers[key].cancel()
            del self._timers[key]

    def _make_callback(self, flow_id: int, timer_id: int) -> Callable[[], None]:
        def fire() -> None:
            self.timeouts_fired += 1
            self.on_timeout(flow_id, timer_id)

        return fire
