"""The CC algorithm module runtime (paper Sections 5.1 and 5.4).

Wraps a user :class:`~repro.cc.base.CCAlgorithm` with the hardware
contract of Table 3:

* the customized variable block must fit 64 bytes (checked once per
  algorithm from the dataclass layout: each field is a 32-bit word);
* the fast path may not write slow-path variables (checked, when contract
  checking is on, by snapshotting the slow block around the call) —
  simple dual-port BRAM ownership;
* every invocation charges the algorithm's HLS cycle cost against the
  flow's BRAM RMW window, so read-write conflicts surface exactly as the
  Section 5.3 analysis predicts.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Any

from repro.cc.base import (
    CCAlgorithm,
    CUST_VAR_BYTES,
    IntrinsicInput,
    IntrinsicOutput,
)
from repro.errors import CCModuleError
from repro.fpga.bram import FlowBram
from repro.fpga.clock import cycles_to_ps
from repro.fpga.hls import algorithm_cycles

#: Each dataclass field of the customized block occupies one 32-bit word
#: (the HLS struct packs fields into BRAM words).
FIELD_BYTES = 4


def cust_block_bytes(cust: Any) -> int:
    """Estimated hardware size of a customized variable block."""
    if cust is None:
        return 0
    if dataclasses.is_dataclass(cust):
        return len(dataclasses.fields(cust)) * FIELD_BYTES
    raise CCModuleError(
        f"customized state must be a dataclass, got {type(cust).__name__}"
    )


class CCModuleRuntime:
    """Executes a CC algorithm's fast path under the hardware contract."""

    def __init__(
        self,
        algorithm: CCAlgorithm,
        bram: FlowBram,
        *,
        check_contracts: bool = False,
    ) -> None:
        algorithm.validate()
        self.algorithm = algorithm
        self.bram = bram
        self.check_contracts = check_contracts
        self.cycles = algorithm_cycles(algorithm)
        self.rmw_duration_ps = cycles_to_ps(self.cycles)
        self.invocations = 0
        self._validate_cust_layout()

    def _validate_cust_layout(self) -> None:
        sample = self.algorithm.initial_cust()
        size = cust_block_bytes(sample)
        if size > CUST_VAR_BYTES:
            raise CCModuleError(
                f"{self.algorithm.name}: customized block is {size} B, "
                f"exceeding the {CUST_VAR_BYTES} B budget (Table 3)"
            )

    def invoke(
        self, flow_id: int, intr: IntrinsicInput, cust: Any, slow: Any
    ) -> IntrinsicOutput:
        """Run one fast-path invocation, charging the RMW window."""
        self.bram.begin_rmw(flow_id, intr.tstamp, self.rmw_duration_ps)
        self.invocations += 1
        if not self.check_contracts or slow is None:
            return self.algorithm.on_event(intr, cust, slow)
        before = copy.deepcopy(slow)
        out = self.algorithm.on_event(intr, cust, slow)
        if slow != before:
            raise CCModuleError(
                f"{self.algorithm.name}: fast path wrote slow-path variables "
                "(simple dual-port BRAM ownership violation)"
            )
        return out
