"""Packet-frequency control (paper Section 5.3).

The FPGA and the programmable switch exchange 64 B packets at up to
148.8 Mpps, but each switch test port can only emit DATA at the template
rate (8.127 Mpps at MTU 1518, 11.97 Mpps at MTU 1024).  Two timers keep
the devices in lock-step:

* **TX timers** (egress): one per test port; the per-port scheduler may
  emit at most one SCHE per TX period, so the switch's register queues
  never overflow;
* **RX timers** (ingress): one per RX FIFO (INFO packets are FIFOed by
  the switch port they arrived on); the CC module consumes at most one
  INFO per RX period, giving RMW operations a guaranteed conflict-free
  window.

:class:`FrequencyControl` derives both periods from the template size and
validates the paper's constraints: the RX period must not exceed the TX
period (or RX FIFOs overflow), the CC module's cycle count must fit the
RX period (or RMW conflicts corrupt CC parameters), and the aggregate
SCHE rate across ports must fit the 64 B line rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import (
    FPGA_CYCLE_PS,
    MIN_FRAME_BYTES,
    RATE_100G,
    serialization_time_ps,
)


@dataclass(frozen=True)
class FrequencyControl:
    """Derived RX/TX timer configuration for one tester."""

    template_bytes: int
    n_test_ports: int
    port_rate_bps: int = RATE_100G
    #: Override the RX period; 0 means "same as TX" (the default and the
    #: paper's recommendation).  Setting it above the TX period is the
    #: misconfiguration the ablation bench demonstrates.
    rx_interval_override_ps: int = 0

    @property
    def tx_interval_ps(self) -> int:
        """Per-port SCHE emission period == DATA serialization interval."""
        return serialization_time_ps(self.template_bytes, self.port_rate_bps)

    @property
    def rx_interval_ps(self) -> int:
        if self.rx_interval_override_ps > 0:
            return self.rx_interval_override_ps
        return self.tx_interval_ps

    @property
    def sche_interval_ps(self) -> int:
        """Serialization time of one 64 B SCHE/INFO packet."""
        return serialization_time_ps(MIN_FRAME_BYTES, self.port_rate_bps)

    @property
    def max_rmw_cycles(self) -> int:
        """Largest conflict-free RMW cycle count the RX period allows.

        At MTU 1518 this is the paper's "maximum of 40 clock cycles"; at
        MTU 1024 the CC module "has 27 clock cycles for processing".
        """
        return round(self.rx_interval_ps / FPGA_CYCLE_PS)

    def pps_reduction_factor(self, cc_cycles: int) -> int:
        """How much a flow's per-packet rate must shrink so that a CC
        module needing ``cc_cycles`` stays conflict-free (Section 8:
        Cubic "can still operate properly by reducing the packets-per-
        second per flow")."""
        if cc_cycles <= 0:
            raise ConfigError(f"cc_cycles must be positive, got {cc_cycles}")
        budget = self.max_rmw_cycles
        if budget <= 0:
            raise ConfigError("RX period is below one FPGA cycle")
        return max(1, -(-cc_cycles // budget))

    def validate(self, cc_cycles: int) -> list[str]:
        """Check the Section 5.3 constraints; returns human-readable
        violations (empty list == configuration is safe)."""
        problems: list[str] = []
        if self.rx_interval_ps > self.tx_interval_ps:
            problems.append(
                f"RX period {self.rx_interval_ps} ps exceeds TX period "
                f"{self.tx_interval_ps} ps: RX FIFOs will overflow"
            )
        if cc_cycles > self.max_rmw_cycles:
            problems.append(
                f"CC module needs {cc_cycles} cycles but the RX period only "
                f"allows {self.max_rmw_cycles}: RMW conflicts will corrupt CC "
                f"parameters (reduce per-flow PPS by "
                f"{self.pps_reduction_factor(cc_cycles)}x)"
            )
        if self.n_test_ports * self.sche_interval_ps > self.tx_interval_ps:
            problems.append(
                f"{self.n_test_ports} ports emitting one SCHE per "
                f"{self.tx_interval_ps} ps exceed the 64 B line rate "
                f"({self.sche_interval_ps} ps per SCHE)"
            )
        return problems
