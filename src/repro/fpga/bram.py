"""Per-flow CC parameter storage with RMW-conflict detection.

Section 5.1: CC parameters live in multiple BRAMs, addressed by flow ID,
each writable by exactly one of {CC algorithm module, Slow Path,
scheduler} and read-only to the other two (Simple Dual-Port RAM).

Section 5.3 (Challenge 3): a read-modify-write on a flow's parameters
occupies the pipeline for the CC module's cycle count.  If a second event
for the *same flow* starts its RMW before the first completes, the write
of the first is lost — a read-write conflict.  :class:`FlowBram` tracks
per-flow RMW windows and counts (or, in strict mode, raises on)
conflicts; the RX timers exist to make the count stay zero.
"""

from __future__ import annotations

from typing import Any

from repro.errors import RMWConflictError


class FlowBram:
    """Flow-indexed state store with RMW-window conflict accounting."""

    def __init__(self, *, strict: bool = False) -> None:
        self.strict = strict
        self._store: dict[int, Any] = {}
        #: flow_id -> completion time (ps) of the in-flight RMW.
        self._rmw_end_ps: dict[int, int] = {}
        self.rmw_operations = 0
        self.conflicts = 0
        self.reads = 0
        self.writes = 0

    # -- plain storage --------------------------------------------------------

    def read(self, flow_id: int) -> Any:
        self.reads += 1
        return self._store.get(flow_id)

    def write(self, flow_id: int, value: Any) -> None:
        self.writes += 1
        self._store[flow_id] = value

    def delete(self, flow_id: int) -> None:
        self._store.pop(flow_id, None)
        self._rmw_end_ps.pop(flow_id, None)

    def __contains__(self, flow_id: int) -> bool:
        return flow_id in self._store

    def __len__(self) -> int:
        return len(self._store)

    # -- RMW window tracking ----------------------------------------------------

    def busy_until(self, flow_id: int) -> int:
        """Completion time of the flow's in-flight RMW (0 if idle)."""
        return self._rmw_end_ps.get(flow_id, 0)

    def begin_rmw(self, flow_id: int, now_ps: int, duration_ps: int) -> bool:
        """Record an RMW starting at ``now_ps`` lasting ``duration_ps``.

        Returns True when the operation conflicts with an in-flight RMW on
        the same flow (and raises in strict mode).  Distinct flows never
        conflict — the BRAM is pipelined across addresses.
        """
        self.rmw_operations += 1
        end = self._rmw_end_ps.get(flow_id)
        conflict = end is not None and now_ps < end
        if conflict:
            self.conflicts += 1
            if self.strict:
                raise RMWConflictError(
                    f"read-write conflict on flow {flow_id}: RMW at {now_ps} ps "
                    f"overlaps one completing at {end} ps"
                )
        self._rmw_end_ps[flow_id] = now_ps + duration_ps
        return conflict
