"""Register arrays and register-backed queues (paper Section 4.2).

Tofino registers are fixed-size arrays with single-operation access per
packet.  Marlin builds its per-egress-port metadata queues from a register
array plus three extra registers — ``header``, ``tail``, and ``length`` —
and, because a dequeued entry cannot be re-enqueued by the same packet,
the queue is strictly FIFO with no peeking.

:class:`RegisterQueue` reproduces those semantics, including the overflow
failure mode: enqueueing into a full queue loses the metadata, which the
paper calls a *false packet loss* (a DATA packet congestion control
believes was sent never goes out).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import RegisterQueueOverflow


class RegisterArray:
    """A fixed-size array of register cells (ints or metadata tuples)."""

    def __init__(self, size: int, initial: Any = 0) -> None:
        if size <= 0:
            raise ValueError(f"register array size must be positive, got {size}")
        self.size = size
        self._cells: list[Any] = [initial] * size
        self.reads = 0
        self.writes = 0

    def read(self, index: int) -> Any:
        self.reads += 1
        return self._cells[index % self.size]

    def write(self, index: int, value: Any) -> None:
        self.writes += 1
        self._cells[index % self.size] = value


class RegisterQueue:
    """FIFO of metadata entries built on a register array.

    ``strict`` controls the overflow policy: ``True`` raises
    :class:`RegisterQueueOverflow` (useful in tests), ``False`` drops the
    entry and counts it (the hardware behaviour).
    """

    def __init__(self, capacity: int, *, strict: bool = False) -> None:
        if capacity <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.strict = strict
        self._array = RegisterArray(capacity, initial=None)
        self.header = 0
        self.tail = 0
        self.length = 0
        self.enqueued = 0
        self.dequeued = 0
        self.overflows = 0
        self.max_length = 0

    def __len__(self) -> int:
        return self.length

    @property
    def empty(self) -> bool:
        return self.length == 0

    @property
    def full(self) -> bool:
        return self.length >= self.capacity

    def enqueue(self, entry: Any) -> bool:
        """Append ``entry``; on overflow either raises (strict) or drops."""
        if self.length >= self.capacity:
            self.overflows += 1
            if self.strict:
                raise RegisterQueueOverflow(
                    f"register queue overflow (capacity {self.capacity}): "
                    "a scheduled DATA packet was silently lost"
                )
            return False
        # Inlined ``self._array.write(self.tail, entry)``: head/tail are
        # maintained modulo capacity, so the array's own wraparound is
        # redundant here (the counters still reflect one register op).
        array = self._array
        array.writes += 1
        array._cells[self.tail] = entry
        self.tail = (self.tail + 1) % self.capacity
        self.length += 1
        self.enqueued += 1
        if self.length > self.max_length:
            self.max_length = self.length
        return True

    def dequeue(self) -> Optional[Any]:
        """Pop the head entry, or None when empty.  A popped entry cannot
        be re-enqueued by the same 'packet' — callers get it exactly once."""
        if self.length == 0:
            return None
        # Inlined read+clear (see ``enqueue`` for why the wraparound in
        # ``RegisterArray`` is skipped).
        array = self._array
        header = self.header
        array.reads += 1
        cells = array._cells
        entry = cells[header]
        array.writes += 1
        cells[header] = None
        self.header = (header + 1) % self.capacity
        self.length -= 1
        self.dequeued += 1
        return entry
