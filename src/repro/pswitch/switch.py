"""The assembled Marlin programmable switch (paper Section 4).

A :class:`MarlinSwitch` is a Device with ``n`` test ports (indices
``0..n-1``) facing the tested network and one FPGA-facing port (the last
index) carrying SCHE in / INFO out.  Dispatch per ingress packet:

* SCHE from the FPGA port  -> Module C enqueues DATA metadata;
* DATA from a test port    -> Module A produces ACK/NACK/CNP out the same
  port (the tester is its own receiver, as in the paper's testbed);
* ACK from a test port     -> Module B compresses it to INFO and forwards
  it to the FPGA.

A fixed ``pipeline_latency_ps`` models the Tofino ingress-to-egress
transit for each of these paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.net.device import Device, Port
from repro.net.packet import Packet
from repro.pswitch.module_a import ReceiverLogic, ReceiverMode
from repro.pswitch.module_b import InfoGenerator
from repro.pswitch.module_c import DataGenerator
from repro.pswitch.packets import (
    PACKET_POOL,
    PTYPE_ACK,
    PTYPE_DATA,
    PTYPE_SCHE,
    make_rdata,
)
from repro.pswitch.port_allocation import PortAllocation, allocate_ports
from repro.sim.engine import Simulator
from repro.units import MICROSECOND, NANOSECOND, RATE_100G, ROCE_MTU_BYTES


@dataclass
class MarlinSwitchConfig:
    """Static configuration deployed by the control plane."""

    #: Template (DATA) frame size; controls the amplification factor.
    template_bytes: int = ROCE_MTU_BYTES
    #: Test ports to instantiate; None uses the Section 4.3 optimum.
    n_test_ports: Optional[int] = None
    port_rate_bps: int = RATE_100G
    #: Register-queue depth per egress port.
    queue_capacity: int = 128
    #: Raise on register-queue overflow instead of silently dropping.
    strict_queues: bool = False
    #: Tofino-class ingress-to-egress transit time.
    pipeline_latency_ps: int = 400 * NANOSECOND
    receiver_mode: ReceiverMode = ReceiverMode.TCP
    #: Minimum spacing of CNPs per flow (RoCE mode).
    cnp_interval_ps: int = 50 * MICROSECOND
    #: Receiver reorder-buffer entries per flow (TCP mode).
    ooo_capacity: int = 4096
    #: Request in-band telemetry on generated DATA (HPCC-style CC).
    int_enabled: bool = False
    #: Figure 2 dashed path: truncate received DATA to 64 B and forward
    #: it to the FPGA for receiver logic (costs one extra port on both
    #: devices, Section 4.1).
    receiver_on_fpga: bool = False


class MarlinSwitch(Device):
    """Programmable-switch half of the tester."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[MarlinSwitchConfig] = None,
        *,
        name: str = "marlin-switch",
    ) -> None:
        super().__init__(sim, name)
        self.config = config if config is not None else MarlinSwitchConfig()
        cfg = self.config
        self.allocation: PortAllocation = allocate_ports(
            cfg.template_bytes,
            port_rate_bps=cfg.port_rate_bps,
            requested_test_ports=cfg.n_test_ports,
            receiver_logic_on_fpga=cfg.receiver_on_fpga,
        )
        self.test_ports: list[Port] = [
            self.add_port(rate_bps=cfg.port_rate_bps)
            for _ in range(self.allocation.test_ports)
        ]
        self.fpga_port: Port = self.add_port(rate_bps=cfg.port_rate_bps)
        #: Extra FPGA-facing port carrying RDATA out / ACKs back when
        #: receiver logic runs on the FPGA.
        self.receiver_port: Optional[Port] = (
            self.add_port(rate_bps=cfg.port_rate_bps)
            if cfg.receiver_on_fpga
            else None
        )

        self.data_generator = DataGenerator(
            sim,
            self.test_ports,
            template_bytes=cfg.template_bytes,
            queue_capacity=cfg.queue_capacity,
            strict_queues=cfg.strict_queues,
            int_enabled=cfg.int_enabled,
        )
        self.receiver = ReceiverLogic(
            cfg.receiver_mode,
            ooo_capacity=cfg.ooo_capacity,
            cnp_interval_ps=cfg.cnp_interval_ps,
        )
        self.info_generator = InfoGenerator()
        self.unknown_packets = 0
        #: Hot-path alias: ``receive`` runs once per ingress packet and
        #: the latency is fixed at deploy time.
        self._latency = cfg.pipeline_latency_ps

    @property
    def n_test_ports(self) -> int:
        return len(self.test_ports)

    # -- ingress dispatch -----------------------------------------------------

    def receive(self, packet: Packet, port: Port) -> None:
        latency = self._latency
        if packet.ptype == PTYPE_SCHE:
            if port is not self.fpga_port:
                raise ConfigError(
                    f"SCHE packet arrived on {port.name}, expected the FPGA port"
                )
            self.sim.after(latency, self._handle_sche, packet)
        elif packet.ptype == PTYPE_DATA:
            self.sim.after(latency, self._handle_data, packet, port)
        elif packet.ptype == PTYPE_ACK:
            if port is self.receiver_port:
                # A response computed by the FPGA's receiver logic: send
                # it out the test port its DATA arrived on.
                self.sim.after(latency, self._handle_fpga_response, packet)
            else:
                self.sim.after(latency, self._handle_ack, packet, port)
        else:
            self.unknown_packets += 1

    def _handle_sche(self, packet: Packet) -> None:
        self.data_generator.on_sche(packet)
        # Module C copied the metadata into a register queue; the 64 B
        # SCHE packet's life ends here.
        PACKET_POOL.release(packet)

    def _handle_data(self, packet: Packet, port: Port) -> None:
        if self.receiver_port is not None:
            # Dashed Figure 2 path: truncate and defer to the FPGA.
            self.receiver_port.send(
                make_rdata(packet, port.index, created_ps=self.sim.now)
            )
            return
        for response in self.receiver.on_data(packet, self.sim.now):
            port.send(response)

    def _handle_fpga_response(self, packet: Packet) -> None:
        egress = packet.meta.get("egress_port")
        if egress is None or not 0 <= egress < len(self.test_ports):
            self.unknown_packets += 1
            return
        self.test_ports[egress].send(packet)

    def _handle_ack(self, packet: Packet, port: Port) -> None:
        info = self.info_generator.on_ack(packet, port.index, self.sim.now)
        # Module B rewrote the ACK into the INFO; the ACK's life ends here.
        PACKET_POOL.release(packet)
        self.fpga_port.send(info)

    # -- control-plane readable registers --------------------------------------

    def read_counters(self) -> dict[str, int]:
        """Hardware-register-style counters (Section 3.2 measurement)."""
        return {
            "data_generated": self.data_generator.data_generated,
            "sche_accepted": self.data_generator.sche_accepted,
            "sche_dropped": self.data_generator.sche_dropped,
            "acks_generated": self.receiver.acks_generated,
            "nacks_generated": self.receiver.nacks_generated,
            "cnps_generated": self.receiver.cnps_generated,
            "infos_generated": self.info_generator.infos_generated,
            "receiver_ooo_dropped": self.receiver.ooo_dropped,
        }
