"""Programmable-switch model (paper Section 4).

Reproduces the Tofino-resident half of Marlin: Marlin packet types
(Section 3.1), per-egress-port register queues and TEMP-multicast DATA
generation (Module C), receiver logic / ACK truncation (Module A), the
INFO generator (Module B), pipeline resource accounting, and the
Section 4.3 port-allocation arithmetic.
"""

from repro.pswitch.packets import (
    make_ack,
    make_cnp,
    make_data,
    make_info,
    make_sche,
    make_temp,
    PTYPE_ACK,
    PTYPE_DATA,
    PTYPE_INFO,
    PTYPE_SCHE,
    PTYPE_TEMP,
)
from repro.pswitch.registers import RegisterArray, RegisterQueue
from repro.pswitch.pipeline import PipelineModel, PipelineUsage
from repro.pswitch.port_allocation import PortAllocation, allocate_ports
from repro.pswitch.switch import MarlinSwitch, MarlinSwitchConfig, ReceiverMode

__all__ = [
    "make_ack",
    "make_cnp",
    "make_data",
    "make_info",
    "make_sche",
    "make_temp",
    "PTYPE_ACK",
    "PTYPE_DATA",
    "PTYPE_INFO",
    "PTYPE_SCHE",
    "PTYPE_TEMP",
    "RegisterArray",
    "RegisterQueue",
    "PipelineModel",
    "PipelineUsage",
    "PortAllocation",
    "allocate_ports",
    "MarlinSwitch",
    "MarlinSwitchConfig",
    "ReceiverMode",
]
