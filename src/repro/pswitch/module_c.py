"""Module C: SCHE-driven DATA generation (paper Sections 4.1-4.2).

Each egress test port owns a register queue of DATA metadata.  A SCHE
packet arriving from the FPGA enqueues ``(flow, psn, addresses, ...)``
into the queue of the flow's designated port.  TEMP packets circulate at
line rate on a loopback port and are multicast to every test port; each
multicast copy attempts to dequeue from its port's queue — on success the
TEMP is rewritten into a DATA packet and transmitted, otherwise the
deparser discards it.

Simulating every TEMP copy would add millions of no-op events, so the
model applies the exact event-driven equivalence: a port with a non-empty
queue emits one DATA packet per TEMP arrival, and TEMP arrivals form a
fixed time grid with the DATA serialization interval as spacing.  The
grid (rather than a free-running pacer) preserves the real mechanism's
phase behaviour: a SCHE landing mid-interval waits for the next TEMP.

Queue overflow is the paper's *false packet loss*: the FPGA must pace
SCHE below the per-port DATA rate (Section 5.3) or metadata is lost here.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net import int_telemetry
from repro.net.device import Port
from repro.net.packet import Packet
from repro.pswitch.packets import make_data
from repro.pswitch.registers import RegisterQueue
from repro.sim.engine import Simulator
from repro.units import serialization_time_ps


class DataGenerator:
    """Per-port register queues + TEMP-grid DATA emission."""

    def __init__(
        self,
        sim: Simulator,
        test_ports: list[Port],
        *,
        template_bytes: int,
        queue_capacity: int = 128,
        strict_queues: bool = False,
        int_enabled: bool = False,
    ) -> None:
        if not test_ports:
            raise ValueError("DataGenerator needs at least one test port")
        self.sim = sim
        self.test_ports = test_ports
        self.template_bytes = template_bytes
        #: Generated DATA packets request in-band telemetry when set.
        self.int_enabled = int_enabled
        #: TEMP multicast spacing == DATA serialization interval.
        self.temp_interval_ps = serialization_time_ps(
            template_bytes, test_ports[0].rate_bps
        )
        self.queues = [
            RegisterQueue(queue_capacity, strict=strict_queues) for _ in test_ports
        ]
        self._emit_pending = [False] * len(test_ports)
        #: Optional observer called as ``(port_index, data_packet)`` after
        #: each DATA emission (used by the measurement layer).
        self.on_generate: Optional[Callable[[int, Packet], None]] = None
        self.data_generated = 0
        self.sche_accepted = 0
        self.sche_dropped = 0
        #: Per-flow DATA packets generated (a control-plane readable register).
        self.flow_tx_packets: dict[int, int] = {}

    # -- SCHE ingress ---------------------------------------------------------

    def on_sche(self, sche: Packet) -> bool:
        """Enqueue SCHE metadata; returns False on register-queue overflow."""
        port_index = sche.meta["egress_port"]
        if not 0 <= port_index < len(self.test_ports):
            raise ValueError(f"SCHE targets nonexistent port {port_index}")
        entry = (
            sche.flow_id,
            sche.psn,
            sche.meta["src_addr"],
            sche.meta["dst_addr"],
            sche.meta["frame_bytes"],
            sche.meta["is_rtx"],
        )
        accepted = self.queues[port_index].enqueue(entry)
        if accepted:
            self.sche_accepted += 1
            self._kick(port_index)
        else:
            self.sche_dropped += 1
        return accepted

    # -- TEMP-grid emission -----------------------------------------------------

    def _next_opportunity(self, now_ps: int) -> int:
        """The next TEMP multicast arrival at or after ``now_ps``.

        TEMP packets cycle continuously, so opportunities lie on the grid
        ``k * temp_interval_ps``.
        """
        interval = self.temp_interval_ps
        return -(-now_ps // interval) * interval

    def _kick(self, port_index: int) -> None:
        if self._emit_pending[port_index] or self.queues[port_index].empty:
            return
        self._emit_pending[port_index] = True
        self.sim.at(self._next_opportunity(self.sim.now), self._emit, port_index)

    def _emit(self, port_index: int) -> None:
        self._emit_pending[port_index] = False
        queue = self.queues[port_index]
        entry = queue.dequeue()
        if entry is None:
            return
        now = self.sim.now
        flow_id, psn, src_addr, dst_addr, frame_bytes, is_rtx = entry
        data = make_data(
            flow_id,
            psn,
            src_addr=src_addr,
            dst_addr=dst_addr,
            frame_bytes=frame_bytes,
            tx_tstamp_ps=now,
            is_rtx=is_rtx,
            created_ps=now,
        )
        if self.int_enabled:
            int_telemetry.enable_int(data)
        self.test_ports[port_index].send(data)
        self.data_generated += 1
        self.flow_tx_packets[flow_id] = self.flow_tx_packets.get(flow_id, 0) + 1
        if self.on_generate is not None:
            self.on_generate(port_index, data)
        if queue.length:
            self._emit_pending[port_index] = True
            self.sim.at(now + self.temp_interval_ps, self._emit, port_index)
