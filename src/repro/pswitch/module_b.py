"""Module B: the INFO generator (paper Section 4.1, steps 5-6).

ACK packets returning from the tested network are reassembled into 64 B
INFO packets carrying only the flow and congestion information the CC
algorithm needs (flow ID, PSN, ECN echo, CNP/NACK flags, RTT-probe echo),
then forwarded out the FPGA-facing port.  Both ACK and INFO are 64 B, so
the transform is a header rewrite — no buffering, no rate change.
"""

from __future__ import annotations

from repro.net.packet import Packet
from repro.pswitch.packets import make_info


class InfoGenerator:
    """Stateless ACK -> INFO transform with counters."""

    def __init__(self) -> None:
        self.acks_processed = 0
        self.infos_generated = 0

    def on_ack(self, ack: Packet, rx_port: int, now_ps: int) -> Packet:
        """Compress ``ack`` (which arrived on test port ``rx_port``) into
        an INFO packet addressed to the FPGA NIC."""
        self.acks_processed += 1
        info = make_info(ack, rx_port, created_ps=now_ps)
        self.infos_generated += 1
        return info
