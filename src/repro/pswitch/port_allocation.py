"""Port allocation within one switch pipeline (paper Section 4.3).

A Tofino pipeline has 16 x 100 Gbps ports.  Marlin reserves:

* 1 port whose ingress receives SCHE packets from the FPGA and whose
  egress sends INFO packets back;
* 1 port on the egress pipeline performing the SCHE enqueue operation;
* 1 loopback port cycling TEMP packets;
* optionally 1 port forwarding truncated DATA to the FPGA when receiver
  logic is too complex for the switch (the dashed path in Figure 2);

leaving up to 13 (or 12) ports for test traffic.  The number of test
ports that one 100 Gbps SCHE stream can actually feed is the
amplification factor ``floor(sche_pps / data_pps)`` — 12 at MTU 1024
(1.2 Tbps), 13 once the MTU exceeds 1072 bytes (1.3 Tbps), and 18 in the
unconstrained ideal at MTU 1518 (1.8 Tbps, more than a pipeline holds).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PortAllocationError
from repro.pswitch.pipeline import MAX_PORTS_PER_PIPELINE
from repro.units import MIN_FRAME_BYTES, RATE_100G, line_rate_pps


@dataclass(frozen=True)
class PortAllocation:
    """A validated port layout for one pipeline."""

    mtu_bytes: int
    port_rate_bps: int
    #: Ports carrying test DATA/ACK traffic.
    test_ports: int
    #: floor(SCHE pps / per-port DATA pps): how many test ports one FPGA
    #: port can saturate.
    amplification_factor: int
    #: Reserved ports: SCHE/INFO, enqueue, loopback (+ receiver logic).
    sche_info_ports: int
    enqueue_ports: int
    loopback_ports: int
    receiver_logic_ports: int

    @property
    def reserved_ports(self) -> int:
        return (
            self.sche_info_ports
            + self.enqueue_ports
            + self.loopback_ports
            + self.receiver_logic_ports
        )

    @property
    def total_ports(self) -> int:
        return self.test_ports + self.reserved_ports

    @property
    def data_throughput_bps(self) -> int:
        """Aggregate generated DATA throughput (the headline number)."""
        return self.test_ports * self.port_rate_bps

    @property
    def data_pps_per_port(self) -> float:
        return line_rate_pps(self.mtu_bytes, self.port_rate_bps)

    @property
    def sche_pps(self) -> float:
        return line_rate_pps(MIN_FRAME_BYTES, self.port_rate_bps)


def amplification_factor(mtu_bytes: int, port_rate_bps: int = RATE_100G) -> int:
    """floor(SCHE pps / DATA pps): test ports one SCHE stream can feed."""
    sche_pps = line_rate_pps(MIN_FRAME_BYTES, port_rate_bps)
    data_pps = line_rate_pps(mtu_bytes, port_rate_bps)
    return int(sche_pps // data_pps)


def allocate_ports(
    mtu_bytes: int,
    *,
    port_rate_bps: int = RATE_100G,
    pipeline_ports: int = MAX_PORTS_PER_PIPELINE,
    receiver_logic_on_fpga: bool = False,
    requested_test_ports: int | None = None,
) -> PortAllocation:
    """Compute the optimal (or a requested) port layout for one pipeline.

    Raises :class:`PortAllocationError` when the layout does not fit.
    """
    if mtu_bytes <= MIN_FRAME_BYTES:
        raise PortAllocationError(
            f"MTU must exceed the 64 B control-packet size, got {mtu_bytes}"
        )
    reserved = 3 + (1 if receiver_logic_on_fpga else 0)
    available = pipeline_ports - reserved
    if available <= 0:
        raise PortAllocationError(
            f"pipeline with {pipeline_ports} ports cannot fit {reserved} reserved ports"
        )
    factor = amplification_factor(mtu_bytes, port_rate_bps)
    if factor < 1:
        raise PortAllocationError(
            f"one SCHE port cannot feed any test port at MTU {mtu_bytes}"
        )
    test_ports = min(factor, available)
    if requested_test_ports is not None:
        if requested_test_ports < 1:
            raise PortAllocationError("requested_test_ports must be >= 1")
        if requested_test_ports > available:
            raise PortAllocationError(
                f"requested {requested_test_ports} test ports, only {available} "
                f"available after reserving {reserved}"
            )
        if requested_test_ports > factor:
            raise PortAllocationError(
                f"requested {requested_test_ports} test ports, but one SCHE "
                f"stream can only feed {factor} at MTU {mtu_bytes}"
            )
        test_ports = requested_test_ports
    return PortAllocation(
        mtu_bytes=mtu_bytes,
        port_rate_bps=port_rate_bps,
        test_ports=test_ports,
        amplification_factor=factor,
        sche_info_ports=1,
        enqueue_ports=1,
        loopback_ports=1,
        receiver_logic_ports=1 if receiver_logic_on_fpga else 0,
    )
