"""Constructors for Marlin's five packet types (paper Section 3.1).

* **TEMP** — template packets cycling at line rate on the loopback port;
* **DATA** — MTU-sized test traffic, transformed from multicast TEMPs
  using metadata dequeued from a register queue;
* **ACK** — 64 B acknowledgements produced by truncating DATA packets;
* **INFO** — 64 B flow-state digests of ACKs, sent to the FPGA;
* **SCHE** — 64 B scheduling instructions from the FPGA.

All carry their protocol fields in ``Packet.meta``; the 64-byte types are
size-checked so the Section 3.3 amplification arithmetic stays honest.

The 64 B control types (everything but DATA) come from
:data:`repro.net.packet.PACKET_POOL` — they dominate allocation in the
amplification path and have a single well-defined consumer each, which
releases them back (see ``docs/PERFORMANCE.md``).  The constructors fill
``meta`` in place so a pool hit allocates no objects at all.
"""

from __future__ import annotations

from repro.net import int_telemetry
from repro.net.packet import ECT, PACKET_POOL, Packet
from repro.units import MIN_FRAME_BYTES

PTYPE_TEMP = "TEMP"
PTYPE_DATA = "DATA"
PTYPE_ACK = "ACK"
PTYPE_INFO = "INFO"
PTYPE_SCHE = "SCHE"
#: Truncated DATA forwarded to the FPGA when receiver logic is too
#: complex for the switch (the dashed path in Figure 2).
PTYPE_RDATA = "RDATA"

#: Addresses below this are reserved for tester-internal devices.
INTERNAL_ADDR = 0

#: The pool backing the 64 B control-packet constructors below; consumers
#: call ``PACKET_POOL.release(pkt)`` when done (re-exported for them).
__all__ = [
    "PTYPE_TEMP",
    "PTYPE_DATA",
    "PTYPE_ACK",
    "PTYPE_INFO",
    "PTYPE_SCHE",
    "PTYPE_RDATA",
    "INTERNAL_ADDR",
    "PACKET_POOL",
    "make_sche",
    "make_temp",
    "make_data",
    "make_ack",
    "make_cnp",
    "make_rdata",
    "make_info",
]


def make_sche(
    flow_id: int,
    psn: int,
    egress_port: int,
    *,
    src_addr: int,
    dst_addr: int,
    frame_bytes: int,
    is_rtx: bool = False,
    created_ps: int = 0,
) -> Packet:
    """A 64 B scheduling packet: FPGA -> programmable switch."""
    sche = PACKET_POOL.acquire(
        PTYPE_SCHE,
        INTERNAL_ADDR,
        INTERNAL_ADDR,
        MIN_FRAME_BYTES,
        flow_id=flow_id,
        psn=psn,
        created_ps=created_ps,
    )
    meta = sche.meta
    meta["egress_port"] = egress_port
    meta["src_addr"] = src_addr
    meta["dst_addr"] = dst_addr
    meta["frame_bytes"] = frame_bytes
    meta["is_rtx"] = is_rtx
    return sche


def make_temp(frame_bytes: int, *, created_ps: int = 0) -> Packet:
    """A template packet; its length determines generated DATA length."""
    return PACKET_POOL.acquire(
        PTYPE_TEMP, INTERNAL_ADDR, INTERNAL_ADDR, frame_bytes, created_ps=created_ps
    )


def make_data(
    flow_id: int,
    psn: int,
    *,
    src_addr: int,
    dst_addr: int,
    frame_bytes: int,
    tx_tstamp_ps: int,
    is_rtx: bool = False,
    created_ps: int = 0,
) -> Packet:
    """An MTU-sized test packet, ECN-capable (ECT).  Not pooled: DATA is
    the one type whose lifetime crosses the tested network."""
    return Packet(
        PTYPE_DATA,
        src_addr,
        dst_addr,
        frame_bytes,
        flow_id=flow_id,
        psn=psn,
        ecn=ECT,
        created_ps=created_ps,
        meta={"tx_tstamp_ps": tx_tstamp_ps, "is_rtx": is_rtx},
    )


def make_ack(
    data: Packet,
    ack_psn: int,
    *,
    nack: bool = False,
    created_ps: int = 0,
) -> Packet:
    """Truncate a DATA packet into a 64 B ACK (Module A, step 4).

    Source/destination are swapped; the ACK echoes the DATA packet's CE
    mark, transmit timestamp (for RTT probing), and INT path if present.
    """
    ack = PACKET_POOL.acquire(
        PTYPE_ACK,
        data.dst,
        data.src,
        MIN_FRAME_BYTES,
        flow_id=data.flow_id,
        psn=ack_psn,
        ecn_echo=data.ce_marked,
        created_ps=created_ps,
    )
    meta = ack.meta
    meta["echo_tstamp_ps"] = data.meta.get("tx_tstamp_ps", -1)
    meta["nack"] = nack
    meta["cnp"] = False
    int_telemetry.echo(data, ack)
    return ack


def make_cnp(data: Packet, *, created_ps: int = 0) -> Packet:
    """A DCQCN congestion notification packet, triggered by a CE mark."""
    cnp = PACKET_POOL.acquire(
        PTYPE_ACK,
        data.dst,
        data.src,
        MIN_FRAME_BYTES,
        flow_id=data.flow_id,
        psn=-1,
        ecn_echo=True,
        created_ps=created_ps,
    )
    meta = cnp.meta
    meta["echo_tstamp_ps"] = -1
    meta["nack"] = False
    meta["cnp"] = True
    return cnp


def make_rdata(data: Packet, rx_port: int, *, created_ps: int = 0) -> Packet:
    """Truncate a DATA packet to 64 B for FPGA-side receiver logic
    (Figure 2's dashed path; Section 4.1).

    Keeps exactly what the receiver logic needs: flow ID, PSN, addresses,
    the CE mark, the transmit-timestamp echo, the INT path, and the test
    port the DATA arrived on (so the eventual ACK leaves the same port).
    """
    rdata = PACKET_POOL.acquire(
        PTYPE_RDATA,
        data.src,
        data.dst,
        MIN_FRAME_BYTES,
        flow_id=data.flow_id,
        psn=data.psn,
        ecn=data.ecn,
        created_ps=created_ps,
    )
    meta = rdata.meta
    meta["rx_port"] = rx_port
    meta["tx_tstamp_ps"] = data.meta.get("tx_tstamp_ps", -1)
    meta["is_rtx"] = bool(data.meta.get("is_rtx", False))
    int_telemetry.echo(data, rdata)
    return rdata


def make_info(ack: Packet, rx_port: int, *, created_ps: int = 0) -> Packet:
    """Reassemble an ACK into a 64 B INFO packet (Module B, step 6).

    ``rx_port`` records which switch test port the ACK arrived on; the
    FPGA uses it to pick the RX FIFO (Section 5.3, ingress direction).
    """
    info = PACKET_POOL.acquire(
        PTYPE_INFO,
        INTERNAL_ADDR,
        INTERNAL_ADDR,
        MIN_FRAME_BYTES,
        flow_id=ack.flow_id,
        psn=ack.psn,
        ecn_echo=ack.ecn_echo,
        created_ps=created_ps,
    )
    meta = info.meta
    meta["rx_port"] = rx_port
    meta["echo_tstamp_ps"] = ack.meta.get("echo_tstamp_ps", -1)
    meta["nack"] = bool(ack.meta.get("nack", False))
    meta["cnp"] = bool(ack.meta.get("cnp", False))
    int_telemetry.echo(ack, info)
    return info
