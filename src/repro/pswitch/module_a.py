"""Module A: receiver logic (paper Section 4.1, steps 3-4).

Processes DATA packets arriving from the tested network and produces 64 B
ACK packets by truncation.  Two receiver behaviours are supported:

* **TCP mode** — cumulative ACKs with a bounded out-of-order buffer.
  (Plain cumulative ACKs need only one PSN register per flow and fit the
  switch; the reorder buffer corresponds to the paper's dashed Figure 2
  path where complex receiver logic runs on the FPGA.)  Out-of-order
  arrivals trigger duplicate ACKs, which window algorithms count.
* **RoCE mode** — go-back-N: in-order packets are ACKed, out-of-order
  packets are dropped and NACKed (once per gap), and CE-marked packets
  additionally trigger CNPs, rate-limited per flow (DCQCN's notification
  point).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.net.packet import Packet
from repro.pswitch.packets import make_ack, make_cnp
from repro.units import MICROSECOND


class ReceiverMode(enum.Enum):
    TCP = "tcp"
    ROCE = "roce"


@dataclass
class ReceiverFlowState:
    """Per-flow receiver registers."""

    expected_psn: int = 0
    #: Buffered out-of-order PSNs (TCP mode only).
    ooo: set[int] = field(default_factory=set)
    #: Last CNP emission time (RoCE mode), ps.
    last_cnp_ps: int = -(1 << 62)
    #: Gap already NACKed (avoid NACK storms while the hole persists).
    nacked_expected: int = -1
    received_packets: int = 0
    received_bytes: int = 0


class ReceiverLogic:
    """Module A: DATA in, ACK/NACK/CNP out."""

    def __init__(
        self,
        mode: ReceiverMode = ReceiverMode.TCP,
        *,
        ooo_capacity: int = 4096,
        cnp_interval_ps: int = 50 * MICROSECOND,
    ) -> None:
        self.mode = mode
        self.ooo_capacity = ooo_capacity
        self.cnp_interval_ps = cnp_interval_ps
        self.flows: dict[int, ReceiverFlowState] = {}
        self.data_received = 0
        self.acks_generated = 0
        self.nacks_generated = 0
        self.cnps_generated = 0
        self.ooo_dropped = 0

    def flow_state(self, flow_id: int) -> ReceiverFlowState:
        state = self.flows.get(flow_id)
        if state is None:
            state = ReceiverFlowState()
            self.flows[flow_id] = state
        return state

    def forget_flow(self, flow_id: int) -> None:
        """Release receiver registers for a completed flow."""
        self.flows.pop(flow_id, None)

    def on_data(self, data: Packet, now_ps: int) -> list[Packet]:
        """Process one DATA packet; returns the response packets."""
        self.data_received += 1
        state = self.flow_state(data.flow_id)
        state.received_packets += 1
        state.received_bytes += data.size_bytes
        if self.mode is ReceiverMode.TCP:
            return self._on_data_tcp(data, state, now_ps)
        return self._on_data_roce(data, state, now_ps)

    # -- TCP: cumulative ACK + reorder buffer ---------------------------------

    def _on_data_tcp(
        self, data: Packet, state: ReceiverFlowState, now_ps: int
    ) -> list[Packet]:
        if data.psn == state.expected_psn:
            state.expected_psn += 1
            while state.expected_psn in state.ooo:
                state.ooo.discard(state.expected_psn)
                state.expected_psn += 1
            state.nacked_expected = -1
        elif data.psn > state.expected_psn:
            if len(state.ooo) < self.ooo_capacity:
                state.ooo.add(data.psn)
            else:
                self.ooo_dropped += 1
        # psn < expected: a retransmitted duplicate — re-ACK cumulatively.
        ack = make_ack(data, state.expected_psn, created_ps=now_ps)
        self.acks_generated += 1
        return [ack]

    # -- RoCE: go-back-N + CNP -------------------------------------------------

    def _on_data_roce(
        self, data: Packet, state: ReceiverFlowState, now_ps: int
    ) -> list[Packet]:
        responses: list[Packet] = []
        if data.ce_marked and now_ps - state.last_cnp_ps >= self.cnp_interval_ps:
            state.last_cnp_ps = now_ps
            responses.append(make_cnp(data, created_ps=now_ps))
            self.cnps_generated += 1
        if data.psn == state.expected_psn:
            state.expected_psn += 1
            state.nacked_expected = -1
            responses.append(make_ack(data, state.expected_psn, created_ps=now_ps))
            self.acks_generated += 1
        elif data.psn > state.expected_psn:
            self.ooo_dropped += 1
            if state.nacked_expected != state.expected_psn:
                state.nacked_expected = state.expected_psn
                responses.append(
                    make_ack(data, state.expected_psn, nack=True, created_ps=now_ps)
                )
                self.nacks_generated += 1
        else:
            # Duplicate of an already-delivered packet: re-ACK.
            responses.append(make_ack(data, state.expected_psn, created_ps=now_ps))
            self.acks_generated += 1
        return responses
