"""Pipeline resource accounting for the Tofino-class switch ASIC.

Section 2.1 and Section 6 pin down the constraints we model:

* 12 match-action stages per pipeline; Marlin's data plane uses 4;
* per-pipeline register (SRAM) budget — the implementation reports
  58/960 SRAM blocks and 3/288 TCAM blocks;
* at most 16 x 100 Gbps ports per pipeline;
* registers are pipeline-local (not shared across pipelines), which is
  why Marlin allocates ports per pipeline (Section 4.3);
* no conditional loops, multiplication, or division in the data plane —
  enforced here as a declarative capability list used by the Table 1/2
  capability analysis.

The model is declarative: components register their usage and the
pipeline validates the totals, raising on over-budget configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ResourceExceededError

#: Tofino-class per-pipeline budgets.
MAX_STAGES = 12
MAX_SRAM_BLOCKS = 960
MAX_TCAM_BLOCKS = 288
MAX_PORTS_PER_PIPELINE = 16
#: One SRAM block holds 128 x 128-bit words (16 KB) on Tofino.
SRAM_BLOCK_BYTES = 16 * 1024

#: Data-plane instruction capabilities (Section 2.1).  Used by the
#: capability matrix: these are the reasons CC cannot run on the switch.
SUPPORTED_DATAPLANE_OPS = frozenset(
    {"add", "sub", "shift", "compare", "table_lookup", "register_single_op"}
)
UNSUPPORTED_DATAPLANE_OPS = frozenset(
    {"mul", "div", "loop", "register_rmw", "conditional_branch_chain"}
)


@dataclass
class PipelineUsage:
    """Resources consumed by one logical component of the P4 program."""

    name: str
    stages: int = 0
    sram_blocks: int = 0
    tcam_blocks: int = 0


@dataclass
class PipelineModel:
    """One switch pipeline with budget validation."""

    components: list[PipelineUsage] = field(default_factory=list)

    def add(self, usage: PipelineUsage) -> None:
        self.components.append(usage)
        self.validate()

    @property
    def stages_used(self) -> int:
        # Components share stages when they fit side by side; the paper's
        # program spans 4 stages total, so we take the max stage depth.
        return max((c.stages for c in self.components), default=0)

    @property
    def sram_blocks_used(self) -> int:
        return sum(c.sram_blocks for c in self.components)

    @property
    def tcam_blocks_used(self) -> int:
        return sum(c.tcam_blocks for c in self.components)

    def validate(self) -> None:
        if self.stages_used > MAX_STAGES:
            raise ResourceExceededError(
                f"pipeline needs {self.stages_used} stages, budget {MAX_STAGES}"
            )
        if self.sram_blocks_used > MAX_SRAM_BLOCKS:
            raise ResourceExceededError(
                f"pipeline needs {self.sram_blocks_used} SRAM blocks, "
                f"budget {MAX_SRAM_BLOCKS}"
            )
        if self.tcam_blocks_used > MAX_TCAM_BLOCKS:
            raise ResourceExceededError(
                f"pipeline needs {self.tcam_blocks_used} TCAM blocks, "
                f"budget {MAX_TCAM_BLOCKS}"
            )


def marlin_dataplane_usage(
    n_test_ports: int,
    queue_capacity: int,
    n_flows: int,
    *,
    metadata_entry_bytes: int = 16,
    flow_state_bytes: int = 16,
) -> PipelineModel:
    """Estimate the Marlin P4 program's pipeline usage.

    Register queues: one per test port, ``queue_capacity`` entries of
    ``metadata_entry_bytes``.  Receiver logic: per-flow expected-PSN and
    counter registers.  The result approximates the paper's reported
    58/960 SRAM and 4/12 stages for the 12-port, 65,536-flow build.
    """
    pipeline = PipelineModel()
    queue_bytes = n_test_ports * queue_capacity * metadata_entry_bytes
    queue_blocks = -(-queue_bytes // SRAM_BLOCK_BYTES) + n_test_ports  # +head/tail/len
    pipeline.add(
        PipelineUsage("module_c_queues", stages=2, sram_blocks=queue_blocks)
    )
    recv_bytes = n_flows * flow_state_bytes
    recv_blocks = -(-recv_bytes // SRAM_BLOCK_BYTES)
    pipeline.add(
        PipelineUsage("module_a_receiver", stages=3, sram_blocks=recv_blocks)
    )
    pipeline.add(PipelineUsage("module_b_info", stages=2, sram_blocks=2, tcam_blocks=1))
    pipeline.add(PipelineUsage("forwarding", stages=4, sram_blocks=4, tcam_blocks=2))
    return pipeline
