"""Test configuration (paper Section 3.2).

Operators configure a test through the control-plane program: CC
algorithm selection and parameters, template (packet) size, test ports,
flows per port, and measurement options.  :class:`TestConfig` is that
configuration object; :class:`~repro.core.control_plane.ControlPlane`
"deploys" it by constructing the switch and FPGA models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ConfigError
from repro.units import MICROSECOND, MIN_FRAME_BYTES, NANOSECOND, RATE_100G, ROCE_MTU_BYTES


@dataclass
class TestConfig:
    """Everything the operator chooses before a test run."""

    #: Not a pytest test class, despite the name.
    __test__ = False

    #: Registered CC algorithm name (Section 3.2: "selecting the CC
    #: algorithm" flashes the matching firmware).
    cc_algorithm: str = "dctcp"
    #: Constructor parameters for the algorithm ("setting CC parameters").
    cc_params: dict[str, Any] = field(default_factory=dict)
    #: Template/DATA frame size; drives the amplification factor.
    template_bytes: int = ROCE_MTU_BYTES
    #: Test ports to use; None selects the Section 4.3 optimum.
    n_test_ports: Optional[int] = None
    port_rate_bps: int = RATE_100G
    #: Concurrent flows per test port.
    flows_per_port: int = 1
    #: Receiver behaviour: "auto" picks TCP for window algorithms and
    #: RoCE (go-back-N + CNP) for rate algorithms.
    receiver_mode: str = "auto"
    #: Per-flow CNP pacing at the notification point (RoCE mode).
    cnp_interval_ps: int = 50 * MICROSECOND
    #: Switch register-queue depth per egress port.
    queue_capacity: int = 128
    #: Tofino-class pipeline transit latency.
    pipeline_latency_ps: int = 400 * NANOSECOND
    #: FPGA <-> switch cable propagation delay.
    internal_link_delay_ps: int = 50 * NANOSECOND
    #: Record every window/rate change via the QDMA logger.
    trace_cc: bool = False
    #: Stamp in-band telemetry on DATA and echo it to the CC module
    #: (needed by INT-based algorithms like HPCC).
    int_enabled: bool = False
    #: Raise on internal losses/conflicts instead of counting them.
    strict: bool = False
    #: Ablation switch: bypass the FPGA RX timers (Section 5.3).
    disable_rx_timer: bool = False
    #: Figure 2 dashed path: run receiver logic on the FPGA instead of
    #: the switch (one extra port on each device; Section 4.1).
    receiver_logic_on_fpga: bool = False
    #: RX timer period override, ps (0 = match the TX timer).
    rx_interval_override_ps: int = 0
    #: Record probed RTT samples at the FPGA (latency analysis).
    sample_rtt: bool = False
    #: RNG seed for workloads.
    seed: int = 0

    def to_dict(self) -> dict[str, Any]:
        """Serializable form (for config files and the CLI)."""
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TestConfig":
        """Build a config from a dict, rejecting unknown keys."""
        from dataclasses import fields

        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(f"unknown TestConfig keys: {sorted(unknown)}")
        config = cls(**payload)
        config.validate()
        return config

    def validate(self) -> None:
        if self.template_bytes <= MIN_FRAME_BYTES:
            raise ConfigError(
                f"template must exceed {MIN_FRAME_BYTES} B, got {self.template_bytes}"
            )
        if self.flows_per_port < 1:
            raise ConfigError(
                f"flows_per_port must be >= 1, got {self.flows_per_port}"
            )
        if self.receiver_mode not in ("auto", "tcp", "roce"):
            raise ConfigError(
                f"receiver_mode must be auto/tcp/roce, got {self.receiver_mode!r}"
            )
        if self.port_rate_bps <= 0:
            raise ConfigError(f"port rate must be positive, got {self.port_rate_bps}")
