"""Multi-pipeline scaling (paper Sections 4.3 and 6).

Tofino registers are pipeline-local, so Marlin "allocates ports on a
per-pipeline basis": each pipeline is an independent amplification
domain fed by its own 100 Gbps FPGA port.  The paper's hardware — a
32 x 100 Gbps switch with 2 pipelines and an Alveo U280 with two 100 G
ports — therefore scales to 2 x 1.2 Tbps = 2.4 Tbps per switch+FPGA
pair at MTU 1024.

:class:`MultiPipelineTester` instantiates one :class:`MarlinTester` per
pipeline and aggregates the operator surface (flows, counters, FCTs);
:func:`scaling_table` computes the throughput scaling law.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.amplification import max_generated_rate_bps
from repro.core.config import TestConfig
from repro.core.tester import MarlinTester
from repro.errors import ConfigError
from repro.fpga.flow import FlowState
from repro.measure.fct import FctCollector
from repro.sim.engine import Simulator
from repro.units import RATE_100G

#: Pipelines per switch ASIC (the paper's Tofino: 2) and 100 G ports per
#: FPGA card (Alveo U280: 2) — conveniently matched.
PIPELINES_PER_SWITCH = 2
FPGA_PORTS_PER_CARD = 2


@dataclass(frozen=True)
class ScalingRow:
    pipelines: int
    fpga_cards: int
    test_ports: int
    throughput_bps: int


def scaling_row(
    pipelines: int,
    mtu_bytes: int = 1024,
    *,
    port_rate_bps: int = RATE_100G,
) -> ScalingRow:
    """One pipeline count's aggregate throughput (a pure top-level task
    so scaling campaigns shard through :class:`~repro.parallel.CampaignRunner`)."""
    per_pipeline = max_generated_rate_bps(mtu_bytes, port_rate_bps=port_rate_bps)
    return ScalingRow(
        pipelines=pipelines,
        fpga_cards=-(-pipelines // FPGA_PORTS_PER_CARD),
        test_ports=pipelines * (per_pipeline // port_rate_bps),
        throughput_bps=pipelines * per_pipeline,
    )


def scaling_table(
    mtu_bytes: int = 1024,
    max_pipelines: int = 4,
    *,
    port_rate_bps: int = RATE_100G,
    workers: int = 1,
) -> list[ScalingRow]:
    """Aggregate throughput vs pipeline count (each pipeline needs one
    FPGA port; one card drives two pipelines).  Rows are independent, so
    large tables (``workers > 1``) shard across a process pool like any
    other campaign."""
    if workers > 1:
        from repro.parallel import CampaignRunner

        with CampaignRunner(workers=workers) as runner:
            campaign = runner.run(
                scaling_row,
                [
                    {
                        "pipelines": pipelines,
                        "mtu_bytes": mtu_bytes,
                        "port_rate_bps": port_rate_bps,
                    }
                    for pipelines in range(1, max_pipelines + 1)
                ],
            )
        return campaign.values()
    return [
        scaling_row(pipelines, mtu_bytes, port_rate_bps=port_rate_bps)
        for pipelines in range(1, max_pipelines + 1)
    ]


class MultiPipelineTester:
    """k independent pipelines presented as one tester."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[TestConfig] = None,
        *,
        n_pipelines: int = PIPELINES_PER_SWITCH,
        name: str = "marlin-multi",
    ) -> None:
        if n_pipelines < 1:
            raise ConfigError(f"need at least one pipeline, got {n_pipelines}")
        self.sim = sim
        self.config = config if config is not None else TestConfig()
        self.pipelines: list[MarlinTester] = [
            MarlinTester(sim, self.config, name=f"{name}-p{i}")
            for i in range(n_pipelines)
        ]
        self.fct = FctCollector()
        for tester in self.pipelines:
            tester.nic.on_complete(self._record)

    def _record(self, flow: FlowState) -> None:
        self.fct.add(
            flow.flow_id,
            flow.size_packets,
            flow.size_packets * flow.frame_bytes,
            flow.start_ps,
            flow.finish_ps,
        )

    @property
    def n_pipelines(self) -> int:
        return len(self.pipelines)

    @property
    def total_test_ports(self) -> int:
        return sum(tester.n_test_ports for tester in self.pipelines)

    @property
    def aggregate_capacity_bps(self) -> int:
        return sum(
            tester.switch.allocation.data_throughput_bps
            for tester in self.pipelines
        )

    def pipeline(self, index: int) -> MarlinTester:
        try:
            return self.pipelines[index]
        except IndexError:
            raise ConfigError(
                f"no pipeline {index}; tester has {self.n_pipelines}"
            ) from None

    def start_flow(
        self,
        *,
        pipeline: int,
        port_index: int,
        dst_port_index: Optional[int] = None,
        dst_addr: Optional[int] = None,
        size_packets: int,
        start_at_ps: Optional[int] = None,
    ) -> FlowState:
        """Start a flow on one pipeline's port (flows never span
        pipelines — registers are pipeline-local)."""
        return self.pipeline(pipeline).start_flow(
            port_index=port_index,
            dst_port_index=dst_port_index,
            dst_addr=dst_addr,
            size_packets=size_packets,
            start_at_ps=start_at_ps,
        )

    def wire_fabrics(self, **fabric_kwargs) -> list:
        """Give every pipeline its own loopback fabric (pipelines are
        independent amplification domains)."""
        from repro.core.control_plane import wire_tester_fabric

        fabrics = []
        for index, tester in enumerate(self.pipelines):
            _, fabric = wire_tester_fabric(
                self.sim, tester, name=f"fabric-p{index}", **fabric_kwargs
            )
            fabrics.append(fabric)
        return fabrics

    def read_counters(self) -> dict[str, int]:
        """Summed hardware counters across pipelines."""
        totals: dict[str, int] = {}
        for tester in self.pipelines:
            for key, value in tester.read_counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals
