"""Throughput-amplification arithmetic (paper Sections 3.3 and 4.3).

The FPGA sends SCHE packets at the 64 B line rate (148.8 Mpps on
100 Gbps); each SCHE makes the switch emit one template-sized DATA packet
on some test port, and a single port emits DATA at the template's line
rate (11.97 Mpps at MTU 1024, 8.127 Mpps at 1518).  The amplification
factor is therefore ``floor(sche_pps / data_pps)`` ports' worth of
traffic: 12 ports = 1.2 Tbps at MTU 1024, 18 ports = 1.8 Tbps at 1518 in
the unconstrained ideal — but one Tofino pipeline holds 16 ports, three
of which Marlin reserves, so the pipeline caps the real figure at
13 x 100 Gbps = 1.3 Tbps for any MTU above 1072 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pswitch.port_allocation import allocate_ports, amplification_factor
from repro.units import MIN_FRAME_BYTES, RATE_100G, line_rate_pps


@dataclass(frozen=True)
class AmplificationReport:
    """Every figure in the Section 3.3 arithmetic, for one MTU."""

    mtu_bytes: int
    port_rate_bps: int
    sche_pps: float
    data_pps_per_port: float
    amplification_factor: int
    #: Ideal generated rate ignoring the pipeline's port budget.
    ideal_rate_bps: int
    #: Rate achievable within one pipeline after reserving control ports.
    pipeline_rate_bps: int
    test_ports_in_pipeline: int


def max_generated_rate_bps(
    mtu_bytes: int, *, port_rate_bps: int = RATE_100G, pipeline_limited: bool = True
) -> int:
    """Peak DATA rate one FPGA port can drive, optionally pipeline-capped."""
    factor = amplification_factor(mtu_bytes, port_rate_bps)
    if pipeline_limited:
        allocation = allocate_ports(mtu_bytes, port_rate_bps=port_rate_bps)
        return allocation.data_throughput_bps
    return factor * port_rate_bps


def amplification_report(
    mtu_bytes: int, *, port_rate_bps: int = RATE_100G
) -> AmplificationReport:
    """Compute the full amplification breakdown for one MTU."""
    factor = amplification_factor(mtu_bytes, port_rate_bps)
    allocation = allocate_ports(mtu_bytes, port_rate_bps=port_rate_bps)
    return AmplificationReport(
        mtu_bytes=mtu_bytes,
        port_rate_bps=port_rate_bps,
        sche_pps=line_rate_pps(MIN_FRAME_BYTES, port_rate_bps),
        data_pps_per_port=line_rate_pps(mtu_bytes, port_rate_bps),
        amplification_factor=factor,
        ideal_rate_bps=factor * port_rate_bps,
        pipeline_rate_bps=allocation.data_throughput_bps,
        test_ports_in_pipeline=allocation.test_ports,
    )
