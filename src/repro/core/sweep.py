"""Operator sweep utilities.

The paper's use case (Section 1): operators "validate the effectiveness
of the selected CC algorithms and parameters through high-throughput
traffic".  These helpers automate the two standard sweeps:

* :func:`max_lossless_rate_bps` — binary-search the highest fixed
  offered load a path sustains without loss (classic RFC 2544-style
  throughput testing, using the CC-less baseline tester);
* :func:`cc_parameter_sweep` — run one congestion scenario across a
  grid of CC parameter settings and report throughput/fairness/queue
  metrics for each (the "find the optimal configuration" loop).

Sweeps are campaigns of independent simulations, so they shard across a
:class:`~repro.parallel.CampaignRunner` process pool (``workers=``),
optionally with deterministic seed replicates per grid point
(``seeds=``); :func:`sweep_campaign` additionally returns the campaign's
wall-clock/event statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Optional, Sequence, Union

from repro.baselines.pswitch_tester import PswitchTester
from repro.core.config import TestConfig
from repro.core.control_plane import ControlPlane
from repro.errors import ConfigError
from repro.measure.fairness import jain_index
from repro.measure.throughput import ThroughputSampler
from repro.net.switch import NetworkSwitch
from repro.net.topology import Topology
from repro.obs import flight
from repro.obs.heartbeat import Heartbeat, run_with_heartbeats
from repro.parallel import CampaignResult, CampaignRunner, derive_task_seed, report_events
from repro.sim import Simulator
from repro.units import GBPS, MS, RATE_100G, US


def max_lossless_rate_bps(
    *,
    bottleneck_rate_bps: int = RATE_100G,
    queue_capacity_bytes: int = 128 * 1024,
    frame_bytes: int = 1024,
    duration_ps: int = 2 * MS,
    tolerance_bps: float = 1 * GBPS,
) -> float:
    """Highest constant offered load with zero loss through one port.

    Binary search over the open-loop stream rate; each probe runs a
    fresh simulation of a single fixed-rate stream through a bottleneck
    switch port and checks the drop counters.  The answer exceeds the
    bottleneck line rate by at most ``queue_capacity / duration`` (the
    excess a queue can absorb over a finite probe) — keep the default
    small queue/long probe ratio for sharp results.
    """
    if tolerance_bps <= 0:
        raise ConfigError("tolerance must be positive")

    def lossless(rate_bps: float) -> bool:
        sim = Simulator()
        topo = Topology(sim)
        fabric = NetworkSwitch(sim, "fabric")
        topo.add_device(fabric)
        # Tester ports run faster than the bottleneck so offered loads
        # above the bottleneck actually reach it.
        tester = PswitchTester(sim, 2, port_rate_bps=4 * bottleneck_rate_bps)
        for index, port in enumerate(tester.ports):
            fabric_port = fabric.add_ecn_port(
                rate_bps=bottleneck_rate_bps,
                capacity_bytes=queue_capacity_bytes,
            )
            topo.connect(port, fabric_port)
            fabric.set_route(index + 1, fabric_port)
        stream = tester.add_stream(
            0, src_addr=1, dst_addr=2, rate_bps=rate_bps, frame_bytes=frame_bytes
        )
        stream.start()
        sim.run(until_ps=duration_ps)
        return all(p.queue.stats.dropped_packets == 0 for p in fabric.ports)

    low, high = 0.0, float(2 * bottleneck_rate_bps)
    if lossless(high):
        return high
    while high - low > tolerance_bps:
        mid = (low + high) / 2.0
        if lossless(mid):
            low = mid
        else:
            high = mid
    return low


@dataclass(frozen=True)
class SweepPoint:
    """One CC-parameter configuration's outcome."""

    params: dict[str, Any]
    throughput_bps: float
    fairness: float
    peak_queue_bytes: int
    flows_completed: int
    #: Seed replicates aggregated into this point (1 = a single run).
    n_seeds: int = 1


def steady_state_flow_rates(sampler: ThroughputSampler) -> list[float]:
    """Per-flow rates averaged over the second half of the sampled windows.

    The last 500 µs window alone is single-window noise (a flow mid-cut
    or mid-recovery skews throughput and fairness); averaging the second
    half of the run discards the startup transient and smooths the
    steady-state oscillation.  Flow order is name-sorted so the result
    is deterministic.
    """
    samples = sampler.samples
    steady = samples[len(samples) // 2 :]
    if not steady:
        return []
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for sample in steady:
        for name, rate in sample.rates_bps.items():
            if name.startswith("flow"):
                totals[name] = totals.get(name, 0.0) + rate
                counts[name] = counts.get(name, 0) + 1
    return [totals[name] / counts[name] for name in sorted(totals)]


def run_sweep_point(
    algorithm: str,
    grid_params: dict[str, Any],
    *,
    n_senders: int = 3,
    size_packets: int = 10**9,
    duration_ps: int = 6 * MS,
    ecn_threshold_bytes: int = 84_000,
    base_params: Optional[dict[str, Any]] = None,
    seed: int = 0,
    sim_backend: Optional[str] = None,
) -> SweepPoint:
    """One grid point: a fan-in congestion scenario under one setting.

    A pure top-level function (no closures) so it pickles cleanly into
    :class:`~repro.parallel.CampaignRunner` workers; ``seed`` feeds the
    deployed :class:`TestConfig` so replicates are reproducible.
    ``sim_backend`` picks the run-loop backend per task (backends are
    bit-identical, so it changes wall-clock speed, never the point).
    """
    params = dict(base_params or {})
    params.update(grid_params)
    cp = ControlPlane(sim_backend=sim_backend)
    tester = cp.deploy(
        TestConfig(
            cc_algorithm=algorithm,
            n_test_ports=n_senders + 1,
            cc_params=params,
            seed=seed,
        )
    )
    cp.wire_loopback_fabric(ecn_threshold_bytes=ecn_threshold_bytes)
    sampler = tester.enable_rate_sampling(period_ps=500 * US)
    cp.start_flows(size_packets=size_packets, pattern="fan_in")
    # Flight-recorder hookup: a no-op unless the campaign runner armed a
    # per-task recorder (results_dir campaigns); recording only reads
    # model state, so the event stream is identical either way.
    flight.attach_control_plane(cp)
    # Heartbeat-aware run: slices wall-clock execution (never the sim
    # timeline) so a campaign listener sees live progress; without a
    # configured sink this is exactly ``cp.run(duration_ps=...)``.
    run_with_heartbeats(cp.sim, duration_ps, counters_fn=cp.read_measurements)
    rates = steady_state_flow_rates(sampler)
    if cp.fabric is None:
        raise ConfigError("sweep scenario has no fabric wired")
    bottleneck = cp.fabric.ports[n_senders]
    report_events(cp.sim.events_executed)
    return SweepPoint(
        params=grid_params,
        throughput_bps=sum(rates),
        fairness=jain_index(rates) if rates else 1.0,
        peak_queue_bytes=bottleneck.queue.stats.max_backlog_bytes,
        flows_completed=len(tester.fct),
    )


def _replicate_seeds(
    seeds: Union[int, Sequence[int], None], campaign_seed: int
) -> list[int]:
    """Seed list for one grid point's replicates."""
    if seeds is None:
        return [campaign_seed]
    if isinstance(seeds, int):
        if seeds < 1:
            raise ConfigError(f"seeds must be >= 1, got {seeds}")
        return [derive_task_seed(campaign_seed, replicate) for replicate in range(seeds)]
    if not seeds:
        raise ConfigError("seeds sequence must not be empty")
    return [int(value) for value in seeds]


def _aggregate_replicates(points: list[SweepPoint]) -> SweepPoint:
    """Mean rates/fairness, worst-case queue, over one point's replicates."""
    if len(points) == 1:
        return points[0]
    n = len(points)
    return replace(
        points[0],
        throughput_bps=sum(p.throughput_bps for p in points) / n,
        fairness=sum(p.fairness for p in points) / n,
        peak_queue_bytes=max(p.peak_queue_bytes for p in points),
        flows_completed=round(sum(p.flows_completed for p in points) / n),
        n_seeds=n,
    )


def sweep_campaign(
    algorithm: str,
    param_grid: list[dict[str, Any]],
    *,
    n_senders: int = 3,
    size_packets: int = 10**9,
    duration_ps: int = 6 * MS,
    ecn_threshold_bytes: int = 84_000,
    base_params: Optional[dict[str, Any]] = None,
    workers: int = 1,
    seeds: Union[int, Sequence[int], None] = None,
    seed: int = 0,
    sim_backend: Optional[str] = None,
    runner: Optional[CampaignRunner] = None,
    on_heartbeat: Optional[Callable[[Heartbeat], None]] = None,
) -> tuple[list[SweepPoint], CampaignResult]:
    """:func:`cc_parameter_sweep` plus the underlying campaign statistics.

    Tasks are one simulation per ``(grid point, seed replicate)`` pair,
    sharded across ``workers`` processes; replicate seeds are spawned
    deterministically from ``seed`` (or taken verbatim from a ``seeds``
    sequence), so any worker count produces bit-identical points.
    ``on_heartbeat`` streams live :class:`Heartbeat` progress snapshots
    from running tasks (rendered by ``repro sweep``); heartbeats never
    alter the simulated event stream, so results are unchanged.
    """
    if not param_grid:
        raise ConfigError("param_grid must contain at least one setting")
    replicate_seeds = _replicate_seeds(seeds, seed)
    tasks = [
        (
            algorithm,
            grid_params,
            {
                "n_senders": n_senders,
                "size_packets": size_packets,
                "duration_ps": duration_ps,
                "ecn_threshold_bytes": ecn_threshold_bytes,
                "base_params": base_params,
                "seed": replicate_seed,
                "sim_backend": sim_backend,
            },
        )
        for grid_params in param_grid
        for replicate_seed in replicate_seeds
    ]
    own_runner = runner is None
    active = runner if runner is not None else CampaignRunner(workers=workers)
    try:
        campaign = active.run(_sweep_task, tasks, on_heartbeat=on_heartbeat)
    finally:
        if own_runner:
            active.close()
    values = campaign.values()
    n_reps = len(replicate_seeds)
    points = [
        _aggregate_replicates(values[index * n_reps : (index + 1) * n_reps])
        for index in range(len(param_grid))
    ]
    return points, campaign


def _sweep_task(
    algorithm: str, grid_params: dict[str, Any], options: dict[str, Any]
) -> SweepPoint:
    """Picklable shim: unpack one campaign task into :func:`run_sweep_point`."""
    return run_sweep_point(algorithm, grid_params, **options)


def cc_parameter_sweep(
    algorithm: str,
    param_grid: list[dict[str, Any]],
    *,
    n_senders: int = 3,
    size_packets: int = 10**9,
    duration_ps: int = 6 * MS,
    ecn_threshold_bytes: int = 84_000,
    base_params: Optional[dict[str, Any]] = None,
    workers: int = 1,
    seeds: Union[int, Sequence[int], None] = None,
    seed: int = 0,
    sim_backend: Optional[str] = None,
    runner: Optional[CampaignRunner] = None,
    on_heartbeat: Optional[Callable[[Heartbeat], None]] = None,
) -> list[SweepPoint]:
    """Run a fan-in congestion scenario for each parameter setting.

    Each grid entry is merged over ``base_params`` and passed to the
    algorithm constructor; results come back in grid order.  With
    ``workers > 1`` the grid points (and ``seeds`` replicates) are
    sharded across a process pool; results are bit-identical to the
    serial run.
    """
    points, _ = sweep_campaign(
        algorithm,
        param_grid,
        n_senders=n_senders,
        size_packets=size_packets,
        duration_ps=duration_ps,
        ecn_threshold_bytes=ecn_threshold_bytes,
        base_params=base_params,
        workers=workers,
        seeds=seeds,
        seed=seed,
        sim_backend=sim_backend,
        runner=runner,
        on_heartbeat=on_heartbeat,
    )
    return points
