"""Operator sweep utilities.

The paper's use case (Section 1): operators "validate the effectiveness
of the selected CC algorithms and parameters through high-throughput
traffic".  These helpers automate the two standard sweeps:

* :func:`max_lossless_rate_bps` — binary-search the highest fixed
  offered load a path sustains without loss (classic RFC 2544-style
  throughput testing, using the CC-less baseline tester);
* :func:`cc_parameter_sweep` — run one congestion scenario across a
  grid of CC parameter settings and report throughput/fairness/queue
  metrics for each (the "find the optimal configuration" loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.baselines.pswitch_tester import PswitchTester
from repro.core.config import TestConfig
from repro.core.control_plane import ControlPlane
from repro.errors import ConfigError
from repro.measure.fairness import jain_index
from repro.net.switch import NetworkSwitch
from repro.net.topology import Topology
from repro.sim import Simulator
from repro.units import GBPS, MS, RATE_100G, US


def max_lossless_rate_bps(
    *,
    bottleneck_rate_bps: int = RATE_100G,
    queue_capacity_bytes: int = 128 * 1024,
    frame_bytes: int = 1024,
    duration_ps: int = 2 * MS,
    tolerance_bps: float = 1 * GBPS,
) -> float:
    """Highest constant offered load with zero loss through one port.

    Binary search over the open-loop stream rate; each probe runs a
    fresh simulation of a single fixed-rate stream through a bottleneck
    switch port and checks the drop counters.  The answer exceeds the
    bottleneck line rate by at most ``queue_capacity / duration`` (the
    excess a queue can absorb over a finite probe) — keep the default
    small queue/long probe ratio for sharp results.
    """
    if tolerance_bps <= 0:
        raise ConfigError("tolerance must be positive")

    def lossless(rate_bps: float) -> bool:
        sim = Simulator()
        topo = Topology(sim)
        fabric = NetworkSwitch(sim, "fabric")
        topo.add_device(fabric)
        # Tester ports run faster than the bottleneck so offered loads
        # above the bottleneck actually reach it.
        tester = PswitchTester(sim, 2, port_rate_bps=4 * bottleneck_rate_bps)
        for index, port in enumerate(tester.ports):
            fabric_port = fabric.add_ecn_port(
                rate_bps=bottleneck_rate_bps,
                capacity_bytes=queue_capacity_bytes,
            )
            topo.connect(port, fabric_port)
            fabric.set_route(index + 1, fabric_port)
        stream = tester.add_stream(
            0, src_addr=1, dst_addr=2, rate_bps=rate_bps, frame_bytes=frame_bytes
        )
        stream.start()
        sim.run(until_ps=duration_ps)
        return all(p.queue.stats.dropped_packets == 0 for p in fabric.ports)

    low, high = 0.0, float(2 * bottleneck_rate_bps)
    if lossless(high):
        return high
    while high - low > tolerance_bps:
        mid = (low + high) / 2.0
        if lossless(mid):
            low = mid
        else:
            high = mid
    return low


@dataclass(frozen=True)
class SweepPoint:
    """One CC-parameter configuration's outcome."""

    params: dict[str, Any]
    throughput_bps: float
    fairness: float
    peak_queue_bytes: int
    flows_completed: int


def cc_parameter_sweep(
    algorithm: str,
    param_grid: list[dict[str, Any]],
    *,
    n_senders: int = 3,
    size_packets: int = 10**9,
    duration_ps: int = 6 * MS,
    ecn_threshold_bytes: int = 84_000,
    base_params: Optional[dict[str, Any]] = None,
) -> list[SweepPoint]:
    """Run a fan-in congestion scenario for each parameter setting.

    Each grid entry is merged over ``base_params`` and passed to the
    algorithm constructor; results come back in grid order.
    """
    if not param_grid:
        raise ConfigError("param_grid must contain at least one setting")
    results: list[SweepPoint] = []
    for grid_params in param_grid:
        params = dict(base_params or {})
        params.update(grid_params)
        cp = ControlPlane()
        tester = cp.deploy(
            TestConfig(
                cc_algorithm=algorithm,
                n_test_ports=n_senders + 1,
                cc_params=params,
            )
        )
        cp.wire_loopback_fabric(ecn_threshold_bytes=ecn_threshold_bytes)
        sampler = tester.enable_rate_sampling(period_ps=500 * US)
        cp.start_flows(size_packets=size_packets, pattern="fan_in")
        cp.run(duration_ps=duration_ps)
        rates = [
            rate
            for name, rate in sampler.samples[-1].rates_bps.items()
            if name.startswith("flow")
        ]
        assert cp.fabric is not None
        bottleneck = cp.fabric.ports[n_senders]
        results.append(
            SweepPoint(
                params=grid_params,
                throughput_bps=sum(rates),
                fairness=jain_index(rates) if rates else 1.0,
                peak_queue_bytes=bottleneck.queue.stats.max_backlog_bytes,
                flows_completed=len(tester.fct),
            )
        )
    return results
