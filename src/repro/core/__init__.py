"""Marlin, the paper's contribution: configuration, control plane, the
assembled tester, the throughput-amplification arithmetic (Section 3.3),
and the requirement/capability matrices (Tables 1 and 2)."""

from repro.core.config import TestConfig
from repro.core.tester import MarlinTester
from repro.core.control_plane import ControlPlane
from repro.core.amplification import (
    AmplificationReport,
    amplification_report,
    max_generated_rate_bps,
)
from repro.core.capabilities import (
    DeviceCharacteristics,
    TesterRequirements,
    device_characteristics_table,
    tester_requirements_table,
)
from repro.core.multi_pipeline import MultiPipelineTester, scaling_table
from repro.core.sweep import (
    SweepPoint,
    cc_parameter_sweep,
    max_lossless_rate_bps,
    run_sweep_point,
    sweep_campaign,
)

__all__ = [
    "TestConfig",
    "MarlinTester",
    "ControlPlane",
    "AmplificationReport",
    "amplification_report",
    "max_generated_rate_bps",
    "DeviceCharacteristics",
    "TesterRequirements",
    "device_characteristics_table",
    "tester_requirements_table",
    "MultiPipelineTester",
    "scaling_table",
    "SweepPoint",
    "cc_parameter_sweep",
    "max_lossless_rate_bps",
    "run_sweep_point",
    "sweep_campaign",
]
