"""The control-plane program (paper Section 3.2).

Operators configure a test (CC algorithm, parameters, ports, flows per
port), the control plane generates device configurations and deploys them
— here, by constructing the :class:`~repro.core.tester.MarlinTester` —
then starts traffic and retrieves measurements (port/flow rates, packet
loss, CC parameter traces).

It also provides the standard experiment wiring: connecting the tester's
test ports through an intermediate switch in the pass-through, one-to-one
and fan-in shapes the evaluation section uses.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import TestConfig
from repro.core.tester import MarlinTester
from repro.errors import ConfigError
from repro.net.switch import NetworkSwitch
from repro.net.topology import DEFAULT_LINK_DELAY_PS, Topology
from repro.sim.engine import Simulator


def wire_tester_fabric(
    sim: Simulator,
    tester: MarlinTester,
    *,
    name: str = "fabric",
    delay_ps: int = DEFAULT_LINK_DELAY_PS,
    ecn_threshold_bytes: int = 84_000,
    queue_capacity_bytes: int = 2**22,
) -> tuple[Topology, NetworkSwitch]:
    """Wire one tester's test ports through an intermediate switch and
    give each port an address routed straight back to it (the paper's
    testbed shape).  Used by the control plane and by multi-pipeline
    setups that need one fabric per pipeline."""
    topo = Topology(sim)
    fabric = NetworkSwitch(sim, name)
    topo.add_device(fabric)
    for index, port in enumerate(tester.test_ports):
        fabric_port = fabric.add_ecn_port(
            rate_bps=port.rate_bps,
            capacity_bytes=queue_capacity_bytes,
            ecn_threshold_bytes=ecn_threshold_bytes,
        )
        topo.connect(port, fabric_port, delay_ps=delay_ps)
        address = topo.allocate_address()
        fabric.set_route(address, fabric_port)
        tester.assign_port_address(index, address)
    return topo, fabric


class ControlPlane:
    """Deploys configurations and orchestrates test runs.

    ``sim_backend`` selects the run-loop backend ("auto", "python",
    "compiled" — see :mod:`repro.sim.backend`) for the simulator the
    control plane constructs; it cannot be combined with an explicit
    ``sim`` (whose backend was fixed at its construction).
    """

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        *,
        sim_backend: Optional[str] = None,
    ) -> None:
        if sim is not None and sim_backend is not None:
            raise ConfigError(
                "pass either an existing sim or sim_backend, not both "
                "(the backend of an existing Simulator is already fixed)"
            )
        self.sim = sim if sim is not None else Simulator(backend=sim_backend)
        self.tester: Optional[MarlinTester] = None
        self.topology: Optional[Topology] = None
        self.fabric: Optional[NetworkSwitch] = None

    # -- deployment ---------------------------------------------------------------

    def deploy(self, config: TestConfig) -> MarlinTester:
        """Generate and push switch + FPGA configurations (Figure 1)."""
        if self.tester is not None:
            raise ConfigError("a tester is already deployed on this control plane")
        self.tester = MarlinTester(self.sim, config)
        return self.tester

    def require_tester(self) -> MarlinTester:
        if self.tester is None:
            raise ConfigError("deploy() a TestConfig first")
        return self.tester

    # -- standard testbed wiring -----------------------------------------------------

    def wire_loopback_fabric(
        self,
        *,
        delay_ps: int = DEFAULT_LINK_DELAY_PS,
        ecn_threshold_bytes: int = 84_000,
        queue_capacity_bytes: int = 2**22,
    ) -> NetworkSwitch:
        """Connect every test port to an intermediate switch and give each
        port an address routed straight back to it.

        This is the paper's testbed shape ("sender and receiver are
        connected with a programmable switch via twelve 100 Gbps links
        each"): any test port can then send to any other test port's
        address, and the experiment chooses pass-through, one-to-one or
        fan-in patterns purely by its choice of destination addresses.
        """
        tester = self.require_tester()
        topo, fabric = wire_tester_fabric(
            self.sim,
            tester,
            delay_ps=delay_ps,
            ecn_threshold_bytes=ecn_threshold_bytes,
            queue_capacity_bytes=queue_capacity_bytes,
        )
        self.topology = topo
        self.fabric = fabric
        return fabric

    # -- test execution ------------------------------------------------------------------

    def start_flows(
        self,
        *,
        flows_per_port: Optional[int] = None,
        size_packets: int,
        pattern: str = "pairs",
    ) -> list[int]:
        """Start the configured number of flows on each sending port.

        Patterns over ``n`` test ports (which must be even for "pairs"):

        * ``pairs``   — port i sends to port i + n/2 (Figures 6/7 shape);
        * ``fan_in``  — every port except the last sends to the last port
          (Figure 8's congestion shape).

        Returns the started flow ids.
        """
        tester = self.require_tester()
        if flows_per_port is None:
            flows_per_port = tester.config.flows_per_port
        n = tester.n_test_ports
        flow_ids: list[int] = []
        if pattern == "pairs":
            if n % 2 != 0:
                raise ConfigError(f"pairs pattern needs an even port count, got {n}")
            senders = [(i, i + n // 2) for i in range(n // 2)]
        elif pattern == "fan_in":
            senders = [(i, n - 1) for i in range(n - 1)]
        else:
            raise ConfigError(f"unknown pattern {pattern!r}")
        for src, dst in senders:
            for _ in range(flows_per_port):
                flow = tester.start_flow(
                    port_index=src, dst_port_index=dst, size_packets=size_packets
                )
                flow_ids.append(flow.flow_id)
        return flow_ids

    def run(self, duration_ps: int) -> None:
        """Advance the simulation by ``duration_ps``."""
        self.sim.run(until_ps=self.sim.now + duration_ps)

    def read_measurements(self) -> dict[str, int]:
        """Read the merged hardware counters (Section 3.2)."""
        return self.require_tester().read_counters()
