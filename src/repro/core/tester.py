"""The assembled Marlin tester (paper Figure 1).

A :class:`MarlinTester` wires one :class:`~repro.pswitch.MarlinSwitch`
to one :class:`~repro.fpga.FpgaNic` over a 100 Gbps cable, hooks flow
completion back into the measurement layer, and exposes the operator-
facing surface: start flows, read counters, collect FCTs, meter rates.

The tester plays both roles of the paper's testbed: its test ports send
DATA into the tested network *and* receive it back (Module A answers
with ACKs), exactly as the paper replaces both sender and receiver hosts
with the tester.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import CCAlgorithm, CCMode
from repro.cc.registry import create as create_cc
from repro.core.config import TestConfig
from repro.errors import ConfigError
from repro.fpga.flow import FlowState
from repro.fpga.nic import FpgaNic, FpgaNicConfig
from repro.measure.fct import FctCollector
from repro.measure.throughput import ThroughputSampler
from repro.net.device import Port
from repro.net.link import Link
from repro.net.packet import Packet
from repro.pswitch.module_a import ReceiverMode
from repro.pswitch.switch import MarlinSwitch, MarlinSwitchConfig
from repro.sim.engine import Simulator


class MarlinTester:
    """Programmable switch + FPGA NIC, deployed and cabled."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[TestConfig] = None,
        *,
        algorithm: Optional[CCAlgorithm] = None,
        name: str = "marlin",
    ) -> None:
        self.sim = sim
        self.config = config if config is not None else TestConfig()
        self.config.validate()
        cfg = self.config

        self.algorithm: CCAlgorithm = (
            algorithm
            if algorithm is not None
            else create_cc(cfg.cc_algorithm, **cfg.cc_params)
        )
        receiver_mode = self._resolve_receiver_mode()

        self.switch = MarlinSwitch(
            sim,
            MarlinSwitchConfig(
                template_bytes=cfg.template_bytes,
                n_test_ports=cfg.n_test_ports,
                port_rate_bps=cfg.port_rate_bps,
                queue_capacity=cfg.queue_capacity,
                strict_queues=cfg.strict,
                pipeline_latency_ps=cfg.pipeline_latency_ps,
                receiver_mode=receiver_mode,
                cnp_interval_ps=cfg.cnp_interval_ps,
                int_enabled=cfg.int_enabled,
                receiver_on_fpga=cfg.receiver_logic_on_fpga,
            ),
            name=f"{name}-switch",
        )
        self.nic = FpgaNic(
            sim,
            self.algorithm,
            FpgaNicConfig(
                template_bytes=cfg.template_bytes,
                n_test_ports=self.switch.n_test_ports,
                port_rate_bps=cfg.port_rate_bps,
                trace_cc=cfg.trace_cc,
                strict_bram=cfg.strict,
                disable_rx_timer=cfg.disable_rx_timer,
                rx_interval_override_ps=cfg.rx_interval_override_ps,
                receiver_on_fpga=cfg.receiver_logic_on_fpga,
                fpga_receiver_mode=receiver_mode,
                cnp_interval_ps=cfg.cnp_interval_ps,
                sample_rtt=cfg.sample_rtt,
            ),
            name=f"{name}-nic",
        )
        self.internal_link = Link(
            self.nic.port,
            self.switch.fpga_port,
            delay_ps=cfg.internal_link_delay_ps,
            name=f"{name}-cable",
        )
        self.receiver_link: Optional[Link] = None
        if cfg.receiver_logic_on_fpga:
            assert self.nic.receiver_port is not None
            assert self.switch.receiver_port is not None
            self.receiver_link = Link(
                self.nic.receiver_port,
                self.switch.receiver_port,
                delay_ps=cfg.internal_link_delay_ps,
                name=f"{name}-receiver-cable",
            )

        self.fct = FctCollector()
        self.nic.on_complete(self._record_completion)

        #: Test-port addresses assigned by the experiment topology:
        #: ``port_addresses[i]`` is how the tested network routes traffic
        #: back to test port i.
        self.port_addresses: dict[int, int] = {}
        self._sampler: Optional[ThroughputSampler] = None

    # -- topology helpers -------------------------------------------------------

    @property
    def test_ports(self) -> list[Port]:
        return self.switch.test_ports

    @property
    def n_test_ports(self) -> int:
        return self.switch.n_test_ports

    def assign_port_address(self, port_index: int, address: int) -> None:
        """Record the network address that routes to a test port."""
        if not 0 <= port_index < self.n_test_ports:
            raise ConfigError(f"no test port {port_index}")
        self.port_addresses[port_index] = address

    def port_address(self, port_index: int) -> int:
        try:
            return self.port_addresses[port_index]
        except KeyError:
            raise ConfigError(
                f"test port {port_index} has no address; call "
                "assign_port_address() while building the topology"
            ) from None

    # -- flow management -----------------------------------------------------------

    def start_flow(
        self,
        *,
        port_index: int,
        dst_port_index: Optional[int] = None,
        dst_addr: Optional[int] = None,
        size_packets: int,
        start_at_ps: Optional[int] = None,
        flow_id: Optional[int] = None,
    ) -> FlowState:
        """Start one flow from a test port toward a destination address
        (or another test port of this tester)."""
        if (dst_port_index is None) == (dst_addr is None):
            raise ConfigError("specify exactly one of dst_port_index / dst_addr")
        if dst_addr is None:
            assert dst_port_index is not None
            dst_addr = self.port_address(dst_port_index)
        return self.nic.start_flow(
            port_index=port_index,
            src_addr=self.port_address(port_index),
            dst_addr=dst_addr,
            size_packets=size_packets,
            start_at_ps=start_at_ps,
            flow_id=flow_id,
        )

    def stop_flow(self, flow_id: int) -> None:
        """Terminate a long-lived flow (control-plane initiated)."""
        self.nic.stop_flow(flow_id)
        self.switch.receiver.forget_flow(flow_id)

    def _record_completion(self, flow: FlowState) -> None:
        self.fct.add(
            flow.flow_id,
            flow.size_packets,
            flow.size_packets * flow.frame_bytes,
            flow.start_ps,
            flow.finish_ps,
        )
        # Release the receiver-side registers for the finished flow.
        self.switch.receiver.forget_flow(flow.flow_id)
        if self.nic.fpga_receiver is not None:
            self.nic.fpga_receiver.forget_flow(flow.flow_id)

    # -- measurement ------------------------------------------------------------------

    def enable_rate_sampling(self, period_ps: int) -> ThroughputSampler:
        """Meter per-flow and per-port DATA rates on a fixed period."""
        sampler = ThroughputSampler(self.sim, period_ps)
        self._sampler = sampler

        def on_generate(port_index: int, packet: Packet) -> None:
            sampler.meter(f"flow{packet.flow_id}").count(packet.size_bytes)
            sampler.meter(f"port{port_index}").count(packet.size_bytes)

        self.switch.data_generator.on_generate = on_generate
        sampler.start()
        return sampler

    def read_counters(self) -> dict[str, int]:
        """Merged hardware-register view across both devices."""
        counters = {f"switch.{k}": v for k, v in self.switch.read_counters().items()}
        counters.update(
            {f"fpga.{k}": v for k, v in self.nic.read_counters().items()}
        )
        return counters

    def flow_stats(self, flow_id: int) -> dict[str, int]:
        """Per-flow registers (Section 3.2: flow rate / loss measurement).

        ``lost_estimate`` is transmissions (incl. retransmissions) minus
        packets cumulatively acknowledged — in-flight packets count until
        they are ACKed, so read it after the flow completes for an exact
        network-loss figure.
        """
        flow = self.nic.flow(flow_id)
        generated = self.switch.data_generator.flow_tx_packets.get(flow_id, 0)
        return {
            "scheduled": flow.data_sent + flow.rtx_sent,
            "generated": generated,
            "retransmitted": flow.rtx_sent,
            "acked": flow.una,
            "size_packets": flow.size_packets,
            "lost_estimate": max(generated - flow.una, 0),
            "finished": int(flow.finished),
        }

    def rtt_stats_us(self) -> dict[str, float]:
        """Summary of probed RTT samples (requires ``sample_rtt=True``)."""
        import numpy as np

        if not self.nic.rtt_samples:
            raise ConfigError(
                "no RTT samples; deploy with TestConfig(sample_rtt=True)"
            )
        rtts = np.array([rtt for _, rtt in self.nic.rtt_samples], dtype=float) / 1e6
        return {
            "count": float(len(rtts)),
            "mean_us": float(np.mean(rtts)),
            "p50_us": float(np.percentile(rtts, 50)),
            "p99_us": float(np.percentile(rtts, 99)),
            "max_us": float(np.max(rtts)),
        }

    def _resolve_receiver_mode(self) -> ReceiverMode:
        if self.config.receiver_mode == "tcp":
            return ReceiverMode.TCP
        if self.config.receiver_mode == "roce":
            return ReceiverMode.ROCE
        return (
            ReceiverMode.TCP
            if self.algorithm.mode is CCMode.WINDOW
            else ReceiverMode.ROCE
        )
