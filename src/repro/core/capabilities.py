"""Requirement and capability matrices (paper Tables 1 and 2).

Table 1 scores tester classes against the three requirements:

* **R1** — capability to generate traffic with CC behaviours;
* **R2** — customizable CC in the tester;
* **R3** — high-throughput (Tbps-level) CC traffic generation.

Table 2 scores raw devices against the three characteristics a CC tester
needs: programmability, packet-processing frequency, and throughput.
Every checkmark is *derived* from a quantitative model rather than
hardcoded: e.g. the host's frequency cross comes from
3 GHz / 50 cycles < 81 Mpps, and the switch's programmability cross from
the Tofino instruction-capability list.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.commercial_tester import CommercialTesterModel
from repro.baselines.fpga_tester import FpgaTesterModel
from repro.baselines.software_tester import SoftwareTesterModel
from repro.core.amplification import max_generated_rate_bps
from repro.pswitch.pipeline import UNSUPPORTED_DATAPLANE_OPS
from repro.units import (
    ETH_MTU_BYTES,
    FPGA_CLOCK_HZ,
    RATE_100G,
    ROCE_MTU_BYTES,
    TBPS,
    TOFINO_PIPELINE_MPPS,
    wire_bits,
)

#: The target the paper sets for R3 / the throughput characteristic.
TBPS_TARGET_BPS = 1 * TBPS

#: Operations a CC algorithm fundamentally needs (window update = RMW,
#: proportional cuts = multiplication, alpha estimators = division).
CC_REQUIRED_OPS = frozenset({"register_rmw", "mul", "div", "conditional_branch_chain"})


def required_pps(rate_bps: float = TBPS_TARGET_BPS, frame_bytes: int = ETH_MTU_BYTES) -> float:
    """Packet rate needed for a target throughput (the paper's ~81 Mpps)."""
    return rate_bps / wire_bits(frame_bytes)


@dataclass(frozen=True)
class DeviceCharacteristics:
    """One Table 2 row, with the quantitative backing."""

    device: str
    programmability: bool
    frequency: bool
    throughput: bool
    max_pps: float
    max_throughput_bps: float
    note: str


def device_characteristics_table(
    frame_bytes: int = ETH_MTU_BYTES,
) -> list[DeviceCharacteristics]:
    """Compute Table 2 for a given test frame size."""
    need_pps = required_pps(TBPS_TARGET_BPS, frame_bytes)

    host = SoftwareTesterModel()
    host_row = DeviceCharacteristics(
        device="host",
        programmability=True,
        frequency=host.max_pps >= need_pps,
        throughput=host.max_throughput_bps(frame_bytes) >= TBPS_TARGET_BPS,
        max_pps=host.max_pps,
        max_throughput_bps=host.max_throughput_bps(frame_bytes),
        note=(
            f"{host.cpu_hz / 1e9:.0f} GHz / {host.cycles_per_packet} cycles = "
            f"{host.max_pps / 1e6:.0f} Mpps < {need_pps / 1e6:.0f} Mpps needed"
        ),
    )

    switch_mpps = TOFINO_PIPELINE_MPPS * 1e6
    switch_row = DeviceCharacteristics(
        device="programmable switch",
        # A device is CC-programmable only if none of the operations CC
        # needs fall in its unsupported set.
        programmability=not (CC_REQUIRED_OPS & UNSUPPORTED_DATAPLANE_OPS),
        frequency=switch_mpps >= need_pps,
        throughput=True,  # multi-port by design: 32 x 100G = 3.2 Tbps
        max_pps=switch_mpps,
        max_throughput_bps=32 * RATE_100G,
        note="no RMW/mul/div in the data plane; CC parameters cannot update",
    )

    fpga = FpgaTesterModel()
    fpga_row = DeviceCharacteristics(
        device="FPGA",
        programmability=True,
        frequency=float(FPGA_CLOCK_HZ) >= need_pps,
        throughput=fpga.max_throughput_bps >= TBPS_TARGET_BPS,
        max_pps=float(FPGA_CLOCK_HZ),
        max_throughput_bps=float(fpga.max_throughput_bps),
        note=(
            f"{fpga.cards_per_server} cards x {fpga.ports_per_card} x 100G = "
            f"{fpga.max_throughput_bps / TBPS:.1f} Tbps per 2U server"
        ),
    )

    marlin_rate = max_generated_rate_bps(ROCE_MTU_BYTES)
    marlin_row = DeviceCharacteristics(
        device="Marlin",
        programmability=True,  # CC runs on the FPGA
        frequency=True,  # switch forwards at 2,400 Mpps; FPGA at 322 Mpps
        throughput=marlin_rate >= TBPS_TARGET_BPS,
        max_pps=switch_mpps,
        max_throughput_bps=float(marlin_rate),
        note="FPGA programmability + switch throughput via SCHE amplification",
    )
    return [host_row, switch_row, fpga_row, marlin_row]


@dataclass(frozen=True)
class TesterRequirements:
    """One Table 1 row."""

    tester: str
    r1_cc_traffic: bool
    r2_custom_cc: bool
    r3_tbps: bool
    note: str


def tester_requirements_table(frame_bytes: int = ETH_MTU_BYTES) -> list[TesterRequirements]:
    """Compute Table 1: tester classes vs R1/R2/R3."""
    software = SoftwareTesterModel()
    fpga = FpgaTesterModel()
    commercial = CommercialTesterModel()
    rows = [
        TesterRequirements(
            tester="software & FPGA",
            r1_cc_traffic=True,
            r2_custom_cc=True,
            r3_tbps=max(
                software.max_throughput_bps(frame_bytes),
                float(fpga.max_throughput_bps),
            )
            >= TBPS_TARGET_BPS,
            note="fully programmable but CPU- or interface-bound",
        ),
        TesterRequirements(
            tester="commercial",
            r1_cc_traffic=commercial.supports_cc_traffic,
            r2_custom_cc=commercial.supports_custom_cc,
            r3_tbps=commercial.reaches_tbps,
            note=f"black box; L4 module ~${commercial.module_cost_usd:,}",
        ),
        TesterRequirements(
            tester="programmable switch",
            r1_cc_traffic=False,  # cannot run CC state machines (Table 2)
            r2_custom_cc=False,
            r3_tbps=True,
            note="Norma/HyperTester/IMap class: high rate, no CC",
        ),
        TesterRequirements(
            tester="Marlin",
            r1_cc_traffic=True,
            r2_custom_cc=True,
            r3_tbps=max_generated_rate_bps(ROCE_MTU_BYTES) >= TBPS_TARGET_BPS,
            note="hybrid FPGA + programmable switch",
        ),
    ]
    return rows
