"""In-band network telemetry (INT) support.

The paper's introduction motivates CC algorithms that "require switches
to provide additional network information, such as ECN and in-band
network telemetry (INT)", and R2 demands the tester support them.  This
module adds the INT substrate: switches stamp per-hop link state onto
INT-enabled DATA packets, receivers echo the records back on ACKs, and
the INFO path delivers them to the CC module (HPCC-style).

A single :class:`IntRecord` (timestamp, queue length, cumulative TX
bytes, link capacity) is ~16 B on the wire; one- or two-hop INT fits
Marlin's 64 B ACK/INFO budget alongside the flow fields, which is the
regime the tester's testbed (one bottleneck switch) exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.device import Port
from repro.net.packet import Packet

#: Packet meta keys.
INT_ENABLED = "int_enabled"
INT_PATH = "int_path"

#: Hop budget that still fits the 64 B feedback packets.
MAX_INT_HOPS = 2


@dataclass(frozen=True)
class IntRecord:
    """One hop's telemetry, as HPCC consumes it."""

    tstamp_ps: int
    queue_bytes: int
    tx_bytes: int
    link_rate_bps: int


def enable_int(packet: Packet) -> None:
    """Mark a DATA packet as INT-enabled (done at generation time)."""
    packet.meta[INT_ENABLED] = True
    packet.meta[INT_PATH] = ()


def stamp(packet: Packet, egress_port: Port, now_ps: int) -> None:
    """Append this hop's telemetry to an INT-enabled packet.

    Called by the switch on the forwarding path; no-op for packets that
    did not request INT.  Hops beyond :data:`MAX_INT_HOPS` are dropped
    (the 64 B feedback budget), keeping the earliest hops — for Marlin's
    dumbbell testbeds the bottleneck is always within budget.
    """
    if not packet.meta.get(INT_ENABLED):
        return
    path = packet.meta.get(INT_PATH, ())
    if len(path) >= MAX_INT_HOPS:
        return
    record = IntRecord(
        tstamp_ps=now_ps,
        queue_bytes=egress_port.queue.backlog_bytes,
        tx_bytes=egress_port.tx_bytes,
        link_rate_bps=egress_port.rate_bps,
    )
    packet.meta[INT_PATH] = path + (record,)


def echo(source: Packet, feedback: Packet) -> None:
    """Copy the INT path from a DATA packet onto its ACK (receiver side)."""
    path = source.meta.get(INT_PATH)
    if path:
        feedback.meta[INT_PATH] = path


def int_path(packet: Packet) -> tuple[IntRecord, ...]:
    """The telemetry carried by a packet (possibly empty)."""
    return tuple(packet.meta.get(INT_PATH, ()))
