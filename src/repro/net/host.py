"""Generic host endpoint.

A host owns one port and an address, and delegates protocol behaviour to a
pluggable *agent* (e.g. the ConnectX-style DCQCN stack in
:mod:`repro.reference.connectx`).  Marlin itself does not use hosts — the
tester replaces them — but the fidelity experiments (Figure 9) need real
host endpoints to compare against.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.net.device import Device, Port
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.units import RATE_100G


class HostAgent(Protocol):
    """Protocol stack attached to a host."""

    def on_receive(self, packet: Packet) -> None:  # pragma: no cover - protocol
        ...


class Host(Device):
    """Single-port endpoint with a pluggable protocol agent."""

    def __init__(
        self,
        sim: Simulator,
        address: int,
        *,
        name: Optional[str] = None,
        rate_bps: int = RATE_100G,
    ) -> None:
        super().__init__(sim, name if name is not None else f"host{address}")
        self.address = address
        self.port: Port = self.add_port(rate_bps=rate_bps)
        self.agent: Optional[HostAgent] = None

    def attach(self, agent: HostAgent) -> None:
        self.agent = agent

    def send(self, packet: Packet) -> bool:
        """Transmit ``packet`` out the host port."""
        return self.port.send(packet)

    def receive(self, packet: Packet, port: Port) -> None:
        if self.agent is not None:
            self.agent.on_receive(packet)
