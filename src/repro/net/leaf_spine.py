"""Leaf-spine fabrics: the "large-scale networks" of the paper's title.

Cloud providers run the tester against multi-tier fabrics, not a single
switch.  This module builds a 2-tier leaf-spine topology with ECMP
across spines (per-flow hashing, no intra-flow reordering) and a helper
that attaches a Marlin tester's test ports across the leaves — so
experiments can create cross-leaf congestion, incast through the
fabric, and spine-load-balancing scenarios.

Routing:

* each endpoint address is local to exactly one leaf;
* leaves route local addresses to their endpoint ports and everything
  else via an ECMP group over all spine uplinks;
* spines route every address to the owning leaf's downlink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a net<->core cycle)
    from repro.core.tester import MarlinTester
from repro.net.switch import NetworkSwitch
from repro.net.topology import DEFAULT_LINK_DELAY_PS, Topology
from repro.sim.engine import Simulator
from repro.units import RATE_100G


@dataclass
class LeafSpineFabric:
    """A wired leaf-spine network plus its address book."""

    topology: Topology
    leaves: list[NetworkSwitch]
    spines: list[NetworkSwitch]
    #: address -> (leaf index, leaf endpoint-port)
    endpoints: dict[int, tuple[int, object]] = field(default_factory=dict)

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    @property
    def n_spines(self) -> int:
        return len(self.spines)

    def leaf_of(self, address: int) -> int:
        try:
            return self.endpoints[address][0]
        except KeyError:
            raise ConfigError(f"unknown endpoint address {address}") from None

    def spine_load(self) -> list[int]:
        """Packets forwarded per spine (load-balance observability)."""
        return [spine.forwarded_packets for spine in self.spines]


def build_leaf_spine(
    sim: Simulator,
    n_leaves: int,
    n_spines: int,
    *,
    rate_bps: int = RATE_100G,
    delay_ps: int = DEFAULT_LINK_DELAY_PS,
    ecn_threshold_bytes: int = 84_000,
    queue_capacity_bytes: int = 2**22,
) -> LeafSpineFabric:
    """Create the switches and the full leaf<->spine mesh (no endpoints
    yet — attach them with :func:`attach_endpoint` or
    :func:`wire_tester_leaf_spine`)."""
    if n_leaves < 1 or n_spines < 1:
        raise ConfigError("need at least one leaf and one spine")
    topo = Topology(sim)
    leaves = [NetworkSwitch(sim, f"leaf{i}") for i in range(n_leaves)]
    spines = [NetworkSwitch(sim, f"spine{j}") for j in range(n_spines)]
    for switch in leaves + spines:
        topo.add_device(switch)

    # Full mesh of uplinks; remember each side's ports for routing.
    uplinks: dict[int, list] = {i: [] for i in range(n_leaves)}  # leaf -> ports
    downlinks: dict[tuple[int, int], object] = {}  # (spine, leaf) -> spine port
    for i, leaf in enumerate(leaves):
        for j, spine in enumerate(spines):
            leaf_port = leaf.add_ecn_port(
                rate_bps=rate_bps,
                capacity_bytes=queue_capacity_bytes,
                ecn_threshold_bytes=ecn_threshold_bytes,
            )
            spine_port = spine.add_ecn_port(
                rate_bps=rate_bps,
                capacity_bytes=queue_capacity_bytes,
                ecn_threshold_bytes=ecn_threshold_bytes,
            )
            topo.connect(leaf_port, spine_port, delay_ps=delay_ps)
            uplinks[i].append(leaf_port)
            downlinks[(j, i)] = spine_port

    fabric = LeafSpineFabric(topology=topo, leaves=leaves, spines=spines)
    fabric._uplinks = uplinks  # type: ignore[attr-defined]
    fabric._downlinks = downlinks  # type: ignore[attr-defined]
    return fabric


def attach_endpoint(
    fabric: LeafSpineFabric,
    leaf_index: int,
    endpoint_port,
    *,
    rate_bps: int = RATE_100G,
    delay_ps: int = DEFAULT_LINK_DELAY_PS,
    ecn_threshold_bytes: int = 84_000,
    queue_capacity_bytes: int = 2**22,
) -> int:
    """Connect an endpoint (host port or Marlin test port) to a leaf and
    install routes for its freshly allocated address.  Returns the
    address."""
    if not 0 <= leaf_index < fabric.n_leaves:
        raise ConfigError(f"no leaf {leaf_index}")
    topo = fabric.topology
    leaf = fabric.leaves[leaf_index]
    leaf_port = leaf.add_ecn_port(
        rate_bps=rate_bps,
        capacity_bytes=queue_capacity_bytes,
        ecn_threshold_bytes=ecn_threshold_bytes,
    )
    topo.connect(endpoint_port, leaf_port, delay_ps=delay_ps)
    address = topo.allocate_address()
    fabric.endpoints[address] = (leaf_index, leaf_port)

    # Owning leaf: local delivery.
    leaf.set_route(address, leaf_port)
    # Other leaves: ECMP over their spine uplinks.
    uplinks = fabric._uplinks  # type: ignore[attr-defined]
    for other_index, other_leaf in enumerate(fabric.leaves):
        if other_index != leaf_index:
            other_leaf.set_ecmp_route(address, uplinks[other_index])
    # Spines: down to the owning leaf.
    downlinks = fabric._downlinks  # type: ignore[attr-defined]
    for spine_index, spine in enumerate(fabric.spines):
        spine.set_route(address, downlinks[(spine_index, leaf_index)])
    return address


def wire_tester_leaf_spine(
    sim: Simulator,
    tester: "MarlinTester",
    n_leaves: int,
    n_spines: int,
    **fabric_kwargs,
) -> LeafSpineFabric:
    """Spread the tester's test ports round-robin across the leaves.

    Port i lands on leaf ``i % n_leaves``; flows between ports on
    different leaves traverse the spine mesh (exercising ECMP), flows on
    the same leaf stay local — just like real racks under one tester.
    """
    fabric = build_leaf_spine(sim, n_leaves, n_spines, **fabric_kwargs)
    for index, port in enumerate(tester.test_ports):
        address = attach_endpoint(fabric, index % n_leaves, port)
        tester.assign_port_address(index, address)
    return fabric
