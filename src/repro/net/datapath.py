"""Shared precomputed tables for the per-packet datapath.

The packet hot path (``Port.send`` → queue → ``Link.carry`` →
``Port.deliver`` → ``NetworkSwitch.receive``) used to recompute the same
integer arithmetic for every frame: the serialization delay of a 64 B
ACK on a 100 G port never changes, and neither does the ECMP hash of a
flow.  :class:`DatapathState` is the small struct those tables hang off:
one instance is shared process-wide (``shared()``), so every port at the
same rate resolves frame sizes through one dict, and tables survive
across :class:`~repro.core.control_plane.ControlPlane` rebuilds inside a
campaign worker.

Tables are lazily populated — the first packet of a given size pays the
:func:`~repro.units.serialization_time_ps` call, every later one is a
dict hit — so arbitrary frame sizes stay exact, not quantized to size
classes.
"""

from __future__ import annotations

from repro.units import serialization_time_ps

__all__ = ["DatapathState", "shared"]


class DatapathState:
    """Precomputed integer tables shared by the packet datapath.

    ``ser_table(rate_bps)`` returns the per-rate ``{frame_bytes:
    serialization_ps}`` dict for that port rate.  The dict is the live
    table — ports cache it and extend it in place on first sight of a
    new frame size.
    """

    __slots__ = ("_ser_tables",)

    #: Frame sizes warmed eagerly: control/ACK frames, the common MTU
    #: payloads, and the full Ethernet frame used by the benches.
    WARM_FRAME_SIZES = (64, 1024, 1250, 1500, 1518)

    def __init__(self) -> None:
        self._ser_tables: dict[int, dict[int, int]] = {}

    def ser_table(self, rate_bps: int) -> dict[int, int]:
        table = self._ser_tables.get(rate_bps)
        if table is None:
            table = {
                size: serialization_time_ps(size, rate_bps)
                for size in self.WARM_FRAME_SIZES
            }
            self._ser_tables[rate_bps] = table
        return table


_SHARED = DatapathState()


def shared() -> DatapathState:
    """The process-wide table set (deterministic: tables are pure
    functions of rate and size, so sharing them across runs is safe)."""
    return _SHARED
