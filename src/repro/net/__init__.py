"""Network substrate: packets, links, queues, switches, hosts, topologies.

This package models the *tested network* that Marlin drives traffic
through, plus the plumbing that connects Marlin's own devices.  It is a
conventional packet-level simulation: output-queued switches, links with
serialization and propagation delay, and DCTCP-style ECN marking queues.
"""

from repro.net.packet import Packet, ECT, CE, NOT_ECT
from repro.net.link import Link
from repro.net.queue import DropTailQueue, EcnQueue, QueueStats
from repro.net.device import Device, Port
from repro.net.switch import NetworkSwitch
from repro.net.host import Host
from repro.net.topology import (
    Topology,
    dumbbell,
    fan_in,
    n_cast_1,
    one_to_one,
    passthrough,
)
from repro.net.leaf_spine import (
    LeafSpineFabric,
    attach_endpoint,
    build_leaf_spine,
    wire_tester_leaf_spine,
)
from repro.net.pfc import PfcController, enable_pfc
from repro.net import int_telemetry

__all__ = [
    "Packet",
    "ECT",
    "CE",
    "NOT_ECT",
    "Link",
    "DropTailQueue",
    "EcnQueue",
    "QueueStats",
    "Device",
    "Port",
    "NetworkSwitch",
    "Host",
    "Topology",
    "dumbbell",
    "fan_in",
    "n_cast_1",
    "one_to_one",
    "passthrough",
    "LeafSpineFabric",
    "attach_endpoint",
    "build_leaf_spine",
    "wire_tester_leaf_spine",
    "PfcController",
    "enable_pfc",
    "int_telemetry",
]
