"""Topology container and builders for the paper's testbeds.

The experiments use three shapes:

* **passthrough / one-to-one** — the intermediate switch forwards each
  tester port straight to a distinct receiver port (Figures 6 and 7);
* **congestion fan-in** — many source ports forwarded to one destination
  port, creating a bottleneck (Figure 8);
* **n-cast-1 dumbbell** — n sender hosts behind switch A, one inter-switch
  link to switch B, receivers behind B (Figure 9).

Builders return a :class:`Topology` holding the simulator, named devices,
and links, plus the relevant device handles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.errors import ConfigError
from repro.net.device import Device, Port
from repro.net.host import Host
from repro.net.link import Link
from repro.net.switch import NetworkSwitch
from repro.sim.engine import Simulator
from repro.units import MICROSECOND, RATE_100G

#: Default one-way propagation delay for testbed cables (1 us ~ 200 m of
#: fiber, a rack-scale-to-row-scale figure that gives microsecond RTTs as
#: in the paper's data-center setting).
DEFAULT_LINK_DELAY_PS = 1 * MICROSECOND


@dataclass
class Topology:
    """A wired set of devices sharing one simulator."""

    sim: Simulator
    devices: dict[str, Device] = field(default_factory=dict)
    links: list[Link] = field(default_factory=list)
    _next_address: int = 1

    def add_device(self, device: Device) -> Device:
        if device.name in self.devices:
            raise ConfigError(f"duplicate device name: {device.name}")
        self.devices[device.name] = device
        return device

    def connect(self, a: Port, b: Port, *, delay_ps: int = DEFAULT_LINK_DELAY_PS) -> Link:
        link = Link(a, b, delay_ps=delay_ps)
        self.links.append(link)
        return link

    def allocate_address(self) -> int:
        address = self._next_address
        self._next_address += 1
        return address

    def device(self, name: str) -> Device:
        try:
            return self.devices[name]
        except KeyError:
            raise ConfigError(f"no device named {name!r}") from None


def passthrough(
    sim: Simulator,
    n_ports: int,
    *,
    rate_bps: int = RATE_100G,
    ecn_threshold_bytes: int = 84_000,
) -> tuple[Topology, NetworkSwitch]:
    """An intermediate switch with ``2 * n_ports`` ECN-capable ports.

    Ports ``0..n-1`` face the sender side and ``n..2n-1`` the receiver
    side; no routes are installed — callers wire routes per experiment.
    """
    if n_ports <= 0:
        raise ConfigError(f"n_ports must be positive, got {n_ports}")
    topo = Topology(sim)
    switch = NetworkSwitch(sim, "fabric")
    for _ in range(2 * n_ports):
        switch.add_ecn_port(rate_bps=rate_bps, ecn_threshold_bytes=ecn_threshold_bytes)
    topo.add_device(switch)
    return topo, switch


def one_to_one(
    topo: Topology,
    switch: NetworkSwitch,
    sender_ports: list[Port],
    receiver_ports: list[Port],
    sender_addresses: list[int],
    receiver_addresses: list[int],
    *,
    delay_ps: int = DEFAULT_LINK_DELAY_PS,
) -> None:
    """Wire sender port i <-> switch <-> receiver port i and install routes.

    ``receiver_addresses[i]`` is routed out the switch port facing
    ``receiver_ports[i]``; ``sender_addresses[i]`` back to sender i.
    """
    n = len(sender_ports)
    if not (
        len(receiver_ports) == len(sender_addresses) == len(receiver_addresses) == n
    ):
        raise ConfigError("one_to_one requires equal-length port/address lists")
    if len(switch.ports) < 2 * n:
        raise ConfigError(
            f"switch has {len(switch.ports)} ports, need {2 * n} for one_to_one"
        )
    for i in range(n):
        topo.connect(sender_ports[i], switch.ports[i], delay_ps=delay_ps)
        topo.connect(receiver_ports[i], switch.ports[n + i], delay_ps=delay_ps)
        switch.set_route(receiver_addresses[i], switch.ports[n + i])
        switch.set_route(sender_addresses[i], switch.ports[i])


def fan_in(
    topo: Topology,
    switch: NetworkSwitch,
    sender_ports: list[Port],
    receiver_port: Port,
    sender_addresses: list[int],
    receiver_address: int,
    *,
    delay_ps: int = DEFAULT_LINK_DELAY_PS,
) -> None:
    """Wire all sender ports into the switch and route the single receiver
    address out one congested port (Figure 8's bottleneck)."""
    n = len(sender_ports)
    if len(sender_addresses) != n:
        raise ConfigError("fan_in requires one address per sender port")
    if len(switch.ports) < n + 1:
        raise ConfigError(
            f"switch has {len(switch.ports)} ports, need {n + 1} for fan_in"
        )
    for i in range(n):
        topo.connect(sender_ports[i], switch.ports[i], delay_ps=delay_ps)
        switch.set_route(sender_addresses[i], switch.ports[i])
    topo.connect(receiver_port, switch.ports[n], delay_ps=delay_ps)
    switch.set_route(receiver_address, switch.ports[n])


def n_cast_1(
    sim: Simulator,
    n_senders: int,
    *,
    rate_bps: int = RATE_100G,
    delay_ps: int = DEFAULT_LINK_DELAY_PS,
    ecn_threshold_bytes: int = 84_000,
    queue_capacity_bytes: int = 2**22,
) -> tuple[Topology, list[Host], Host, NetworkSwitch, NetworkSwitch]:
    """The Figure 9 dumbbell: n sender hosts -> switch A -> switch B -> 1
    receiver host; the A-B link is the bottleneck for n >= 2."""
    if n_senders <= 0:
        raise ConfigError(f"n_senders must be positive, got {n_senders}")
    topo = Topology(sim)
    switch_a = NetworkSwitch(sim, "switchA")
    switch_b = NetworkSwitch(sim, "switchB")
    topo.add_device(switch_a)
    topo.add_device(switch_b)

    senders: list[Host] = []
    for i in range(n_senders):
        host = Host(sim, topo.allocate_address(), name=f"sender{i}", rate_bps=rate_bps)
        topo.add_device(host)
        sw_port = switch_a.add_ecn_port(
            rate_bps=rate_bps,
            capacity_bytes=queue_capacity_bytes,
            ecn_threshold_bytes=ecn_threshold_bytes,
        )
        topo.connect(host.port, sw_port, delay_ps=delay_ps)
        switch_a.set_route(host.address, sw_port)
        senders.append(host)

    receiver = Host(sim, topo.allocate_address(), name="receiver", rate_bps=rate_bps)
    topo.add_device(receiver)
    recv_sw_port = switch_b.add_ecn_port(
        rate_bps=rate_bps,
        capacity_bytes=queue_capacity_bytes,
        ecn_threshold_bytes=ecn_threshold_bytes,
    )
    topo.connect(receiver.port, recv_sw_port, delay_ps=delay_ps)
    switch_b.set_route(receiver.address, recv_sw_port)

    # Inter-switch trunk: the bottleneck.
    a_trunk = switch_a.add_ecn_port(
        rate_bps=rate_bps,
        capacity_bytes=queue_capacity_bytes,
        ecn_threshold_bytes=ecn_threshold_bytes,
    )
    b_trunk = switch_b.add_ecn_port(
        rate_bps=rate_bps,
        capacity_bytes=queue_capacity_bytes,
        ecn_threshold_bytes=ecn_threshold_bytes,
    )
    topo.connect(a_trunk, b_trunk, delay_ps=delay_ps)
    switch_a.set_route(receiver.address, a_trunk)
    for host in senders:
        switch_b.set_route(host.address, b_trunk)

    return topo, senders, receiver, switch_a, switch_b


def dumbbell(
    sim: Simulator,
    n_left: int,
    n_right: int,
    *,
    rate_bps: int = RATE_100G,
    delay_ps: int = DEFAULT_LINK_DELAY_PS,
    ecn_threshold_bytes: int = 84_000,
) -> tuple[Topology, list[Host], list[Host], NetworkSwitch, NetworkSwitch]:
    """A general dumbbell: left hosts behind switch A, right behind B."""
    if n_left <= 0 or n_right <= 0:
        raise ConfigError("dumbbell requires at least one host per side")
    topo = Topology(sim)
    switch_a = NetworkSwitch(sim, "switchA")
    switch_b = NetworkSwitch(sim, "switchB")
    topo.add_device(switch_a)
    topo.add_device(switch_b)

    def attach(switch: NetworkSwitch, prefix: str, count: int) -> list[Host]:
        hosts = []
        for i in range(count):
            host = Host(
                sim, topo.allocate_address(), name=f"{prefix}{i}", rate_bps=rate_bps
            )
            topo.add_device(host)
            sw_port = switch.add_ecn_port(
                rate_bps=rate_bps, ecn_threshold_bytes=ecn_threshold_bytes
            )
            topo.connect(host.port, sw_port, delay_ps=delay_ps)
            switch.set_route(host.address, sw_port)
            hosts.append(host)
        return hosts

    left = attach(switch_a, "left", n_left)
    right = attach(switch_b, "right", n_right)

    a_trunk = switch_a.add_ecn_port(
        rate_bps=rate_bps, ecn_threshold_bytes=ecn_threshold_bytes
    )
    b_trunk = switch_b.add_ecn_port(
        rate_bps=rate_bps, ecn_threshold_bytes=ecn_threshold_bytes
    )
    topo.connect(a_trunk, b_trunk, delay_ps=delay_ps)
    for host in right:
        switch_a.set_route(host.address, a_trunk)
    for host in left:
        switch_b.set_route(host.address, b_trunk)

    return topo, left, right, switch_a, switch_b
